//! MiniKV on Simurgh: the LevelDB-style LSM store from the YCSB experiments
//! used as a real embedded database, including crash recovery of the WAL.
//!
//! ```text
//! cargo run -p simurgh-examples --bin kvstore
//! ```

use std::sync::Arc;

use simurgh_core::{SimurghConfig, SimurghFs};
use simurgh_fsapi::{FileSystem, ProcCtx};
use simurgh_pmem::PmemRegion;
use simurgh_workloads::minikv::{KvOptions, MiniKv};

fn main() {
    let region = Arc::new(PmemRegion::new(128 << 20));
    let fs = SimurghFs::format(region, SimurghConfig::default()).expect("format");

    // Small memtable so the example exercises flush + compaction.
    let opts = KvOptions { memtable_bytes: 8 * 1024, max_tables: 3, sync_wal: false };

    {
        let kv = MiniKv::open(&fs, "/db", opts).expect("open");
        println!("loading 1000 user records…");
        for i in 0..1000u32 {
            kv.put(
                format!("user:{i:05}").as_bytes(),
                format!("{{\"id\":{i},\"score\":{}}}", i * 7 % 100).as_bytes(),
            )
            .unwrap();
        }
        kv.delete(b"user:00007").unwrap();
        println!("table files after load: {}", kv.table_count());

        let v = kv.get(b"user:00042").unwrap().expect("present");
        println!("user:00042 -> {}", String::from_utf8_lossy(&v));
        assert_eq!(kv.get(b"user:00007").unwrap(), None, "deleted key gone");

        let page = kv.scan(b"user:00990", 5).unwrap();
        println!("scan from user:00990 ({} rows):", page.len());
        for (k, v) in &page {
            println!("  {} = {}", String::from_utf8_lossy(k), String::from_utf8_lossy(v));
        }
    } // dropped without any shutdown: WAL + tables stay on "NVMM"

    // Reopen: LevelDB-style recovery replays the WAL and reloads tables.
    let kv = MiniKv::open(&fs, "/db", opts).expect("reopen");
    assert!(kv.get(b"user:00999").unwrap().is_some());
    assert_eq!(kv.get(b"user:00007").unwrap(), None);
    println!("recovered store answers correctly after reopen");

    // Show what the database did to the file system.
    let ctx = ProcCtx::root(1);
    println!("files under /db:");
    for e in fs.readdir(&ctx, "/db").unwrap() {
        let st = fs.stat(&ctx, &format!("/db/{}", e.name)).unwrap();
        println!("  {:<16} {:>8} bytes", e.name, st.size);
    }
}
