//! Crash lab: demonstrate Simurgh's crash consistency on tracked NVMM.
//!
//! Uses the crash-simulating region mode: stores survive a simulated power
//! failure only if they were flushed *and* fenced.
//!
//! Three modes:
//!
//! * **demo** (default) — cut the power mid-workload, remount, show the
//!   mark-and-sweep recovery report; then the decentralized runtime
//!   recovery where a waiter repairs a line a "crashed process" left busy.
//! * **matrix** — the exhaustive crash matrix of §4.3: for every scripted
//!   operation, enumerate *every* persistence boundary, cut the power
//!   there, remount, fsck, and assert roll-back/roll-forward atomicity;
//!   plus injected ENOSPC at every allocation. `--json` emits the machine
//!   report (schema in EXPERIMENTS.md), `--cap N` samples N boundaries per
//!   op instead of all of them, and `--trace` prints the flight-recorder
//!   dump (the tail of every thread's trace ring) for failing ops — or,
//!   when everything passed, the most recent events of the run.
//! * **procs** — the multi-process `kill -9` matrix: N real OS processes
//!   mount the same `MAP_SHARED` region file, one is `SIGKILL`ed mid-op at
//!   a scripted persistence boundary, and the survivors must steal its
//!   stale line lock and keep working; an exclusive remount then proves
//!   fsck-clean convergence with no leaked blocks. `--procs N` sets the
//!   group size, `--cap K` the kill points per op, `--ops a,b` the op
//!   shapes, `--json` the machine report (schema in EXPERIMENTS.md).
//!   (The binary re-execs itself with a hidden `procs-worker` argv0 mode
//!   for the worker processes.)
//!
//! ```text
//! cargo run -p simurgh-examples --bin crashlab
//! cargo run --release -p simurgh-examples --bin crashlab -- matrix
//! cargo run --release -p simurgh-examples --bin crashlab -- matrix --json
//! cargo run --release -p simurgh-examples --bin crashlab -- matrix --cap 8
//! cargo run --release -p simurgh-examples --bin crashlab -- matrix --trace
//! cargo run --release -p simurgh-examples --bin crashlab -- procs --procs 4 --json
//! ```

use std::sync::Arc;
use std::time::Duration;

use simurgh_core::testing::{matrix, procs};
use simurgh_core::{SimurghConfig, SimurghFs};
use simurgh_fsapi::{FileMode, FileSystem, ProcCtx};
use simurgh_pmem::PmemRegion;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("matrix") => {
            let json = args.iter().any(|a| a == "--json");
            let trace = args.iter().any(|a| a == "--trace");
            let cap = args
                .iter()
                .position(|a| a == "--cap")
                .and_then(|i| args.get(i + 1))
                .map(|v| v.parse::<u64>().expect("--cap takes a number"));
            run_matrix(json, trace, cap);
        }
        // Hidden worker mode: this process was spawned by `procs` below.
        Some("procs-worker") if procs::is_worker() => procs::worker_main(),
        Some("procs") => {
            let json = args.iter().any(|a| a == "--json");
            let flag = |name: &str| {
                args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
            };
            let mut opts = procs::ProcsOpts::default();
            if let Some(n) = flag("--procs") {
                opts.nprocs = n.parse().expect("--procs takes a number");
            }
            if let Some(k) = flag("--cap") {
                opts.cap = k.parse().expect("--cap takes a number");
            }
            if let Some(ops) = flag("--ops") {
                opts.ops = ops.split(',').map(str::to_owned).collect();
            }
            run_procs(&opts, json);
        }
        _ => run_demo(),
    }
}

fn run_procs(opts: &procs::ProcsOpts, json: bool) {
    let exe = std::env::current_exe().expect("own executable path");
    let spawn = move |env: &[(String, String)]| {
        let mut cmd = std::process::Command::new(&exe);
        cmd.arg("procs-worker").stdout(std::process::Stdio::piped());
        for (k, v) in env {
            cmd.env(k, v);
        }
        cmd.spawn()
    };
    let report = procs::run_procs(opts, &spawn);
    if json {
        println!("{}", procs::to_json(&report));
    } else {
        println!(
            "{:<16} {:>5} {:>10} {:>7} {:>7} {:>9} {:>9}  status",
            "op", "kill", "boundaries", "killed", "steals", "reclaim1", "reclaim2"
        );
        for c in &report.cells {
            let steals: u64 = c.survivors.iter().map(|s| s.lock_steals).sum();
            println!(
                "{:<16} {:>5} {:>10} {:>7} {:>7} {:>9} {:>9}  {}",
                c.op,
                c.kill_fence,
                c.boundaries,
                if c.victim_killed { "sig9" } else { "NO" },
                steals,
                c.reclaimed_first,
                c.reclaimed_second,
                if c.is_clean() { "ok" } else { "FAIL" },
            );
            for f in &c.failures {
                println!("    !! {f}");
            }
        }
    }
    if !report.is_clean() {
        eprintln!("{} unrecoverable state(s)", report.unrecoverable());
        std::process::exit(1);
    }
}

fn run_matrix(json: bool, trace: bool, cap: Option<u64>) {
    let results = matrix::run_matrix(cap);
    if json {
        println!("{}", matrix::to_json(&results));
    } else {
        println!(
            "{:<16} {:>10} {:>7} {:>6} {:>7} {:>8}  status",
            "op", "boundaries", "commit", "allocs", "enospc", "capped"
        );
        for m in &results {
            println!(
                "{:<16} {:>10} {:>7} {:>6} {:>7} {:>8}  {}",
                m.op,
                m.boundaries,
                m.commit_point.map_or("-".to_owned(), |c| c.to_string()),
                m.allocs,
                m.enospc.len(),
                if m.capped { "yes" } else { "no" },
                if m.is_clean() { "ok" } else { "FAIL" },
            );
            for f in &m.failures {
                println!("    !! {f}");
            }
        }
    }
    if trace && !json {
        let mut dumped = false;
        for m in results.iter().filter(|m| !m.trace.is_empty()) {
            println!("-- flight recorder: {} --", m.op);
            for line in &m.trace {
                println!("    {line}");
            }
            dumped = true;
        }
        if !dumped {
            println!("-- flight recorder: all ops clean; most recent events --");
            for line in simurgh_core::obs::flight_dump(16) {
                println!("    {line}");
            }
        }
    }
    let bad: usize = results.iter().map(|m| m.failures.len()).sum();
    if bad > 0 {
        eprintln!("{bad} unrecoverable state(s)");
        std::process::exit(1);
    }
}

fn run_demo() {
    let ctx = ProcCtx::root(1);

    // ---- Part 1: whole-system crash + mark-and-sweep recovery ----------
    println!("== part 1: power failure and mark-and-sweep recovery ==");
    let region = Arc::new(PmemRegion::new_tracked(64 << 20));
    let fs = SimurghFs::format(region.clone(), SimurghConfig::default()).expect("format");
    fs.mkdir(&ctx, "/mail", FileMode::dir(0o755)).unwrap();
    for i in 0..200 {
        fs.write_file(&ctx, &format!("/mail/msg-{i}"), format!("body {i}").as_bytes()).unwrap();
    }
    println!("wrote 200 files; cutting power (no unmount)…");

    // The crash image contains exactly what was flushed+fenced.
    let crashed = Arc::new(fs.region().simulate_crash());
    let fs2 = SimurghFs::mount(crashed, SimurghConfig::default()).expect("recover");
    let r = fs2.recovery_report();
    println!(
        "recovered: clean={} files={} dirs={} reclaimed={} in {:.3}s \
         (mark {:.3}s, repair {:.3}s, sweep {:.3}s, rebuild {:.3}s)",
        r.was_clean,
        r.files,
        r.directories,
        r.reclaimed_objects,
        r.total_time().as_secs_f64(),
        r.mark_time.as_secs_f64(),
        r.repair_time.as_secs_f64(),
        r.sweep_time.as_secs_f64(),
        r.rebuild_time.as_secs_f64(),
    );
    assert_eq!(r.files, 200);
    assert_eq!(fs2.read_to_vec(&ctx, "/mail/msg-123").unwrap(), b"body 123");
    println!("all 200 messages intact\n");

    // ---- Part 2: decentralized process-crash recovery -------------------
    println!("== part 2: a process dies holding a busy line ==");
    let region = Arc::new(PmemRegion::new(32 << 20));
    let cfg = SimurghConfig { line_max_hold: Duration::from_millis(30), ..Default::default() };
    let fs = Arc::new(SimurghFs::format(region, cfg).expect("format"));
    fs.mkdir(&ctx, "/shared", FileMode::dir(0o777)).unwrap();
    fs.write_file(&ctx, "/shared/victim", b"going away").unwrap();

    // Simulate a crashed process: it acquired the busy flag of the line
    // holding "victim", invalidated the entry (delete step 2 of Fig. 5b)
    // and died before completing steps 3–5.
    simurgh_core::testing::crash_mid_unlink(&fs, "/shared", "victim");
    println!("a process crashed mid-unlink, leaving the hash line busy");

    // Another process now touches the same hash line: it times out,
    // repairs the line (completing the interrupted delete) and proceeds.
    let collide = simurgh_core::testing::colliding_name("victim", "after-crash-");
    let t = std::time::Instant::now();
    fs.write_file(&ctx, &format!("/shared/{collide}"), b"new work").unwrap();
    println!(
        "second process made progress after {:?} (timeout-driven repair)",
        t.elapsed()
    );
    assert!(fs.stat(&ctx, "/shared/victim").is_err(), "interrupted delete completed");
    assert!(fs.stat(&ctx, &format!("/shared/{collide}")).is_ok());
    println!("interrupted delete was rolled forward by the waiting process");
}
