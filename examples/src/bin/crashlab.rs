//! Crash lab: demonstrate Simurgh's crash consistency on tracked NVMM.
//!
//! Uses the crash-simulating region mode: stores survive a simulated power
//! failure only if they were flushed *and* fenced.
//!
//! Two modes:
//!
//! * **demo** (default) — cut the power mid-workload, remount, show the
//!   mark-and-sweep recovery report; then the decentralized runtime
//!   recovery where a waiter repairs a line a "crashed process" left busy.
//! * **matrix** — the exhaustive crash matrix of §4.3: for every scripted
//!   operation, enumerate *every* persistence boundary, cut the power
//!   there, remount, fsck, and assert roll-back/roll-forward atomicity;
//!   plus injected ENOSPC at every allocation. `--json` emits the machine
//!   report (schema in EXPERIMENTS.md), `--cap N` samples N boundaries per
//!   op instead of all of them, and `--trace` prints the flight-recorder
//!   dump (the tail of every thread's trace ring) for failing ops — or,
//!   when everything passed, the most recent events of the run.
//!
//! ```text
//! cargo run -p simurgh-examples --bin crashlab
//! cargo run --release -p simurgh-examples --bin crashlab -- matrix
//! cargo run --release -p simurgh-examples --bin crashlab -- matrix --json
//! cargo run --release -p simurgh-examples --bin crashlab -- matrix --cap 8
//! cargo run --release -p simurgh-examples --bin crashlab -- matrix --trace
//! ```

use std::sync::Arc;
use std::time::Duration;

use simurgh_core::testing::matrix;
use simurgh_core::{SimurghConfig, SimurghFs};
use simurgh_fsapi::{FileMode, FileSystem, ProcCtx};
use simurgh_pmem::PmemRegion;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("matrix") {
        let json = args.iter().any(|a| a == "--json");
        let trace = args.iter().any(|a| a == "--trace");
        let cap = args
            .iter()
            .position(|a| a == "--cap")
            .and_then(|i| args.get(i + 1))
            .map(|v| v.parse::<u64>().expect("--cap takes a number"));
        run_matrix(json, trace, cap);
    } else {
        run_demo();
    }
}

fn run_matrix(json: bool, trace: bool, cap: Option<u64>) {
    let results = matrix::run_matrix(cap);
    if json {
        println!("{}", matrix::to_json(&results));
    } else {
        println!(
            "{:<16} {:>10} {:>7} {:>6} {:>7} {:>8}  status",
            "op", "boundaries", "commit", "allocs", "enospc", "capped"
        );
        for m in &results {
            println!(
                "{:<16} {:>10} {:>7} {:>6} {:>7} {:>8}  {}",
                m.op,
                m.boundaries,
                m.commit_point.map_or("-".to_owned(), |c| c.to_string()),
                m.allocs,
                m.enospc.len(),
                if m.capped { "yes" } else { "no" },
                if m.is_clean() { "ok" } else { "FAIL" },
            );
            for f in &m.failures {
                println!("    !! {f}");
            }
        }
    }
    if trace && !json {
        let mut dumped = false;
        for m in results.iter().filter(|m| !m.trace.is_empty()) {
            println!("-- flight recorder: {} --", m.op);
            for line in &m.trace {
                println!("    {line}");
            }
            dumped = true;
        }
        if !dumped {
            println!("-- flight recorder: all ops clean; most recent events --");
            for line in simurgh_core::obs::flight_dump(16) {
                println!("    {line}");
            }
        }
    }
    let bad: usize = results.iter().map(|m| m.failures.len()).sum();
    if bad > 0 {
        eprintln!("{bad} unrecoverable state(s)");
        std::process::exit(1);
    }
}

fn run_demo() {
    let ctx = ProcCtx::root(1);

    // ---- Part 1: whole-system crash + mark-and-sweep recovery ----------
    println!("== part 1: power failure and mark-and-sweep recovery ==");
    let region = Arc::new(PmemRegion::new_tracked(64 << 20));
    let fs = SimurghFs::format(region.clone(), SimurghConfig::default()).expect("format");
    fs.mkdir(&ctx, "/mail", FileMode::dir(0o755)).unwrap();
    for i in 0..200 {
        fs.write_file(&ctx, &format!("/mail/msg-{i}"), format!("body {i}").as_bytes()).unwrap();
    }
    println!("wrote 200 files; cutting power (no unmount)…");

    // The crash image contains exactly what was flushed+fenced.
    let crashed = Arc::new(fs.region().simulate_crash());
    let fs2 = SimurghFs::mount(crashed, SimurghConfig::default()).expect("recover");
    let r = fs2.recovery_report();
    println!(
        "recovered: clean={} files={} dirs={} reclaimed={} in {:.3}s \
         (mark {:.3}s, repair {:.3}s, sweep {:.3}s, rebuild {:.3}s)",
        r.was_clean,
        r.files,
        r.directories,
        r.reclaimed_objects,
        r.total_time().as_secs_f64(),
        r.mark_time.as_secs_f64(),
        r.repair_time.as_secs_f64(),
        r.sweep_time.as_secs_f64(),
        r.rebuild_time.as_secs_f64(),
    );
    assert_eq!(r.files, 200);
    assert_eq!(fs2.read_to_vec(&ctx, "/mail/msg-123").unwrap(), b"body 123");
    println!("all 200 messages intact\n");

    // ---- Part 2: decentralized process-crash recovery -------------------
    println!("== part 2: a process dies holding a busy line ==");
    let region = Arc::new(PmemRegion::new(32 << 20));
    let cfg = SimurghConfig { line_max_hold: Duration::from_millis(30), ..Default::default() };
    let fs = Arc::new(SimurghFs::format(region, cfg).expect("format"));
    fs.mkdir(&ctx, "/shared", FileMode::dir(0o777)).unwrap();
    fs.write_file(&ctx, "/shared/victim", b"going away").unwrap();

    // Simulate a crashed process: it acquired the busy flag of the line
    // holding "victim", invalidated the entry (delete step 2 of Fig. 5b)
    // and died before completing steps 3–5.
    simurgh_core::testing::crash_mid_unlink(&fs, "/shared", "victim");
    println!("a process crashed mid-unlink, leaving the hash line busy");

    // Another process now touches the same hash line: it times out,
    // repairs the line (completing the interrupted delete) and proceeds.
    let collide = simurgh_core::testing::colliding_name("victim", "after-crash-");
    let t = std::time::Instant::now();
    fs.write_file(&ctx, &format!("/shared/{collide}"), b"new work").unwrap();
    println!(
        "second process made progress after {:?} (timeout-driven repair)",
        t.elapsed()
    );
    assert!(fs.stat(&ctx, "/shared/victim").is_err(), "interrupted delete completed");
    assert!(fs.stat(&ctx, &format!("/shared/{collide}")).is_ok());
    println!("interrupted delete was rolled forward by the waiting process");
}
