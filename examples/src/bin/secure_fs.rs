//! Protected-function security in action (§3).
//!
//! Boots Simurgh with full enforcement: the NVMM region's pages are marked
//! as kernel pages, the file-system entry points are loaded as protected
//! functions (`load_protected()`), and every call crosses the privilege
//! boundary through a simulated `jmpp`. The example then plays attacker:
//! touching NVMM directly from user mode, jumping to a non-entry offset,
//! and jumping into the body of a long protected function — all of which
//! fault exactly as §3.1 requires.
//!
//! ```text
//! cargo run -p simurgh-examples --bin secure_fs
//! ```

use std::sync::Arc;

use simurgh_core::{SimurghConfig, SimurghFs};
use simurgh_fsapi::{FileMode, FileSystem, ProcCtx};
use simurgh_pmem::prot::PageTable;
use simurgh_pmem::{PPtr, RegionBuilder, PAGE_SIZE};
use simurgh_protfn::{EntryPoint, Fault, KernelPagePolicy, ProtectedDomain};

fn main() {
    // ---- Bootstrap (paper Fig. 2) ---------------------------------------
    let bytes = 32 << 20;
    let table = Arc::new(PageTable::new(bytes / PAGE_SIZE));
    let policy = Arc::new(KernelPagePolicy::new(table));
    // Step 4/5: the OS security module marks the NVMM pages as kernel pages.
    policy.protect_all();
    let region = Arc::new(
        RegionBuilder::new(bytes).policy(policy).build().expect("region"),
    );
    // Steps 1–3: the preload library loads the protected Simurgh functions.
    let domain = Arc::new(ProtectedDomain::new(8));
    let fs = SimurghFs::format(region.clone(), SimurghConfig::default())
        .expect("format")
        .with_enforcement(domain.clone());
    println!("bootstrap complete: {} jmpp transitions so far", domain.jmpp_count());

    // ---- Legitimate use --------------------------------------------------
    let ctx = ProcCtx::root(1);
    fs.mkdir(&ctx, "/secrets", FileMode::dir(0o700)).unwrap();
    fs.write_file(&ctx, "/secrets/key", b"hunter2").unwrap();
    let data = fs.read_to_vec(&ctx, "/secrets/key").unwrap();
    println!(
        "file system works through protected functions: read {:?} ({} jmpp calls)",
        String::from_utf8_lossy(&data),
        domain.jmpp_count()
    );

    // ---- Attack 1: direct NVMM access from user mode ---------------------
    let err = region.check_access(PPtr::new(8192), 8, false).unwrap_err();
    println!("attack 1 (user-mode load of NVMM page): FAULT — {err}");
    let err = region.check_access(PPtr::new(8192), 8, true).unwrap_err();
    println!("attack 1b (user-mode store to NVMM page): FAULT — {err}");

    // ---- Attack 2: jmpp to an arbitrary offset ---------------------------
    let legit = domain.resolve("simurgh_meta").expect("loaded");
    let rogue = EntryPoint { page: legit.page, offset: 0x123 };
    match domain.jmpp(rogue) {
        Err(Fault::BadEntryOffset { offset }) => {
            println!("attack 2 (jmpp to offset {offset:#x}): FAULT — not an entry point")
        }
        other => panic!("expected a fault, got {other:?}"),
    }

    // ---- Attack 3: jmpp into the body of a long function -----------------
    // simurgh_meta is >1 KB, so it spills into the next entry slot; jumping
    // there is exactly the paper's "the instruction at 0xc00 must not be a
    // nop" case.
    let body = EntryPoint { page: legit.page, offset: legit.offset + 0x400 };
    match domain.jmpp(body) {
        Err(Fault::NoFunctionAtEntry { .. }) => {
            println!("attack 3 (jmpp into a function body): FAULT — body is not an entry")
        }
        Err(Fault::BadEntryOffset { .. }) => {
            println!("attack 3 (jmpp into a function body): FAULT — not a legal offset")
        }
        other => panic!("expected a fault, got {other:?}"),
    }

    // ---- Attack 4: jmpp to a page without the ep bit ----------------------
    let unprotected = EntryPoint { page: 7, offset: 0 };
    match domain.jmpp(unprotected) {
        Err(Fault::EpNotSet { page }) => {
            println!("attack 4 (jmpp to page {page} without ep bit): FAULT")
        }
        other => panic!("expected a fault, got {other:?}"),
    }

    println!("\nall four §3.1 requirements enforced; file system still healthy:");
    let st = fs.stat(&ctx, "/secrets/key").unwrap();
    println!("  /secrets/key: {} bytes, mode {:o}", st.size, st.mode.perm);
}
