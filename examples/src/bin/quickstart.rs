//! Quickstart: format a Simurgh file system on emulated NVMM, do everyday
//! file work, unmount cleanly and remount.
//!
//! ```text
//! cargo run -p simurgh-examples --bin quickstart
//! ```

use std::sync::Arc;

use simurgh_core::{SimurghConfig, SimurghFs};
use simurgh_fsapi::{FileMode, FileSystem, OpenFlags, ProcCtx};
use simurgh_pmem::PmemRegion;

fn main() {
    // 1. An emulated 64-MiB NVMM device. On real hardware this would be a
    //    DAX-mapped region of persistent memory.
    let region = Arc::new(PmemRegion::new(64 << 20));

    // 2. mkfs + mount. After this, no kernel involvement: the library is
    //    the file system.
    let fs = SimurghFs::format(region.clone(), SimurghConfig::default()).expect("format");
    let ctx = ProcCtx::root(1);

    // 3. Ordinary POSIX-style work.
    fs.mkdir(&ctx, "/projects", FileMode::dir(0o755)).unwrap();
    fs.mkdir(&ctx, "/projects/simurgh", FileMode::dir(0o755)).unwrap();
    fs.write_file(&ctx, "/projects/simurgh/notes.txt", b"decentralized NVMM fs\n").unwrap();

    // Appending to a log.
    let fd = fs
        .open(&ctx, "/projects/simurgh/build.log", OpenFlags::APPEND, FileMode::default())
        .unwrap();
    for step in ["configure", "build", "test"] {
        fs.write(&ctx, fd, format!("{step}: ok\n").as_bytes()).unwrap();
    }
    fs.close(&ctx, fd).unwrap();

    // Hard link, symlink, rename.
    fs.link(&ctx, "/projects/simurgh/notes.txt", "/projects/notes-link.txt").unwrap();
    fs.symlink(&ctx, "/projects/simurgh", "/current").unwrap();
    fs.rename(&ctx, "/projects/simurgh/build.log", "/projects/simurgh/build-1.log").unwrap();

    // Read back through the symlink.
    let notes = fs.read_to_vec(&ctx, "/current/notes.txt").unwrap();
    println!("notes.txt: {}", String::from_utf8_lossy(&notes).trim());

    println!("/projects/simurgh contains:");
    for e in fs.readdir(&ctx, "/projects/simurgh").unwrap() {
        let st = fs.stat(&ctx, &format!("/projects/simurgh/{}", e.name)).unwrap();
        println!("  {:<16} {:>6} bytes  nlink={}", e.name, st.size, st.nlink);
    }

    // 4. Clean unmount, then remount the same region: everything persisted.
    fs.unmount();
    let fs2 = SimurghFs::mount(region, SimurghConfig::default()).expect("remount");
    let report = fs2.recovery_report();
    println!(
        "remounted (clean={}): {} files, {} dirs, {} symlinks",
        report.was_clean, report.files, report.directories, report.symlinks
    );
    let log = fs2.read_to_vec(&ctx, "/projects/simurgh/build-1.log").unwrap();
    assert!(log.ends_with(b"test: ok\n"));
    println!("build log survived remount ({} bytes)", log.len());
}
