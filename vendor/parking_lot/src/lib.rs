//! Offline stand-in for the `parking_lot` crate.
//!
//! The container this workspace builds in has no registry access, so the
//! handful of `parking_lot` types the workspace uses are re-implemented here
//! as thin wrappers over `std::sync`. The semantic difference that matters to
//! callers — parking_lot locks do not surface poisoning — is preserved by
//! recovering the guard from a poisoned std lock instead of propagating the
//! error, which matches parking_lot's behaviour of simply letting the next
//! locker proceed after a panic.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Mutual exclusion primitive with the `parking_lot::Mutex` API.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard { inner: e.into_inner() }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Reader-writer lock with the `parking_lot::RwLock` API.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: self.inner.read().unwrap_or_else(|e| e.into_inner()) }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: self.inner.write().unwrap_or_else(|e| e.into_inner()) }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => {
                Some(RwLockReadGuard { inner: e.into_inner() })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => {
                Some(RwLockWriteGuard { inner: e.into_inner() })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.write_str("RwLock { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
