//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the two pieces the workspace uses — `crossbeam::thread::scope`
//! and `crossbeam::queue::SegQueue` — implemented over the standard library.
//! `thread::scope` delegates to `std::thread::scope` (stable since 1.63),
//! which gives the same structured-concurrency guarantee crossbeam's scoped
//! threads do: no spawned thread outlives the scope. One behavioural
//! difference: a panic in an unjoined child makes `std::thread::scope` panic
//! rather than return `Err`, so the `Result` returned here is `Err` only for
//! panics that escape the scope closure itself. Tests treat both as failure.

pub mod thread {
    use std::any::Any;

    /// A scope handle mirroring `crossbeam::thread::Scope`. Spawn closures
    /// receive a `&Scope` so they can spawn nested siblings.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread; `join` returns the closure's result.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }

        pub fn thread(&self) -> &std::thread::Thread {
            self.inner.thread()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope in which threads borrowing from the environment
    /// can be spawned; all of them are joined before `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub mod queue {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// Unbounded MPMC queue with the `crossbeam::queue::SegQueue` API,
    /// backed by a mutexed `VecDeque` instead of a lock-free segment list.
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        pub const fn new() -> Self {
            SegQueue { inner: Mutex::new(VecDeque::new()) }
        }

        pub fn push(&self, value: T) {
            self.inner.lock().unwrap_or_else(|e| e.into_inner()).push_back(value);
        }

        pub fn pop(&self) -> Option<T> {
            self.inner.lock().unwrap_or_else(|e| e.into_inner()).pop_front()
        }

        pub fn len(&self) -> usize {
            self.inner.lock().unwrap_or_else(|e| e.into_inner()).len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Default for SegQueue<T> {
        fn default() -> Self {
            SegQueue::new()
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_all_threads() {
        let mut data = vec![0u32; 8];
        super::thread::scope(|s| {
            for (i, slot) in data.iter_mut().enumerate() {
                s.spawn(move |_| *slot = i as u32 + 1);
            }
        })
        .unwrap();
        assert_eq!(data, (1..=8).collect::<Vec<_>>());
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let total = std::sync::atomic::AtomicU32::new(0);
        super::thread::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| {
                    total.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                });
                total.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            });
        })
        .unwrap();
        assert_eq!(total.load(std::sync::atomic::Ordering::SeqCst), 2);
    }

    #[test]
    fn segqueue_fifo() {
        let q = super::queue::SegQueue::new();
        q.push(1);
        q.push(2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }
}
