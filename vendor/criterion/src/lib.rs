//! Offline stand-in for the `criterion` crate.
//!
//! The bench harness surface the workspace's `benches/` directory uses is
//! implemented over plain `std::time::Instant` timing: each benchmark runs
//! `sample_size` samples (default 10) and prints the per-iteration mean.
//! There is no statistical analysis, outlier rejection, or HTML report —
//! the point is that `cargo bench` compiles and produces comparable relative
//! numbers in a container with no registry access.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost; only the variant names matter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifier for one parameterized benchmark instance.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; `iter*` methods time the routine.
pub struct Bencher {
    samples: usize,
    /// Mean per-iteration time of the last `iter*` call.
    last_mean: Option<Duration>,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.last_mean = Some(start.elapsed() / self.samples as u32);
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.last_mean = Some(total / self.samples as u32);
    }

    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            total += start.elapsed();
        }
        self.last_mean = Some(total / self.samples as u32);
    }
}

fn run_one(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { samples: samples.max(1), last_mean: None };
    f(&mut b);
    match b.last_mean {
        Some(mean) => println!("bench {label:<50} {mean:>12.2?}/iter ({samples} samples)"),
        None => println!("bench {label:<50} (no iter call)"),
    }
}

/// Group of related benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    // Mirrors criterion's signature: the group mutably borrows the driver
    // for its whole life even though this stand-in reads nothing back.
    _criterion: std::marker::PhantomData<&'a mut Criterion>,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}

    /// Ignored; accepted for source compatibility.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }
}

/// Accepted for source compatibility; not used in reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Top-level bench driver with the `criterion::Criterion` API.
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_samples: 10 }
    }
}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.default_samples = n.max(1);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = self.default_samples;
        BenchmarkGroup { name: name.into(), _criterion: std::marker::PhantomData, sample_size: samples }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), self.default_samples, &mut f);
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        let mut count = 0usize;
        g.bench_function("inc", |b| b.iter(|| count = black_box(count.wrapping_add(1))));
        g.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter_batched(|| vec![1u64; n as usize], |v| v.iter().sum::<u64>(), BatchSize::PerIteration)
        });
        g.finish();
    }
}
