//! Offline stand-in for the `rand` crate (0.10-era naming).
//!
//! Implements exactly the surface the workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and the `RngExt` extension trait with
//! `random`, `random_range`, `random_bool` and `fill`. The generator is
//! xoshiro256** seeded through SplitMix64 — deterministic for a given seed,
//! which is what the workload generators rely on (they hard-code seeds so
//! benchmark access patterns are reproducible). Not cryptographically secure.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniformly distributed 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Construction of an RNG from seed material.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from the generator's full output range.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges a uniform integer can be drawn from (`a..b` and `a..=b`).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty random_range {:?}", self);
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty random_range {start}..={end}");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Extension methods every `RngCore` gets; mirrors rand 0.10's `Rng`/`RngExt`.
pub trait RngExt: RngCore {
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }

    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — the workspace's deterministic standard generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors:
            // avoids the all-zero state for any seed.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: u64 = rng.random_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.random_range(1..=100);
            assert!((1..=100).contains(&w));
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        // Mean of 1000 uniform draws is close to 0.5.
        assert!((sum / 1000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn fill_covers_partial_words() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
