//! Offline stand-in for the `proptest` crate.
//!
//! Re-implements the subset of proptest this workspace uses: the `proptest!`
//! test macro (with `#![proptest_config(..)]`), `prop_assert!` /
//! `prop_assert_eq!`, `any::<T>()`, `Just`, integer-range strategies, tuple
//! strategies, `prop_map`, `prop_oneof!` and `collection::vec`.
//!
//! Differences from real proptest, deliberate for an offline container:
//! inputs are generated from a seed derived from the test name, so runs are
//! fully deterministic, and there is **no shrinking** — a failing case panics
//! with the un-shrunk input's `Debug` form. `.proptest-regressions` files are
//! ignored.

pub mod test_runner {
    /// Per-test configuration; only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each `#[test]` runs.
        pub cases: u32,
        /// Accepted for source compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256, max_shrink_iters: 0 }
        }
    }

    /// Failure raised by `prop_assert!`-style macros inside a case body.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        Fail(String),
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            }
        }
    }

    /// Deterministic generator driving all strategies (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from the test's name so each test gets an independent but
        /// reproducible stream.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h ^ 0x9E37_79B9_7F4A_7C15 }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking: `generate`
    /// directly produces a value from the RNG.
    pub trait Strategy {
        type Value: Debug;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, map: f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// Type-erased strategy, used by `prop_oneof!` to mix arm types.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V: Debug> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `s.prop_map(f)` combinator.
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.generate(rng))
        }
    }

    /// `prop_oneof!` backing type: uniform choice between boxed arms.
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V: Debug> Union<V> {
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V: Debug> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let pick = rng.below(self.arms.len() as u64) as usize;
            self.arms[pick].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy {:?}", self);
                    let span = (self.end as u128 - self.start as u128) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

    /// Types with a canonical whole-domain strategy, i.e. `any::<T>()`.
    pub trait Arbitrary: Debug + Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Strategy produced by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for vectors whose length is drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range {size:?}");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares deterministic property tests. Each `fn` inside becomes a
/// `#[test]` that draws `config.cases` inputs from its strategies and runs
/// the body; `prop_assert!` failures abort the case with the inputs printed.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let ($($arg,)*) = (
                    $($crate::strategy::Strategy::generate(&($strat), &mut __rng),)*
                );
                let __inputs = format!("{:?}", ($(&$arg,)*));
                let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match __outcome {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::core::result::Result::Err(e) => {
                        panic!(
                            "proptest case #{} of {} failed: {}\n    inputs: {}",
                            __case, stringify!($name), e, __inputs
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Asserts a condition inside a proptest body, failing the case (not the
/// whole process) so the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts two values compare equal inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), l, r
        );
    }};
}

/// Asserts two values compare unequal inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{}` != `{}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Cmd {
        Put(u8),
        Del,
    }

    fn cmd() -> impl Strategy<Value = Cmd> {
        prop_oneof![any::<u8>().prop_map(Cmd::Put), Just(Cmd::Del)]
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_in_bounds(x in 10u64..20, y in 0usize..3) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y < 3);
        }

        #[test]
        fn vec_lengths_respected(v in crate::collection::vec(any::<u8>(), 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7, "len {}", v.len());
        }

        #[test]
        fn oneof_and_tuples(pair in (cmd(), 1u8..4)) {
            let (c, n) = pair;
            prop_assert!((1..4).contains(&n));
            match c {
                Cmd::Put(_) | Cmd::Del => {}
            }
            prop_assert_eq!(n as u32 * 2, (n as u32) + (n as u32));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::for_test("t");
        let mut b = crate::test_runner::TestRng::for_test("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "proptest case #0")]
    fn failure_reports_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig { cases: 1, ..ProptestConfig::default() })]
            #[allow(dead_code)]
            fn always_fails(x in 0u8..1) {
                prop_assert!(x > 200, "x was {}", x);
            }
        }
        always_fails();
    }
}
