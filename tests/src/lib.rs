//! Shared helpers for the cross-crate integration tests.

use std::sync::Arc;

use simurgh_core::{SimurghConfig, SimurghFs};
use simurgh_fsapi::{FileSystem, FsResult, ProcCtx};
use simurgh_pmem::PmemRegion;

/// A fresh Simurgh mount on a raw (fast) region.
pub fn simurgh(bytes: usize) -> SimurghFs {
    SimurghFs::format(Arc::new(PmemRegion::new(bytes)), SimurghConfig::default())
        .expect("format")
}

/// A fresh Simurgh mount on a crash-tracked region.
pub fn simurgh_tracked(bytes: usize) -> SimurghFs {
    SimurghFs::format(Arc::new(PmemRegion::new_tracked(bytes)), SimurghConfig::default())
        .expect("format tracked")
}

/// Power-cut + remount: only flushed-and-fenced state survives.
pub fn crash_and_remount(fs: &SimurghFs) -> SimurghFs {
    let image = Arc::new(fs.region().simulate_crash());
    SimurghFs::mount(image, SimurghConfig::default()).expect("recovery mount")
}

/// Collects the full tree as sorted `(path, kind, size)` rows — used to
/// compare two file systems structurally.
pub fn snapshot_tree(fs: &dyn FileSystem) -> Vec<(String, simurgh_fsapi::FileType, u64)> {
    fn walk(
        fs: &dyn FileSystem,
        ctx: &ProcCtx,
        dir: &str,
        out: &mut Vec<(String, simurgh_fsapi::FileType, u64)>,
    ) -> FsResult<()> {
        for e in fs.readdir(ctx, dir)? {
            let path = if dir == "/" { format!("/{}", e.name) } else { format!("{dir}/{}", e.name) };
            let st = fs.stat(ctx, &path)?;
            out.push((path.clone(), e.ftype, if st.is_dir() { 0 } else { st.size }));
            if e.ftype == simurgh_fsapi::FileType::Directory {
                walk(fs, ctx, &path, out)?;
            }
        }
        Ok(())
    }
    let mut out = Vec::new();
    walk(fs, &ProcCtx::root(0), "/", &mut out).expect("snapshot walk");
    out.sort();
    out
}
