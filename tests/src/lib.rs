//! Shared helpers for the cross-crate integration tests.

use std::sync::Arc;

use simurgh_core::{SimurghConfig, SimurghFs};
use simurgh_fsapi::{FileSystem, ProcCtx};
use simurgh_pmem::PmemRegion;

/// A fresh Simurgh mount on a raw (fast) region.
pub fn simurgh(bytes: usize) -> SimurghFs {
    SimurghFs::format(Arc::new(PmemRegion::new(bytes)), SimurghConfig::default())
        .expect("format")
}

/// A fresh Simurgh mount on a crash-tracked region.
pub fn simurgh_tracked(bytes: usize) -> SimurghFs {
    SimurghFs::format(Arc::new(PmemRegion::new_tracked(bytes)), SimurghConfig::default())
        .expect("format tracked")
}

/// Power-cut + remount: only flushed-and-fenced state survives.
pub fn crash_and_remount(fs: &SimurghFs) -> SimurghFs {
    let image = Arc::new(fs.region().simulate_crash());
    SimurghFs::mount(image, SimurghConfig::default()).expect("recovery mount")
}

/// Collects the full tree as sorted `(path, kind, size)` rows — used to
/// compare two file systems structurally. Thin wrapper over the
/// [`FileSystem::snapshot_tree`] trait default so tests drive the same
/// surface as the harness and the crash-matrix driver.
pub fn snapshot_tree(fs: &dyn FileSystem) -> Vec<simurgh_fsapi::TreeEntry> {
    fs.snapshot_tree(&ProcCtx::root(0), "/").expect("snapshot walk")
}
