//! Gateway robustness: the in-process daemon under concurrent clients,
//! a client killed mid-pipeline, fd-forgery attempts, admission
//! pushback, and idle reaping. Tier-1 — these run in `cargo test -q`.

use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use simurgh_core::check::check;
use simurgh_core::SimurghFs;
use simurgh_fsapi::wire::{self, Hello, HelloOk, Request, Response, PROTOCOL_VERSION};
use simurgh_fsapi::{Credentials, Fd, FileMode, FsError, OpenFlags};
use simurgh_served::{Server, ServerConfig, ServerHandle};
use simurgh_tests::simurgh;

/// A unique abstract-enough socket path per test.
fn sock_path(tag: &str) -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("sg-gw-{}-{tag}-{n}.sock", std::process::id()))
}

fn start(tag: &str, cfg_tune: impl FnOnce(&mut ServerConfig)) -> (Arc<SimurghFs>, ServerHandle) {
    let fs = Arc::new(simurgh(96 << 20));
    let mut cfg = ServerConfig::new(sock_path(tag));
    cfg.shards = 2;
    cfg_tune(&mut cfg);
    let handle = Server::start(Arc::clone(&fs), cfg).expect("server starts");
    (fs, handle)
}

/// Minimal test client: framed I/O plus the handshake.
struct Client {
    stream: UnixStream,
    rd: Vec<u8>,
}

impl Client {
    fn connect(handle: &ServerHandle) -> (Client, u32) {
        let stream = UnixStream::connect(handle.socket()).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut c = Client { stream, rd: Vec::new() };
        let hello = Hello { version: PROTOCOL_VERSION, creds: Credentials::ROOT };
        c.stream.write_all(&wire::frame(&hello.encode())).unwrap();
        let ok = HelloOk::decode(&c.next_frame()).expect("hello-ok");
        assert_eq!(ok.version, PROTOCOL_VERSION);
        (c, ok.conn_id)
    }

    fn next_frame(&mut self) -> Vec<u8> {
        let mut tmp = [0u8; 8192];
        loop {
            if let Some((used, body)) = wire::split_frame(&self.rd).expect("well-framed") {
                let body = body.to_vec();
                self.rd.drain(..used);
                return body;
            }
            let n = self.stream.read(&mut tmp).expect("read");
            assert!(n > 0, "server closed the connection unexpectedly");
            self.rd.extend_from_slice(&tmp[..n]);
        }
    }

    /// Sends all requests in one write, returns all responses in order.
    fn round(&mut self, reqs: &[Request]) -> Vec<Response> {
        let mut out = Vec::new();
        for r in reqs {
            out.extend_from_slice(&wire::frame(&r.encode()));
        }
        self.stream.write_all(&out).unwrap();
        reqs.iter()
            .map(|_| Response::decode(&self.next_frame()).expect("decodes"))
            .collect()
    }

    fn expect_fd(&mut self, req: Request) -> Fd {
        match self.round(&[req]).remove(0) {
            Response::Fd(fd) => fd,
            other => panic!("expected fd, got {other:?}"),
        }
    }
}

fn rw() -> OpenFlags {
    OpenFlags { read: true, write: true, create: true, excl: false, truncate: false, append: false }
}

/// ISSUE acceptance: ≥8 concurrent connections, one client killed
/// mid-pipeline; the server must reap its fd table and the region must
/// fsck clean afterwards.
#[test]
fn killed_client_is_reaped_and_region_stays_clean() {
    let (fs, handle) = start("kill", |_| {});
    let n_conns = 10usize;

    std::thread::scope(|s| {
        for i in 0..n_conns {
            let handle = &handle;
            s.spawn(move || {
                let (mut c, id) = Client::connect(handle);
                let dir = format!("/k{id}");
                c.round(&[Request::Mkdir { path: dir.clone(), mode: FileMode::dir(0o755) }]);
                let fd = c.expect_fd(Request::Open {
                    path: format!("{dir}/data"),
                    flags: rw(),
                    mode: FileMode::default(),
                });
                if i == 0 {
                    // The victim: leave the fd open, push half a frame so
                    // the server is mid-pipeline, then die without Close.
                    let full = wire::frame(
                        &Request::Pwrite { fd, data: vec![7u8; 4096], off: 0 }.encode(),
                    );
                    c.stream.write_all(&full[..full.len() / 2]).unwrap();
                    drop(c);
                    return;
                }
                for round in 0..8u64 {
                    let reqs = vec![
                        Request::Pwrite { fd, data: vec![i as u8; 1024], off: round * 1024 },
                        Request::Pread { fd, len: 1024, off: round * 1024 },
                        Request::Fstat { fd },
                    ];
                    for (j, resp) in c.round(&reqs).into_iter().enumerate() {
                        assert!(
                            !matches!(resp, Response::Err(_) | Response::Busy { .. }),
                            "conn {i} round {round} reply {j}: {resp:?}"
                        );
                    }
                }
                c.round(&[Request::Close { fd }]);
            });
        }
    });

    // The victim's disconnect is detected by the shard loop's next tick;
    // poll until its descriptor is reaped.
    let stats = &fs.obs().gateway;
    let deadline = Instant::now() + Duration::from_secs(10);
    while fs.open_count() > 0 {
        assert!(Instant::now() < deadline, "victim fd never reaped");
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        stats.fds_reaped.load(Ordering::Relaxed) >= 1,
        "server closed the victim's abandoned descriptor"
    );
    handle.shutdown();
    let report = check(&fs, true);
    assert!(report.is_clean(), "region fsck-clean after client kill: {:?}", report.violations);
}

/// Regression for the identity redesign: descriptors are scoped by the
/// *server-assigned* connection id, so one connection cannot close (or
/// use) another's fd, even if it guesses the number.
#[test]
fn foreign_fd_is_rejected_across_connections() {
    let (fs, handle) = start("forge", |_| {});
    let (mut a, _) = Client::connect(&handle);
    let (mut b, _) = Client::connect(&handle);

    let fd = a.expect_fd(Request::Open {
        path: "/victim".into(),
        flags: rw(),
        mode: FileMode::default(),
    });
    // B forges A's fd: every descriptor op must bounce with BadFd.
    for req in [
        Request::Close { fd },
        Request::Pwrite { fd, data: b"evil".to_vec(), off: 0 },
        Request::Fstat { fd },
    ] {
        match b.round(&[req]).remove(0) {
            Response::Err(e) => assert_eq!(e.errno(), FsError::BadFd.errno(), "got {e:?}"),
            other => panic!("foreign fd accepted: {other:?}"),
        }
    }
    // A's descriptor still works after the forgery attempts.
    let r = a.round(&[Request::Pwrite { fd, data: b"mine".to_vec(), off: 0 }]);
    assert!(matches!(r[0], Response::Size(4)), "owner unaffected: {:?}", r[0]);
    a.round(&[Request::Close { fd }]);

    drop((a, b));
    handle.shutdown();
    assert_eq!(fs.open_count(), 0, "all descriptors reaped at shutdown");
}

/// Admission control: with a tiny in-flight budget, an oversized burst
/// gets typed `Busy` pushback in-order, and retrying drains the backlog.
#[test]
fn oversized_burst_gets_ordered_busy_pushback() {
    let (fs, handle) = start("busy", |cfg| cfg.max_in_flight = 4);
    let (mut c, _) = Client::connect(&handle);
    c.round(&[Request::Mkdir { path: "/b".into(), mode: FileMode::dir(0o755) }]);

    let burst: Vec<Request> = (0..32)
        .map(|i| Request::WriteFile { path: format!("/b/f{i}"), data: vec![1u8; 64] })
        .collect();
    let replies = c.round(&burst);
    assert_eq!(replies.len(), burst.len(), "every request answered, in order");
    let busy = replies.iter().filter(|r| matches!(r, Response::Busy { .. })).count();
    let served = replies.iter().filter(|r| matches!(r, Response::Unit)).count();
    assert!(busy > 0, "a 32-deep burst against a budget of 4 must push back");
    assert_eq!(busy + served, 32, "only Unit or Busy replies: {replies:?}");
    // The budget limits each burst, not progress: retry what bounced.
    let retries: Vec<Request> = replies
        .iter()
        .zip(&burst)
        .filter(|(r, _)| matches!(r, Response::Busy { .. }))
        .map(|(_, req)| req.clone())
        .collect();
    let mut pending = retries;
    let mut spins = 0;
    while !pending.is_empty() {
        spins += 1;
        assert!(spins < 100, "retries converge");
        let mut next = Vec::new();
        for chunk in pending.chunks(4) {
            for (r, req) in c.round(chunk).into_iter().zip(chunk) {
                if matches!(r, Response::Busy { .. }) {
                    next.push(req.clone());
                }
            }
        }
        pending = next;
    }
    let stats = &fs.obs().gateway;
    assert!(stats.admission_rejections.load(Ordering::Relaxed) >= busy as u64);
    // All 32 files exist exactly once.
    let r = c.round(&[Request::Readdir { path: "/b".into() }]);
    match &r[0] {
        Response::Entries(es) => assert_eq!(es.len(), 32, "all writes landed"),
        other => panic!("readdir failed: {other:?}"),
    }
    drop(c);
    handle.shutdown();
}

/// A connection that handshakes and then goes silent is closed by the
/// idle sweep (half-open reaper), and its fd table is reclaimed.
#[test]
fn idle_connection_is_timed_out_and_reaped() {
    let (fs, handle) = start("idle", |cfg| cfg.idle_timeout = Duration::from_millis(200));
    let (mut c, _) = Client::connect(&handle);
    let fd = c.expect_fd(Request::Open {
        path: "/sleepy".into(),
        flags: rw(),
        mode: FileMode::default(),
    });
    let _ = fd;
    let stats = &fs.obs().gateway;
    let deadline = Instant::now() + Duration::from_secs(10);
    while stats.idle_timeouts.load(Ordering::Relaxed) == 0 {
        assert!(Instant::now() < deadline, "idle sweep never fired");
        std::thread::sleep(Duration::from_millis(25));
    }
    let fd_deadline = Instant::now() + Duration::from_secs(5);
    while fs.open_count() > 0 {
        assert!(Instant::now() < fd_deadline, "idle victim's fd never reaped");
        std::thread::sleep(Duration::from_millis(10));
    }
    handle.shutdown();
}

/// Garbage on the wire is a protocol error: the server counts it and
/// drops the connection instead of wedging the shard.
#[test]
fn malformed_frame_closes_the_connection() {
    let (fs, handle) = start("garbage", |_| {});
    let (mut c, _) = Client::connect(&handle);
    // A frame with an unknown opcode.
    c.stream.write_all(&wire::frame(&[0xEE, 1, 2, 3])).unwrap();
    let mut tmp = [0u8; 64];
    match c.stream.read(&mut tmp) {
        Ok(0) | Err(_) => {} // EOF or reset — either way, hung up
        Ok(n) => panic!("server answered a malformed frame with {n} bytes"),
    }
    let stats = &fs.obs().gateway;
    assert!(stats.protocol_errors.load(Ordering::Relaxed) >= 1);
    handle.shutdown();
}
