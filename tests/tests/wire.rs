//! Wire-surface conformance: the serializable `Request` mirror of the
//! `FileSystem` trait drives an implementation to exactly the same place
//! as direct trait calls.
//!
//! Two `RefFs` instances run the same script — one through
//! `encode → decode → dispatch`, one through plain method calls — and
//! every step must agree on outcome class, payloads and metadata. The
//! script is checked to cover *all* `RequestKind`s, so adding a wire op
//! without extending the conformance script fails here (and adding a
//! trait method without a wire op fails the analyzer's wire-parity rule).

use std::collections::HashSet;

use simurgh_fsapi::reffs::RefFs;
use simurgh_fsapi::wire::{Request, RequestKind, Response};
use simurgh_fsapi::{
    Fd, FileMode, FileSystem, FsResult, OpenFlags, ProcCtx, SeekFrom, Stat,
};
use simurgh_served::dispatch::{dispatch, ConnFds};

const CTX: ProcCtx = ProcCtx::root(7);

/// The direct-call side's answer, normalized to the same shape space as
/// [`Response`].
#[derive(Debug)]
enum Direct {
    Unit(FsResult<()>),
    Fd(FsResult<Fd>),
    Size(FsResult<u64>),
    Data(FsResult<Vec<u8>>),
    Str(FsResult<String>),
    Stat(FsResult<Stat>),
    Statfs(FsResult<simurgh_fsapi::FsStats>),
    Entries(FsResult<Vec<simurgh_fsapi::DirEntry>>),
    Tree(FsResult<Vec<(String, simurgh_fsapi::FileType, u64)>>),
}

/// Runs `req` through the full wire path on `fs_w` and the equivalent
/// direct call on `fs_d`; panics on any observable divergence. Returns
/// the wire-side response (for fd extraction).
fn step(
    fs_w: &RefFs,
    fs_d: &RefFs,
    fds: &mut ConnFds,
    req: Request,
    covered: &mut HashSet<u8>,
) -> Response {
    covered.insert(req.kind() as u8);
    // The request itself must survive its wire form bit-for-bit.
    let decoded = Request::decode(&req.encode()).expect("request decodes");
    assert_eq!(decoded, req, "encode→decode is identity for {req:?}");

    let direct = direct_call(fs_d, &req);
    let resp = dispatch(fs_w, &CTX, decoded, fds);
    // Responses survive their wire form too.
    let resp2 = Response::decode(&resp.encode()).expect("response decodes");
    assert_eq!(resp2, resp, "response encode→decode is identity for {req:?}");

    check_agreement(&req, &resp, &direct);
    resp
}

/// The plain trait call equivalent of `req`, using the direct side's own
/// descriptor in place of the wire side's (`fd_map`-free: the script
/// substitutes fds before calling).
fn direct_call(fs: &RefFs, req: &Request) -> Direct {
    match req.clone() {
        Request::Name => Direct::Str(Ok(fs.name().to_owned())),
        Request::Open { path, flags, mode } => Direct::Fd(fs.open(&CTX, &path, flags, mode)),
        Request::Create { path, mode } => Direct::Fd(fs.create(&CTX, &path, mode)),
        Request::Close { fd } => Direct::Unit(fs.close(&CTX, fd)),
        Request::Read { fd, len } => {
            let mut buf = vec![0u8; len as usize];
            Direct::Data(fs.read(&CTX, fd, &mut buf).map(|n| {
                buf.truncate(n);
                buf
            }))
        }
        Request::Write { fd, data } => Direct::Size(fs.write(&CTX, fd, &data).map(|n| n as u64)),
        Request::Pread { fd, len, off } => {
            let mut buf = vec![0u8; len as usize];
            Direct::Data(fs.pread(&CTX, fd, &mut buf, off).map(|n| {
                buf.truncate(n);
                buf
            }))
        }
        Request::Pwrite { fd, data, off } => {
            Direct::Size(fs.pwrite(&CTX, fd, &data, off).map(|n| n as u64))
        }
        Request::Lseek { fd, pos } => Direct::Size(fs.lseek(&CTX, fd, pos)),
        Request::Fsync { fd } => Direct::Unit(fs.fsync(&CTX, fd)),
        Request::Fstat { fd } => Direct::Stat(fs.fstat(&CTX, fd)),
        Request::Ftruncate { fd, len } => Direct::Unit(fs.ftruncate(&CTX, fd, len)),
        Request::Fallocate { fd, off, len } => Direct::Unit(fs.fallocate(&CTX, fd, off, len)),
        Request::Unlink { path } => Direct::Unit(fs.unlink(&CTX, &path)),
        Request::Mkdir { path, mode } => Direct::Unit(fs.mkdir(&CTX, &path, mode)),
        Request::Rmdir { path } => Direct::Unit(fs.rmdir(&CTX, &path)),
        Request::Rename { old, new } => Direct::Unit(fs.rename(&CTX, &old, &new)),
        Request::Stat { path } => Direct::Stat(fs.stat(&CTX, &path)),
        Request::Readdir { path } => Direct::Entries(fs.readdir(&CTX, &path)),
        Request::Symlink { target, linkpath } => {
            Direct::Unit(fs.symlink(&CTX, &target, &linkpath))
        }
        Request::Readlink { path } => Direct::Str(fs.readlink(&CTX, &path)),
        Request::Link { existing, new } => Direct::Unit(fs.link(&CTX, &existing, &new)),
        Request::Chmod { path, perm } => Direct::Unit(fs.chmod(&CTX, &path, perm)),
        Request::SetTimes { path, atime, mtime } => {
            Direct::Unit(fs.set_times(&CTX, &path, atime, mtime))
        }
        Request::Statfs => Direct::Statfs(fs.statfs(&CTX)),
        Request::ReadFile { path } => Direct::Data(fs.read_file(&CTX, &path)),
        Request::ReadToVec { path } => Direct::Data(fs.read_to_vec(&CTX, &path)),
        Request::WriteFile { path, data } => Direct::Unit(fs.write_file(&CTX, &path, &data)),
        Request::SnapshotTree { root } => Direct::Tree(fs.snapshot_tree(&CTX, &root)),
    }
}

/// Both sides must agree on outcome class, errno, and payload (fds and
/// inos are instance-local, so those compare by presence, not value).
fn check_agreement(req: &Request, resp: &Response, direct: &Direct) {
    let ctx = format!("{req:?} → wire {resp:?} vs direct {direct:?}");
    match (resp, direct) {
        (Response::Err(we), d) => {
            let de = match d {
                Direct::Unit(Err(e))
                | Direct::Fd(Err(e))
                | Direct::Size(Err(e))
                | Direct::Data(Err(e))
                | Direct::Str(Err(e))
                | Direct::Stat(Err(e))
                | Direct::Statfs(Err(e))
                | Direct::Entries(Err(e))
                | Direct::Tree(Err(e)) => e,
                _ => panic!("wire errored, direct succeeded: {ctx}"),
            };
            assert_eq!(we.errno(), de.errno(), "same errno: {ctx}");
        }
        (Response::Unit, Direct::Unit(Ok(()))) => {}
        (Response::Fd(_), Direct::Fd(Ok(_))) => {}
        (Response::Size(w), Direct::Size(Ok(d))) => assert_eq!(w, d, "size agrees: {ctx}"),
        (Response::Data(w), Direct::Data(Ok(d))) => assert_eq!(w, d, "payload agrees: {ctx}"),
        (Response::Str(w), Direct::Str(Ok(d))) => assert_eq!(w, d, "string agrees: {ctx}"),
        (Response::Stat(w), Direct::Stat(Ok(d))) => {
            assert_eq!(w.size, d.size, "stat size agrees: {ctx}");
            assert_eq!(w.mode, d.mode, "stat mode agrees: {ctx}");
            assert_eq!(w.nlink, d.nlink, "stat nlink agrees: {ctx}");
        }
        (Response::Statfs(w), Direct::Statfs(Ok(d))) => {
            assert_eq!(w.total_bytes, d.total_bytes, "statfs agrees: {ctx}");
        }
        (Response::Entries(w), Direct::Entries(Ok(d))) => {
            let wn: Vec<_> = w.iter().map(|e| &e.name).collect();
            let dn: Vec<_> = d.iter().map(|e| &e.name).collect();
            assert_eq!(wn, dn, "entries agree: {ctx}");
        }
        (Response::Tree(w), Direct::Tree(Ok(d))) => {
            let wp: Vec<_> = w.iter().map(|(p, t, s)| (p, t, s)).collect();
            let dp: Vec<_> = d.iter().map(|(p, t, s)| (p, t, s)).collect();
            assert_eq!(wp, dp, "tree agrees: {ctx}");
        }
        _ => panic!("shape mismatch: {ctx}"),
    }
}

fn got_fd(resp: &Response) -> Fd {
    match resp {
        Response::Fd(fd) => *fd,
        other => panic!("expected fd, got {other:?}"),
    }
}

#[test]
fn every_request_kind_conforms_to_direct_trait_calls() {
    let fs_w = RefFs::new();
    let fs_d = RefFs::new();
    let mut fds = ConnFds::new();
    let mut covered: HashSet<u8> = HashSet::new();
    let rw = OpenFlags::RDWR;
    let mode = FileMode::default();
    let dmode = FileMode::dir(0o755);

    // Descriptor ops run twice — once per side — so fd values are carried
    // separately. The wire side's fd comes out of the Response.
    let s = |req: Request, fds: &mut ConnFds, covered: &mut HashSet<u8>| {
        step(&fs_w, &fs_d, fds, req, covered)
    };

    s(Request::Name, &mut fds, &mut covered);
    s(Request::Mkdir { path: "/d".into(), mode: dmode }, &mut fds, &mut covered);
    let r = s(Request::Create { path: "/d/a".into(), mode }, &mut fds, &mut covered);
    let fd_w = got_fd(&r);
    // `step` already created `/d/a` on the direct side (and dropped that
    // fd), so pick up a descriptor with the same access as `create`'s
    // (write-only) — Read/Pread below must err identically on both sides.
    let fd_d = fs_d.open(&CTX, "/d/a", OpenFlags::WRONLY, mode).unwrap();
    // From here the two sides use their own descriptors; the wire request
    // carries the wire side's, `direct_call` substitutes nothing because
    // the script re-issues the same op shape on the direct side's fd via
    // a second request value.
    let wire_direct = |req_w: Request, req_d: Request,
                       fds: &mut ConnFds,
                       covered: &mut HashSet<u8>| {
        covered.insert(req_w.kind() as u8);
        let decoded = Request::decode(&req_w.encode()).expect("request decodes");
        assert_eq!(decoded, req_w);
        let direct = direct_call(&fs_d, &req_d);
        let resp = dispatch(&fs_w, &CTX, decoded, fds);
        check_agreement(&req_w, &resp, &direct);
        resp
    };

    wire_direct(
        Request::Write { fd: fd_w, data: b"hello world".to_vec() },
        Request::Write { fd: fd_d, data: b"hello world".to_vec() },
        &mut fds,
        &mut covered,
    );
    wire_direct(
        Request::Lseek { fd: fd_w, pos: SeekFrom::Start(0) },
        Request::Lseek { fd: fd_d, pos: SeekFrom::Start(0) },
        &mut fds,
        &mut covered,
    );
    wire_direct(
        Request::Read { fd: fd_w, len: 5 },
        Request::Read { fd: fd_d, len: 5 },
        &mut fds,
        &mut covered,
    );
    wire_direct(
        Request::Pwrite { fd: fd_w, data: b"WIRE".to_vec(), off: 6 },
        Request::Pwrite { fd: fd_d, data: b"WIRE".to_vec(), off: 6 },
        &mut fds,
        &mut covered,
    );
    wire_direct(
        Request::Pread { fd: fd_w, len: 16, off: 0 },
        Request::Pread { fd: fd_d, len: 16, off: 0 },
        &mut fds,
        &mut covered,
    );
    wire_direct(
        Request::Fsync { fd: fd_w },
        Request::Fsync { fd: fd_d },
        &mut fds,
        &mut covered,
    );
    wire_direct(
        Request::Fstat { fd: fd_w },
        Request::Fstat { fd: fd_d },
        &mut fds,
        &mut covered,
    );
    wire_direct(
        Request::Ftruncate { fd: fd_w, len: 4 },
        Request::Ftruncate { fd: fd_d, len: 4 },
        &mut fds,
        &mut covered,
    );
    wire_direct(
        Request::Fallocate { fd: fd_w, off: 0, len: 128 },
        Request::Fallocate { fd: fd_d, off: 0, len: 128 },
        &mut fds,
        &mut covered,
    );
    wire_direct(
        Request::Close { fd: fd_w },
        Request::Close { fd: fd_d },
        &mut fds,
        &mut covered,
    );
    assert!(fds.is_empty(), "dispatch stopped tracking the closed fd");

    let r = s(Request::Open { path: "/d/a".into(), flags: rw, mode }, &mut fds, &mut covered);
    let fd_w = got_fd(&r);
    let fd_d2 = fs_d.open(&CTX, "/d/a", rw, mode).unwrap();
    // The reopened descriptor is readable — the success paths of the
    // positioned and positional reads.
    wire_direct(
        Request::Read { fd: fd_w, len: 4 },
        Request::Read { fd: fd_d2, len: 4 },
        &mut fds,
        &mut covered,
    );
    wire_direct(
        Request::Pread { fd: fd_w, len: 8, off: 0 },
        Request::Pread { fd: fd_d2, len: 8, off: 0 },
        &mut fds,
        &mut covered,
    );
    wire_direct(
        Request::Close { fd: fd_w },
        Request::Close { fd: fd_d2 },
        &mut fds,
        &mut covered,
    );

    s(Request::WriteFile { path: "/d/b".into(), data: b"blob".to_vec() }, &mut fds, &mut covered);
    s(Request::ReadFile { path: "/d/b".into() }, &mut fds, &mut covered);
    s(Request::ReadToVec { path: "/d/b".into() }, &mut fds, &mut covered);
    s(Request::Stat { path: "/d/b".into() }, &mut fds, &mut covered);
    s(Request::Chmod { path: "/d/b".into(), perm: 0o600 }, &mut fds, &mut covered);
    s(Request::SetTimes { path: "/d/b".into(), atime: 11, mtime: 22 }, &mut fds, &mut covered);
    s(Request::Link { existing: "/d/b".into(), new: "/d/c".into() }, &mut fds, &mut covered);
    s(
        Request::Symlink { target: "/d/b".into(), linkpath: "/d/l".into() },
        &mut fds,
        &mut covered,
    );
    s(Request::Readlink { path: "/d/l".into() }, &mut fds, &mut covered);
    s(Request::Rename { old: "/d/c".into(), new: "/d/r".into() }, &mut fds, &mut covered);
    s(Request::Readdir { path: "/d".into() }, &mut fds, &mut covered);
    s(Request::SnapshotTree { root: "/".into() }, &mut fds, &mut covered);
    s(Request::Statfs, &mut fds, &mut covered);
    s(Request::Unlink { path: "/d/r".into() }, &mut fds, &mut covered);
    s(Request::Mkdir { path: "/d/e".into(), mode: dmode }, &mut fds, &mut covered);
    s(Request::Rmdir { path: "/d/e".into() }, &mut fds, &mut covered);

    // Error-path agreement, same script shape on both sides.
    s(Request::Stat { path: "/missing".into() }, &mut fds, &mut covered);
    s(Request::Close { fd: Fd(9999) }, &mut fds, &mut covered);

    // The script must exercise the entire wire surface: a new RequestKind
    // without a conformance step fails here.
    assert_eq!(
        covered.len(),
        RequestKind::COUNT,
        "conformance script covers every RequestKind (missing: {:?})",
        RequestKind::ALL
            .iter()
            .filter(|k| !covered.contains(&(**k as u8)))
            .collect::<Vec<_>>()
    );
}
