//! Multi-process shared-region tests: file-backed regions, cold-cache
//! attach convergence, and the kill-9 recovery matrix.
//!
//! The kill-9 matrix spawns real OS processes by re-exec'ing this test
//! binary with `--exact procs_worker_entry` — the hidden worker test below
//! is inert in a normal run and becomes the worker body when the driver's
//! environment protocol is present.

use std::process::{Command, Stdio};
use std::sync::Arc;

use simurgh_core::testing::procs::{self, ProcsOpts};
use simurgh_core::{check, SimurghConfig, SimurghFs};
use simurgh_fsapi::{FileMode, FileSystem, ProcCtx};
use simurgh_pmem::{PmemError, RegionBuilder};
use simurgh_tests::snapshot_tree;

const CTX: ProcCtx = ProcCtx::root(1);
const REGION_BYTES: usize = 8 << 20;

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("simurgh-mp-{}-{name}.img", std::process::id()))
}

/// Hidden worker entry. A normal test run sees no worker environment and
/// passes trivially; the kill-9 driver re-execs this binary with the
/// protocol set, and then this "test" is the whole worker process.
#[test]
fn procs_worker_entry() {
    if procs::is_worker() {
        procs::worker_main();
    }
}

fn libtest_spawner(env: &[(String, String)]) -> std::io::Result<std::process::Child> {
    let exe = std::env::current_exe()?;
    let mut cmd = Command::new(exe);
    // --nocapture: the survivor's report line must reach our pipe even
    // though the worker exits via process::exit.
    cmd.args(["--exact", "procs_worker_entry", "--nocapture"]).stdout(Stdio::piped());
    for (k, v) in env {
        cmd.env(k, v);
    }
    cmd.spawn()
}

#[test]
fn same_file_remount_round_trip() {
    let path = tmp("roundtrip");
    let _ = std::fs::remove_file(&path);

    let region = Arc::new(
        RegionBuilder::new(REGION_BYTES).file(&path).build().expect("create region file"),
    );
    assert!(region.is_file_backed());
    let fs = SimurghFs::format(region, SimurghConfig::default()).expect("format");
    fs.mkdir(&CTX, "/d", FileMode::dir(0o755)).unwrap();
    fs.write_file(&CTX, "/d/a", b"alpha").unwrap();
    fs.write_file(&CTX, "/d/b", b"beta").unwrap();
    fs.symlink(&CTX, "/d/a", "/d/l").unwrap();
    let tree = snapshot_tree(&fs);
    fs.unmount();

    // A brand-new mapping of the same file sees everything.
    let region = Arc::new(RegionBuilder::open_file(&path).build().expect("reopen region file"));
    assert_eq!(region.file_path().unwrap(), path.as_path());
    let fs = SimurghFs::mount(region, SimurghConfig::default()).expect("remount");
    assert!(fs.recovery_report().was_clean, "clean unmount was durable in the file");
    assert_eq!(snapshot_tree(&fs), tree);
    assert_eq!(fs.read_to_vec(&CTX, "/d/a").unwrap(), b"alpha");
    assert_eq!(fs.readlink(&CTX, "/d/l").unwrap(), "/d/a");
    fs.unmount();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn shrinking_a_region_file_is_a_typed_error() {
    // Growing an existing smaller file is aged-image adoption and succeeds
    // (see the aging tests); *shrinking* would truncate media and stays a
    // hard typed error.
    let path = tmp("badlen");
    std::fs::write(&path, vec![0u8; 2 * REGION_BYTES]).unwrap();
    match RegionBuilder::new(REGION_BYTES).file(&path).build() {
        Err(PmemError::SizeMismatch { file_len, requested }) => {
            assert_eq!(file_len, 2 * REGION_BYTES);
            assert_eq!(requested, REGION_BYTES);
        }
        Err(e) => panic!("expected SizeMismatch, got {e}"),
        Ok(_) => panic!("mapping an existing larger file must fail, not shrink it"),
    }
    assert_eq!(
        std::fs::metadata(&path).unwrap().len(),
        2 * REGION_BYTES as u64,
        "file untouched by the rejected open"
    );
    let _ = std::fs::remove_file(&path);
}

/// A second mount of the same file starts with every volatile cache cold —
/// empty directory index, no cursors, allocator rebuilt from the shared
/// claim bitmap — and must converge on media alone, without trusting the
/// first mount's DRAM.
#[test]
fn cold_cache_attach_converges_without_peer_dram() {
    let path = tmp("coldcache");
    let _ = std::fs::remove_file(&path);
    {
        let region = Arc::new(
            RegionBuilder::new(REGION_BYTES).file(&path).build().expect("create region file"),
        );
        let fs = SimurghFs::format(region, SimurghConfig::default()).expect("format");
        fs.mkdir(&CTX, "/d", FileMode::dir(0o755)).unwrap();
        for i in 0..20 {
            fs.write_file(&CTX, &format!("/d/f{i}"), format!("v{i}").as_bytes()).unwrap();
        }
        fs.unmount();
    }

    let r1 = Arc::new(RegionBuilder::open_file(&path).build().unwrap());
    let fs1 = SimurghFs::mount_shared(r1, SimurghConfig::default()).expect("recoverer mount");
    assert!(fs1.is_shared());
    let r2 = Arc::new(RegionBuilder::open_file(&path).build().unwrap());
    let fs2 = SimurghFs::mount_shared(r2, SimurghConfig::default()).expect("attacher mount");
    assert!(fs2.is_shared());

    // The attacher's cold index resolves the whole tree by verify-on-use.
    assert_eq!(snapshot_tree(&fs2), snapshot_tree(&fs1));
    assert_eq!(fs2.read_to_vec(&CTX, "/d/f7").unwrap(), b"v7");

    // Writes through either mount are visible through the other: no mount
    // may answer "definitely absent" from a stale negative cache, and block
    // allocation is arbitrated by the shared bitmap, never by local lists.
    fs1.write_file(&CTX, "/d/from1", b"one").unwrap();
    assert_eq!(fs2.read_to_vec(&CTX, "/d/from1").unwrap(), b"one");
    fs2.write_file(&CTX, "/d/from2", b"two").unwrap();
    assert_eq!(fs1.read_to_vec(&CTX, "/d/from2").unwrap(), b"two");
    fs2.unlink(&CTX, "/d/f3").unwrap();
    assert!(fs1.stat(&CTX, "/d/f3").is_err(), "peer unlink visible");
    assert_eq!(snapshot_tree(&fs2), snapshot_tree(&fs1));

    fs2.unmount(); // not last out
    fs1.unmount(); // last out: owns the clean flag

    let region = Arc::new(RegionBuilder::open_file(&path).build().unwrap());
    let fs = SimurghFs::mount(region, SimurghConfig::default()).expect("final mount");
    assert!(fs.recovery_report().was_clean, "last process out unmounted cleanly");
    assert!(check::check(&fs, true).is_clean());
    assert_eq!(fs.read_to_vec(&CTX, "/d/from1").unwrap(), b"one");
    assert_eq!(fs.read_to_vec(&CTX, "/d/from2").unwrap(), b"two");
    fs.unmount();
    let _ = std::fs::remove_file(&path);
}

fn assert_kill9_matrix(nprocs: u32) {
    let opts = ProcsOpts { nprocs, cap: 2, ..ProcsOpts::default() };
    let report = procs::run_procs(&opts, &libtest_spawner);
    assert!(
        report.is_clean(),
        "kill-9 matrix x{nprocs} failed:\n{:#?}",
        report.cells.iter().flat_map(|c| &c.failures).collect::<Vec<_>>()
    );
    assert_eq!(report.cells.len(), procs::DEFAULT_OPS.len() * 2, "3 op shapes x 2 kill points");
    for c in &report.cells {
        assert!(c.victim_killed, "{}: victim must die by SIGKILL", c.op);
        assert_eq!(c.survivors.len() as u32, nprocs - 1, "{}: every survivor reported", c.op);
        let steals: u64 = c.survivors.iter().map(|s| s.lock_steals).sum();
        assert!(steals >= 1, "{}: a survivor must trace the lock steal", c.op);
        assert_eq!(c.reclaimed_second, 0, "{}: recovery must converge", c.op);
    }
    let json = procs::to_json(&report);
    assert!(json.contains("\"unrecoverable\":0"));
    assert!(json.contains("\"victim_killed\":true"));
}

#[test]
fn kill9_matrix_two_procs() {
    assert_kill9_matrix(2);
}

/// Kill -9 *during compaction*: the victim dies mid-relocation (cap 5 adds
/// quartile kill points, landing between the data copy and the map-swap),
/// survivors keep operating, and the exclusive recovery resolves the
/// relocated file to exactly its old or its new extent map — never a
/// mixture — with zero leaked blocks (second recovery reclaims nothing).
#[test]
fn kill9_during_compaction_converges() {
    let opts = ProcsOpts {
        ops: vec!["compact".into()],
        nprocs: 2,
        cap: 5,
        ..ProcsOpts::default()
    };
    let report = procs::run_procs(&opts, &libtest_spawner);
    assert!(
        report.is_clean(),
        "kill-9 during compaction failed:\n{:#?}",
        report.cells.iter().flat_map(|c| &c.failures).collect::<Vec<_>>()
    );
    assert!(report.cells.len() >= 4, "anchor + quartile kill points all ran");
    for c in &report.cells {
        assert!(c.victim_killed, "victim must die by SIGKILL at fence {}", c.kill_fence);
        assert_eq!(c.reclaimed_second, 0, "recovery must converge at fence {}", c.kill_fence);
        let steals: u64 = c.survivors.iter().map(|s| s.lock_steals).sum();
        assert!(steals >= 1, "a survivor must trace the lock steal");
    }
}

#[test]
fn kill9_matrix_four_procs() {
    assert_kill9_matrix(4);
}
