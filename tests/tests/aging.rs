//! Aging at GB scale: a grown (multi-GB) file-backed image is churned with
//! the zipfian aging workload, compacted online, and must stay *flat* under
//! the probe counters — walk-steps/op and probes/op within 1.1x of a fresh
//! image. Counters, not wall clock: the flatness claim must not flake.
//!
//! The second half drives the compactor's crash story end to end on
//! tracked NVMM: a power cut at every early fence boundary of a compaction
//! pass must recover to a clean image (old map or new map, never a
//! mixture) with zero leaked blocks — the second recovery reclaims
//! nothing.

use std::sync::Arc;

use simurgh_core::{check, SimurghConfig, SimurghFs};
use simurgh_fsapi::{FileMode, FileSystem, OpenFlags, ProcCtx};
use simurgh_pmem::{FaultPlan, RegionBuilder, TrackMode};
use simurgh_tests::{crash_and_remount, simurgh, simurgh_tracked, snapshot_tree};
use simurgh_workloads::aging::{self, AgingSpec};
use simurgh_workloads::zipf::Zipfian;

const CTX: ProcCtx = ProcCtx::root(1);
const SEED_BYTES: usize = 256 << 20;
/// The grown capacity: 2 GiB. The backing file is sparse — only churned
/// pages ever hit the disk.
const GROWN_BYTES: usize = 2 << 30;
const BLOCK: u64 = 4096;

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("simurgh-aging-{}-{name}.img", std::process::id()))
}

/// A fixed counter battery — create/stat a directory of files, then
/// strided 4 KiB reads and overwrites of a fresh file — returning
/// `(probes/lookup, walk-steps/op)`. Identical ops on a fresh and an aged
/// mount make the two runs directly comparable.
fn battery(fs: &SimurghFs, tag: &str) -> (f64, f64) {
    let dir = format!("/bat-{tag}");
    fs.mkdir(&CTX, &dir, FileMode::dir(0o755)).unwrap();
    let base = fs.dir_stats();
    for i in 0..800 {
        let fd = fs
            .open(&CTX, &format!("{dir}/f{i}"), OpenFlags::CREATE, FileMode::default())
            .unwrap();
        fs.close(&CTX, fd).unwrap();
    }
    for i in 0..800 {
        fs.stat(&CTX, &format!("{dir}/f{i}")).unwrap();
    }
    let probes = fs.dir_stats().since(&base).probes_per_lookup();

    let rw = OpenFlags { read: true, ..OpenFlags::CREATE };
    let fd = fs.open(&CTX, &format!("{dir}/data"), rw, FileMode::default()).unwrap();
    let chunk = [0x5Au8; BLOCK as usize];
    for i in 0..256u64 {
        fs.pwrite(&CTX, fd, &chunk, i * BLOCK).unwrap();
    }
    // Measure only the strided steady state, after the file exists.
    let mut buf = [0u8; BLOCK as usize];
    let base = fs.data_stats();
    for i in 0..512u64 {
        let off = ((i * 7919) % 256) * BLOCK;
        fs.pread(&CTX, fd, &mut buf, off).unwrap();
        fs.pwrite(&CTX, fd, &chunk, off).unwrap();
    }
    let walk = fs.data_stats().since(&base).walk_steps_per_op();
    fs.close(&CTX, fd).unwrap();
    (probes, walk)
}

#[test]
fn grown_gb_image_ages_flat_under_compaction() {
    let path = tmp("gb");
    let _ = std::fs::remove_file(&path);

    // Seed a small image with real contents...
    {
        let region =
            Arc::new(RegionBuilder::new(SEED_BYTES).file(&path).build().expect("seed region"));
        let fs = SimurghFs::format(region, SimurghConfig::default()).expect("format");
        fs.mkdir(&CTX, "/seeded", FileMode::dir(0o755)).unwrap();
        fs.write_file(&CTX, "/seeded/keep", b"pre-growth bytes").unwrap();
        fs.unmount();
    }
    // ...then adopt it at GB scale: same file, larger request. The mount
    // re-records the geometry and the allocator sees the new capacity.
    let region =
        Arc::new(RegionBuilder::new(GROWN_BYTES).file(&path).build().expect("grow region"));
    assert_eq!(region.len(), GROWN_BYTES);
    let fs = SimurghFs::mount(region, SimurghConfig::default()).expect("mount grown");
    assert_eq!(fs.read_to_vec(&CTX, "/seeded/keep").unwrap(), b"pre-growth bytes");
    let capacity = fs.block_alloc().free_blocks() * BLOCK;
    assert!(
        capacity > SEED_BYTES as u64,
        "grown capacity adopted by the allocator: only {capacity} free bytes"
    );

    // Age it: zipfian churn with the water-mark hook in the loop, exactly
    // how a live mount would run.
    let spec = AgingSpec::churn(0.5);
    aging::run_churn(&fs, &CTX, &spec, |_, _| {
        fs.maybe_compact();
    })
    .expect("churn");

    // The fragmentation battery must show compaction doing real work (or
    // the water-mark passes already merged everything).
    let (files, extents_aged) = fs.extent_census();
    assert!(files > 0);
    let (moved, blocks_moved) = fs.compact(usize::MAX);
    let (_, extents_after) = fs.extent_census();
    assert!(
        moved > 0 || extents_aged == files,
        "aged image had relocatable fragmentation ({extents_aged} extents / {files} files)"
    );
    if moved > 0 {
        assert!(blocks_moved > 0);
        assert!(extents_after < extents_aged, "compaction merged extents");
    }
    assert!(aging::verify_sample(&fs, &CTX, &spec, 3).unwrap() > 0, "churned data survives");

    // Flatness, the acceptance criterion proper: the aged multi-GB image
    // serves the identical op battery within 1.1x of a fresh image on both
    // counters.
    let fresh = simurgh(SEED_BYTES);
    let (probes_fresh, walk_fresh) = battery(&fresh, "fresh");
    let (probes_aged, walk_aged) = battery(&fs, "aged");
    assert!(probes_fresh > 0.0 && walk_fresh > 0.0, "probe counters not wired");
    assert!(
        probes_aged <= probes_fresh * 1.1,
        "probes/op drifted on the aged image: fresh {probes_fresh:.3} -> aged {probes_aged:.3}"
    );
    assert!(
        walk_aged <= walk_fresh * 1.1,
        "walk-steps/op drifted on the aged image: fresh {walk_fresh:.3} -> aged {walk_aged:.3}"
    );

    // And the aged, compacted image still passes full fsck — including the
    // allocator-drift invariant.
    assert!(check::check(&fs, true).is_clean(), "aged image fsck-clean");
    fs.unmount();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn mid_compaction_powercut_never_leaks_or_tears() {
    // Age a small tracked image once, snapshot its durable media, then
    // replay a compaction pass against it with a power cut at each of the
    // first fence boundaries. Every cut must recover to the same tree with
    // clean fsck and converged recovery (the second pass reclaims nothing);
    // at least one cut must land inside the armed-journal window and be
    // rolled back.
    let fs = simurgh_tracked(48 << 20);
    let spec = AgingSpec {
        files: 64,
        dirs: 4,
        ops: 1200,
        batch: 0,
        append_max: 8 * 1024,
        theta: Zipfian::DEFAULT_THETA,
        seed: 11,
    };
    aging::run_churn(&fs, &CTX, &spec, |_, _| {}).expect("churn");
    let image = fs.region().media_image();

    let mut rollbacks = 0u64;
    let mut any_moved = false;
    for cut in 0..=16u64 {
        let region = Arc::new(
            RegionBuilder::new(image.len())
                .mode(TrackMode::Tracked)
                .from_image(image.clone())
                .build()
                .expect("image region"),
        );
        let afs = SimurghFs::mount(region, SimurghConfig::default()).expect("mount aged image");
        let tree = snapshot_tree(&afs);
        afs.region().arm_faults(FaultPlan::cut_after(cut));
        let (moved, _) = afs.compact(usize::MAX);
        any_moved |= moved > 0;

        // Power failure: only the pre-cut durable prefix survives.
        let rfs = crash_and_remount(&afs);
        rollbacks += rfs.recovery_report().reloc_rollbacks;
        assert_eq!(snapshot_tree(&rfs), tree, "tree unchanged across cut {cut}");
        assert!(check::check(&rfs, true).is_clean(), "fsck clean after cut {cut}");
        assert!(
            aging::verify_sample(&rfs, &CTX, &spec, 5).unwrap() > 0,
            "churned bytes intact after cut {cut}"
        );
        // Convergence: recovery left nothing for a second pass — the
        // zero-leak criterion.
        let rfs2 = crash_and_remount(&rfs);
        assert_eq!(
            rfs2.recovery_report().reclaimed_objects,
            0,
            "second recovery reclaimed objects after cut {cut} — leak"
        );
        assert!(check::check(&rfs2, true).is_clean());
    }
    assert!(any_moved, "the compaction pass relocated at least one file");
    assert!(
        rollbacks >= 1,
        "no cut landed in the armed-journal window — widen the sweep"
    );
}
