//! End-to-end security tests: the full §3.2 bootstrap with protected
//! functions enforced against a kernel-paged NVMM region.

use std::sync::Arc;

use simurgh_core::{SimurghConfig, SimurghFs};
use simurgh_fsapi::{Credentials, FileMode, FileSystem, FsError, OpenFlags, ProcCtx};
use simurgh_pmem::prot::PageTable;
use simurgh_pmem::{PPtr, PmemRegion, RegionBuilder, PAGE_SIZE};
use simurgh_protfn::{cpl, EntryPoint, Fault, KernelPagePolicy, ProtectedDomain, Ring};

fn enforced_fs(bytes: usize) -> (SimurghFs, Arc<ProtectedDomain>, Arc<PmemRegion>) {
    let table = Arc::new(PageTable::new(bytes / PAGE_SIZE));
    let policy = Arc::new(KernelPagePolicy::new(table));
    policy.protect_all();
    let region = Arc::new(RegionBuilder::new(bytes).policy(policy).build().unwrap());
    let domain = Arc::new(ProtectedDomain::new(8));
    let fs = SimurghFs::format(region.clone(), SimurghConfig::default())
        .unwrap()
        .with_enforcement(domain.clone());
    (fs, domain, region)
}

#[test]
fn full_stack_works_under_enforcement() {
    let (fs, domain, _) = enforced_fs(32 << 20);
    let ctx = ProcCtx::root(1);
    let before = domain.jmpp_count();
    fs.mkdir(&ctx, "/a", FileMode::dir(0o755)).unwrap();
    fs.write_file(&ctx, "/a/f", b"payload").unwrap();
    assert_eq!(fs.read_to_vec(&ctx, "/a/f").unwrap(), b"payload");
    fs.rename(&ctx, "/a/f", "/a/g").unwrap();
    fs.unlink(&ctx, "/a/g").unwrap();
    fs.rmdir(&ctx, "/a").unwrap();
    assert!(domain.jmpp_count() > before, "operations crossed through jmpp");
    assert_eq!(cpl::current(), Ring::User, "no privilege leak after the ops");
}

#[test]
fn user_mode_cannot_touch_nvmm() {
    let (_fs, _domain, region) = enforced_fs(16 << 20);
    // Reads and writes of any file-system page fault from user mode.
    for page in [0u64, 1, 100] {
        let p = PPtr::new(page * PAGE_SIZE as u64);
        assert!(region.check_access(p, 8, false).is_err(), "read page {page}");
        assert!(region.check_access(p, 8, true).is_err(), "write page {page}");
    }
    // From kernel mode (inside a protected function) the same access works.
    let _k = cpl::KernelGuard::enter();
    assert!(region.check_access(PPtr::new(0), 8, false).is_ok());
}

#[test]
fn jmpp_requires_registered_entry() {
    let (_fs, domain, _) = enforced_fs(16 << 20);
    let ep = domain.resolve("simurgh_data").unwrap();
    // Arbitrary offsets fault.
    assert!(matches!(
        domain.jmpp(EntryPoint { page: ep.page, offset: ep.offset + 4 }),
        Err(Fault::BadEntryOffset { .. })
    ));
    // Unprotected pages fault.
    assert!(matches!(
        domain.jmpp(EntryPoint { page: 7, offset: 0 }),
        Err(Fault::EpNotSet { .. })
    ));
}

#[test]
fn permissions_enforced_through_protected_path() {
    let (fs, _domain, _) = enforced_fs(32 << 20);
    let root = ProcCtx::root(1);
    fs.mkdir(&root, "/vault", FileMode::dir(0o700)).unwrap();
    fs.write_file(&root, "/vault/secret", b"classified").unwrap();
    fs.write_file(&root, "/world", b"readable").unwrap();
    fs.chmod(&root, "/world", 0o644).unwrap();

    let mallory = ProcCtx::new(66, Credentials::user(1000, 1000));
    // Path walk denies X on the 0700 directory.
    assert_eq!(fs.read_to_vec(&mallory, "/vault/secret").unwrap_err(), FsError::Access);
    // Write denied by mode bits even though the protected function ran.
    assert_eq!(
        fs.open(&mallory, "/world", OpenFlags::WRONLY, FileMode::default()).unwrap_err(),
        FsError::Access
    );
    // Reading the world-readable file is fine.
    assert_eq!(fs.read_to_vec(&mallory, "/world").unwrap(), b"readable");
    // Mallory cannot chmod or unlink root's file.
    assert_eq!(fs.chmod(&mallory, "/world", 0o777).unwrap_err(), FsError::Access);
    assert_eq!(fs.unlink(&mallory, "/world").unwrap_err(), FsError::Access);
}

#[test]
fn nested_protected_calls_keep_privilege_balanced() {
    let (fs, domain, _) = enforced_fs(32 << 20);
    let ctx = ProcCtx::root(1);
    // write_file internally performs several protected calls (open, pwrite,
    // fsync, close); afterwards the thread must be back in user mode.
    fs.write_file(&ctx, "/f", b"x").unwrap();
    assert_eq!(cpl::current(), Ring::User);
    // A manual nested enter also balances.
    let ep = domain.resolve("simurgh_ctl").unwrap();
    domain
        .enter(ep, || {
            assert_eq!(cpl::current(), Ring::Kernel);
            fs.stat(&ctx, "/f").unwrap();
            assert_eq!(cpl::current(), Ring::Kernel, "still nested");
        })
        .unwrap();
    assert_eq!(cpl::current(), Ring::User);
}

#[test]
fn enforcement_survives_concurrency() {
    let (fs, _domain, _) = enforced_fs(64 << 20);
    let fs = Arc::new(fs);
    fs.mkdir(&ProcCtx::root(0), "/shared", FileMode::dir(0o777)).unwrap();
    crossbeam::thread::scope(|s| {
        for t in 0..4u32 {
            let fs = &fs;
            s.spawn(move |_| {
                let ctx = ProcCtx::root(t + 1);
                for i in 0..40 {
                    fs.write_file(&ctx, &format!("/shared/t{t}-{i}"), b"d").unwrap();
                }
                assert_eq!(cpl::current(), Ring::User, "thread-local CPL balanced");
            });
        }
    })
    .unwrap();
    assert_eq!(fs.readdir(&ProcCtx::root(0), "/shared").unwrap().len(), 160);
}

#[test]
fn cost_charging_orders_modes_by_latency() {
    // A gem5-syscall-charged stat (1176 extra cycles/op) must be slower
    // than a zero-charged one. Interleave the two measurements in rounds so
    // scheduler drift on this shared single-core box cancels out.
    use simurgh_protfn::SecurityMode;
    use std::time::{Duration, Instant};
    let build = |mode| {
        let cfg = SimurghConfig {
            security: mode,
            charge_security_cost: true,
            ..SimurghConfig::default()
        };
        let fs = SimurghFs::format(Arc::new(PmemRegion::new(32 << 20)), cfg).unwrap();
        fs.write_file(&ProcCtx::root(1), "/probe", b"x").unwrap();
        fs
    };
    let zero = build(SecurityMode::Zero);
    let gem5 = build(SecurityMode::SyscallGem5);
    let ctx = ProcCtx::root(1);
    let mut t_zero = Duration::ZERO;
    let mut t_gem5 = Duration::ZERO;
    for _ in 0..6 {
        let s = Instant::now();
        for _ in 0..2000 {
            zero.stat(&ctx, "/probe").unwrap();
        }
        t_zero += s.elapsed();
        let s = Instant::now();
        for _ in 0..2000 {
            gem5.stat(&ctx, "/probe").unwrap();
        }
        t_gem5 += s.elapsed();
    }
    assert!(
        t_gem5 > t_zero,
        "syscall-charged stat not slower: gem5={t_gem5:?} zero={t_zero:?}"
    );
}
