//! Property-based tests: random operation sequences against the reference
//! file system, random crash points, and allocator invariants.

use proptest::prelude::*;
use simurgh_core::super_block::PoolKind;
use simurgh_fsapi::reffs::RefFs;
use simurgh_fsapi::{FileMode, FileSystem, ProcCtx};
use simurgh_tests::{crash_and_remount, simurgh, simurgh_tracked, snapshot_tree};

const CTX: ProcCtx = ProcCtx::root(1);

/// A randomly generated namespace operation over a small name universe.
#[derive(Debug, Clone)]
enum Op {
    Create(u8, Vec<u8>),
    Unlink(u8),
    Mkdir(u8),
    Rmdir(u8),
    Rename(u8, u8),
    Write(u8, u64, Vec<u8>),
    Truncate(u8, u64),
    Link(u8, u8),
}

fn name(i: u8) -> String {
    format!("/n{}", i % 12)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..64)).prop_map(|(n, d)| Op::Create(n, d)),
        any::<u8>().prop_map(Op::Unlink),
        any::<u8>().prop_map(Op::Mkdir),
        any::<u8>().prop_map(Op::Rmdir),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::Rename(a, b)),
        (any::<u8>(), 0u64..5000, proptest::collection::vec(any::<u8>(), 1..64))
            .prop_map(|(n, o, d)| Op::Write(n, o, d)),
        (any::<u8>(), 0u64..5000).prop_map(|(n, l)| Op::Truncate(n, l)),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::Link(a, b)),
    ]
}

/// Applies an op; both systems must return the same ok/error outcome class.
fn apply(fs: &dyn FileSystem, op: &Op) -> String {
    match op {
        Op::Create(n, data) => format!("{:?}", fs.write_file(&CTX, &name(*n), data)),
        Op::Unlink(n) => format!("{:?}", fs.unlink(&CTX, &name(*n))),
        Op::Mkdir(n) => format!("{:?}", fs.mkdir(&CTX, &name(*n), FileMode::dir(0o755))),
        Op::Rmdir(n) => format!("{:?}", fs.rmdir(&CTX, &name(*n))),
        Op::Rename(a, b) => format!("{:?}", fs.rename(&CTX, &name(*a), &name(*b))),
        Op::Write(n, off, data) => {
            let r = fs
                .open(&CTX, &name(*n), simurgh_fsapi::OpenFlags::WRONLY, FileMode::default())
                .and_then(|fd| {
                    let out = fs.pwrite(&CTX, fd, data, *off);
                    fs.close(&CTX, fd)?;
                    out
                });
            format!("{r:?}")
        }
        Op::Truncate(n, len) => {
            let r = fs
                .open(&CTX, &name(*n), simurgh_fsapi::OpenFlags::WRONLY, FileMode::default())
                .and_then(|fd| {
                    let out = fs.ftruncate(&CTX, fd, *len);
                    fs.close(&CTX, fd)?;
                    out
                });
            format!("{r:?}")
        }
        Op::Link(a, b) => format!("{:?}", fs.link(&CTX, &name(*a), &name(*b))),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Simurgh behaves exactly like the reference over random sequences.
    #[test]
    fn random_ops_match_reference(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let fs = simurgh(32 << 20);
        let reference = RefFs::new();
        for (i, op) in ops.iter().enumerate() {
            let a = apply(&fs, op);
            let b = apply(&reference, op);
            prop_assert_eq!(&a, &b, "op #{} {:?} diverged", i, op);
        }
        prop_assert_eq!(snapshot_tree(&fs), snapshot_tree(&reference));
        // Full content check.
        for (path, ftype, _) in snapshot_tree(&reference) {
            if ftype == simurgh_fsapi::FileType::Regular {
                prop_assert_eq!(
                    fs.read_to_vec(&CTX, &path).unwrap(),
                    reference.read_to_vec(&CTX, &path).unwrap(),
                    "content at {}", path
                );
            }
        }
    }

    /// After a crash at a random op boundary, recovery yields exactly the
    /// prefix state (all completed ops durable, tree consistent).
    #[test]
    fn crash_at_random_boundary_preserves_prefix(
        ops in proptest::collection::vec(op_strategy(), 1..30),
        cut in 0usize..30,
    ) {
        let fs = simurgh_tracked(32 << 20);
        let reference = RefFs::new();
        let cut = cut.min(ops.len());
        for op in &ops[..cut] {
            apply(&fs, op);
            apply(&reference, op);
        }
        let fs2 = crash_and_remount(&fs);
        prop_assert_eq!(snapshot_tree(&fs2), snapshot_tree(&reference));
    }

    /// The metadata allocator never double-allocates and free/alloc
    /// round-trips preserve the free count.
    #[test]
    fn meta_allocator_invariants(script in proptest::collection::vec(any::<bool>(), 1..200)) {
        let fs = simurgh(32 << 20);
        let env = fs.testing_dir_env();
        let mut held: Vec<simurgh_pmem::PPtr> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for alloc in script {
            if alloc || held.is_empty() {
                let p = env.meta.alloc(PoolKind::FileEntry).unwrap();
                prop_assert!(seen.insert(p.off()), "double allocation of {:?}", p);
                held.push(p);
            } else {
                let p = held.pop().unwrap();
                env.meta.free(PoolKind::FileEntry, p);
                seen.remove(&p.off());
            }
        }
    }

    /// A tracked region's media image, materialized into a region *file*
    /// and reopened through the file backing, mounts to the identical tree:
    /// the shared-file path preserves exactly the durable bytes.
    #[test]
    fn media_image_survives_file_round_trip(
        ops in proptest::collection::vec(op_strategy(), 1..25),
    ) {
        use simurgh_core::{SimurghConfig, SimurghFs};
        use simurgh_pmem::RegionBuilder;
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;

        static CASE: AtomicU64 = AtomicU64::new(0);
        let fs = simurgh_tracked(8 << 20);
        for op in &ops {
            apply(&fs, op);
        }
        let tree = snapshot_tree(&fs);
        let region = Arc::clone(fs.region());
        fs.unmount(); // clean unmount: every tree byte is durable
        let image = region.media_image();

        let path = std::env::temp_dir().join(format!(
            "simurgh-prop-{}-{}.img",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_file(&path);
        // Materialize the image at the file and mount through the mapping.
        let r2 = Arc::new(
            RegionBuilder::new(image.len()).from_image(image).file(&path).build().unwrap(),
        );
        let fs2 = SimurghFs::mount(r2, SimurghConfig::default()).unwrap();
        prop_assert!(fs2.recovery_report().was_clean);
        prop_assert_eq!(snapshot_tree(&fs2), tree.clone());
        fs2.unmount();
        // The bytes persisted in the file: a cold reopen sees the same tree.
        let r3 = Arc::new(RegionBuilder::open_file(&path).build().unwrap());
        let fs3 = SimurghFs::mount(r3, SimurghConfig::default()).unwrap();
        prop_assert_eq!(snapshot_tree(&fs3), tree);
        fs3.unmount();
        let _ = std::fs::remove_file(&path);
    }

    /// Persistent-pointer arithmetic never aliases distinct pool objects.
    #[test]
    fn pool_objects_are_disjoint(count in 1usize..300) {
        let fs = simurgh(32 << 20);
        let env = fs.testing_dir_env();
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        for kind in [PoolKind::Inode, PoolKind::FileEntry, PoolKind::DirBlock] {
            for _ in 0..count.min(40) {
                let p = env.meta.alloc(kind).unwrap();
                ranges.push((p.off(), p.off() + kind.obj_size()));
            }
        }
        ranges.sort();
        for w in ranges.windows(2) {
            prop_assert!(w[0].1 <= w[1].0, "overlapping objects {:?}", w);
        }
    }
}
