//! Metadata-path scaling: the probe counters must show O(1) work per
//! operation no matter how large a single directory grows. NOVA's per-inode
//! log append is O(1); Fig. 7 only has Simurgh strictly ahead because the
//! shared-DRAM index short-circuits every chain walk — so the complexity
//! claim is asserted here directly, not inferred from wall-clock numbers
//! (which this battery deliberately avoids: counters don't flake).

use simurgh_core::dir::DirStatsSnapshot;
use simurgh_core::SimurghFs;
use simurgh_fsapi::{FileMode, FileSystem, OpenFlags, ProcCtx};
use simurgh_tests::simurgh;

const CTX: ProcCtx = ProcCtx::root(1);

/// Create/stat/unlink `n` files in one shared directory; returns the
/// per-phase counter deltas (create, stat, unlink).
fn run_phases(fs: &SimurghFs, dir: &str, n: usize) -> [DirStatsSnapshot; 3] {
    fs.mkdir(&CTX, dir, FileMode::dir(0o777)).unwrap();
    let mut base = fs.dir_stats();
    let mut out = Vec::new();
    let mut phase = |fs: &SimurghFs| {
        let now = fs.dir_stats();
        let delta = now.since(&base);
        base = now;
        delta
    };
    for i in 0..n {
        let fd = fs.open(&CTX, &format!("{dir}/f{i}"), OpenFlags::CREATE, FileMode::default()).unwrap();
        fs.close(&CTX, fd).unwrap();
    }
    out.push(phase(fs));
    for i in 0..n {
        fs.stat(&CTX, &format!("{dir}/f{i}")).unwrap();
    }
    out.push(phase(fs));
    for i in 0..n {
        fs.unlink(&CTX, &format!("{dir}/f{i}")).unwrap();
    }
    out.push(phase(fs));
    out.try_into().unwrap()
}

#[test]
fn ten_k_entries_one_directory_stays_o1() {
    let fs = simurgh(256 << 20);
    let [create, stat, unlink] = run_phases(&fs, "/big", 10_000);

    // Every phase: mean probes per lookup is a small constant, nowhere near
    // the ~40-block chain a 10k-entry directory builds.
    for (name, d) in [("create", &create), ("stat", &stat), ("unlink", &unlink)] {
        let p = d.probes_per_lookup();
        assert!(p <= 1.5, "{name}: {p:.3} probes/lookup — metadata path is not O(1)");
    }
    // The steady state never falls back to a chain walk at all.
    assert_eq!(stat.chain_walks, 0, "stat phase walked a chain");
    assert_eq!(unlink.chain_walks, 0, "unlink phase walked a chain");
    // Inserts find their slot without scanning the chain: one probe per
    // create (hint or cached tail), not one per chain block.
    assert!(
        create.hint_hits + create.slot_probes <= create.extends + 10_000,
        "insert path scanned: {} hint hits + {} slot probes for 10k creates",
        create.hint_hits,
        create.slot_probes,
    );
}

#[test]
fn probes_per_op_independent_of_directory_size() {
    // The O(1) claim proper: per-op probe counts at 10x the directory size
    // must not grow with it. Chains at 1k entries are ~5 blocks, at 10k
    // ~40 — a linear component would show up as a ~8x ratio.
    let fs_small = simurgh(128 << 20);
    let fs_big = simurgh(256 << 20);
    let small = run_phases(&fs_small, "/d", 1_000);
    let big = run_phases(&fs_big, "/d", 10_000);
    for (name, s, b) in [
        ("create", &small[0], &big[0]),
        ("stat", &small[1], &big[1]),
        ("unlink", &small[2], &big[2]),
    ] {
        let (ps, pb) = (s.probes_per_lookup(), b.probes_per_lookup());
        assert!(
            pb <= ps * 1.25 + 0.1,
            "{name}: probes/lookup grew with directory size ({ps:.3} at 1k -> {pb:.3} at 10k)"
        );
    }
}

#[test]
fn deleted_slots_are_reused_not_rescanned() {
    // Churn: delete half, re-create. Free-slot hints must hand out the holes
    // (no chain growth, no per-insert scans).
    let fs = simurgh(128 << 20);
    fs.mkdir(&CTX, "/churn", FileMode::dir(0o777)).unwrap();
    for i in 0..2_000 {
        let fd = fs.open(&CTX, &format!("/churn/f{i}"), OpenFlags::CREATE, FileMode::default()).unwrap();
        fs.close(&CTX, fd).unwrap();
    }
    for i in (0..2_000).step_by(2) {
        fs.unlink(&CTX, &format!("/churn/f{i}")).unwrap();
    }
    let base = fs.dir_stats();
    for i in 0..1_000 {
        let fd = fs.open(&CTX, &format!("/churn/n{i}"), OpenFlags::CREATE, FileMode::default()).unwrap();
        fs.close(&CTX, fd).unwrap();
    }
    let d = fs.dir_stats().since(&base);
    assert!(
        d.hint_hits + d.hint_stale + d.slot_probes + d.extends <= 1_300,
        "insert path re-scanned after churn: {} hints, {} stale, {} probes, {} extends",
        d.hint_hits,
        d.hint_stale,
        d.slot_probes,
        d.extends,
    );
    assert!(d.probes_per_lookup() <= 1.5, "churned lookups degraded");
}
