//! Metadata- and data-path scaling: the probe counters must show O(1) work
//! per operation no matter how large a single directory grows or how
//! fragmented a file becomes. NOVA's per-inode log append is O(1); Fig. 7
//! only has Simurgh strictly ahead because the shared-DRAM indexes
//! short-circuit every chain and extent-map walk — so the complexity claim
//! is asserted here directly, not inferred from wall-clock numbers (which
//! this battery deliberately avoids: counters don't flake).

use simurgh_core::dir::DirStatsSnapshot;
use simurgh_core::file::DataStatsSnapshot;
use simurgh_core::SimurghFs;
use simurgh_fsapi::{FileMode, FileSystem, OpenFlags, ProcCtx};
use simurgh_tests::simurgh;

const CTX: ProcCtx = ProcCtx::root(1);

/// Create/stat/unlink `n` files in one shared directory; returns the
/// per-phase counter deltas (create, stat, unlink).
fn run_phases(fs: &SimurghFs, dir: &str, n: usize) -> [DirStatsSnapshot; 3] {
    fs.mkdir(&CTX, dir, FileMode::dir(0o777)).unwrap();
    let mut base = fs.dir_stats();
    let mut out = Vec::new();
    let mut phase = |fs: &SimurghFs| {
        let now = fs.dir_stats();
        let delta = now.since(&base);
        base = now;
        delta
    };
    for i in 0..n {
        let fd = fs.open(&CTX, &format!("{dir}/f{i}"), OpenFlags::CREATE, FileMode::default()).unwrap();
        fs.close(&CTX, fd).unwrap();
    }
    out.push(phase(fs));
    for i in 0..n {
        fs.stat(&CTX, &format!("{dir}/f{i}")).unwrap();
    }
    out.push(phase(fs));
    for i in 0..n {
        fs.unlink(&CTX, &format!("{dir}/f{i}")).unwrap();
    }
    out.push(phase(fs));
    out.try_into().unwrap()
}

#[test]
fn ten_k_entries_one_directory_stays_o1() {
    let fs = simurgh(256 << 20);
    let [create, stat, unlink] = run_phases(&fs, "/big", 10_000);

    // Every phase: mean probes per lookup is a small constant, nowhere near
    // the ~40-block chain a 10k-entry directory builds.
    for (name, d) in [("create", &create), ("stat", &stat), ("unlink", &unlink)] {
        let p = d.probes_per_lookup();
        assert!(p <= 1.5, "{name}: {p:.3} probes/lookup — metadata path is not O(1)");
    }
    // The steady state never falls back to a chain walk at all.
    assert_eq!(stat.chain_walks, 0, "stat phase walked a chain");
    assert_eq!(unlink.chain_walks, 0, "unlink phase walked a chain");
    // Inserts find their slot without scanning the chain: one probe per
    // create (hint or cached tail), not one per chain block.
    assert!(
        create.hint_hits + create.slot_probes <= create.extends + 10_000,
        "insert path scanned: {} hint hits + {} slot probes for 10k creates",
        create.hint_hits,
        create.slot_probes,
    );
}

#[test]
fn probes_per_op_independent_of_directory_size() {
    // The O(1) claim proper: per-op probe counts at 10x the directory size
    // must not grow with it. Chains at 1k entries are ~5 blocks, at 10k
    // ~40 — a linear component would show up as a ~8x ratio.
    let fs_small = simurgh(128 << 20);
    let fs_big = simurgh(256 << 20);
    let small = run_phases(&fs_small, "/d", 1_000);
    let big = run_phases(&fs_big, "/d", 10_000);
    for (name, s, b) in [
        ("create", &small[0], &big[0]),
        ("stat", &small[1], &big[1]),
        ("unlink", &small[2], &big[2]),
    ] {
        let (ps, pb) = (s.probes_per_lookup(), b.probes_per_lookup());
        assert!(
            pb <= ps * 1.25 + 0.1,
            "{name}: probes/lookup grew with directory size ({ps:.3} at 1k -> {pb:.3} at 10k)"
        );
    }
}

#[test]
fn deleted_slots_are_reused_not_rescanned() {
    // Churn: delete half, re-create. Free-slot hints must hand out the holes
    // (no chain growth, no per-insert scans).
    let fs = simurgh(128 << 20);
    fs.mkdir(&CTX, "/churn", FileMode::dir(0o777)).unwrap();
    for i in 0..2_000 {
        let fd = fs.open(&CTX, &format!("/churn/f{i}"), OpenFlags::CREATE, FileMode::default()).unwrap();
        fs.close(&CTX, fd).unwrap();
    }
    for i in (0..2_000).step_by(2) {
        fs.unlink(&CTX, &format!("/churn/f{i}")).unwrap();
    }
    let base = fs.dir_stats();
    for i in 0..1_000 {
        let fd = fs.open(&CTX, &format!("/churn/n{i}"), OpenFlags::CREATE, FileMode::default()).unwrap();
        fs.close(&CTX, fd).unwrap();
    }
    let d = fs.dir_stats().since(&base);
    assert!(
        d.hint_hits + d.hint_stale + d.slot_probes + d.extends <= 1_300,
        "insert path re-scanned after churn: {} hints, {} stale, {} probes, {} extends",
        d.hint_hits,
        d.hint_stale,
        d.slot_probes,
        d.extends,
    );
    assert!(d.probes_per_lookup() <= 1.5, "churned lookups degraded");
}

// ---------------------------------------------------------------------------
// Data path: extent cursor cache and append fast path
// ---------------------------------------------------------------------------

const BLOCK: u64 = 4096;

/// Creates `/frag{tag}` fragmented into roughly `extents` single-block
/// extents by interleaving appends with a decoy file: every allocation for
/// the decoy claims the block right after the main file's tail, so the
/// tail-extend fast path is blocked and each append lands in its own extent.
fn fragmented(fs: &SimurghFs, tag: &str, extents: usize) -> simurgh_fsapi::Fd {
    let rw = OpenFlags { read: true, ..OpenFlags::CREATE };
    let main = fs.open(&CTX, &format!("/frag{tag}"), rw, FileMode::default()).unwrap();
    let decoy = fs.open(&CTX, &format!("/decoy{tag}"), OpenFlags::CREATE, FileMode::default()).unwrap();
    let chunk = vec![0xC3u8; BLOCK as usize];
    for i in 0..extents as u64 {
        fs.pwrite(&CTX, main, &chunk, i * BLOCK).unwrap();
        fs.pwrite(&CTX, decoy, &chunk, i * BLOCK).unwrap();
    }
    fs.close(&CTX, decoy).unwrap();
    main
}

/// Fixed batch of 4 KiB reads and overwrites striding over the file;
/// returns the counter delta.
fn run_data_ops(fs: &SimurghFs, fd: simurgh_fsapi::Fd, extents: usize, ops: u64) -> DataStatsSnapshot {
    let file_bytes = extents as u64 * BLOCK;
    let mut buf = vec![0u8; BLOCK as usize];
    let base = fs.data_stats();
    for i in 0..ops {
        let off = (i * 7919 * BLOCK) % file_bytes;
        fs.pread(&CTX, fd, &mut buf, off).unwrap();
        fs.pwrite(&CTX, fd, &buf, off).unwrap();
    }
    fs.data_stats().since(&base)
}

#[test]
fn walk_steps_per_op_independent_of_extent_count() {
    // The O(1) claim proper, acceptance-criterion form: extent-walk steps
    // per read/write op must stay flat (±10%) as the file grows from 16 to
    // 2048 extents. An O(extents) locate would show up as a ~128x ratio.
    let fs_small = simurgh(64 << 20);
    let fs_big = simurgh(128 << 20);
    let fd_small = fragmented(&fs_small, "S", 16);
    let fd_big = fragmented(&fs_big, "B", 2048);
    let small = run_data_ops(&fs_small, fd_small, 16, 2000);
    let big = run_data_ops(&fs_big, fd_big, 2048, 2000);

    let (ps, pb) = (small.walk_steps_per_op(), big.walk_steps_per_op());
    assert!(ps > 0.0, "probe counters not wired: no walk steps recorded");
    assert!(
        pb <= ps * 1.1,
        "walk steps/op grew with extent count ({ps:.3} at 16 -> {pb:.3} at 2048)"
    );
    // Steady state never falls back to a full persistent-map walk: every op
    // is served from the DRAM extent mirror.
    assert_eq!(big.map_walks, 0, "data path re-walked the persistent extent map");
    assert_eq!(big.cursor_rebuilds, 0, "cursor mirror thrashed during steady-state I/O");
    assert_eq!(big.reads, 2000);
    assert_eq!(big.writes, 2000);
}

#[test]
fn contiguous_appends_extend_tail_in_place() {
    // Acceptance criterion: >= 90% of contiguous single-thread appends must
    // extend the tail extent in place instead of allocating a fresh extent.
    let fs = simurgh(64 << 20);
    let fd = fs.open(&CTX, "/seq", OpenFlags::CREATE, FileMode::default()).unwrap();
    let chunk = vec![0x7Eu8; BLOCK as usize];
    let base = fs.data_stats();
    for i in 0..1024u64 {
        fs.pwrite(&CTX, fd, &chunk, i * BLOCK).unwrap();
    }
    let d = fs.data_stats().since(&base);
    assert_eq!(d.appends, 1024);
    assert!(
        d.tail_extend_rate() >= 0.9,
        "tail-extend rate {:.3} ({} of {} appends)",
        d.tail_extend_rate(),
        d.tail_extends,
        d.appends
    );
}

#[test]
fn private_append_storm_stays_o1() {
    // FxMark DWAL shape: each thread appends to its own file. Segment
    // affinity keeps the threads in distinct allocator segments, so the
    // tail-extend fast path keeps working under concurrency and the
    // per-op walk cost stays O(1).
    use std::sync::Arc;

    const THREADS: usize = 4;
    const APPENDS: u64 = 512;
    let fs = Arc::new(simurgh(128 << 20));
    let base = fs.data_stats();
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let fs = Arc::clone(&fs);
            std::thread::spawn(move || {
                let ctx = ProcCtx::root(100 + t as u32);
                let rw = OpenFlags { read: true, ..OpenFlags::CREATE };
                let fd = fs.open(&ctx, &format!("/private{t}"), rw, FileMode::default()).unwrap();
                let chunk = vec![t as u8 + 1; BLOCK as usize];
                for i in 0..APPENDS {
                    fs.pwrite(&ctx, fd, &chunk, i * BLOCK).unwrap();
                }
                // Read back a spot-check of this thread's own file.
                let mut buf = vec![0u8; BLOCK as usize];
                for i in [0, APPENDS / 2, APPENDS - 1] {
                    fs.pread(&ctx, fd, &mut buf, i * BLOCK).unwrap();
                    assert!(buf.iter().all(|&b| b == t as u8 + 1), "thread {t} chunk {i} corrupted");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let d = fs.data_stats().since(&base);
    assert_eq!(d.appends, (THREADS as u64) * APPENDS);
    // Every write streams through exactly the extents it touches — one run
    // per 4 KiB append — so walk steps stay ~1/op no matter the thread count.
    assert!(
        d.walk_steps_per_op() <= 1.1,
        "append storm walk steps/op {:.3}",
        d.walk_steps_per_op()
    );
    // The only permitted persistent-map walks are the one-time mirror
    // builds (one rebuild per freshly opened file), never a per-op fallback.
    assert!(
        d.map_walks <= d.cursor_rebuilds && d.cursor_rebuilds <= THREADS as u64,
        "append storm fell back to persistent map walks: {} walks, {} rebuilds",
        d.map_walks,
        d.cursor_rebuilds
    );
    // Affinity keeps threads out of each other's segments; most appends
    // still extend the tail in place even with 4 concurrent appenders.
    assert!(
        d.tail_extend_rate() >= 0.6,
        "concurrent tail-extend rate {:.3} ({} of {})",
        d.tail_extend_rate(),
        d.tail_extends,
        d.appends
    );
}

#[test]
fn shared_file_interleave_keeps_mirror_coherent() {
    // Two descriptors from two "processes" on one inode share the same
    // extent mirror (one cursor per open inode). A writer growing the file
    // and a reader verifying freshly published chunks must stay coherent
    // through incremental mirror updates alone — no rebuild storms, no
    // fallback walks of the persistent map.
    use std::sync::Arc;

    const CHUNKS: u64 = 256;
    let fs = Arc::new(simurgh(64 << 20));
    let wctx = ProcCtx::root(1);
    let rctx = ProcCtx::root(2);
    let wfd = fs.open(&wctx, "/shared", OpenFlags::CREATE, FileMode::default()).unwrap();
    let rfd = fs.open(&rctx, "/shared", OpenFlags::RDONLY, FileMode::default()).unwrap();
    let base = fs.data_stats();

    let writer = {
        let fs = Arc::clone(&fs);
        std::thread::spawn(move || {
            for i in 0..CHUNKS {
                let chunk = vec![(i % 251) as u8; BLOCK as usize];
                fs.pwrite(&wctx, wfd, &chunk, i * BLOCK).unwrap();
            }
        })
    };
    let reader = {
        let fs = Arc::clone(&fs);
        std::thread::spawn(move || {
            let mut buf = vec![0u8; BLOCK as usize];
            let mut verified = 0u64;
            while verified < CHUNKS {
                // Only chunks fully published via the fenced size update are
                // readable; re-stat until the next one lands.
                let size = fs.stat(&rctx, "/shared").unwrap().size;
                while (verified + 1) * BLOCK <= size {
                    let n = fs.pread(&rctx, rfd, &mut buf, verified * BLOCK).unwrap();
                    assert_eq!(n, BLOCK as usize);
                    let want = (verified % 251) as u8;
                    assert!(buf.iter().all(|&b| b == want), "chunk {verified} torn");
                    verified += 1;
                }
                std::thread::yield_now();
            }
            verified
        })
    };
    writer.join().unwrap();
    assert_eq!(reader.join().unwrap(), CHUNKS);

    let d = fs.data_stats().since(&base);
    assert_eq!(d.reads, CHUNKS);
    // Coherence proper: the reader tracked the growing file through shared
    // incremental mirror updates, never by re-walking per op; the only
    // permitted persistent-map walks are the few one-time mirror builds.
    assert!(
        d.map_walks <= d.cursor_rebuilds,
        "reader fell back to persistent map walks: {} walks, {} rebuilds",
        d.map_walks,
        d.cursor_rebuilds
    );
    assert!(
        d.cursor_rebuilds <= 2,
        "mirror thrashed: {} rebuilds for {} chunks",
        d.cursor_rebuilds,
        CHUNKS
    );
    assert!(d.walk_steps_per_op() <= 1.1, "interleave walk steps/op {:.3}", d.walk_steps_per_op());
}
