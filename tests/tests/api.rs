//! API-surface integration tests: statfs, descriptor semantics, convenience
//! helpers — behaviour that must be identical across the implementations.

use std::sync::Arc;

use simurgh_fsapi::wire;
use simurgh_fsapi::{FileMode, FileSystem, FsError, OpenFlags, ProcCtx, SeekFrom};
use simurgh_pmem::PmemRegion;
use simurgh_tests::simurgh;

const CTX: ProcCtx = ProcCtx::root(1);

#[test]
fn statfs_reports_capacity_and_shrinks_with_use() {
    let fs = simurgh(64 << 20);
    let before = fs.statfs(&CTX).unwrap();
    assert_eq!(before.total_bytes, 64 << 20);
    assert_eq!(before.block_size, 4096);
    assert!(before.free_bytes > 0 && before.free_bytes < before.total_bytes);
    fs.write_file(&CTX, "/big", &vec![1u8; 8 << 20]).unwrap();
    let after = fs.statfs(&CTX).unwrap();
    assert!(
        before.free_bytes - after.free_bytes >= 8 << 20,
        "at least the file size disappeared from free space"
    );
    fs.unlink(&CTX, "/big").unwrap();
    let freed = fs.statfs(&CTX).unwrap();
    assert!(freed.free_bytes > after.free_bytes, "unlink returns space");
}

#[test]
fn statfs_works_on_all_baselines() {
    for make in [
        simurgh_baselines::nova as fn(Arc<PmemRegion>) -> _,
        simurgh_baselines::pmfs,
        simurgh_baselines::ext4dax,
        simurgh_baselines::splitfs,
    ] {
        let fs = make(Arc::new(PmemRegion::new(32 << 20)));
        let s = fs.statfs(&CTX).unwrap();
        assert_eq!(s.total_bytes, 32 << 20, "{}", fs.name());
        assert!(s.free_bytes > 0);
    }
}

#[test]
fn reference_fs_reports_unsupported_statfs() {
    let fs = simurgh_fsapi::reffs::RefFs::new();
    assert_eq!(fs.statfs(&CTX).unwrap_err(), FsError::Unsupported);
}

#[test]
fn descriptor_positions_are_independent() {
    let fs = simurgh(32 << 20);
    fs.write_file(&CTX, "/f", b"0123456789").unwrap();
    let a = fs.open(&CTX, "/f", OpenFlags::RDONLY, FileMode::default()).unwrap();
    let b = fs.open(&CTX, "/f", OpenFlags::RDONLY, FileMode::default()).unwrap();
    let mut buf = [0u8; 4];
    fs.read(&CTX, a, &mut buf).unwrap();
    assert_eq!(&buf, b"0123");
    fs.lseek(&CTX, b, SeekFrom::Start(6)).unwrap();
    fs.read(&CTX, b, &mut buf).unwrap();
    assert_eq!(&buf, b"6789");
    // Descriptor a unaffected by b's seek.
    fs.read(&CTX, a, &mut buf).unwrap();
    assert_eq!(&buf, b"4567");
    fs.close(&CTX, a).unwrap();
    fs.close(&CTX, b).unwrap();
}

#[test]
fn double_close_is_badf() {
    let fs = simurgh(32 << 20);
    let fd = fs.open(&CTX, "/x", OpenFlags::CREATE, FileMode::default()).unwrap();
    fs.close(&CTX, fd).unwrap();
    assert_eq!(fs.close(&CTX, fd).unwrap_err(), FsError::BadFd);
    let mut b = [0u8; 1];
    assert_eq!(fs.pread(&CTX, fd, &mut b, 0).unwrap_err(), FsError::BadFd);
}

#[test]
fn write_to_readonly_fd_is_badf() {
    let fs = simurgh(32 << 20);
    fs.write_file(&CTX, "/ro", b"x").unwrap();
    let fd = fs.open(&CTX, "/ro", OpenFlags::RDONLY, FileMode::default()).unwrap();
    assert_eq!(fs.pwrite(&CTX, fd, b"y", 0).unwrap_err(), FsError::BadFd);
    assert_eq!(fs.ftruncate(&CTX, fd, 0).unwrap_err(), FsError::BadFd);
    assert_eq!(fs.fallocate(&CTX, fd, 0, 4096).unwrap_err(), FsError::BadFd);
    fs.close(&CTX, fd).unwrap();
    assert_eq!(fs.read_to_vec(&CTX, "/ro").unwrap(), b"x", "file untouched");
}

#[test]
fn name_length_limits() {
    let fs = simurgh(32 << 20);
    let ok = "a".repeat(simurgh_fsapi::NAME_MAX);
    fs.write_file(&CTX, &format!("/{ok}"), b"x").unwrap();
    assert_eq!(fs.read_to_vec(&CTX, &format!("/{ok}")).unwrap(), b"x");
    let too_long = "a".repeat(simurgh_fsapi::NAME_MAX + 1);
    assert_eq!(
        fs.write_file(&CTX, &format!("/{too_long}"), b"x").unwrap_err(),
        FsError::NameTooLong
    );
}

#[test]
fn dot_and_dotdot_resolve_lexically() {
    let fs = simurgh(32 << 20);
    fs.mkdir(&CTX, "/a", FileMode::dir(0o755)).unwrap();
    fs.mkdir(&CTX, "/a/b", FileMode::dir(0o755)).unwrap();
    fs.write_file(&CTX, "/a/b/f", b"deep").unwrap();
    assert_eq!(fs.read_to_vec(&CTX, "/a/./b/./f").unwrap(), b"deep");
    assert_eq!(fs.read_to_vec(&CTX, "/a/b/../b/f").unwrap(), b"deep");
    assert_eq!(fs.read_to_vec(&CTX, "/x/../a/b/f").unwrap(), b"deep", "lexical resolution");
}

#[test]
fn large_file_roundtrip_through_helpers() {
    let fs = simurgh(128 << 20);
    let payload: Vec<u8> = (0..6 << 20).map(|i| (i % 251) as u8).collect();
    fs.write_file(&CTX, "/blob", &payload).unwrap();
    assert_eq!(fs.read_to_vec(&CTX, "/blob").unwrap(), payload);
    let st = fs.stat(&CTX, "/blob").unwrap();
    assert_eq!(st.size, payload.len() as u64);
}

// ---------------------------------------------------------------------------
// FsError v2: errno surface and io::Error round-trips
// ---------------------------------------------------------------------------

#[test]
fn every_error_round_trips_through_io_error() {
    let all = [
        FsError::NotFound,
        FsError::Exists,
        FsError::NotDir,
        FsError::IsDir,
        FsError::NotEmpty,
        FsError::Access,
        FsError::NoSpace,
        FsError::BadFd,
        FsError::NameTooLong,
        FsError::Invalid,
        FsError::TooManyLinks,
        FsError::Unsupported,
        FsError::Corrupt("x"),
        FsError::Injected("site"),
    ];
    for e in all {
        let io: std::io::Error = e.clone().into();
        assert_eq!(io.raw_os_error(), Some(e.errno()), "{e:?} errno mapping");
        let back = FsError::from(io);
        assert_eq!(back.errno(), e.errno(), "{e:?} round-trip errno");
        assert_eq!(back.errno_name(), e.errno_name(), "{e:?} round-trip name");
    }
}

#[test]
fn injected_faults_are_enospc_but_marked() {
    let e = FsError::Injected("meta-alloc");
    assert_eq!(e.errno(), FsError::NoSpace.errno());
    assert_eq!(e.errno_name(), "ENOSPC");
    assert!(e.is_injected());
    assert!(!FsError::NoSpace.is_injected(), "organic exhaustion is not injected");
}

#[test]
fn fs_errors_surface_as_real_errno_values() {
    let fs = simurgh(32 << 20);
    let e = fs.stat(&CTX, "/missing").unwrap_err();
    assert_eq!(e.errno(), 2, "ENOENT");
    fs.write_file(&CTX, "/f", b"x").unwrap();
    let e = fs
        .open(&CTX, "/f", OpenFlags::CREATE.with_excl(), FileMode::default())
        .unwrap_err();
    assert_eq!(e.errno(), 17, "EEXIST");
    let e = fs.readdir(&CTX, "/f").unwrap_err();
    assert_eq!(e.errno(), 20, "ENOTDIR");
}

// ---------------------------------------------------------------------------
// FsError wire codec: encode → decode → encode is a fixed point
// ---------------------------------------------------------------------------

/// Detail strings the payload-carrying variants are sampled with.
const WIRE_DETAILS: [&str; 4] = ["", "bad superblock magic", "torn rename log", "prop-detail"];

/// Index → variant, covering all 14 declared variants and both
/// payload-carrying ones under each sampled detail string.
fn fs_error_from_index(i: usize) -> FsError {
    match i {
        0 => FsError::NotFound,
        1 => FsError::Exists,
        2 => FsError::NotDir,
        3 => FsError::IsDir,
        4 => FsError::NotEmpty,
        5 => FsError::Access,
        6 => FsError::NoSpace,
        7 => FsError::BadFd,
        8 => FsError::NameTooLong,
        9 => FsError::Invalid,
        10 => FsError::TooManyLinks,
        11 => FsError::Unsupported,
        12..=15 => FsError::Corrupt(WIRE_DETAILS[i - 12]),
        _ => FsError::Injected(WIRE_DETAILS[(i - 16) % WIRE_DETAILS.len()]),
    }
}

#[test]
fn every_fs_error_variant_survives_the_wire() {
    for i in 0..20 {
        let e = fs_error_from_index(i);
        let back = wire::err_round_trip(&e).expect("decodes");
        assert_eq!(back, e, "wire round-trip is identity for {e:?}");
    }
}

proptest::proptest! {
    /// Encode → decode → encode is byte-stable and semantics-preserving
    /// for every declared variant.
    #[test]
    fn fs_error_wire_codec_is_stable(i in 0usize..20) {
        let e = fs_error_from_index(i);
        let b1 = wire::err_bytes(&e);
        let d = wire::err_from_bytes(&b1).expect("decodes");
        let b2 = wire::err_bytes(&d);
        proptest::prop_assert_eq!(&b1, &b2, "byte-stable for {:?}", e);
        proptest::prop_assert_eq!(&d, &e, "value-stable for {:?}", e);
    }

    /// The `#[non_exhaustive]` catch-all: a tag-255 frame from a future
    /// peer (arbitrary errno + rendering) decodes to a known variant, and
    /// from there the codec is a fixed point — version skew degrades the
    /// variant, never the errno.
    #[test]
    fn fs_error_catch_all_tag_is_stable(errno in 1u32..200, msg_i in 0usize..4) {
        let mut body = vec![255u8];
        body.extend_from_slice(&errno.to_le_bytes());
        let msg = WIRE_DETAILS[msg_i].as_bytes();
        body.extend_from_slice(&(msg.len() as u32).to_le_bytes());
        body.extend_from_slice(msg);
        let d1 = wire::err_from_bytes(&body).expect("catch-all decodes");
        let d2 = wire::err_from_bytes(&wire::err_bytes(&d1)).expect("re-decodes");
        proptest::prop_assert_eq!(&d2, &d1, "fixed point after first decode");
        let expect: FsError = std::io::Error::from_raw_os_error(errno as i32).into();
        proptest::prop_assert_eq!(d1.errno(), expect.errno(), "errno preserved");
    }
}

// ---------------------------------------------------------------------------
// Trait-default helpers: identical behaviour on every implementation
// ---------------------------------------------------------------------------

fn helper_conformance(fs: &dyn FileSystem) {
    let name = fs.name().to_owned();
    fs.mkdir(&CTX, "/c", FileMode::dir(0o755)).unwrap();
    fs.write_file(&CTX, "/c/file", b"payload").unwrap();
    fs.mkdir(&CTX, "/c/sub", FileMode::dir(0o755)).unwrap();
    assert_eq!(fs.read_file(&CTX, "/c/file").unwrap(), b"payload", "{name}");
    assert_eq!(fs.read_to_vec(&CTX, "/c/file").unwrap(), b"payload", "{name}: alias agrees");

    let tree = fs.snapshot_tree(&CTX, "/").unwrap();
    let paths: Vec<&str> = tree.iter().map(|(p, _, _)| p.as_str()).collect();
    assert_eq!(paths, ["/c", "/c/file", "/c/sub"], "{name}: sorted recursive walk");
    let (_, ftype, size) = &tree[1];
    assert_eq!(*ftype, simurgh_fsapi::FileType::Regular, "{name}");
    assert_eq!(*size, 7, "{name}");

    // Overwrite through the helper truncates rather than appends.
    fs.write_file(&CTX, "/c/file", b"shorter").unwrap();
    fs.write_file(&CTX, "/c/file", b"x").unwrap();
    assert_eq!(fs.read_file(&CTX, "/c/file").unwrap(), b"x", "{name}: overwrite truncates");

    assert_eq!(
        fs.read_file(&CTX, "/c/nope").unwrap_err().errno(),
        2,
        "{name}: helper propagates ENOENT"
    );
}

#[test]
fn trait_default_helpers_conform_on_reference_fs() {
    helper_conformance(&simurgh_fsapi::reffs::RefFs::new());
}

#[test]
fn trait_default_helpers_conform_on_simurgh() {
    helper_conformance(&simurgh(32 << 20));
}
