//! Tier-1 gate: the static checker runs over the real workspace sources and
//! must come back clean, the golden media layouts must match what rustc
//! actually compiled, and the known-bad fixtures must keep every rule alive.

use std::path::{Path, PathBuf};

use simurgh_analyze::{scan_dirs, scan_workspace, Rule};
use simurgh_core::obj::dirblock::RenameLog;
use simurgh_core::obj::inode::Extent;
use simurgh_core::super_block::PoolSeg;

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).parent().expect("tests/ has a parent").to_owned()
}

#[test]
fn workspace_is_clean() {
    let report = scan_workspace(&workspace_root()).expect("scan workspace");
    assert!(report.files_scanned > 40, "scan saw only {} files", report.files_scanned);
    let rendered: Vec<String> = report.findings.iter().map(|f| f.to_string()).collect();
    assert!(rendered.is_empty(), "static analysis violations:\n{}", rendered.join("\n"));
}

#[test]
fn every_unsafe_site_is_documented() {
    let report = scan_workspace(&workspace_root()).expect("scan workspace");
    assert!(!report.unsafe_sites.is_empty(), "the pmem layer definitely has unsafe code");
    let undocumented: Vec<String> = report
        .unsafe_sites
        .iter()
        .filter(|s| !s.documented)
        .map(|s| format!("{}:{} {}", s.file, s.line, s.kind))
        .collect();
    assert!(undocumented.is_empty(), "unsafe without SAFETY:\n{}", undocumented.join("\n"));
}

#[test]
fn every_pod_media_type_is_manifested() {
    let report = scan_workspace(&workspace_root()).expect("scan workspace");
    assert_eq!(
        report.pod_types,
        vec!["Extent".to_owned(), "PoolSeg".to_owned(), "RenameLog".to_owned()],
        "Pod media types changed — update layout.golden and this test"
    );
}

#[test]
fn fig7_metadata_assertions_stay_strict() {
    // The old open item tolerated a 15% deficit on the Fig. 7 metadata
    // panels (`simurgh > other * 0.85`). With the O(1) metadata path the
    // paper's strict dominance holds, and this guard keeps it that way:
    // reintroducing any fractional scale factor into the comparison fails
    // tier-1 even if the weakened assertion itself still passes.
    let smoke = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/experiments_smoke.rs");
    let src = std::fs::read_to_string(&smoke).expect("read experiments_smoke.rs");
    let hits = simurgh_analyze::tolerance_findings(&src, "fig7_simurgh_wins_metadata_benchmarks");
    assert!(
        hits.is_empty(),
        "tolerance factor back in the Fig. 7 metadata assertions:\n{}",
        hits.iter().map(|(l, s)| format!("  line {l}: {s}")).collect::<Vec<_>>().join("\n")
    );
    // And the strict comparison itself must still be present (the guard is
    // meaningless if the assertion is deleted rather than weakened).
    assert!(
        src.contains("simurgh > other,"),
        "fig7 smoke test no longer asserts strict dominance"
    );
}

#[test]
fn fig7_data_assertions_stay_strict() {
    // The data-path twin of the guard above: once the extent cursor cache
    // and append fast path made the Fig. 7 data panels (append, shared and
    // private read) strictly dominant, any `* 0.85`-style deficit allowance
    // sneaking back into the comparison fails tier-1 even if the weakened
    // assertion itself still passes.
    let smoke = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/experiments_smoke.rs");
    let src = std::fs::read_to_string(&smoke).expect("read experiments_smoke.rs");
    let hits = simurgh_analyze::tolerance_findings(&src, "fig7_simurgh_wins_data_benchmarks");
    assert!(
        hits.is_empty(),
        "tolerance factor back in the Fig. 7 data assertions:\n{}",
        hits.iter().map(|(l, s)| format!("  line {l}: {s}")).collect::<Vec<_>>().join("\n")
    );
    // The comparison must still be present (the guard is meaningless if the
    // assertion is deleted rather than weakened).
    assert!(
        src.contains("simurgh >= other,"),
        "fig7 data smoke test no longer asserts dominance"
    );
}

// ---------------------------------------------------------------------------
// Golden layout pinning
// ---------------------------------------------------------------------------

/// `(size, align, fields)` parsed from one layout.golden line.
fn golden_entry(name: &str) -> (usize, usize, Vec<(String, usize)>) {
    let text = std::fs::read_to_string(workspace_root().join("crates/analyze/layout.golden"))
        .expect("read layout.golden");
    let line = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .find(|l| l.split_whitespace().next() == Some(name))
        .unwrap_or_else(|| panic!("{name} missing from layout.golden"));
    let mut size = None;
    let mut align = None;
    let mut fields = Vec::new();
    for tok in line.split_whitespace().skip(1) {
        if let Some(v) = tok.strip_prefix("size=") {
            size = Some(v.parse().unwrap());
        } else if let Some(v) = tok.strip_prefix("align=") {
            align = Some(v.parse().unwrap());
        } else {
            let (f, off) = tok.split_once('@').unwrap_or_else(|| panic!("bad token {tok}"));
            fields.push((f.to_owned(), off.parse().unwrap()));
        }
    }
    (size.expect("size="), align.expect("align="), fields)
}

fn assert_field(fields: &[(String, usize)], name: &str, actual: usize) {
    let golden =
        fields.iter().find(|(f, _)| f == name).unwrap_or_else(|| panic!("{name} not golden")).1;
    assert_eq!(actual, golden, "offset of `{name}` drifted from layout.golden");
}

#[test]
fn golden_layouts_match_compiled_structs() {
    use core::mem::{align_of, offset_of, size_of};

    let (size, align, f) = golden_entry("RenameLog");
    assert_eq!(size_of::<RenameLog>(), size);
    assert_eq!(align_of::<RenameLog>(), align);
    assert_eq!(f.len(), 8, "RenameLog field count");
    assert_field(&f, "op", offset_of!(RenameLog, op));
    assert_field(&f, "src_dir", offset_of!(RenameLog, src_dir));
    assert_field(&f, "dst_dir", offset_of!(RenameLog, dst_dir));
    assert_field(&f, "inode", offset_of!(RenameLog, inode));
    assert_field(&f, "old_fentry", offset_of!(RenameLog, old_fentry));
    assert_field(&f, "new_fentry", offset_of!(RenameLog, new_fentry));
    assert_field(&f, "old_line", offset_of!(RenameLog, old_line));
    assert_field(&f, "new_line", offset_of!(RenameLog, new_line));

    let (size, align, f) = golden_entry("PoolSeg");
    assert_eq!(size_of::<PoolSeg>(), size);
    assert_eq!(align_of::<PoolSeg>(), align);
    assert_eq!(f.len(), 2, "PoolSeg field count");
    assert_field(&f, "start", offset_of!(PoolSeg, start));
    assert_field(&f, "count", offset_of!(PoolSeg, count));

    let (size, align, f) = golden_entry("Extent");
    assert_eq!(size_of::<Extent>(), size);
    assert_eq!(align_of::<Extent>(), align);
    assert_eq!(f.len(), 2, "Extent field count");
    assert_field(&f, "start", offset_of!(Extent, start));
    assert_field(&f, "len", offset_of!(Extent, len));
}

// ---------------------------------------------------------------------------
// The rules themselves must stay alive
// ---------------------------------------------------------------------------

#[test]
fn every_rule_fires_on_bad_fixtures() {
    let bad = workspace_root().join("crates/analyze/fixtures/bad");
    let report = scan_dirs(&[bad], &[]).expect("scan bad fixtures");
    for rule in Rule::ALL {
        assert!(
            report.findings.iter().any(|f| f.rule == rule),
            "rule {} did not fire on the bad fixtures: {:#?}",
            rule.id(),
            report.findings
        );
    }
}

#[test]
fn good_fixture_is_clean() {
    let good = workspace_root().join("crates/analyze/fixtures/good");
    let report = scan_dirs(&[good], &["GoodHeader".to_owned()]).expect("scan good fixture");
    let rendered: Vec<String> = report.findings.iter().map(|f| f.to_string()).collect();
    assert!(rendered.is_empty(), "good fixture flagged:\n{}", rendered.join("\n"));
    assert!(report.unsafe_sites.iter().all(|s| s.documented));
}
