//! Structural invariant checks (`fsck`) after stress, crashes and repair —
//! the tree must be not merely readable, but sound by construction.

use std::sync::Arc;
use std::time::Duration;

use simurgh_core::check::check;
use simurgh_core::{testing, SimurghConfig, SimurghFs};
use simurgh_fsapi::{FileMode, FileSystem, ProcCtx};
use simurgh_pmem::PmemRegion;
use simurgh_tests::{crash_and_remount, simurgh, simurgh_tracked};

#[test]
fn clean_after_multithreaded_churn() {
    let fs = Arc::new(simurgh(128 << 20));
    let root = ProcCtx::root(0);
    fs.mkdir(&root, "/arena", FileMode::dir(0o777)).unwrap();
    crossbeam::thread::scope(|s| {
        for t in 0..5u32 {
            let fs = &fs;
            s.spawn(move |_| {
                let ctx = ProcCtx::root(t + 1);
                for i in 0..60 {
                    let p = format!("/arena/t{t}-{i}");
                    fs.write_file(&ctx, &p, &vec![t as u8; 3000]).unwrap();
                    match i % 5 {
                        0 => fs.unlink(&ctx, &p).unwrap(),
                        1 => fs.rename(&ctx, &p, &format!("/arena/rn-t{t}-{i}")).unwrap(),
                        2 => fs.link(&ctx, &p, &format!("/arena/ln-t{t}-{i}")).unwrap(),
                        _ => {}
                    }
                }
            });
        }
    })
    .unwrap();
    let r = check(&fs, true);
    assert!(r.is_clean(), "violations after churn: {:?}", r.violations);
    assert_eq!(r.files, 5 * (60 - 12) as u64, "48 surviving files per thread");
}

#[test]
fn clean_after_crash_recovery() {
    let fs = simurgh_tracked(64 << 20);
    let ctx = ProcCtx::root(1);
    for d in 0..3 {
        fs.mkdir(&ctx, &format!("/d{d}"), FileMode::dir(0o755)).unwrap();
        for i in 0..30 {
            fs.write_file(&ctx, &format!("/d{d}/f{i}"), &vec![7u8; 1000]).unwrap();
        }
    }
    let fs2 = crash_and_remount(&fs);
    let r = check(&fs2, true);
    assert!(r.is_clean(), "violations after recovery: {:?}", r.violations);
    assert_eq!(r.files, 90);
}

#[test]
fn clean_after_interrupted_delete_repair() {
    let region = Arc::new(PmemRegion::new(64 << 20));
    let cfg = SimurghConfig { line_max_hold: Duration::from_millis(15), ..Default::default() };
    let fs = SimurghFs::format(region, cfg).unwrap();
    let ctx = ProcCtx::root(1);
    fs.mkdir(&ctx, "/w", FileMode::dir(0o777)).unwrap();
    fs.write_file(&ctx, "/w/victim", b"x").unwrap();
    testing::crash_mid_unlink(&fs, "/w", "victim");
    // Trigger the decentralized repair via a colliding insert.
    let other = testing::colliding_name("victim", "peer-");
    fs.write_file(&ctx, &format!("/w/{other}"), b"y").unwrap();
    let r = check(&fs, true);
    assert!(r.is_clean(), "violations after line repair: {:?}", r.violations);
}

#[test]
fn clean_after_double_crash_during_recovery_window() {
    // Crash, remount, crash again immediately (before any new work), and
    // remount once more: recovery must be idempotent.
    let fs = simurgh_tracked(64 << 20);
    let ctx = ProcCtx::root(1);
    fs.mkdir(&ctx, "/persist", FileMode::dir(0o755)).unwrap();
    for i in 0..25 {
        fs.write_file(&ctx, &format!("/persist/f{i}"), b"data").unwrap();
    }
    let fs2 = crash_and_remount(&fs);
    let fs3 = crash_and_remount(&fs2);
    let r = check(&fs3, true);
    assert!(r.is_clean(), "violations after double crash: {:?}", r.violations);
    assert_eq!(r.files, 25);
    assert_eq!(fs3.read_to_vec(&ctx, "/persist/f24").unwrap(), b"data");
}

#[test]
fn clean_after_deep_tree_and_truncates() {
    let fs = simurgh(64 << 20);
    let ctx = ProcCtx::root(1);
    let mut path = String::new();
    for d in 0..10 {
        path = format!("{path}/lvl{d}");
        fs.mkdir(&ctx, &path, FileMode::dir(0o755)).unwrap();
    }
    let file = format!("{path}/deep.bin");
    fs.write_file(&ctx, &file, &vec![9u8; 2 << 20]).unwrap();
    let fd = fs
        .open(&ctx, &file, simurgh_fsapi::OpenFlags::RDWR, FileMode::default())
        .unwrap();
    fs.ftruncate(&ctx, fd, 100).unwrap();
    fs.fallocate(&ctx, fd, 0, 1 << 20).unwrap();
    fs.ftruncate(&ctx, fd, 0).unwrap();
    fs.close(&ctx, fd).unwrap();
    let r = check(&fs, true);
    assert!(r.is_clean(), "violations after truncate dance: {:?}", r.violations);
    assert_eq!(r.directories, 11);
}

#[test]
fn block_accounting_balances_after_delete_all() {
    let fs = simurgh(64 << 20);
    let ctx = ProcCtx::root(1);
    // Warm up the metadata pools first (pools grow on demand and
    // legitimately keep their blocks), then measure a create/delete cycle.
    for i in 0..20 {
        fs.write_file(&ctx, &format!("/warm{i}"), &vec![3u8; 256 << 10]).unwrap();
    }
    for i in 0..20 {
        fs.unlink(&ctx, &format!("/warm{i}")).unwrap();
    }
    let free_before = fs.block_alloc().free_blocks();
    for i in 0..20 {
        fs.write_file(&ctx, &format!("/big{i}"), &vec![3u8; 256 << 10]).unwrap();
    }
    assert!(fs.block_alloc().free_blocks() < free_before);
    for i in 0..20 {
        fs.unlink(&ctx, &format!("/big{i}")).unwrap();
    }
    // Every data block of the cycle returned to the allocator.
    assert_eq!(fs.block_alloc().free_blocks(), free_before);
    let r = check(&fs, true);
    assert!(r.is_clean(), "{:?}", r.violations);
}
