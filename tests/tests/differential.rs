//! Differential testing: Simurgh and every baseline model must agree with
//! the in-memory reference file system over identical operation sequences.

use std::sync::Arc;

use simurgh_fsapi::reffs::RefFs;
use simurgh_fsapi::{FileMode, FileSystem, OpenFlags, ProcCtx};
use simurgh_pmem::PmemRegion;
use simurgh_tests::{simurgh, snapshot_tree};

/// A deterministic mixed workload exercising every namespace operation.
fn drive(fs: &dyn FileSystem) {
    let ctx = ProcCtx::root(1);
    for d in 0..4 {
        fs.mkdir(&ctx, &format!("/d{d}"), FileMode::dir(0o755)).unwrap();
    }
    for i in 0..40 {
        let path = format!("/d{}/f{}", i % 4, i);
        fs.write_file(&ctx, &path, format!("content-{i}").as_bytes()).unwrap();
    }
    // Deletes.
    for i in (0..40).step_by(5) {
        fs.unlink(&ctx, &format!("/d{}/f{}", i % 4, i)).unwrap();
    }
    // Intra- and cross-directory renames.
    for i in (1..40).step_by(7) {
        let from = format!("/d{}/f{}", i % 4, i);
        let to = format!("/d{}/renamed-{}", (i + 1) % 4, i);
        if fs.stat(&ctx, &from).is_ok() {
            fs.rename(&ctx, &from, &to).unwrap();
        }
    }
    // Links.
    fs.link(&ctx, "/d2/f2", "/d0/hard-link").unwrap();
    fs.symlink(&ctx, "/d2/f2", "/d0/soft-link").unwrap();
    // Overwrites & appends.
    let fd = fs.open(&ctx, "/d2/f2", OpenFlags::APPEND, FileMode::default()).unwrap();
    fs.write(&ctx, fd, b"-appended").unwrap();
    fs.close(&ctx, fd).unwrap();
    let fd = fs.open(&ctx, "/d3/f3", OpenFlags::RDWR, FileMode::default()).unwrap();
    fs.pwrite(&ctx, fd, b"XYZ", 2).unwrap();
    fs.close(&ctx, fd).unwrap();
    // Directory shuffle.
    fs.mkdir(&ctx, "/d0/sub", FileMode::dir(0o755)).unwrap();
    fs.rename(&ctx, "/d0/sub", "/d1/sub-moved").unwrap();
    fs.rmdir(&ctx, "/d1/sub-moved").unwrap();
}

fn diff_against_ref(fs: &dyn FileSystem) {
    let reference = RefFs::new();
    drive(&reference);
    drive(fs);
    let expected = snapshot_tree(&reference);
    let actual = snapshot_tree(fs);
    assert_eq!(actual, expected, "{} diverged from the reference fs", fs.name());
    // Content equality for every regular file.
    let ctx = ProcCtx::root(1);
    for (path, ftype, _) in &expected {
        if *ftype == simurgh_fsapi::FileType::Regular {
            assert_eq!(
                fs.read_to_vec(&ctx, path).unwrap(),
                reference.read_to_vec(&ctx, path).unwrap(),
                "content mismatch at {path} on {}",
                fs.name()
            );
        }
    }
}

#[test]
fn simurgh_matches_reference() {
    diff_against_ref(&simurgh(64 << 20));
}

#[test]
fn nova_matches_reference() {
    diff_against_ref(&simurgh_baselines::nova(Arc::new(PmemRegion::new(64 << 20))));
}

#[test]
fn pmfs_matches_reference() {
    diff_against_ref(&simurgh_baselines::pmfs(Arc::new(PmemRegion::new(64 << 20))));
}

#[test]
fn ext4dax_matches_reference() {
    diff_against_ref(&simurgh_baselines::ext4dax(Arc::new(PmemRegion::new(64 << 20))));
}

#[test]
fn splitfs_matches_reference() {
    diff_against_ref(&simurgh_baselines::splitfs(Arc::new(PmemRegion::new(64 << 20))));
}

#[test]
fn simurgh_matches_reference_across_remount() {
    let fs = simurgh(64 << 20);
    let reference = RefFs::new();
    drive(&reference);
    drive(&fs);
    let region = fs.region().clone();
    fs.unmount();
    let fs2 = simurgh_core::SimurghFs::mount(region, simurgh_core::SimurghConfig::default())
        .expect("remount");
    assert_eq!(snapshot_tree(&fs2), snapshot_tree(&reference));
}

#[test]
fn error_paths_match_reference() {
    let fs = simurgh(32 << 20);
    let reference = RefFs::new();
    let ctx = ProcCtx::root(1);
    for f in [&fs as &dyn FileSystem, &reference as &dyn FileSystem] {
        f.mkdir(&ctx, "/dir", FileMode::dir(0o755)).unwrap();
        f.write_file(&ctx, "/dir/file", b"x").unwrap();
    }
    type Case = Box<dyn Fn(&dyn FileSystem) -> String>;
    let cases: Vec<(&str, Case)> = vec![
        ("stat missing", Box::new(|f| format!("{:?}", f.stat(&ProcCtx::root(1), "/nope")))),
        ("unlink dir", Box::new(|f| format!("{:?}", f.unlink(&ProcCtx::root(1), "/dir")))),
        ("rmdir file", Box::new(|f| format!("{:?}", f.rmdir(&ProcCtx::root(1), "/dir/file")))),
        ("rmdir nonempty", Box::new(|f| format!("{:?}", f.rmdir(&ProcCtx::root(1), "/dir")))),
        (
            "mkdir exists",
            Box::new(|f| format!("{:?}", f.mkdir(&ProcCtx::root(1), "/dir", FileMode::dir(0o755)))),
        ),
        (
            "open dir for write",
            Box::new(|f| {
                format!(
                    "{:?}",
                    f.open(&ProcCtx::root(1), "/dir", OpenFlags::WRONLY, FileMode::default())
                        .map(|_| ())
                )
            }),
        ),
        (
            "rename missing",
            Box::new(|f| format!("{:?}", f.rename(&ProcCtx::root(1), "/ghost", "/dir/x"))),
        ),
        ("readlink non-symlink", Box::new(|f| format!("{:?}", f.readlink(&ProcCtx::root(1), "/dir/file")))),
        (
            "link directory",
            Box::new(|f| format!("{:?}", f.link(&ProcCtx::root(1), "/dir", "/dir2"))),
        ),
        (
            "relative path",
            Box::new(|f| format!("{:?}", f.stat(&ProcCtx::root(1), "not/absolute"))),
        ),
    ];
    for (name, case) in cases {
        assert_eq!(case(&fs), case(&reference), "error mismatch for: {name}");
    }
}
