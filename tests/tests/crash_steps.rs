//! Crash injection at the individual persist steps of the Fig. 5 protocols.
//!
//! Runs on crash-tracked NVMM: each test reproduces the exact prefix of a
//! protocol a dying process would have persisted, cuts the power, remounts
//! and checks that recovery lands in the paper's prescribed state — roll
//! forward after the commit point, roll back (reclaim) before it.

use simurgh_core::hash::dir_line;
use simurgh_core::obj::dirblock::NLINES;
use simurgh_core::obj::fentry::FileEntry;
use simurgh_core::obj::{self};
use simurgh_core::super_block::PoolKind;
use simurgh_core::{dir, SimurghConfig, SimurghFs};
use simurgh_fsapi::{FileMode, FileSystem, FileType, ProcCtx};
use simurgh_tests::{crash_and_remount, simurgh_tracked, snapshot_tree};

const CTX: ProcCtx = ProcCtx::root(1);

fn setup() -> SimurghFs {
    let fs = simurgh_tracked(32 << 20);
    fs.mkdir(&CTX, "/dir", FileMode::dir(0o755)).unwrap();
    fs.write_file(&CTX, "/dir/existing", b"keep me").unwrap();
    fs
}

/// The recovered file system must contain `/dir/existing` intact and accept
/// new work; returns it for extra assertions.
fn recover_and_check(fs: &SimurghFs) -> SimurghFs {
    let fs2 = crash_and_remount(fs);
    assert!(!fs2.recovery_report().was_clean);
    assert_eq!(fs2.read_to_vec(&CTX, "/dir/existing").unwrap(), b"keep me");
    fs2.write_file(&CTX, "/dir/new-after-recovery", b"works").unwrap();
    fs2
}

#[test]
fn create_crash_before_publish_reclaims_objects() {
    let fs = setup();
    // Fig. 5a steps 1–2 only: inode + file entry allocated, initialized and
    // persisted, but the hash-line pointer never written.
    let env = fs.testing_dir_env();
    let ino = env.meta.alloc(PoolKind::Inode).unwrap();
    simurgh_core::obj::inode::Inode(ino).init(
        fs.region(),
        FileMode::file(0o644),
        0,
        0,
        1,
        1,
    );
    fs.region().persist(ino, 128);
    let fe = env.meta.alloc(PoolKind::FileEntry).unwrap();
    FileEntry(fe).init(fs.region(), "orphan", FileType::Regular, ino);
    fs.region().persist(fe, 256);

    let fs2 = recover_and_check(&fs);
    assert!(fs2.stat(&CTX, "/dir/orphan").is_err(), "unpublished create must vanish");
    assert!(
        fs2.recovery_report().reclaimed_objects >= 2,
        "inode + entry reclaimed, got {}",
        fs2.recovery_report().reclaimed_objects
    );
}

#[test]
fn create_crash_after_publish_rolls_forward() {
    let fs = setup();
    let env = fs.testing_dir_env();
    let (_, first) = fs.testing_dir_block("/dir").unwrap();
    // Full create via the protocol, then re-mark dirty as if the crash hit
    // between step 5 (publish) and step 6 (clear dirty bits).
    let ino = env.meta.alloc(PoolKind::Inode).unwrap();
    simurgh_core::obj::inode::Inode(ino).init(fs.region(), FileMode::file(0o644), 0, 0, 1, 1);
    fs.region().persist(ino, 128);
    let fe = dir::insert(&env, first, "half-created", FileType::Regular, ino).unwrap();
    obj::set_dirty(fs.region(), fe.ptr());
    obj::set_dirty(fs.region(), ino);

    let fs2 = recover_and_check(&fs);
    let st = fs2.stat(&CTX, "/dir/half-created").expect("published create rolls forward");
    assert!(st.is_file());
    // The dirty bits were cleared by recovery.
    let h = obj::header(fs2.region(), simurgh_pmem::PPtr::new(st.ino));
    assert!(obj::is_valid(h) && !obj::is_dirty(h));
}

#[test]
fn delete_crash_after_invalidate_completes() {
    let fs = setup();
    fs.write_file(&CTX, "/dir/doomed", b"bye").unwrap();
    // Fig. 5b step 2 only: entry invalidated, slot still pointing at it.
    let env = fs.testing_dir_env();
    let (_, first) = fs.testing_dir_block("/dir").unwrap();
    let fe = dir::lookup(&env, first, "doomed").unwrap();
    obj::invalidate(fs.region(), fe.ptr());

    let fs2 = recover_and_check(&fs);
    assert!(fs2.stat(&CTX, "/dir/doomed").is_err(), "interrupted delete completes");
    assert!(fs2.recovery_report().reclaimed_objects >= 1);
}

#[test]
fn delete_crash_after_entry_zero_completes() {
    let fs = setup();
    fs.write_file(&CTX, "/dir/doomed2", b"bye").unwrap();
    let env = fs.testing_dir_env();
    let (_, first) = fs.testing_dir_block("/dir").unwrap();
    let fe = dir::lookup(&env, first, "doomed2").unwrap();
    // Steps 2–4: invalidate and zero the entry; the slot still points at
    // the zeroed object ("the pointer needs to be zeroed" case).
    obj::invalidate(fs.region(), fe.ptr());
    env.meta.free_no_recycle(PoolKind::FileEntry, fe.ptr());

    let fs2 = recover_and_check(&fs);
    assert!(fs2.stat(&CTX, "/dir/doomed2").is_err());
    // The slot was nulled by recovery: creating the same name works.
    fs2.write_file(&CTX, "/dir/doomed2", b"again").unwrap();
    assert_eq!(fs2.read_to_vec(&CTX, "/dir/doomed2").unwrap(), b"again");
}

#[test]
fn rename_crash_mid_protocol_resolves_exactly_once() {
    let fs = setup();
    fs.write_file(&CTX, "/dir/old-name", b"payload").unwrap();
    let env = fs.testing_dir_env();
    let (_, first) = fs.testing_dir_block("/dir").unwrap();
    // Reproduce Fig. 5c up to step 5: shadow entry created, directory
    // rename flag set, old line pointing at the *new* entry (hash
    // mismatch), nothing published at the new line yet.
    let old_fe = dir::lookup(&env, first, "old-name").unwrap();
    let ino = old_fe.inode(fs.region());
    let nfe = env.meta.alloc(PoolKind::FileEntry).unwrap();
    FileEntry(nfe).init(fs.region(), "new-name", FileType::Regular, ino);
    fs.region().persist(nfe, 256);
    first.set_flag(fs.region(), simurgh_core::obj::dirblock::DF_RENAME);
    let old_line = dir_line("old-name", NLINES);
    // Find the block whose slot holds the old entry and redirect it.
    let blk = dir::chain(fs.region(), first)
        .find(|b| b.line(fs.region(), old_line) == old_fe.ptr())
        .expect("old entry block");
    blk.set_line(fs.region(), old_line, nfe);

    let fs2 = recover_and_check(&fs);
    // Roll forward: reachable under the new name, not under the old.
    assert!(fs2.stat(&CTX, "/dir/old-name").is_err(), "old name gone");
    assert_eq!(fs2.read_to_vec(&CTX, "/dir/new-name").unwrap(), b"payload");
    // Exactly one entry for the payload file.
    let tree = snapshot_tree(&fs2);
    let hits = tree.iter().filter(|(p, _, _)| p.contains("name")).count();
    assert_eq!(hits, 1, "exactly one name for the renamed file: {tree:?}");
}

#[test]
fn decentralized_repair_mid_rename_is_per_line() {
    // A process dies mid-rename (Fig. 5c step 5: old line redirected to the
    // shadow entry, nothing at the new line) and a *live* waiter runs the
    // decentralized repair — no remount. Invalidation must be per line: the
    // other 255 lines keep index authority throughout, and the repaired
    // lines re-converge to indexed O(1) before repair_line returns.
    let fs = setup();
    fs.write_file(&CTX, "/dir/old-name", b"payload").unwrap();
    let env = fs.testing_dir_env();
    let (_, first) = fs.testing_dir_block("/dir").unwrap();
    let ix = fs.testing_index();
    let old_fe = dir::lookup(&env, first, "old-name").unwrap();
    let ino = old_fe.inode(fs.region());
    let nfe = env.meta.alloc(PoolKind::FileEntry).unwrap();
    FileEntry(nfe).init(fs.region(), "new-name", FileType::Regular, ino);
    fs.region().persist(nfe, 256);
    first.set_flag(fs.region(), simurgh_core::obj::dirblock::DF_RENAME);
    let old_line = dir_line("old-name", NLINES);
    let home = dir_line("new-name", NLINES);
    let blk = dir::chain(fs.region(), first)
        .find(|b| b.line(fs.region(), old_line) == old_fe.ptr())
        .expect("old entry block");
    blk.set_line(fs.region(), old_line, nfe);
    let untouched = (0..NLINES).find(|l| *l != old_line && *l != home).unwrap();
    assert!(ix.is_line_complete(first.ptr(), untouched));

    dir::repair_line(&env, first, old_line);

    // Per-line re-convergence: both touched lines and every untouched line
    // are authoritative again — no full-directory degradation.
    assert!(ix.is_line_complete(first.ptr(), old_line), "repaired line re-converged");
    assert!(ix.is_line_complete(first.ptr(), home), "rename home line re-converged");
    assert!(ix.is_line_complete(first.ptr(), untouched), "untouched line kept authority");
    assert!(ix.is_complete(first.ptr()));
    // Rolled forward exactly once.
    assert!(dir::lookup(&env, first, "old-name").is_none(), "old name gone");
    assert_eq!(fs.read_to_vec(&CTX, "/dir/new-name").unwrap(), b"payload");
    // And the steady state is indexed O(1) again: the hit and the
    // authoritative miss both answer without walking the chain.
    let before = fs.dir_stats();
    for _ in 0..10 {
        fs.stat(&CTX, "/dir/new-name").unwrap();
        assert!(fs.stat(&CTX, "/dir/old-name").is_err());
    }
    let d = fs.dir_stats().since(&before);
    assert_eq!(d.chain_walks, 0, "post-repair lookups still walk the chain");
}

#[test]
fn lost_line_authority_falls_back_then_reconverges() {
    // The degraded window itself: while one line's authority is dropped,
    // lookups on it must fall back to the chain (and stay correct), lookups
    // on every other line must stay indexed, and reindexing just that line
    // restores authoritative O(1) misses.
    let fs = setup();
    for i in 0..20 {
        fs.write_file(&CTX, &format!("/dir/f{i}"), b"x").unwrap();
    }
    let env = fs.testing_dir_env();
    let (_, first) = fs.testing_dir_block("/dir").unwrap();
    let ix = fs.testing_index();
    let line = dir_line("f0", NLINES);
    ix.mark_line_incomplete(first.ptr(), line);
    ix.remove(first.ptr(), simurgh_core::hash::fnv1a(b"f0"));

    // Fallback on the degraded line: correct answer via a chain walk.
    let before = fs.dir_stats();
    assert_eq!(fs.read_to_vec(&CTX, "/dir/f0").unwrap(), b"x");
    let d = fs.dir_stats().since(&before);
    assert!(d.chain_walks >= 1, "incomplete line must fall back to the chain");

    // Other lines are untouched: indexed, no walks.
    let before = fs.dir_stats();
    for i in 1..20 {
        if dir_line(&format!("f{i}"), NLINES) != line {
            fs.stat(&CTX, &format!("/dir/f{i}")).unwrap();
        }
    }
    let d = fs.dir_stats().since(&before);
    assert_eq!(d.chain_walks, 0, "unrelated lines lost their authority");

    // A miss on the degraded line needs the chain (no authority to say no)...
    let ghost = format!("/dir/{}", simurgh_core::testing::colliding_name("f0", "ghost-"));
    let before = fs.dir_stats();
    assert!(fs.stat(&CTX, &ghost).is_err());
    let d = fs.dir_stats().since(&before);
    assert!(d.chain_walks >= 1, "miss on a degraded line cannot be authoritative");

    // ...until the per-line reindex restores authority for exactly that line.
    dir::reindex_line(&env, first, line);
    assert!(ix.is_line_complete(first.ptr(), line));
    let before = fs.dir_stats();
    assert_eq!(fs.read_to_vec(&CTX, "/dir/f0").unwrap(), b"x");
    assert!(fs.stat(&CTX, &ghost).is_err());
    let d = fs.dir_stats().since(&before);
    assert_eq!(d.chain_walks, 0, "reindexed line answers hits and misses O(1)");
}

#[test]
fn cross_rename_crash_after_publish_rolls_forward() {
    let fs = setup();
    fs.mkdir(&CTX, "/dst", FileMode::dir(0o755)).unwrap();
    fs.write_file(&CTX, "/dir/mover", b"cargo").unwrap();
    let env = fs.testing_dir_env();
    let (_, src) = fs.testing_dir_block("/dir").unwrap();
    let (_, dst) = fs.testing_dir_block("/dst").unwrap();
    let old_fe = dir::lookup(&env, src, "mover").unwrap();
    let ino = old_fe.inode(fs.region());
    // Arm the log, publish at the destination, then "crash" before the
    // source entry is retired.
    let nfe = env.meta.alloc(PoolKind::FileEntry).unwrap();
    FileEntry(nfe).init(fs.region(), "moved", FileType::Regular, ino);
    fs.region().persist(nfe, 256);
    let old_line = dir_line("mover", NLINES);
    let new_line = dir_line("moved", NLINES);
    src.write_log(
        fs.region(),
        &simurgh_core::obj::dirblock::RenameLog {
            op: simurgh_core::obj::dirblock::logop::CROSS_RENAME,
            src_dir: src.ptr().off(),
            dst_dir: dst.ptr().off(),
            inode: ino.off(),
            old_fentry: old_fe.ptr().off(),
            new_fentry: nfe.off(),
            old_line: old_line as u64,
            new_line: new_line as u64,
        },
    );
    src.set_flag(fs.region(), simurgh_core::obj::dirblock::DF_RENAME);
    dst.set_line(fs.region(), new_line, nfe);

    let fs2 = recover_and_check(&fs);
    assert!(fs2.stat(&CTX, "/dir/mover").is_err(), "source retired by log replay");
    assert_eq!(fs2.read_to_vec(&CTX, "/dst/moved").unwrap(), b"cargo");
}

#[test]
fn cross_rename_crash_before_publish_rolls_back() {
    let fs = setup();
    fs.mkdir(&CTX, "/dst", FileMode::dir(0o755)).unwrap();
    fs.write_file(&CTX, "/dir/stayer", b"luggage").unwrap();
    let env = fs.testing_dir_env();
    let (_, src) = fs.testing_dir_block("/dir").unwrap();
    let (_, dst) = fs.testing_dir_block("/dst").unwrap();
    let old_fe = dir::lookup(&env, src, "stayer").unwrap();
    let ino = old_fe.inode(fs.region());
    let nfe = env.meta.alloc(PoolKind::FileEntry).unwrap();
    FileEntry(nfe).init(fs.region(), "gone", FileType::Regular, ino);
    fs.region().persist(nfe, 256);
    // Log armed, but nothing published at the destination.
    src.write_log(
        fs.region(),
        &simurgh_core::obj::dirblock::RenameLog {
            op: simurgh_core::obj::dirblock::logop::CROSS_RENAME,
            src_dir: src.ptr().off(),
            dst_dir: dst.ptr().off(),
            inode: ino.off(),
            old_fentry: old_fe.ptr().off(),
            new_fentry: nfe.off(),
            old_line: dir_line("stayer", NLINES) as u64,
            new_line: dir_line("gone", NLINES) as u64,
        },
    );
    src.set_flag(fs.region(), simurgh_core::obj::dirblock::DF_RENAME);

    let fs2 = recover_and_check(&fs);
    assert_eq!(fs2.read_to_vec(&CTX, "/dir/stayer").unwrap(), b"luggage", "rollback keeps source");
    assert!(fs2.stat(&CTX, "/dst/gone").is_err(), "never-published name absent");
}

#[test]
fn same_dir_rename_nospace_leaves_directory_consistent() {
    // Regression: rename_same_dir used to reserve its destination slot
    // *after* setting DF_RENAME and redirecting the old line, so a DirBlock
    // pool exhaustion mid-protocol returned early with the directory marked
    // rename-in-progress and the file unreachable by name. The slot is now
    // reserved before any destructive step.
    let fs = setup();
    fs.write_file(&CTX, "/dir/mover", b"payload").unwrap();
    let env = fs.testing_dir_env();
    let (region, first) = fs.testing_dir_block("/dir").unwrap();
    // A destination name whose line collides with "existing": the first
    // block's slot is taken, so the rename must extend the chain.
    let clash = simurgh_core::testing::colliding_name("existing", "clash");
    let clash_path = format!("/dir/{clash}");
    // Exhaust the DirBlock pool so the chain extension cannot be served.
    while env.meta.alloc(PoolKind::DirBlock).is_ok() {}

    assert!(fs.rename(&CTX, "/dir/mover", &clash_path).is_err(), "rename must report NoSpace");
    // No half-state: flag clear, both names in their pre-rename state.
    assert_eq!(first.flags(&region) & simurgh_core::obj::dirblock::DF_RENAME, 0);
    assert_eq!(fs.read_to_vec(&CTX, "/dir/mover").unwrap(), b"payload");
    assert!(fs.stat(&CTX, &clash_path).is_err());

    // And the failed attempt leaves nothing for recovery to trip over.
    let fs2 = crash_and_remount(&fs);
    assert_eq!(fs2.read_to_vec(&CTX, "/dir/mover").unwrap(), b"payload");
    assert_eq!(fs2.read_to_vec(&CTX, "/dir/existing").unwrap(), b"keep me");
    assert!(fs2.stat(&CTX, &clash_path).is_err());
}

#[test]
fn cross_dir_rename_nospace_leaves_journal_idle() {
    // Regression: rename_cross_dir used to arm the source directory's
    // rename log and set DF_RENAME before reserving the destination slot; a
    // pool exhaustion then bailed out with the journal armed for an
    // operation that never happened, sending the next mount into a bogus
    // log replay. The slot is now reserved before the log is written.
    let fs = setup();
    fs.mkdir(&CTX, "/dst", FileMode::dir(0o755)).unwrap();
    fs.write_file(&CTX, "/dst/anchor", b"here first").unwrap();
    fs.write_file(&CTX, "/dir/mover2", b"cargo").unwrap();
    let env = fs.testing_dir_env();
    let (region, src) = fs.testing_dir_block("/dir").unwrap();
    let clash = simurgh_core::testing::colliding_name("anchor", "xclash");
    let clash_path = format!("/dst/{clash}");
    while env.meta.alloc(PoolKind::DirBlock).is_ok() {}

    assert!(fs.rename(&CTX, "/dir/mover2", &clash_path).is_err(), "rename must report NoSpace");
    // The journal was never armed and the source directory is not flagged.
    assert_eq!(src.read_log(&region).op, simurgh_core::obj::dirblock::logop::IDLE);
    assert_eq!(src.flags(&region) & simurgh_core::obj::dirblock::DF_RENAME, 0);
    assert_eq!(fs.read_to_vec(&CTX, "/dir/mover2").unwrap(), b"cargo");
    assert!(fs.stat(&CTX, &clash_path).is_err());

    let fs2 = crash_and_remount(&fs);
    assert_eq!(fs2.read_to_vec(&CTX, "/dir/mover2").unwrap(), b"cargo");
    assert_eq!(fs2.read_to_vec(&CTX, "/dst/anchor").unwrap(), b"here first");
    assert!(fs2.stat(&CTX, &clash_path).is_err());
}

#[test]
fn unflushed_data_does_not_corrupt_metadata() {
    let fs = setup();
    // Write a file, then scribble into its data blocks WITHOUT flushing:
    // the scribble must die with the crash while metadata stays intact.
    fs.write_file(&CTX, "/dir/stable", b"AAAA").unwrap();
    let st = fs.stat(&CTX, "/dir/stable").unwrap();
    let ino = simurgh_core::obj::inode::Inode(simurgh_pmem::PPtr::new(st.ino));
    let ext = ino.extent(fs.region(), 0);
    fs.region().write(simurgh_pmem::PPtr::new(ext.start), *b"ZZZZ"); // no flush

    let fs2 = recover_and_check(&fs);
    assert_eq!(fs2.read_to_vec(&CTX, "/dir/stable").unwrap(), b"AAAA");
}

#[test]
fn repeated_crashes_converge() {
    // Crash, recover, do work, crash again — five times; the tree stays
    // consistent throughout.
    let mut fs = setup();
    for round in 0..5 {
        fs.write_file(&CTX, &format!("/dir/round-{round}"), b"r").unwrap();
        fs = crash_and_remount(&fs);
        for prior in 0..=round {
            assert!(
                fs.stat(&CTX, &format!("/dir/round-{prior}")).is_ok(),
                "round {prior} survived crash {round}"
            );
        }
    }
    assert_eq!(fs.read_to_vec(&CTX, "/dir/existing").unwrap(), b"keep me");
}

#[test]
fn clean_unmount_skips_repairs() {
    let fs = setup();
    let region = fs.region().clone();
    fs.unmount();
    let fs2 = SimurghFs::mount(region, SimurghConfig::default()).unwrap();
    let r = fs2.recovery_report();
    assert!(r.was_clean);
    assert_eq!(r.reclaimed_objects, 0);
    assert_eq!(fs2.read_to_vec(&CTX, "/dir/existing").unwrap(), b"keep me");
}
