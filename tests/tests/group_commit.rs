//! Tier-1 gate for the group-commit work: per-op persistence costs against
//! the pinned pre-coalescing baseline, storm-level fence and allocator
//! amortization, adaptive-backoff lock health, and recovery of refill
//! batches leaked by a `kill -9`'d peer mount.
//!
//! The kill-9 case re-execs this binary with `--exact
//! gc_refill_worker_entry` (same protocol as the multiproc matrix): the
//! hidden worker test below is inert in a normal run and becomes the victim
//! process when the driver's environment variable is present.

use std::io::{BufRead, BufReader, Write};
use std::process::{Command, Stdio};
use std::sync::Arc;

use simurgh_core::alloc::lock_stats;
use simurgh_core::testing::matrix::probe_costs;
use simurgh_core::{check, SimurghConfig, SimurghFs};
use simurgh_fsapi::{FileMode, FileSystem, OpenFlags, ProcCtx};
use simurgh_pmem::RegionBuilder;
use simurgh_tests::simurgh;

const CTX: ProcCtx = ProcCtx::root(1);

/// `(op, fences, pool_trips, seg_trips)` measured with `probe_costs()` at
/// the parent of the group-commit change: every persist carried its own
/// sfence, every metadata allocation took a pool round trip, every block
/// extension took the segment lock. This is the pinned baseline the wins
/// below are asserted against — re-pin deliberately if the protocols
/// change, don't let it drift.
const BASELINE: &[(&str, u64, u64, u64)] = &[
    ("create", 10, 2, 0),
    ("unlink", 8, 0, 1),
    ("rename-samedir", 12, 1, 0),
    ("rename-crossdir", 14, 1, 0),
    ("append", 4, 0, 2),
    ("truncate-shrink", 7, 0, 1),
    ("symlink", 13, 2, 1),
];

fn baseline(op: &str) -> (u64, u64, u64) {
    let &(_, f, p, s) = BASELINE.iter().find(|(n, ..)| *n == op).expect("op in baseline table");
    (f, p, s)
}

#[test]
fn per_op_costs_beat_the_pinned_baseline() {
    let costs = probe_costs();
    assert_eq!(costs.len(), BASELINE.len(), "scripted op set changed — re-pin the baseline");
    let (mut fences_now, mut fences_then) = (0u64, 0u64);
    for c in &costs {
        let (base_f, base_p, base_s) = baseline(&c.op);
        assert!(
            c.fences < base_f,
            "{}: {} fences, pre-coalescing baseline was {}",
            c.op,
            c.fences,
            base_f
        );
        assert!(c.fences_elided > 0, "{}: the group-commit scope absorbed nothing", c.op);
        assert!(
            c.pool_trips <= base_p / 2,
            "{}: {} pool trips, batched refill should at least halve the baseline {}",
            c.op,
            c.pool_trips,
            base_p
        );
        assert!(c.seg_trips <= base_s, "{}: segment trips regressed: {} > {}", c.op, c.seg_trips, base_s);
        fences_now += c.fences;
        fences_then += base_f;
    }
    // Aggregate across the whole scripted mix: ≥ 30% fewer sfence
    // boundaries (currently ~44%).
    assert!(
        fences_now * 10 <= fences_then * 7,
        "aggregate fences {fences_now} vs baseline {fences_then}: win under 30%"
    );
}

#[test]
fn create_unlink_storm_coalesces_fences_without_lock_regressions() {
    let fs = Arc::new(simurgh(64 << 20));
    let root = ProcCtx::root(0);
    fs.mkdir(&root, "/storm", FileMode::dir(0o777)).unwrap();
    const THREADS: u32 = 4;
    const PAIRS: u64 = 200;

    let s0 = fs.region().stats().snapshot();
    let trips0 = fs.meta_alloc().pool_trips();
    let steals0 = lock_stats().steals.load(std::sync::atomic::Ordering::Relaxed);
    let acquires0 = lock_stats().acquires.load(std::sync::atomic::Ordering::Relaxed);
    crossbeam::thread::scope(|s| {
        for t in 0..THREADS {
            let fs = &fs;
            s.spawn(move |_| {
                let ctx = ProcCtx::root(t + 1);
                for i in 0..PAIRS {
                    let p = format!("/storm/t{t}-{i}");
                    let fd = fs
                        .open(&ctx, &p, OpenFlags::CREATE, FileMode::default())
                        .unwrap();
                    fs.close(&ctx, fd).unwrap();
                    fs.unlink(&ctx, &p).unwrap();
                }
            });
        }
    })
    .unwrap();
    let d = fs.region().stats().snapshot().since(&s0);
    let trips = fs.meta_alloc().pool_trips() - trips0;
    let steals = lock_stats().steals.load(std::sync::atomic::Ordering::Relaxed) - steals0;
    let acquires = lock_stats().acquires.load(std::sync::atomic::Ordering::Relaxed) - acquires0;
    let pairs = u64::from(THREADS) * PAIRS;

    // Fences: ≥ 30% below the pinned create+unlink sum (10 + 8 per pair).
    let (create_f, ..) = baseline("create");
    let (unlink_f, ..) = baseline("unlink");
    assert!(
        d.fences * 10 <= pairs * (create_f + unlink_f) * 7,
        "storm crossed {} fences for {pairs} create+unlink pairs (baseline {}/pair)",
        d.fences,
        create_f + unlink_f
    );
    assert!(d.fences_elided > 0, "storm scopes absorbed nothing");
    // Batched refill: the pinned baseline paid 2 pool trips per create;
    // the 8-slot refill cache must at least halve that.
    assert!(
        trips <= pairs,
        "{trips} pool trips for {pairs} creates — refill batching is not amortizing"
    );
    // Adaptive backoff keeps the lock protocol honest under contention:
    // every op still acquires, and takeovers (steals) stay what they are —
    // crash recovery, not live arbitration. The margin absorbs unrelated
    // tests in this binary feeding the same global battery.
    assert!(
        acquires >= pairs,
        "only {acquires} lock acquisitions across {pairs} pairs"
    );
    assert!(
        steals <= pairs / 50,
        "{steals} lock steals in a live storm — backoff is timing out healthy holders"
    );
}

#[test]
fn append_storm_amortizes_segment_lock_trips() {
    let fs = simurgh(64 << 20);
    let root = ProcCtx::root(0);
    let fd = fs.open(&root, "/big", OpenFlags::CREATE, FileMode::default()).unwrap();
    let chunk = vec![7u8; 4096];
    const APPENDS: u64 = 128;

    let g0 = fs.block_alloc().seg_trips();
    let s0 = fs.region().stats().snapshot();
    for i in 0..APPENDS {
        fs.pwrite(&root, fd, &chunk, i * 4096).unwrap();
    }
    let d = fs.region().stats().snapshot().since(&s0);
    let trips = fs.block_alloc().seg_trips() - g0;
    fs.close(&root, fd).unwrap();

    // The pinned baseline paid 2 segment-lock trips per appended block;
    // the per-thread tail reservation must cut the storm total by ≥ 50%.
    let (base_f, _, base_s) = baseline("append");
    assert!(
        trips * 2 <= APPENDS * base_s,
        "{trips} segment trips for {APPENDS} appends (baseline {base_s}/append)"
    );
    // And the growth-path fences coalesce: ≥ 30% below baseline.
    assert!(
        d.fences * 10 <= APPENDS * base_f * 7,
        "{} fences for {APPENDS} appends (baseline {base_f}/append)",
        d.fences
    );
}

// ---------------------------------------------------------------------------
// kill -9 a peer with parked refill batches
// ---------------------------------------------------------------------------

const WORKER_ENV: &str = "SIMURGH_GC_REFILL_FILE";
const READY_LINE: &str = "GC-REFILL-READY";

/// Hidden worker entry: inert without the driver's environment. As the
/// victim it attaches the shared file, runs nine creates — the ninth
/// refills both metadata pools, parking 7 claimed-but-unreachable slots
/// per kind in this thread's refill cache — then parks idle so the SIGKILL
/// lands with no op in flight: the only garbage is the leaked batches.
#[test]
fn gc_refill_worker_entry() {
    let Ok(path) = std::env::var(WORKER_ENV) else { return };
    let region =
        Arc::new(RegionBuilder::open_file(&path).build().expect("worker: open region file"));
    let fs = SimurghFs::mount_shared(region, SimurghConfig::default()).expect("worker: attach");
    let ctx = ProcCtx::root(2);
    for i in 0..9 {
        fs.write_file(&ctx, &format!("/d/w{i}"), b"w").expect("worker: create");
    }
    println!("{READY_LINE}");
    std::io::stdout().flush().expect("worker: flush");
    loop {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
}

#[test]
fn killed_peer_refill_batches_are_reclaimed() {
    let path =
        std::env::temp_dir().join(format!("simurgh-gc-refill-{}.img", std::process::id()));
    let _ = std::fs::remove_file(&path);
    {
        let region = Arc::new(
            RegionBuilder::new(8 << 20).file(&path).build().expect("create region file"),
        );
        let fs = SimurghFs::format(region, SimurghConfig::default()).expect("format");
        fs.mkdir(&CTX, "/d", FileMode::dir(0o777)).unwrap();
        fs.unmount();
    }

    let exe = std::env::current_exe().expect("current exe");
    let mut child = Command::new(exe)
        .args(["--exact", "gc_refill_worker_entry", "--nocapture"])
        .env(WORKER_ENV, &path)
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn worker");
    let mut lines = BufReader::new(child.stdout.take().expect("worker stdout")).lines();
    loop {
        let line = lines.next().expect("worker exited before READY").expect("read worker");
        if line.contains(READY_LINE) {
            break;
        }
    }
    child.kill().expect("SIGKILL worker");
    child.wait().expect("reap worker");

    // First exclusive recovery: the victim's parked refill slots are
    // allocated-but-unreachable on media, so the sweep must free them —
    // at least one full batch's worth.
    let region = Arc::new(RegionBuilder::open_file(&path).build().expect("reopen"));
    let fs = SimurghFs::mount(region, SimurghConfig::default()).expect("recovery mount");
    let rep = fs.recovery_report();
    assert!(!rep.was_clean, "the victim died holding its attach — recovery must run");
    assert!(
        rep.reclaimed_objects >= 8,
        "only {} objects reclaimed — the leaked refill batches were not swept",
        rep.reclaimed_objects
    );
    for i in 0..9 {
        assert_eq!(
            fs.read_to_vec(&CTX, &format!("/d/w{i}")).expect("durable create"),
            b"w",
            "committed create lost"
        );
    }
    assert!(check::check(&fs, true).is_clean(), "fsck dirty after recovery");
    drop(fs); // no unmount: leave the file unclean for the convergence pass

    // Second recovery must find nothing: one pass fully reclaimed.
    let region = Arc::new(RegionBuilder::open_file(&path).build().expect("reopen twice"));
    let fs = SimurghFs::mount(region, SimurghConfig::default()).expect("second recovery");
    assert_eq!(
        fs.recovery_report().reclaimed_objects,
        0,
        "second recovery found garbage the first left behind"
    );
    fs.unmount();
    let _ = std::fs::remove_file(&path);
}
