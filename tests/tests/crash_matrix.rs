//! Tier-1 crash-matrix smoke: the exhaustive power-cut + ENOSPC matrix of
//! §4.3, run at full resolution for the namespace-critical ops (create,
//! both renames) and with head+tail boundary sampling for the rest. The
//! full uncapped sweep lives in `crashlab matrix` (see EXPERIMENTS.md).

use simurgh_core::testing::matrix::{self, RecoveredState};

/// Boundary sample size for the capped ops: enough to cover the early
/// roll-back region and the late roll-forward region of every protocol.
const CAP: u64 = 6;

fn run(name: &str, cap: Option<u64>) -> matrix::OpMatrix {
    let ops = matrix::scripted_ops();
    let spec = ops.iter().find(|s| s.name == name).unwrap_or_else(|| panic!("unknown op {name}"));
    matrix::run_op_matrix(spec, cap)
}

fn assert_clean(m: &matrix::OpMatrix) {
    assert!(m.is_clean(), "{}: unrecoverable states:\n{:#?}", m.op, m.failures);
    assert!(m.boundaries > 1, "{}: multi-fence protocol expected, saw {}", m.op, m.boundaries);
    let cp = m.commit_point.unwrap_or_else(|| panic!("{}: no commit point", m.op));
    for c in &m.cases {
        let want = if c.boundary < cp { RecoveredState::PreOp } else { RecoveredState::PostOp };
        assert_eq!(c.state, want, "{}: non-monotone at boundary {}", m.op, c.boundary);
    }
    assert_eq!(
        m.enospc.len() as u64,
        m.allocs,
        "{}: every allocation must have an ENOSPC replay",
        m.op
    );
}

#[test]
fn create_full_matrix() {
    let m = run("create", None);
    assert_clean(&m);
    assert!(!m.capped);
    assert_eq!(m.cases.len() as u64, m.boundaries + 1, "every boundary enumerated");
    assert!(m.allocs >= 2, "create allocates a file entry and an inode");
}

#[test]
fn rename_samedir_full_matrix() {
    let m = run("rename-samedir", None);
    assert_clean(&m);
    assert!(!m.capped);
    assert_eq!(m.cases.len() as u64, m.boundaries + 1);
}

#[test]
fn rename_crossdir_full_matrix() {
    let m = run("rename-crossdir", None);
    assert_clean(&m);
    assert!(!m.capped);
    assert_eq!(m.cases.len() as u64, m.boundaries + 1);
}

#[test]
fn remaining_ops_capped_matrix() {
    for name in ["unlink", "append", "truncate-shrink", "symlink"] {
        let m = run(name, Some(CAP));
        assert_clean(&m);
        // Anchors survive sampling: boundary 0 rolls back, the final
        // complete-run boundary rolls forward.
        assert_eq!(m.cases.first().unwrap().boundary, 0);
        assert_eq!(m.cases.first().unwrap().state, RecoveredState::PreOp);
        assert_eq!(m.cases.last().unwrap().boundary, m.boundaries);
        assert_eq!(m.cases.last().unwrap().state, RecoveredState::PostOp);
    }
}

#[test]
fn failing_cell_ships_a_parseable_flight_recorder_dump() {
    // A spec that deterministically fails its sanity check must come back
    // with the flight-recorder dump attached, and the dump must survive the
    // JSON rendering: present under "trace", balanced, and with every line
    // following the `t<tid> #<seq> <kind> ...` shape.
    let m = matrix::run_op_matrix(&matrix::failing_spec_for_tests(), Some(2));
    assert!(!m.is_clean(), "the no-op spec is supposed to fail");
    assert!(!m.trace.is_empty(), "failure report lacks the flight recorder");
    for line in &m.trace {
        assert!(line.starts_with('t'), "unexpected event shape: {line}");
        assert!(line.contains('#'), "unexpected event shape: {line}");
    }
    let j = matrix::to_json(std::slice::from_ref(&m));
    assert!(j.contains("\"trace\":[\""), "dump missing from --json report");
    let depth = j.chars().fold(0i64, |d, c| match c {
        '{' | '[' => d + 1,
        '}' | ']' => d - 1,
        _ => d,
    });
    assert_eq!(depth, 0, "dump broke the JSON nesting");
    // The dump must not smuggle in raw quotes or control characters that
    // would terminate the JSON strings early.
    for line in &m.trace {
        assert!(!line.contains('"') && !line.contains('\\') && !line.contains('\n'));
    }
}

#[test]
fn json_report_carries_the_totals() {
    let m = run("create", Some(4));
    let j = matrix::to_json(std::slice::from_ref(&m));
    assert!(j.contains("\"unrecoverable\":0"));
    assert!(j.contains(&format!("\"boundaries\":{}", m.boundaries)));
    assert!(j.contains(&format!("\"allocs\":{}", m.allocs)));
    assert!(j.contains("\"op\":\"create\""));
    // Hand-rolled JSON stays parseable: balanced braces and brackets.
    let depth = j.chars().fold(0i64, |d, c| match c {
        '{' | '[' => d + 1,
        '}' | ']' => d - 1,
        _ => d,
    });
    assert_eq!(depth, 0);
}
