//! End-to-end smoke tests of the paper harness: every experiment runs at a
//! tiny scale and the headline *shapes* of the paper hold — who wins, and
//! roughly how the breakdowns split.

use simurgh_bench::{experiments, Scale};

fn tiny() -> Scale {
    Scale {
        threads: vec![1, 2],
        meta_files: 400,
        appends: 300,
        fallocate_chunks: 2,
        data_ops: 500,
        file_bytes: 2 << 20,
        resolves: 3000,
        fb_scale: 0.01,
        fb_iters: 3,
        ycsb_records: 300,
        ycsb_ops: 300,
        tree_scale: 0.003,
        recovery_trees: 1,
        meta_region: 128 << 20,
        data_region: 192 << 20,
    }
}

/// Every test below compares wall-clock measurements. The default test
/// harness runs tests on parallel threads, so the measured runs contend
/// with each other and the comparisons flip randomly at tiny scale; each
/// test therefore holds this lock for the duration of its measurements.
fn serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::OnceLock<std::sync::Mutex<()>> = std::sync::OnceLock::new();
    LOCK.get_or_init(|| std::sync::Mutex::new(())).lock().unwrap_or_else(|e| e.into_inner())
}

/// Comparative timing assertions can still lose to host noise even when
/// serialized; give them a few attempts and only propagate the last panic.
fn best_of(attempts: usize, f: impl Fn() + std::panic::RefUnwindSafe) {
    for attempt in 1..attempts {
        if std::panic::catch_unwind(&f).is_ok() {
            return;
        }
        eprintln!("measurement attempt {attempt}/{attempts} failed; retrying");
    }
    f();
}

fn value_of<'a>(series: &'a [simurgh_bench::Series], fs: &str) -> &'a simurgh_bench::Series {
    series.iter().find(|s| s.fs == fs).unwrap_or_else(|| panic!("missing series {fs}"))
}

#[test]
fn fig7_simurgh_wins_metadata_benchmarks() {
    let _serial = serial();
    best_of(3, || {
        // Run the metadata panels well past the scale where the O(n)
        // directory paths used to lose to NOVA (the old open item tolerated
        // a 15% deficit at meta_files=400 and inverted outright by ~1500).
        // With the indexed O(1) metadata path there is no tolerance factor:
        // the paper's Fig. 7 has simurgh strictly ahead on a/b/c/d.
        let mut scale = tiny();
        scale.meta_files = 1500;
        for panel in ['a', 'b', 'c', 'd'] {
            let series = experiments::fig7(panel, &scale);
            let simurgh = value_of(&series, "simurgh").max_value();
            for baseline in ["nova", "pmfs", "ext4-dax", "splitfs"] {
                let other = value_of(&series, baseline).max_value();
                assert!(
                    simurgh > other,
                    "panel {panel}: simurgh ({simurgh:.1}) must strictly beat {baseline} ({other:.1})"
                );
            }
        }
    });
}

#[test]
fn fig7_simurgh_wins_data_benchmarks() {
    let _serial = serial();
    best_of(3, || {
        // With the extent cursor cache and the tail-extend append fast path
        // the data hot path is O(1) in the extent count, so the paper's
        // Fig. 7 shape — simurgh ahead on append (g), shared read (i) and
        // private read (j) — holds with no tolerance factor. The analyzer
        // guard in static_analysis.rs fails tier-1 if one is reintroduced.
        let scale = tiny();
        for panel in ['g', 'i', 'j'] {
            let series = experiments::fig7(panel, &scale);
            let simurgh = value_of(&series, "simurgh").max_value();
            for baseline in ["nova", "pmfs", "ext4-dax", "splitfs"] {
                let other = value_of(&series, baseline).max_value();
                assert!(
                    simurgh >= other,
                    "panel {panel}: simurgh ({simurgh:.2}) must not trail {baseline} ({other:.2})"
                );
            }
        }
    });
}

#[test]
fn fig7e_resolvepath_headline() {
    let _serial = serial();
    best_of(3, || {
        // §5.2: extremely fast ops benefit most — Simurgh should lead clearly.
        let series = experiments::fig7('e', &tiny());
        let simurgh = value_of(&series, "simurgh").max_value();
        let best_kernel = ["nova", "pmfs", "ext4-dax", "splitfs"]
            .iter()
            .map(|b| value_of(&series, b).max_value())
            .fold(0.0, f64::max);
        // Debug builds blunt Simurgh's own code speed while the baselines'
        // charged cycles stay constant, so require a win without a fixed margin.
        assert!(
            simurgh > best_kernel,
            "resolvepath: simurgh {simurgh:.1} vs best kernel {best_kernel:.1}"
        );
    });
}

#[test]
fn fig7g_splitfs_append_crossover() {
    let _serial = serial();
    // SplitFS's staged appends beat the kernel FSes (its selling point).
    let series = experiments::fig7('g', &tiny());
    let splitfs = value_of(&series, "splitfs").max_value();
    let ext4 = value_of(&series, "ext4-dax").max_value();
    assert!(splitfs > ext4, "splitfs staged appends ({splitfs:.2}) > ext4 ({ext4:.2})");
}

#[test]
fn table1_filesystem_dominates_on_nova() {
    let _serial = serial();
    // Table 1's point: on NOVA, file-system + copy time dominates runtime
    // (54-66% FS share in the paper). Loosely: FS share must be the
    // largest of the three for the metadata-heavy workloads.
    let rows = experiments::table1(&tiny());
    let (name, b) = &rows[2]; // git commit — 66% FS in the paper
    let (app, _copy, fsshare) = b.percentages();
    assert!(
        fsshare > app,
        "{name}: fs share {fsshare:.1}% should exceed app share {app:.1}%"
    );
}

#[test]
fn fig9_simurgh_beats_splitfs_everywhere() {
    let _serial = serial();
    best_of(3, || {
        let rows = experiments::fig9(&tiny());
        for (wl, vals) in &rows {
            let simurgh = vals.iter().find(|(n, _)| *n == "simurgh").unwrap().1;
            // Debug-build slack: the paper shape is simurgh ≥ splitfs; allow a
            // noise margin on this single-core box.
            assert!(
                simurgh >= 0.7,
                "{wl}: simurgh normalized {simurgh:.2} unexpectedly below splitfs"
            );
        }
    });
}

#[test]
fn fig10_simurgh_fs_share_is_small() {
    let _serial = serial();
    // Fig. 10: Simurgh's own share of YCSB runtime is < 10% in the paper;
    // allow generous slack for the emulated substrate.
    let rows = experiments::fig10(&tiny());
    for (wl, b) in &rows {
        let (_app, _copy, fsshare) = b.percentages();
        assert!(fsshare < 60.0, "{wl}: simurgh fs share {fsshare:.1}% too large");
    }
}

#[test]
fn fig11_fig12_apps_run_and_report() {
    let _serial = serial();
    let rows = experiments::fig11(&tiny());
    assert_eq!(rows.len(), 5);
    for (fs, pack, unpack) in rows {
        assert!(pack > 0.0 && unpack > 0.0, "{fs} tar throughput");
    }
    let rows = experiments::fig12(&tiny());
    for (fs, add, commit, reset) in rows {
        assert!(add > 0.0 && commit > 0.0 && reset > 0.0, "{fs} git throughput");
    }
}

#[test]
fn fig6_adapted_pattern_reads_slower_than_cached() {
    let _serial = serial();
    best_of(3, || {
        let series = experiments::fig6(&tiny());
        let orig = value_of(&series, "simurgh (original)").max_value();
        let adapted = value_of(&series, "simurgh (adapted)").max_value();
        // Cached repeats hit the same lines; the pseudo-random pattern cannot
        // be faster.
        assert!(orig >= adapted * 0.8, "original {orig:.2} vs adapted {adapted:.2}");
        assert!(series.iter().any(|s| s.fs == "max NVMM bandwidth"));
    });
}

#[test]
fn ablations_show_expected_direction() {
    let _serial = serial();
    best_of(3, || {
        let mut scale = tiny();
        // The security ablation compares real measured work (nosec) against
        // charged modeled cycles (syscall); at 3k resolves host noise is on
        // the order of the whole delta, so give this comparison a longer
        // run than the other tiny-scale panels.
        scale.resolves = 20_000;
        let sec = experiments::ablate_security(&scale);
        let nosec = value_of(&sec, "simurgh-nosec").max_value();
        let syscall = value_of(&sec, "simurgh-syscall").max_value();
        // The charged syscall premium (~400 cycles/call) is a few percent of
        // a debug-build resolve, so when the whole suite runs in parallel the
        // scheduler can invert the wall-clock ordering outright.  The strict
        // mode ordering is pinned deterministically on modeled cycles by
        // gem5_table_matches_paper_numbers; here we only guard against a
        // catastrophic inversion (e.g. the cost charged to the wrong mode).
        assert!(
            nosec > syscall * 0.5,
            "resolvepath without security cost ({nosec:.1}) collapsed far below \
             syscall-cost ({syscall:.1})"
        );
        let alloc = experiments::ablate_alloc(&scale);
        assert_eq!(alloc.len(), 2);
        let relaxed = experiments::ablate_relaxed(&scale);
        assert_eq!(relaxed.len(), 2);
    });
}

#[test]
fn recovery_experiment_scales_sanely() {
    let _serial = serial();
    let out = experiments::recovery(&tiny());
    assert!(out.files > 0 && out.directories > 0);
    assert!(out.total_seconds() < 30.0, "tiny recovery should be fast");
}

#[test]
fn gem5_table_matches_paper_numbers() {
    let _serial = serial();
    let r = experiments::gem5_cycles(100);
    let jmpp = r.rows.iter().find(|row| row.mechanism.contains("jmpp")).unwrap();
    assert_eq!(jmpp.modelled_cycles, 70);
    let syscall = r.rows.iter().find(|row| row.mechanism.contains("empty syscall")).unwrap();
    assert_eq!(syscall.modelled_cycles, 1200);
    let ratio = r.syscall_speedup_host();
    assert!(ratio > 5.0 && ratio < 7.0, "the 6x headline");
}
