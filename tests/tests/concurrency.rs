//! Concurrency stress across the whole stack: independent "processes"
//! (threads with distinct pids) hammering shared structures, followed by
//! full-tree consistency checks — the decentralized coordination the paper
//! claims (§4: processes communicate only through shared memory).

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

use simurgh_core::{testing, SimurghConfig, SimurghFs};
use simurgh_fsapi::{FileMode, FileSystem, OpenFlags, ProcCtx};
use simurgh_pmem::PmemRegion;
use simurgh_tests::simurgh;

#[test]
fn shared_directory_mixed_churn() {
    let fs = Arc::new(simurgh(128 << 20));
    let root = ProcCtx::root(0);
    fs.mkdir(&root, "/melee", FileMode::dir(0o777)).unwrap();
    crossbeam::thread::scope(|s| {
        for t in 0..6u32 {
            let fs = &fs;
            s.spawn(move |_| {
                let ctx = ProcCtx::root(t + 1);
                for i in 0..80 {
                    let p = format!("/melee/t{t}-{i}");
                    fs.write_file(&ctx, &p, format!("{t}:{i}").as_bytes()).unwrap();
                    match i % 4 {
                        0 => fs.unlink(&ctx, &p).unwrap(),
                        1 => fs.rename(&ctx, &p, &format!("/melee/t{t}-{i}-r")).unwrap(),
                        _ => {}
                    }
                }
            });
        }
    })
    .unwrap();
    // Survivors: i%4==1 renamed, i%4 in {2,3} original → 60 per thread.
    let entries = fs.readdir(&root, "/melee").unwrap();
    assert_eq!(entries.len(), 6 * 60);
    for e in &entries {
        let body = fs.read_to_vec(&root, &format!("/melee/{}", e.name)).unwrap();
        assert!(!body.is_empty());
    }
}

#[test]
fn create_shared_storm_agrees_with_index() {
    // N threads create-shared into one directory with the index enabled:
    // the Fig. 7b hot path. Afterwards the persistent chain (readdir), the
    // per-name lookups, and the shared-DRAM index must all agree exactly —
    // a lost CAS on a chain extension or a stale index entry shows up here.
    let fs = Arc::new(simurgh(192 << 20));
    let root = ProcCtx::root(0);
    fs.mkdir(&root, "/storm", FileMode::dir(0o777)).unwrap();
    const THREADS: u32 = 8;
    const PER_THREAD: usize = 400;
    crossbeam::thread::scope(|s| {
        for t in 0..THREADS {
            let fs = &fs;
            s.spawn(move |_| {
                let ctx = ProcCtx::root(t + 1);
                for i in 0..PER_THREAD {
                    let fd = fs
                        .open(
                            &ctx,
                            &format!("/storm/t{t}-f{i}"),
                            OpenFlags::CREATE,
                            FileMode::default(),
                        )
                        .unwrap();
                    fs.close(&ctx, fd).unwrap();
                }
            });
        }
    })
    .unwrap();
    // Zero lost or duplicate entries on the persistent chain.
    let entries = fs.readdir(&root, "/storm").unwrap();
    assert_eq!(entries.len(), THREADS as usize * PER_THREAD, "entries lost or duplicated");
    let mut seen = std::collections::HashSet::new();
    for e in &entries {
        assert!(seen.insert(e.name.clone()), "duplicate entry {}", e.name);
    }
    // The index agrees with the chain: full authority, every name a verified
    // O(1) hit (no fallback walks during the sweep).
    let (_, first) = fs.testing_dir_block("/storm").unwrap();
    let ix = fs.testing_index();
    assert!(ix.is_complete(first.ptr()), "storm degraded index authority");
    assert_eq!(ix.dir_len(first.ptr()), THREADS as usize * PER_THREAD, "index/chain count mismatch");
    let before = fs.dir_stats();
    for t in 0..THREADS {
        for i in 0..PER_THREAD {
            fs.stat(&root, &format!("/storm/t{t}-f{i}")).unwrap();
        }
    }
    let d = fs.dir_stats().since(&before);
    assert_eq!(d.chain_walks, 0, "post-storm lookups fell back to the chain");
    assert_eq!(d.stale_evicted, 0, "storm left stale index entries");
}

#[test]
fn cross_directory_rename_storm() {
    let fs = Arc::new(simurgh(64 << 20));
    let root = ProcCtx::root(0);
    for d in 0..4 {
        fs.mkdir(&root, &format!("/d{d}"), FileMode::dir(0o777)).unwrap();
    }
    for i in 0..40 {
        fs.write_file(&root, &format!("/d0/ball-{i}"), b"x").unwrap();
    }
    // Threads shuttle files around directories concurrently, including the
    // deadlock-prone reverse pair (d1<->d2).
    crossbeam::thread::scope(|s| {
        for t in 0..4u32 {
            let fs = &fs;
            s.spawn(move |_| {
                let ctx = ProcCtx::root(t + 1);
                for round in 0..30 {
                    let i = (t as usize * 10 + round) % 40;
                    let from = (t as usize + round) % 4;
                    let to = (from + 1 + round % 3) % 4;
                    let _ = fs.rename(
                        &ctx,
                        &format!("/d{from}/ball-{i}"),
                        &format!("/d{to}/ball-{i}"),
                    );
                }
            });
        }
    })
    .unwrap();
    // Every ball exists exactly once somewhere.
    let mut total = 0;
    let mut seen = std::collections::HashSet::new();
    for d in 0..4 {
        for e in fs.readdir(&root, &format!("/d{d}")).unwrap() {
            assert!(seen.insert(e.name.clone()), "duplicate {}", e.name);
            total += 1;
        }
    }
    assert_eq!(total, 40, "no ball lost or duplicated");
}

#[test]
fn concurrent_appends_to_shared_file_with_lock() {
    let fs = Arc::new(simurgh(64 << 20));
    let root = ProcCtx::root(0);
    let fd0 = fs.open(&root, "/log", OpenFlags::APPEND, FileMode::default()).unwrap();
    fs.close(&root, fd0).unwrap();
    crossbeam::thread::scope(|s| {
        for t in 0..4u32 {
            let fs = &fs;
            s.spawn(move |_| {
                let ctx = ProcCtx::root(t + 1);
                let fd = fs.open(&ctx, "/log", OpenFlags::APPEND, FileMode::default()).unwrap();
                for _ in 0..50 {
                    fs.write(&ctx, fd, &[b'a' + t as u8; 64]).unwrap();
                }
                fs.close(&ctx, fd).unwrap();
            });
        }
    })
    .unwrap();
    let data = fs.read_to_vec(&root, "/log").unwrap();
    assert_eq!(data.len(), 4 * 50 * 64, "no append lost");
    // Each 64-byte record is homogeneous (no torn interleaving).
    for chunk in data.chunks(64) {
        assert!(chunk.iter().all(|&b| b == chunk[0]), "torn append record");
    }
}

#[test]
fn readers_and_writers_shared_file() {
    let fs = Arc::new(simurgh(64 << 20));
    let root = ProcCtx::root(0);
    fs.write_file(&root, "/shared.bin", &vec![0u8; 1 << 20]).unwrap();
    let stop = AtomicU32::new(0);
    crossbeam::thread::scope(|s| {
        // One writer repeatedly overwrites whole 4K pages with a stamp.
        let fsw = &fs;
        let stop_ref = &stop;
        s.spawn(move |_| {
            let ctx = ProcCtx::root(1);
            let fd = fsw.open(&ctx, "/shared.bin", OpenFlags::RDWR, FileMode::default()).unwrap();
            for i in 0..200u32 {
                let stamp = vec![(i % 251) as u8 + 1; 4096];
                fsw.pwrite(&ctx, fd, &stamp, ((i % 256) as u64) * 4096).unwrap();
            }
            fsw.close(&ctx, fd).unwrap();
            stop_ref.store(1, Ordering::SeqCst);
        });
        // Readers check that every 4K page they read is homogeneous.
        for t in 0..3u32 {
            let fs = &fs;
            let stop_ref = &stop;
            s.spawn(move |_| {
                let ctx = ProcCtx::root(t + 2);
                let fd = fs.open(&ctx, "/shared.bin", OpenFlags::RDONLY, FileMode::default()).unwrap();
                let mut buf = vec![0u8; 4096];
                let mut i = 0u64;
                while stop_ref.load(Ordering::SeqCst) == 0 {
                    fs.pread(&ctx, fd, &mut buf, (i % 256) * 4096).unwrap();
                    i += 1;
                }
                fs.close(&ctx, fd).unwrap();
            });
        }
    })
    .unwrap();
}

#[test]
fn crashed_process_does_not_block_the_fleet() {
    let region = Arc::new(PmemRegion::new(64 << 20));
    let cfg = SimurghConfig { line_max_hold: Duration::from_millis(20), ..Default::default() };
    let fs = Arc::new(SimurghFs::format(region, cfg).unwrap());
    let root = ProcCtx::root(0);
    fs.mkdir(&root, "/work", FileMode::dir(0o777)).unwrap();
    fs.write_file(&root, "/work/victim", b"x").unwrap();
    testing::crash_mid_unlink(&fs, "/work", "victim");
    // Several processes hit the same line concurrently: exactly one repairs,
    // everyone makes progress.
    crossbeam::thread::scope(|s| {
        for t in 0..4u32 {
            let fs = &fs;
            s.spawn(move |_| {
                let ctx = ProcCtx::root(t + 1);
                let name = testing::colliding_name("victim", &format!("w{t}-"));
                fs.write_file(&ctx, &format!("/work/{name}"), b"done").unwrap();
            });
        }
    })
    .unwrap();
    assert!(fs.stat(&root, "/work/victim").is_err(), "interrupted delete finished");
    assert_eq!(fs.readdir(&root, "/work").unwrap().len(), 4);
}

#[test]
fn open_table_isolation_between_processes() {
    let fs = simurgh(32 << 20);
    let a = ProcCtx::root(1);
    let b = ProcCtx::root(2);
    fs.write_file(&a, "/f", b"hello").unwrap();
    let fd = fs.open(&a, "/f", OpenFlags::RDONLY, FileMode::default()).unwrap();
    // Process B cannot use process A's descriptor.
    let mut buf = [0u8; 5];
    assert!(fs.pread(&b, fd, &mut buf, 0).is_err());
    assert_eq!(fs.pread(&a, fd, &mut buf, 0).unwrap(), 5);
    fs.close(&a, fd).unwrap();
}

#[test]
fn minikv_under_concurrent_clients() {
    let fs = simurgh(128 << 20);
    let kv = Arc::new(
        simurgh_workloads::minikv::MiniKv::open(
            &fs,
            "/db",
            simurgh_workloads::minikv::KvOptions { memtable_bytes: 4096, max_tables: 3, sync_wal: false },
        )
        .unwrap(),
    );
    crossbeam::thread::scope(|s| {
        for t in 0..4u32 {
            let kv = kv.clone();
            s.spawn(move |_| {
                for i in 0..150 {
                    kv.put(format!("t{t}-k{i}").as_bytes(), format!("v{t}-{i}").as_bytes())
                        .unwrap();
                    if i % 3 == 0 {
                        let got = kv.get(format!("t{t}-k{i}").as_bytes()).unwrap().unwrap();
                        assert_eq!(got, format!("v{t}-{i}").as_bytes());
                    }
                }
            });
        }
    })
    .unwrap();
    for t in 0..4 {
        for i in 0..150 {
            assert!(
                kv.get(format!("t{t}-k{i}").as_bytes()).unwrap().is_some(),
                "t{t}-k{i} lost"
            );
        }
    }
}
