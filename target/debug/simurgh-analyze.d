/root/repo/target/debug/simurgh-analyze: /root/repo/crates/analyze/src/lib.rs /root/repo/crates/analyze/src/main.rs
