/root/repo/target/debug/libsimurgh_analyze.rlib: /root/repo/crates/analyze/src/lib.rs
