/root/repo/target/debug/examples/profile_ycsb-391cbbc816791f66.d: crates/bench/examples/profile_ycsb.rs Cargo.toml

/root/repo/target/debug/examples/libprofile_ycsb-391cbbc816791f66.rmeta: crates/bench/examples/profile_ycsb.rs Cargo.toml

crates/bench/examples/profile_ycsb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
