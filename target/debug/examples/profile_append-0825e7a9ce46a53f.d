/root/repo/target/debug/examples/profile_append-0825e7a9ce46a53f.d: crates/bench/examples/profile_append.rs Cargo.toml

/root/repo/target/debug/examples/libprofile_append-0825e7a9ce46a53f.rmeta: crates/bench/examples/profile_append.rs Cargo.toml

crates/bench/examples/profile_append.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
