/root/repo/target/debug/examples/profile_append-9f9214791ba44a94.d: crates/bench/examples/profile_append.rs

/root/repo/target/debug/examples/profile_append-9f9214791ba44a94: crates/bench/examples/profile_append.rs

crates/bench/examples/profile_append.rs:
