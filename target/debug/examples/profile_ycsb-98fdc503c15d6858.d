/root/repo/target/debug/examples/profile_ycsb-98fdc503c15d6858.d: crates/bench/examples/profile_ycsb.rs

/root/repo/target/debug/examples/profile_ycsb-98fdc503c15d6858: crates/bench/examples/profile_ycsb.rs

crates/bench/examples/profile_ycsb.rs:
