/root/repo/target/debug/examples/profile_create-bd566805addadd5c.d: crates/bench/examples/profile_create.rs Cargo.toml

/root/repo/target/debug/examples/libprofile_create-bd566805addadd5c.rmeta: crates/bench/examples/profile_create.rs Cargo.toml

crates/bench/examples/profile_create.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
