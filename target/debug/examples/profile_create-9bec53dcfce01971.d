/root/repo/target/debug/examples/profile_create-9bec53dcfce01971.d: crates/bench/examples/profile_create.rs

/root/repo/target/debug/examples/profile_create-9bec53dcfce01971: crates/bench/examples/profile_create.rs

crates/bench/examples/profile_create.rs:
