/root/repo/target/debug/deps/simurgh_analyze-a71577d5d93739e0.d: crates/analyze/src/main.rs

/root/repo/target/debug/deps/simurgh_analyze-a71577d5d93739e0: crates/analyze/src/main.rs

crates/analyze/src/main.rs:
