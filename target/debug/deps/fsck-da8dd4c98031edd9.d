/root/repo/target/debug/deps/fsck-da8dd4c98031edd9.d: tests/tests/fsck.rs

/root/repo/target/debug/deps/fsck-da8dd4c98031edd9: tests/tests/fsck.rs

tests/tests/fsck.rs:
