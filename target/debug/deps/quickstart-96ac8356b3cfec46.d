/root/repo/target/debug/deps/quickstart-96ac8356b3cfec46.d: examples/src/bin/quickstart.rs

/root/repo/target/debug/deps/quickstart-96ac8356b3cfec46: examples/src/bin/quickstart.rs

examples/src/bin/quickstart.rs:
