/root/repo/target/debug/deps/kvstore-5482295e47ac8c41.d: examples/src/bin/kvstore.rs

/root/repo/target/debug/deps/kvstore-5482295e47ac8c41: examples/src/bin/kvstore.rs

examples/src/bin/kvstore.rs:
