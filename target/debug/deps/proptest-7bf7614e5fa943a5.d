/root/repo/target/debug/deps/proptest-7bf7614e5fa943a5.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-7bf7614e5fa943a5: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
