/root/repo/target/debug/deps/dindex_paths-d0dd3f933d6c41ea.d: crates/core/tests/dindex_paths.rs

/root/repo/target/debug/deps/dindex_paths-d0dd3f933d6c41ea: crates/core/tests/dindex_paths.rs

crates/core/tests/dindex_paths.rs:
