/root/repo/target/debug/deps/scaling-be5d7fd6c86047e6.d: tests/tests/scaling.rs Cargo.toml

/root/repo/target/debug/deps/libscaling-be5d7fd6c86047e6.rmeta: tests/tests/scaling.rs Cargo.toml

tests/tests/scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
