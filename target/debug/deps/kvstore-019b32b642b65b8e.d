/root/repo/target/debug/deps/kvstore-019b32b642b65b8e.d: examples/src/bin/kvstore.rs Cargo.toml

/root/repo/target/debug/deps/libkvstore-019b32b642b65b8e.rmeta: examples/src/bin/kvstore.rs Cargo.toml

examples/src/bin/kvstore.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
