/root/repo/target/debug/deps/experiments_smoke-09eca754ce15c8bf.d: tests/tests/experiments_smoke.rs

/root/repo/target/debug/deps/experiments_smoke-09eca754ce15c8bf: tests/tests/experiments_smoke.rs

tests/tests/experiments_smoke.rs:
