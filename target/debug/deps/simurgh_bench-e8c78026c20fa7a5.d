/root/repo/target/debug/deps/simurgh_bench-e8c78026c20fa7a5.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs

/root/repo/target/debug/deps/libsimurgh_bench-e8c78026c20fa7a5.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs

/root/repo/target/debug/deps/libsimurgh_bench-e8c78026c20fa7a5.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
