/root/repo/target/debug/deps/static_analysis-2c51b1eeceda8cf9.d: tests/tests/static_analysis.rs Cargo.toml

/root/repo/target/debug/deps/libstatic_analysis-2c51b1eeceda8cf9.rmeta: tests/tests/static_analysis.rs Cargo.toml

tests/tests/static_analysis.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/tests
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
