/root/repo/target/debug/deps/dindex_paths-6c04b284632c342f.d: crates/core/tests/dindex_paths.rs Cargo.toml

/root/repo/target/debug/deps/libdindex_paths-6c04b284632c342f.rmeta: crates/core/tests/dindex_paths.rs Cargo.toml

crates/core/tests/dindex_paths.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
