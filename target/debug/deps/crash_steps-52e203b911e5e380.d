/root/repo/target/debug/deps/crash_steps-52e203b911e5e380.d: tests/tests/crash_steps.rs

/root/repo/target/debug/deps/crash_steps-52e203b911e5e380: tests/tests/crash_steps.rs

tests/tests/crash_steps.rs:
