/root/repo/target/debug/deps/secure_fs-0eb6fa52bbc4f963.d: examples/src/bin/secure_fs.rs

/root/repo/target/debug/deps/secure_fs-0eb6fa52bbc4f963: examples/src/bin/secure_fs.rs

examples/src/bin/secure_fs.rs:
