/root/repo/target/debug/deps/simurgh_tests-6bb3a7fbab87d82c.d: tests/src/lib.rs

/root/repo/target/debug/deps/libsimurgh_tests-6bb3a7fbab87d82c.rlib: tests/src/lib.rs

/root/repo/target/debug/deps/libsimurgh_tests-6bb3a7fbab87d82c.rmeta: tests/src/lib.rs

tests/src/lib.rs:
