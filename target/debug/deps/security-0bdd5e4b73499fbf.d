/root/repo/target/debug/deps/security-0bdd5e4b73499fbf.d: tests/tests/security.rs

/root/repo/target/debug/deps/security-0bdd5e4b73499fbf: tests/tests/security.rs

tests/tests/security.rs:
