/root/repo/target/debug/deps/simurgh_fsapi-20c8aca0b2b7c0f5.d: crates/fsapi/src/lib.rs crates/fsapi/src/error.rs crates/fsapi/src/fs.rs crates/fsapi/src/path.rs crates/fsapi/src/profile.rs crates/fsapi/src/reffs.rs crates/fsapi/src/types.rs

/root/repo/target/debug/deps/libsimurgh_fsapi-20c8aca0b2b7c0f5.rlib: crates/fsapi/src/lib.rs crates/fsapi/src/error.rs crates/fsapi/src/fs.rs crates/fsapi/src/path.rs crates/fsapi/src/profile.rs crates/fsapi/src/reffs.rs crates/fsapi/src/types.rs

/root/repo/target/debug/deps/libsimurgh_fsapi-20c8aca0b2b7c0f5.rmeta: crates/fsapi/src/lib.rs crates/fsapi/src/error.rs crates/fsapi/src/fs.rs crates/fsapi/src/path.rs crates/fsapi/src/profile.rs crates/fsapi/src/reffs.rs crates/fsapi/src/types.rs

crates/fsapi/src/lib.rs:
crates/fsapi/src/error.rs:
crates/fsapi/src/fs.rs:
crates/fsapi/src/path.rs:
crates/fsapi/src/profile.rs:
crates/fsapi/src/reffs.rs:
crates/fsapi/src/types.rs:
