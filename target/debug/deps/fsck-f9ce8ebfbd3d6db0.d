/root/repo/target/debug/deps/fsck-f9ce8ebfbd3d6db0.d: tests/tests/fsck.rs

/root/repo/target/debug/deps/fsck-f9ce8ebfbd3d6db0: tests/tests/fsck.rs

tests/tests/fsck.rs:
