/root/repo/target/debug/deps/fxmark_data-55fb99bb57c68314.d: crates/bench/benches/fxmark_data.rs Cargo.toml

/root/repo/target/debug/deps/libfxmark_data-55fb99bb57c68314.rmeta: crates/bench/benches/fxmark_data.rs Cargo.toml

crates/bench/benches/fxmark_data.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
