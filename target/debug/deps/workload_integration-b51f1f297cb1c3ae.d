/root/repo/target/debug/deps/workload_integration-b51f1f297cb1c3ae.d: crates/workloads/tests/workload_integration.rs Cargo.toml

/root/repo/target/debug/deps/libworkload_integration-b51f1f297cb1c3ae.rmeta: crates/workloads/tests/workload_integration.rs Cargo.toml

crates/workloads/tests/workload_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
