/root/repo/target/debug/deps/simurgh_analyze-e98d62d240d08dda.d: crates/analyze/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsimurgh_analyze-e98d62d240d08dda.rmeta: crates/analyze/src/lib.rs Cargo.toml

crates/analyze/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
