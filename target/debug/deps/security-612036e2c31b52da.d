/root/repo/target/debug/deps/security-612036e2c31b52da.d: tests/tests/security.rs Cargo.toml

/root/repo/target/debug/deps/libsecurity-612036e2c31b52da.rmeta: tests/tests/security.rs Cargo.toml

tests/tests/security.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
