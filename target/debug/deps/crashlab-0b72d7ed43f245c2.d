/root/repo/target/debug/deps/crashlab-0b72d7ed43f245c2.d: examples/src/bin/crashlab.rs Cargo.toml

/root/repo/target/debug/deps/libcrashlab-0b72d7ed43f245c2.rmeta: examples/src/bin/crashlab.rs Cargo.toml

examples/src/bin/crashlab.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
