/root/repo/target/debug/deps/api-8e1d8ef7392c9510.d: tests/tests/api.rs

/root/repo/target/debug/deps/api-8e1d8ef7392c9510: tests/tests/api.rs

tests/tests/api.rs:
