/root/repo/target/debug/deps/domain_props-3abe954cd0041063.d: crates/protfn/tests/domain_props.rs

/root/repo/target/debug/deps/domain_props-3abe954cd0041063: crates/protfn/tests/domain_props.rs

crates/protfn/tests/domain_props.rs:
