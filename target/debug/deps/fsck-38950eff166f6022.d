/root/repo/target/debug/deps/fsck-38950eff166f6022.d: tests/tests/fsck.rs Cargo.toml

/root/repo/target/debug/deps/libfsck-38950eff166f6022.rmeta: tests/tests/fsck.rs Cargo.toml

tests/tests/fsck.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
