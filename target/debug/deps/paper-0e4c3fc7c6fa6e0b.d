/root/repo/target/debug/deps/paper-0e4c3fc7c6fa6e0b.d: crates/bench/src/bin/paper.rs Cargo.toml

/root/repo/target/debug/deps/libpaper-0e4c3fc7c6fa6e0b.rmeta: crates/bench/src/bin/paper.rs Cargo.toml

crates/bench/src/bin/paper.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
