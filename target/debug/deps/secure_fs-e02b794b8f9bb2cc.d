/root/repo/target/debug/deps/secure_fs-e02b794b8f9bb2cc.d: examples/src/bin/secure_fs.rs Cargo.toml

/root/repo/target/debug/deps/libsecure_fs-e02b794b8f9bb2cc.rmeta: examples/src/bin/secure_fs.rs Cargo.toml

examples/src/bin/secure_fs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
