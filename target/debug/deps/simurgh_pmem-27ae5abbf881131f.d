/root/repo/target/debug/deps/simurgh_pmem-27ae5abbf881131f.d: crates/pmem/src/lib.rs crates/pmem/src/clock.rs crates/pmem/src/layout.rs crates/pmem/src/pptr.rs crates/pmem/src/prot.rs crates/pmem/src/region.rs crates/pmem/src/stats.rs crates/pmem/src/tracker.rs

/root/repo/target/debug/deps/simurgh_pmem-27ae5abbf881131f: crates/pmem/src/lib.rs crates/pmem/src/clock.rs crates/pmem/src/layout.rs crates/pmem/src/pptr.rs crates/pmem/src/prot.rs crates/pmem/src/region.rs crates/pmem/src/stats.rs crates/pmem/src/tracker.rs

crates/pmem/src/lib.rs:
crates/pmem/src/clock.rs:
crates/pmem/src/layout.rs:
crates/pmem/src/pptr.rs:
crates/pmem/src/prot.rs:
crates/pmem/src/region.rs:
crates/pmem/src/stats.rs:
crates/pmem/src/tracker.rs:
