/root/repo/target/debug/deps/simurgh_analyze-f4c7ba63e9ef5283.d: crates/analyze/src/main.rs

/root/repo/target/debug/deps/simurgh_analyze-f4c7ba63e9ef5283: crates/analyze/src/main.rs

crates/analyze/src/main.rs:
