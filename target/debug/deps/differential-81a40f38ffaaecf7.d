/root/repo/target/debug/deps/differential-81a40f38ffaaecf7.d: tests/tests/differential.rs Cargo.toml

/root/repo/target/debug/deps/libdifferential-81a40f38ffaaecf7.rmeta: tests/tests/differential.rs Cargo.toml

tests/tests/differential.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
