/root/repo/target/debug/deps/scaling-e5569c70221cf8aa.d: tests/tests/scaling.rs

/root/repo/target/debug/deps/scaling-e5569c70221cf8aa: tests/tests/scaling.rs

tests/tests/scaling.rs:
