/root/repo/target/debug/deps/quickstart-0439ed1289e0c6b7.d: examples/src/bin/quickstart.rs

/root/repo/target/debug/deps/quickstart-0439ed1289e0c6b7: examples/src/bin/quickstart.rs

examples/src/bin/quickstart.rs:
