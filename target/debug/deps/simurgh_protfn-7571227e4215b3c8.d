/root/repo/target/debug/deps/simurgh_protfn-7571227e4215b3c8.d: crates/protfn/src/lib.rs crates/protfn/src/cost.rs crates/protfn/src/cpl.rs crates/protfn/src/domain.rs crates/protfn/src/gem5.rs crates/protfn/src/page.rs crates/protfn/src/policy.rs Cargo.toml

/root/repo/target/debug/deps/libsimurgh_protfn-7571227e4215b3c8.rmeta: crates/protfn/src/lib.rs crates/protfn/src/cost.rs crates/protfn/src/cpl.rs crates/protfn/src/domain.rs crates/protfn/src/gem5.rs crates/protfn/src/page.rs crates/protfn/src/policy.rs Cargo.toml

crates/protfn/src/lib.rs:
crates/protfn/src/cost.rs:
crates/protfn/src/cpl.rs:
crates/protfn/src/domain.rs:
crates/protfn/src/gem5.rs:
crates/protfn/src/page.rs:
crates/protfn/src/policy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
