/root/repo/target/debug/deps/fxmark_path-d1730fa1cb41c125.d: crates/bench/benches/fxmark_path.rs Cargo.toml

/root/repo/target/debug/deps/libfxmark_path-d1730fa1cb41c125.rmeta: crates/bench/benches/fxmark_path.rs Cargo.toml

crates/bench/benches/fxmark_path.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
