/root/repo/target/debug/deps/api-1faa0cebf6aad956.d: tests/tests/api.rs

/root/repo/target/debug/deps/api-1faa0cebf6aad956: tests/tests/api.rs

tests/tests/api.rs:
