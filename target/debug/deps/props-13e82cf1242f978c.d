/root/repo/target/debug/deps/props-13e82cf1242f978c.d: tests/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-13e82cf1242f978c.rmeta: tests/tests/props.rs Cargo.toml

tests/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
