/root/repo/target/debug/deps/props-7d4128b68396cb69.d: tests/tests/props.rs

/root/repo/target/debug/deps/props-7d4128b68396cb69: tests/tests/props.rs

tests/tests/props.rs:
