/root/repo/target/debug/deps/simurgh_workloads-193728a0f78a4d17.d: crates/workloads/src/lib.rs crates/workloads/src/filebench.rs crates/workloads/src/fxmark.rs crates/workloads/src/git.rs crates/workloads/src/minikv.rs crates/workloads/src/runner.rs crates/workloads/src/tar.rs crates/workloads/src/tree.rs crates/workloads/src/ycsb.rs crates/workloads/src/zipf.rs

/root/repo/target/debug/deps/libsimurgh_workloads-193728a0f78a4d17.rlib: crates/workloads/src/lib.rs crates/workloads/src/filebench.rs crates/workloads/src/fxmark.rs crates/workloads/src/git.rs crates/workloads/src/minikv.rs crates/workloads/src/runner.rs crates/workloads/src/tar.rs crates/workloads/src/tree.rs crates/workloads/src/ycsb.rs crates/workloads/src/zipf.rs

/root/repo/target/debug/deps/libsimurgh_workloads-193728a0f78a4d17.rmeta: crates/workloads/src/lib.rs crates/workloads/src/filebench.rs crates/workloads/src/fxmark.rs crates/workloads/src/git.rs crates/workloads/src/minikv.rs crates/workloads/src/runner.rs crates/workloads/src/tar.rs crates/workloads/src/tree.rs crates/workloads/src/ycsb.rs crates/workloads/src/zipf.rs

crates/workloads/src/lib.rs:
crates/workloads/src/filebench.rs:
crates/workloads/src/fxmark.rs:
crates/workloads/src/git.rs:
crates/workloads/src/minikv.rs:
crates/workloads/src/runner.rs:
crates/workloads/src/tar.rs:
crates/workloads/src/tree.rs:
crates/workloads/src/ycsb.rs:
crates/workloads/src/zipf.rs:
