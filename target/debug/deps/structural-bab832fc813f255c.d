/root/repo/target/debug/deps/structural-bab832fc813f255c.d: crates/baselines/tests/structural.rs Cargo.toml

/root/repo/target/debug/deps/libstructural-bab832fc813f255c.rmeta: crates/baselines/tests/structural.rs Cargo.toml

crates/baselines/tests/structural.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
