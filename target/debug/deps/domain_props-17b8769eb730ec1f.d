/root/repo/target/debug/deps/domain_props-17b8769eb730ec1f.d: crates/protfn/tests/domain_props.rs Cargo.toml

/root/repo/target/debug/deps/libdomain_props-17b8769eb730ec1f.rmeta: crates/protfn/tests/domain_props.rs Cargo.toml

crates/protfn/tests/domain_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
