/root/repo/target/debug/deps/crashlab-0375e46971e570c7.d: examples/src/bin/crashlab.rs

/root/repo/target/debug/deps/crashlab-0375e46971e570c7: examples/src/bin/crashlab.rs

examples/src/bin/crashlab.rs:
