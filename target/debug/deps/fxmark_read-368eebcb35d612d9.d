/root/repo/target/debug/deps/fxmark_read-368eebcb35d612d9.d: crates/bench/benches/fxmark_read.rs Cargo.toml

/root/repo/target/debug/deps/libfxmark_read-368eebcb35d612d9.rmeta: crates/bench/benches/fxmark_read.rs Cargo.toml

crates/bench/benches/fxmark_read.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
