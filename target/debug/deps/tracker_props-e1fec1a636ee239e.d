/root/repo/target/debug/deps/tracker_props-e1fec1a636ee239e.d: crates/pmem/tests/tracker_props.rs Cargo.toml

/root/repo/target/debug/deps/libtracker_props-e1fec1a636ee239e.rmeta: crates/pmem/tests/tracker_props.rs Cargo.toml

crates/pmem/tests/tracker_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
