/root/repo/target/debug/deps/crashlab-647adeda402c6abe.d: examples/src/bin/crashlab.rs

/root/repo/target/debug/deps/crashlab-647adeda402c6abe: examples/src/bin/crashlab.rs

examples/src/bin/crashlab.rs:
