/root/repo/target/debug/deps/simurgh_protfn-3635a8f85ebfaf6e.d: crates/protfn/src/lib.rs crates/protfn/src/cost.rs crates/protfn/src/cpl.rs crates/protfn/src/domain.rs crates/protfn/src/gem5.rs crates/protfn/src/page.rs crates/protfn/src/policy.rs

/root/repo/target/debug/deps/simurgh_protfn-3635a8f85ebfaf6e: crates/protfn/src/lib.rs crates/protfn/src/cost.rs crates/protfn/src/cpl.rs crates/protfn/src/domain.rs crates/protfn/src/gem5.rs crates/protfn/src/page.rs crates/protfn/src/policy.rs

crates/protfn/src/lib.rs:
crates/protfn/src/cost.rs:
crates/protfn/src/cpl.rs:
crates/protfn/src/domain.rs:
crates/protfn/src/gem5.rs:
crates/protfn/src/page.rs:
crates/protfn/src/policy.rs:
