/root/repo/target/debug/deps/filebench-fd2a017ff8e71372.d: crates/bench/benches/filebench.rs Cargo.toml

/root/repo/target/debug/deps/libfilebench-fd2a017ff8e71372.rmeta: crates/bench/benches/filebench.rs Cargo.toml

crates/bench/benches/filebench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
