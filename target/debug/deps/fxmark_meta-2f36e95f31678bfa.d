/root/repo/target/debug/deps/fxmark_meta-2f36e95f31678bfa.d: crates/bench/benches/fxmark_meta.rs Cargo.toml

/root/repo/target/debug/deps/libfxmark_meta-2f36e95f31678bfa.rmeta: crates/bench/benches/fxmark_meta.rs Cargo.toml

crates/bench/benches/fxmark_meta.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
