/root/repo/target/debug/deps/quickstart-eccedd7085eefbef.d: examples/src/bin/quickstart.rs Cargo.toml

/root/repo/target/debug/deps/libquickstart-eccedd7085eefbef.rmeta: examples/src/bin/quickstart.rs Cargo.toml

examples/src/bin/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
