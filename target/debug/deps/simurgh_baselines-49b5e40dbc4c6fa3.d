/root/repo/target/debug/deps/simurgh_baselines-49b5e40dbc4c6fa3.d: crates/baselines/src/lib.rs crates/baselines/src/kernelfs.rs crates/baselines/src/profile.rs crates/baselines/src/vfs.rs

/root/repo/target/debug/deps/simurgh_baselines-49b5e40dbc4c6fa3: crates/baselines/src/lib.rs crates/baselines/src/kernelfs.rs crates/baselines/src/profile.rs crates/baselines/src/vfs.rs

crates/baselines/src/lib.rs:
crates/baselines/src/kernelfs.rs:
crates/baselines/src/profile.rs:
crates/baselines/src/vfs.rs:
