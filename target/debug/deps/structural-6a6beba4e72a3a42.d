/root/repo/target/debug/deps/structural-6a6beba4e72a3a42.d: crates/baselines/tests/structural.rs

/root/repo/target/debug/deps/structural-6a6beba4e72a3a42: crates/baselines/tests/structural.rs

crates/baselines/tests/structural.rs:
