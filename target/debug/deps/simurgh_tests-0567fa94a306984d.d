/root/repo/target/debug/deps/simurgh_tests-0567fa94a306984d.d: tests/src/lib.rs

/root/repo/target/debug/deps/libsimurgh_tests-0567fa94a306984d.rlib: tests/src/lib.rs

/root/repo/target/debug/deps/libsimurgh_tests-0567fa94a306984d.rmeta: tests/src/lib.rs

tests/src/lib.rs:
