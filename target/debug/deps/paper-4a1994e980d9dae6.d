/root/repo/target/debug/deps/paper-4a1994e980d9dae6.d: crates/bench/src/bin/paper.rs

/root/repo/target/debug/deps/paper-4a1994e980d9dae6: crates/bench/src/bin/paper.rs

crates/bench/src/bin/paper.rs:
