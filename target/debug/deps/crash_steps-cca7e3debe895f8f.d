/root/repo/target/debug/deps/crash_steps-cca7e3debe895f8f.d: tests/tests/crash_steps.rs

/root/repo/target/debug/deps/crash_steps-cca7e3debe895f8f: tests/tests/crash_steps.rs

tests/tests/crash_steps.rs:
