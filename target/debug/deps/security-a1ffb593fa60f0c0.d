/root/repo/target/debug/deps/security-a1ffb593fa60f0c0.d: tests/tests/security.rs

/root/repo/target/debug/deps/security-a1ffb593fa60f0c0: tests/tests/security.rs

tests/tests/security.rs:
