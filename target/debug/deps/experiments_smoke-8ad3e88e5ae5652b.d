/root/repo/target/debug/deps/experiments_smoke-8ad3e88e5ae5652b.d: tests/tests/experiments_smoke.rs

/root/repo/target/debug/deps/experiments_smoke-8ad3e88e5ae5652b: tests/tests/experiments_smoke.rs

tests/tests/experiments_smoke.rs:
