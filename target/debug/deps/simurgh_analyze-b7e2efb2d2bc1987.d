/root/repo/target/debug/deps/simurgh_analyze-b7e2efb2d2bc1987.d: crates/analyze/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libsimurgh_analyze-b7e2efb2d2bc1987.rmeta: crates/analyze/src/main.rs Cargo.toml

crates/analyze/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
