/root/repo/target/debug/deps/static_analysis-54a2773119724377.d: tests/tests/static_analysis.rs

/root/repo/target/debug/deps/static_analysis-54a2773119724377: tests/tests/static_analysis.rs

tests/tests/static_analysis.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/tests
