/root/repo/target/debug/deps/recovery-7159e955603e4e90.d: crates/bench/benches/recovery.rs Cargo.toml

/root/repo/target/debug/deps/librecovery-7159e955603e4e90.rmeta: crates/bench/benches/recovery.rs Cargo.toml

crates/bench/benches/recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
