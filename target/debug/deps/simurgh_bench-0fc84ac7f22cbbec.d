/root/repo/target/debug/deps/simurgh_bench-0fc84ac7f22cbbec.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libsimurgh_bench-0fc84ac7f22cbbec.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
