/root/repo/target/debug/deps/tracker_props-b2136b830ae1406e.d: crates/pmem/tests/tracker_props.rs

/root/repo/target/debug/deps/tracker_props-b2136b830ae1406e: crates/pmem/tests/tracker_props.rs

crates/pmem/tests/tracker_props.rs:
