/root/repo/target/debug/deps/kvstore-7693c737fbce5fc0.d: examples/src/bin/kvstore.rs

/root/repo/target/debug/deps/kvstore-7693c737fbce5fc0: examples/src/bin/kvstore.rs

examples/src/bin/kvstore.rs:
