/root/repo/target/debug/deps/simurgh_protfn-f92e35205f6db33c.d: crates/protfn/src/lib.rs crates/protfn/src/cost.rs crates/protfn/src/cpl.rs crates/protfn/src/domain.rs crates/protfn/src/gem5.rs crates/protfn/src/page.rs crates/protfn/src/policy.rs

/root/repo/target/debug/deps/libsimurgh_protfn-f92e35205f6db33c.rlib: crates/protfn/src/lib.rs crates/protfn/src/cost.rs crates/protfn/src/cpl.rs crates/protfn/src/domain.rs crates/protfn/src/gem5.rs crates/protfn/src/page.rs crates/protfn/src/policy.rs

/root/repo/target/debug/deps/libsimurgh_protfn-f92e35205f6db33c.rmeta: crates/protfn/src/lib.rs crates/protfn/src/cost.rs crates/protfn/src/cpl.rs crates/protfn/src/domain.rs crates/protfn/src/gem5.rs crates/protfn/src/page.rs crates/protfn/src/policy.rs

crates/protfn/src/lib.rs:
crates/protfn/src/cost.rs:
crates/protfn/src/cpl.rs:
crates/protfn/src/domain.rs:
crates/protfn/src/gem5.rs:
crates/protfn/src/page.rs:
crates/protfn/src/policy.rs:
