/root/repo/target/debug/deps/simurgh_baselines-f287aaaef12612d1.d: crates/baselines/src/lib.rs crates/baselines/src/kernelfs.rs crates/baselines/src/profile.rs crates/baselines/src/vfs.rs

/root/repo/target/debug/deps/libsimurgh_baselines-f287aaaef12612d1.rlib: crates/baselines/src/lib.rs crates/baselines/src/kernelfs.rs crates/baselines/src/profile.rs crates/baselines/src/vfs.rs

/root/repo/target/debug/deps/libsimurgh_baselines-f287aaaef12612d1.rmeta: crates/baselines/src/lib.rs crates/baselines/src/kernelfs.rs crates/baselines/src/profile.rs crates/baselines/src/vfs.rs

crates/baselines/src/lib.rs:
crates/baselines/src/kernelfs.rs:
crates/baselines/src/profile.rs:
crates/baselines/src/vfs.rs:
