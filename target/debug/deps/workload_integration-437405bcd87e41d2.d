/root/repo/target/debug/deps/workload_integration-437405bcd87e41d2.d: crates/workloads/tests/workload_integration.rs

/root/repo/target/debug/deps/workload_integration-437405bcd87e41d2: crates/workloads/tests/workload_integration.rs

crates/workloads/tests/workload_integration.rs:
