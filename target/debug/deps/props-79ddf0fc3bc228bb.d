/root/repo/target/debug/deps/props-79ddf0fc3bc228bb.d: tests/tests/props.rs

/root/repo/target/debug/deps/props-79ddf0fc3bc228bb: tests/tests/props.rs

tests/tests/props.rs:
