/root/repo/target/debug/deps/quickstart-90b1f6520df3bb6f.d: examples/src/bin/quickstart.rs Cargo.toml

/root/repo/target/debug/deps/libquickstart-90b1f6520df3bb6f.rmeta: examples/src/bin/quickstart.rs Cargo.toml

examples/src/bin/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
