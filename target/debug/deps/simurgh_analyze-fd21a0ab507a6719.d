/root/repo/target/debug/deps/simurgh_analyze-fd21a0ab507a6719.d: crates/analyze/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsimurgh_analyze-fd21a0ab507a6719.rmeta: crates/analyze/src/lib.rs Cargo.toml

crates/analyze/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
