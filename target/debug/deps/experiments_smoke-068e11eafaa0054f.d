/root/repo/target/debug/deps/experiments_smoke-068e11eafaa0054f.d: tests/tests/experiments_smoke.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments_smoke-068e11eafaa0054f.rmeta: tests/tests/experiments_smoke.rs Cargo.toml

tests/tests/experiments_smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
