/root/repo/target/debug/deps/simurgh_pmem-f3924e729a099a9b.d: crates/pmem/src/lib.rs crates/pmem/src/clock.rs crates/pmem/src/layout.rs crates/pmem/src/pptr.rs crates/pmem/src/prot.rs crates/pmem/src/region.rs crates/pmem/src/stats.rs crates/pmem/src/tracker.rs Cargo.toml

/root/repo/target/debug/deps/libsimurgh_pmem-f3924e729a099a9b.rmeta: crates/pmem/src/lib.rs crates/pmem/src/clock.rs crates/pmem/src/layout.rs crates/pmem/src/pptr.rs crates/pmem/src/prot.rs crates/pmem/src/region.rs crates/pmem/src/stats.rs crates/pmem/src/tracker.rs Cargo.toml

crates/pmem/src/lib.rs:
crates/pmem/src/clock.rs:
crates/pmem/src/layout.rs:
crates/pmem/src/pptr.rs:
crates/pmem/src/prot.rs:
crates/pmem/src/region.rs:
crates/pmem/src/stats.rs:
crates/pmem/src/tracker.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
