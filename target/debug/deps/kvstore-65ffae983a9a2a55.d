/root/repo/target/debug/deps/kvstore-65ffae983a9a2a55.d: examples/src/bin/kvstore.rs Cargo.toml

/root/repo/target/debug/deps/libkvstore-65ffae983a9a2a55.rmeta: examples/src/bin/kvstore.rs Cargo.toml

examples/src/bin/kvstore.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
