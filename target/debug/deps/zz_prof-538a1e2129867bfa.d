/root/repo/target/debug/deps/zz_prof-538a1e2129867bfa.d: tests/tests/zz_prof.rs

/root/repo/target/debug/deps/zz_prof-538a1e2129867bfa: tests/tests/zz_prof.rs

tests/tests/zz_prof.rs:
