/root/repo/target/debug/deps/simurgh_analyze-9d50fd3f92fb68fe.d: crates/analyze/src/lib.rs

/root/repo/target/debug/deps/libsimurgh_analyze-9d50fd3f92fb68fe.rlib: crates/analyze/src/lib.rs

/root/repo/target/debug/deps/libsimurgh_analyze-9d50fd3f92fb68fe.rmeta: crates/analyze/src/lib.rs

crates/analyze/src/lib.rs:
