/root/repo/target/debug/deps/concurrency-7064ee24948e2f6b.d: tests/tests/concurrency.rs

/root/repo/target/debug/deps/concurrency-7064ee24948e2f6b: tests/tests/concurrency.rs

tests/tests/concurrency.rs:
