/root/repo/target/debug/deps/ycsb-5a9ac44fdfc71b9f.d: crates/bench/benches/ycsb.rs Cargo.toml

/root/repo/target/debug/deps/libycsb-5a9ac44fdfc71b9f.rmeta: crates/bench/benches/ycsb.rs Cargo.toml

crates/bench/benches/ycsb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
