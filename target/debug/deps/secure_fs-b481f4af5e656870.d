/root/repo/target/debug/deps/secure_fs-b481f4af5e656870.d: examples/src/bin/secure_fs.rs Cargo.toml

/root/repo/target/debug/deps/libsecure_fs-b481f4af5e656870.rmeta: examples/src/bin/secure_fs.rs Cargo.toml

examples/src/bin/secure_fs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
