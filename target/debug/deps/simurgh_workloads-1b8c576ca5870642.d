/root/repo/target/debug/deps/simurgh_workloads-1b8c576ca5870642.d: crates/workloads/src/lib.rs crates/workloads/src/filebench.rs crates/workloads/src/fxmark.rs crates/workloads/src/git.rs crates/workloads/src/minikv.rs crates/workloads/src/runner.rs crates/workloads/src/tar.rs crates/workloads/src/tree.rs crates/workloads/src/ycsb.rs crates/workloads/src/zipf.rs Cargo.toml

/root/repo/target/debug/deps/libsimurgh_workloads-1b8c576ca5870642.rmeta: crates/workloads/src/lib.rs crates/workloads/src/filebench.rs crates/workloads/src/fxmark.rs crates/workloads/src/git.rs crates/workloads/src/minikv.rs crates/workloads/src/runner.rs crates/workloads/src/tar.rs crates/workloads/src/tree.rs crates/workloads/src/ycsb.rs crates/workloads/src/zipf.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/filebench.rs:
crates/workloads/src/fxmark.rs:
crates/workloads/src/git.rs:
crates/workloads/src/minikv.rs:
crates/workloads/src/runner.rs:
crates/workloads/src/tar.rs:
crates/workloads/src/tree.rs:
crates/workloads/src/ycsb.rs:
crates/workloads/src/zipf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
