/root/repo/target/debug/deps/simurgh_tests-28f0194f01428caf.d: tests/src/lib.rs

/root/repo/target/debug/deps/simurgh_tests-28f0194f01428caf: tests/src/lib.rs

tests/src/lib.rs:
