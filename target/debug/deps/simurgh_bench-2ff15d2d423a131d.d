/root/repo/target/debug/deps/simurgh_bench-2ff15d2d423a131d.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs

/root/repo/target/debug/deps/simurgh_bench-2ff15d2d423a131d: crates/bench/src/lib.rs crates/bench/src/experiments.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
