/root/repo/target/debug/deps/concurrency-519682c618c76405.d: tests/tests/concurrency.rs Cargo.toml

/root/repo/target/debug/deps/libconcurrency-519682c618c76405.rmeta: tests/tests/concurrency.rs Cargo.toml

tests/tests/concurrency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
