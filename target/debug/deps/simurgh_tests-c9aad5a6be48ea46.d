/root/repo/target/debug/deps/simurgh_tests-c9aad5a6be48ea46.d: tests/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsimurgh_tests-c9aad5a6be48ea46.rmeta: tests/src/lib.rs Cargo.toml

tests/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
