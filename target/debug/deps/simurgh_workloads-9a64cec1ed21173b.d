/root/repo/target/debug/deps/simurgh_workloads-9a64cec1ed21173b.d: crates/workloads/src/lib.rs crates/workloads/src/filebench.rs crates/workloads/src/fxmark.rs crates/workloads/src/git.rs crates/workloads/src/minikv.rs crates/workloads/src/runner.rs crates/workloads/src/tar.rs crates/workloads/src/tree.rs crates/workloads/src/ycsb.rs crates/workloads/src/zipf.rs

/root/repo/target/debug/deps/simurgh_workloads-9a64cec1ed21173b: crates/workloads/src/lib.rs crates/workloads/src/filebench.rs crates/workloads/src/fxmark.rs crates/workloads/src/git.rs crates/workloads/src/minikv.rs crates/workloads/src/runner.rs crates/workloads/src/tar.rs crates/workloads/src/tree.rs crates/workloads/src/ycsb.rs crates/workloads/src/zipf.rs

crates/workloads/src/lib.rs:
crates/workloads/src/filebench.rs:
crates/workloads/src/fxmark.rs:
crates/workloads/src/git.rs:
crates/workloads/src/minikv.rs:
crates/workloads/src/runner.rs:
crates/workloads/src/tar.rs:
crates/workloads/src/tree.rs:
crates/workloads/src/ycsb.rs:
crates/workloads/src/zipf.rs:
