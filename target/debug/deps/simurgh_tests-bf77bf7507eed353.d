/root/repo/target/debug/deps/simurgh_tests-bf77bf7507eed353.d: tests/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsimurgh_tests-bf77bf7507eed353.rmeta: tests/src/lib.rs Cargo.toml

tests/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
