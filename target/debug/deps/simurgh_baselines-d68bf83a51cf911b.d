/root/repo/target/debug/deps/simurgh_baselines-d68bf83a51cf911b.d: crates/baselines/src/lib.rs crates/baselines/src/kernelfs.rs crates/baselines/src/profile.rs crates/baselines/src/vfs.rs Cargo.toml

/root/repo/target/debug/deps/libsimurgh_baselines-d68bf83a51cf911b.rmeta: crates/baselines/src/lib.rs crates/baselines/src/kernelfs.rs crates/baselines/src/profile.rs crates/baselines/src/vfs.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/kernelfs.rs:
crates/baselines/src/profile.rs:
crates/baselines/src/vfs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
