/root/repo/target/debug/deps/protfn_cycles-bd5dd1c5347bebdb.d: crates/bench/benches/protfn_cycles.rs Cargo.toml

/root/repo/target/debug/deps/libprotfn_cycles-bd5dd1c5347bebdb.rmeta: crates/bench/benches/protfn_cycles.rs Cargo.toml

crates/bench/benches/protfn_cycles.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
