/root/repo/target/debug/deps/simurgh_analyze-a4855b7b47b1097b.d: crates/analyze/src/lib.rs

/root/repo/target/debug/deps/simurgh_analyze-a4855b7b47b1097b: crates/analyze/src/lib.rs

crates/analyze/src/lib.rs:
