/root/repo/target/debug/deps/paper-24a510d803dde3be.d: crates/bench/src/bin/paper.rs

/root/repo/target/debug/deps/paper-24a510d803dde3be: crates/bench/src/bin/paper.rs

crates/bench/src/bin/paper.rs:
