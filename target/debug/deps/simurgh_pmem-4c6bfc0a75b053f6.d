/root/repo/target/debug/deps/simurgh_pmem-4c6bfc0a75b053f6.d: crates/pmem/src/lib.rs crates/pmem/src/clock.rs crates/pmem/src/layout.rs crates/pmem/src/pptr.rs crates/pmem/src/prot.rs crates/pmem/src/region.rs crates/pmem/src/stats.rs crates/pmem/src/tracker.rs

/root/repo/target/debug/deps/libsimurgh_pmem-4c6bfc0a75b053f6.rlib: crates/pmem/src/lib.rs crates/pmem/src/clock.rs crates/pmem/src/layout.rs crates/pmem/src/pptr.rs crates/pmem/src/prot.rs crates/pmem/src/region.rs crates/pmem/src/stats.rs crates/pmem/src/tracker.rs

/root/repo/target/debug/deps/libsimurgh_pmem-4c6bfc0a75b053f6.rmeta: crates/pmem/src/lib.rs crates/pmem/src/clock.rs crates/pmem/src/layout.rs crates/pmem/src/pptr.rs crates/pmem/src/prot.rs crates/pmem/src/region.rs crates/pmem/src/stats.rs crates/pmem/src/tracker.rs

crates/pmem/src/lib.rs:
crates/pmem/src/clock.rs:
crates/pmem/src/layout.rs:
crates/pmem/src/pptr.rs:
crates/pmem/src/prot.rs:
crates/pmem/src/region.rs:
crates/pmem/src/stats.rs:
crates/pmem/src/tracker.rs:
