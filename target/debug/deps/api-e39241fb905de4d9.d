/root/repo/target/debug/deps/api-e39241fb905de4d9.d: tests/tests/api.rs Cargo.toml

/root/repo/target/debug/deps/libapi-e39241fb905de4d9.rmeta: tests/tests/api.rs Cargo.toml

tests/tests/api.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
