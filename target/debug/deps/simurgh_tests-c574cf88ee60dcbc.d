/root/repo/target/debug/deps/simurgh_tests-c574cf88ee60dcbc.d: tests/src/lib.rs

/root/repo/target/debug/deps/simurgh_tests-c574cf88ee60dcbc: tests/src/lib.rs

tests/src/lib.rs:
