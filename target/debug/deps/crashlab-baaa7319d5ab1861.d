/root/repo/target/debug/deps/crashlab-baaa7319d5ab1861.d: examples/src/bin/crashlab.rs Cargo.toml

/root/repo/target/debug/deps/libcrashlab-baaa7319d5ab1861.rmeta: examples/src/bin/crashlab.rs Cargo.toml

examples/src/bin/crashlab.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
