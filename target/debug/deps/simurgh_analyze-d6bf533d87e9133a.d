/root/repo/target/debug/deps/simurgh_analyze-d6bf533d87e9133a.d: crates/analyze/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libsimurgh_analyze-d6bf533d87e9133a.rmeta: crates/analyze/src/main.rs Cargo.toml

crates/analyze/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
