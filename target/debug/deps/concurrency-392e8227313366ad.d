/root/repo/target/debug/deps/concurrency-392e8227313366ad.d: tests/tests/concurrency.rs

/root/repo/target/debug/deps/concurrency-392e8227313366ad: tests/tests/concurrency.rs

tests/tests/concurrency.rs:
