/root/repo/target/debug/deps/crash_steps-9dcbefc64ee49b05.d: tests/tests/crash_steps.rs Cargo.toml

/root/repo/target/debug/deps/libcrash_steps-9dcbefc64ee49b05.rmeta: tests/tests/crash_steps.rs Cargo.toml

tests/tests/crash_steps.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
