/root/repo/target/debug/deps/simurgh_fsapi-4d9c9dcd5a76bc47.d: crates/fsapi/src/lib.rs crates/fsapi/src/error.rs crates/fsapi/src/fs.rs crates/fsapi/src/path.rs crates/fsapi/src/profile.rs crates/fsapi/src/reffs.rs crates/fsapi/src/types.rs

/root/repo/target/debug/deps/simurgh_fsapi-4d9c9dcd5a76bc47: crates/fsapi/src/lib.rs crates/fsapi/src/error.rs crates/fsapi/src/fs.rs crates/fsapi/src/path.rs crates/fsapi/src/profile.rs crates/fsapi/src/reffs.rs crates/fsapi/src/types.rs

crates/fsapi/src/lib.rs:
crates/fsapi/src/error.rs:
crates/fsapi/src/fs.rs:
crates/fsapi/src/path.rs:
crates/fsapi/src/profile.rs:
crates/fsapi/src/reffs.rs:
crates/fsapi/src/types.rs:
