/root/repo/target/debug/deps/simurgh_core-fa5a90e8e6acf8a9.d: crates/core/src/lib.rs crates/core/src/alloc/mod.rs crates/core/src/alloc/blocks.rs crates/core/src/alloc/meta.rs crates/core/src/alloc/tslock.rs crates/core/src/check.rs crates/core/src/dindex.rs crates/core/src/dir.rs crates/core/src/file.rs crates/core/src/fs.rs crates/core/src/hash.rs crates/core/src/obj/mod.rs crates/core/src/obj/dirblock.rs crates/core/src/obj/fentry.rs crates/core/src/obj/inode.rs crates/core/src/recovery.rs crates/core/src/security.rs crates/core/src/super_block.rs crates/core/src/testing.rs Cargo.toml

/root/repo/target/debug/deps/libsimurgh_core-fa5a90e8e6acf8a9.rmeta: crates/core/src/lib.rs crates/core/src/alloc/mod.rs crates/core/src/alloc/blocks.rs crates/core/src/alloc/meta.rs crates/core/src/alloc/tslock.rs crates/core/src/check.rs crates/core/src/dindex.rs crates/core/src/dir.rs crates/core/src/file.rs crates/core/src/fs.rs crates/core/src/hash.rs crates/core/src/obj/mod.rs crates/core/src/obj/dirblock.rs crates/core/src/obj/fentry.rs crates/core/src/obj/inode.rs crates/core/src/recovery.rs crates/core/src/security.rs crates/core/src/super_block.rs crates/core/src/testing.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/alloc/mod.rs:
crates/core/src/alloc/blocks.rs:
crates/core/src/alloc/meta.rs:
crates/core/src/alloc/tslock.rs:
crates/core/src/check.rs:
crates/core/src/dindex.rs:
crates/core/src/dir.rs:
crates/core/src/file.rs:
crates/core/src/fs.rs:
crates/core/src/hash.rs:
crates/core/src/obj/mod.rs:
crates/core/src/obj/dirblock.rs:
crates/core/src/obj/fentry.rs:
crates/core/src/obj/inode.rs:
crates/core/src/recovery.rs:
crates/core/src/security.rs:
crates/core/src/super_block.rs:
crates/core/src/testing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
