/root/repo/target/debug/deps/differential-5332e614defc2cef.d: tests/tests/differential.rs

/root/repo/target/debug/deps/differential-5332e614defc2cef: tests/tests/differential.rs

tests/tests/differential.rs:
