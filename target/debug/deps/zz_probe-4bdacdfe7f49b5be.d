/root/repo/target/debug/deps/zz_probe-4bdacdfe7f49b5be.d: tests/tests/zz_probe.rs

/root/repo/target/debug/deps/zz_probe-4bdacdfe7f49b5be: tests/tests/zz_probe.rs

tests/tests/zz_probe.rs:
