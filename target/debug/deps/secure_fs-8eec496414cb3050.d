/root/repo/target/debug/deps/secure_fs-8eec496414cb3050.d: examples/src/bin/secure_fs.rs

/root/repo/target/debug/deps/secure_fs-8eec496414cb3050: examples/src/bin/secure_fs.rs

examples/src/bin/secure_fs.rs:
