/root/repo/target/debug/deps/differential-827b540ce5994ed2.d: tests/tests/differential.rs

/root/repo/target/debug/deps/differential-827b540ce5994ed2: tests/tests/differential.rs

tests/tests/differential.rs:
