/root/repo/target/debug/deps/simurgh_fsapi-75a18b558bfb2371.d: crates/fsapi/src/lib.rs crates/fsapi/src/error.rs crates/fsapi/src/fs.rs crates/fsapi/src/path.rs crates/fsapi/src/profile.rs crates/fsapi/src/reffs.rs crates/fsapi/src/types.rs Cargo.toml

/root/repo/target/debug/deps/libsimurgh_fsapi-75a18b558bfb2371.rmeta: crates/fsapi/src/lib.rs crates/fsapi/src/error.rs crates/fsapi/src/fs.rs crates/fsapi/src/path.rs crates/fsapi/src/profile.rs crates/fsapi/src/reffs.rs crates/fsapi/src/types.rs Cargo.toml

crates/fsapi/src/lib.rs:
crates/fsapi/src/error.rs:
crates/fsapi/src/fs.rs:
crates/fsapi/src/path.rs:
crates/fsapi/src/profile.rs:
crates/fsapi/src/reffs.rs:
crates/fsapi/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
