/root/repo/target/debug/deps/apps-ce7017304c6b5561.d: crates/bench/benches/apps.rs Cargo.toml

/root/repo/target/debug/deps/libapps-ce7017304c6b5561.rmeta: crates/bench/benches/apps.rs Cargo.toml

crates/bench/benches/apps.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
