/root/repo/target/release/libsimurgh_analyze.rlib: /root/repo/crates/analyze/src/lib.rs
