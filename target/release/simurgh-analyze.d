/root/repo/target/release/simurgh-analyze: /root/repo/crates/analyze/src/lib.rs /root/repo/crates/analyze/src/main.rs
