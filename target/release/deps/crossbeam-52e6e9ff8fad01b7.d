/root/repo/target/release/deps/crossbeam-52e6e9ff8fad01b7.d: vendor/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-52e6e9ff8fad01b7.rlib: vendor/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-52e6e9ff8fad01b7.rmeta: vendor/crossbeam/src/lib.rs

vendor/crossbeam/src/lib.rs:
