/root/repo/target/release/deps/paper-b26a77b8b95b364c.d: crates/bench/src/bin/paper.rs

/root/repo/target/release/deps/paper-b26a77b8b95b364c: crates/bench/src/bin/paper.rs

crates/bench/src/bin/paper.rs:
