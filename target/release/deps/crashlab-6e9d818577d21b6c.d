/root/repo/target/release/deps/crashlab-6e9d818577d21b6c.d: examples/src/bin/crashlab.rs

/root/repo/target/release/deps/crashlab-6e9d818577d21b6c: examples/src/bin/crashlab.rs

examples/src/bin/crashlab.rs:
