/root/repo/target/release/deps/rand-2f2f6554a937808b.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-2f2f6554a937808b.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-2f2f6554a937808b.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
