/root/repo/target/release/deps/secure_fs-598c8911d16f9e70.d: examples/src/bin/secure_fs.rs

/root/repo/target/release/deps/secure_fs-598c8911d16f9e70: examples/src/bin/secure_fs.rs

examples/src/bin/secure_fs.rs:
