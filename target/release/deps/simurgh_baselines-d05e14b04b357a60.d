/root/repo/target/release/deps/simurgh_baselines-d05e14b04b357a60.d: crates/baselines/src/lib.rs crates/baselines/src/kernelfs.rs crates/baselines/src/profile.rs crates/baselines/src/vfs.rs

/root/repo/target/release/deps/libsimurgh_baselines-d05e14b04b357a60.rlib: crates/baselines/src/lib.rs crates/baselines/src/kernelfs.rs crates/baselines/src/profile.rs crates/baselines/src/vfs.rs

/root/repo/target/release/deps/libsimurgh_baselines-d05e14b04b357a60.rmeta: crates/baselines/src/lib.rs crates/baselines/src/kernelfs.rs crates/baselines/src/profile.rs crates/baselines/src/vfs.rs

crates/baselines/src/lib.rs:
crates/baselines/src/kernelfs.rs:
crates/baselines/src/profile.rs:
crates/baselines/src/vfs.rs:
