/root/repo/target/release/deps/simurgh_tests-07c6d410a3a20ad9.d: tests/src/lib.rs

/root/repo/target/release/deps/libsimurgh_tests-07c6d410a3a20ad9.rlib: tests/src/lib.rs

/root/repo/target/release/deps/libsimurgh_tests-07c6d410a3a20ad9.rmeta: tests/src/lib.rs

tests/src/lib.rs:
