/root/repo/target/release/deps/simurgh_analyze-ae20d471032e25bc.d: crates/analyze/src/main.rs

/root/repo/target/release/deps/simurgh_analyze-ae20d471032e25bc: crates/analyze/src/main.rs

crates/analyze/src/main.rs:
