/root/repo/target/release/deps/simurgh_workloads-b74d417ca60e41de.d: crates/workloads/src/lib.rs crates/workloads/src/filebench.rs crates/workloads/src/fxmark.rs crates/workloads/src/git.rs crates/workloads/src/minikv.rs crates/workloads/src/runner.rs crates/workloads/src/tar.rs crates/workloads/src/tree.rs crates/workloads/src/ycsb.rs crates/workloads/src/zipf.rs

/root/repo/target/release/deps/libsimurgh_workloads-b74d417ca60e41de.rlib: crates/workloads/src/lib.rs crates/workloads/src/filebench.rs crates/workloads/src/fxmark.rs crates/workloads/src/git.rs crates/workloads/src/minikv.rs crates/workloads/src/runner.rs crates/workloads/src/tar.rs crates/workloads/src/tree.rs crates/workloads/src/ycsb.rs crates/workloads/src/zipf.rs

/root/repo/target/release/deps/libsimurgh_workloads-b74d417ca60e41de.rmeta: crates/workloads/src/lib.rs crates/workloads/src/filebench.rs crates/workloads/src/fxmark.rs crates/workloads/src/git.rs crates/workloads/src/minikv.rs crates/workloads/src/runner.rs crates/workloads/src/tar.rs crates/workloads/src/tree.rs crates/workloads/src/ycsb.rs crates/workloads/src/zipf.rs

crates/workloads/src/lib.rs:
crates/workloads/src/filebench.rs:
crates/workloads/src/fxmark.rs:
crates/workloads/src/git.rs:
crates/workloads/src/minikv.rs:
crates/workloads/src/runner.rs:
crates/workloads/src/tar.rs:
crates/workloads/src/tree.rs:
crates/workloads/src/ycsb.rs:
crates/workloads/src/zipf.rs:
