/root/repo/target/release/deps/simurgh_tests-c6f5cda477ea3e91.d: tests/src/lib.rs

/root/repo/target/release/deps/libsimurgh_tests-c6f5cda477ea3e91.rlib: tests/src/lib.rs

/root/repo/target/release/deps/libsimurgh_tests-c6f5cda477ea3e91.rmeta: tests/src/lib.rs

tests/src/lib.rs:
