/root/repo/target/release/deps/criterion-67efa3814c6a5aa1.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-67efa3814c6a5aa1.rlib: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-67efa3814c6a5aa1.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
