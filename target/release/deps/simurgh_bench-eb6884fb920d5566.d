/root/repo/target/release/deps/simurgh_bench-eb6884fb920d5566.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs

/root/repo/target/release/deps/libsimurgh_bench-eb6884fb920d5566.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs

/root/repo/target/release/deps/libsimurgh_bench-eb6884fb920d5566.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
