/root/repo/target/release/deps/quickstart-926b59dc3b4f7748.d: examples/src/bin/quickstart.rs

/root/repo/target/release/deps/quickstart-926b59dc3b4f7748: examples/src/bin/quickstart.rs

examples/src/bin/quickstart.rs:
