/root/repo/target/release/deps/simurgh_core-8d7b890e22a9d10f.d: crates/core/src/lib.rs crates/core/src/alloc/mod.rs crates/core/src/alloc/blocks.rs crates/core/src/alloc/meta.rs crates/core/src/alloc/tslock.rs crates/core/src/check.rs crates/core/src/dindex.rs crates/core/src/dir.rs crates/core/src/file.rs crates/core/src/fs.rs crates/core/src/hash.rs crates/core/src/obj/mod.rs crates/core/src/obj/dirblock.rs crates/core/src/obj/fentry.rs crates/core/src/obj/inode.rs crates/core/src/recovery.rs crates/core/src/security.rs crates/core/src/super_block.rs crates/core/src/testing.rs

/root/repo/target/release/deps/libsimurgh_core-8d7b890e22a9d10f.rlib: crates/core/src/lib.rs crates/core/src/alloc/mod.rs crates/core/src/alloc/blocks.rs crates/core/src/alloc/meta.rs crates/core/src/alloc/tslock.rs crates/core/src/check.rs crates/core/src/dindex.rs crates/core/src/dir.rs crates/core/src/file.rs crates/core/src/fs.rs crates/core/src/hash.rs crates/core/src/obj/mod.rs crates/core/src/obj/dirblock.rs crates/core/src/obj/fentry.rs crates/core/src/obj/inode.rs crates/core/src/recovery.rs crates/core/src/security.rs crates/core/src/super_block.rs crates/core/src/testing.rs

/root/repo/target/release/deps/libsimurgh_core-8d7b890e22a9d10f.rmeta: crates/core/src/lib.rs crates/core/src/alloc/mod.rs crates/core/src/alloc/blocks.rs crates/core/src/alloc/meta.rs crates/core/src/alloc/tslock.rs crates/core/src/check.rs crates/core/src/dindex.rs crates/core/src/dir.rs crates/core/src/file.rs crates/core/src/fs.rs crates/core/src/hash.rs crates/core/src/obj/mod.rs crates/core/src/obj/dirblock.rs crates/core/src/obj/fentry.rs crates/core/src/obj/inode.rs crates/core/src/recovery.rs crates/core/src/security.rs crates/core/src/super_block.rs crates/core/src/testing.rs

crates/core/src/lib.rs:
crates/core/src/alloc/mod.rs:
crates/core/src/alloc/blocks.rs:
crates/core/src/alloc/meta.rs:
crates/core/src/alloc/tslock.rs:
crates/core/src/check.rs:
crates/core/src/dindex.rs:
crates/core/src/dir.rs:
crates/core/src/file.rs:
crates/core/src/fs.rs:
crates/core/src/hash.rs:
crates/core/src/obj/mod.rs:
crates/core/src/obj/dirblock.rs:
crates/core/src/obj/fentry.rs:
crates/core/src/obj/inode.rs:
crates/core/src/recovery.rs:
crates/core/src/security.rs:
crates/core/src/super_block.rs:
crates/core/src/testing.rs:
