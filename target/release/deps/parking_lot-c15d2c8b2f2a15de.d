/root/repo/target/release/deps/parking_lot-c15d2c8b2f2a15de.d: vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-c15d2c8b2f2a15de.rlib: vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-c15d2c8b2f2a15de.rmeta: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
