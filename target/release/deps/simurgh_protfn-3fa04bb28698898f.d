/root/repo/target/release/deps/simurgh_protfn-3fa04bb28698898f.d: crates/protfn/src/lib.rs crates/protfn/src/cost.rs crates/protfn/src/cpl.rs crates/protfn/src/domain.rs crates/protfn/src/gem5.rs crates/protfn/src/page.rs crates/protfn/src/policy.rs

/root/repo/target/release/deps/libsimurgh_protfn-3fa04bb28698898f.rlib: crates/protfn/src/lib.rs crates/protfn/src/cost.rs crates/protfn/src/cpl.rs crates/protfn/src/domain.rs crates/protfn/src/gem5.rs crates/protfn/src/page.rs crates/protfn/src/policy.rs

/root/repo/target/release/deps/libsimurgh_protfn-3fa04bb28698898f.rmeta: crates/protfn/src/lib.rs crates/protfn/src/cost.rs crates/protfn/src/cpl.rs crates/protfn/src/domain.rs crates/protfn/src/gem5.rs crates/protfn/src/page.rs crates/protfn/src/policy.rs

crates/protfn/src/lib.rs:
crates/protfn/src/cost.rs:
crates/protfn/src/cpl.rs:
crates/protfn/src/domain.rs:
crates/protfn/src/gem5.rs:
crates/protfn/src/page.rs:
crates/protfn/src/policy.rs:
