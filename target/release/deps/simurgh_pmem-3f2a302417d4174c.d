/root/repo/target/release/deps/simurgh_pmem-3f2a302417d4174c.d: crates/pmem/src/lib.rs crates/pmem/src/clock.rs crates/pmem/src/layout.rs crates/pmem/src/pptr.rs crates/pmem/src/prot.rs crates/pmem/src/region.rs crates/pmem/src/stats.rs crates/pmem/src/tracker.rs

/root/repo/target/release/deps/libsimurgh_pmem-3f2a302417d4174c.rlib: crates/pmem/src/lib.rs crates/pmem/src/clock.rs crates/pmem/src/layout.rs crates/pmem/src/pptr.rs crates/pmem/src/prot.rs crates/pmem/src/region.rs crates/pmem/src/stats.rs crates/pmem/src/tracker.rs

/root/repo/target/release/deps/libsimurgh_pmem-3f2a302417d4174c.rmeta: crates/pmem/src/lib.rs crates/pmem/src/clock.rs crates/pmem/src/layout.rs crates/pmem/src/pptr.rs crates/pmem/src/prot.rs crates/pmem/src/region.rs crates/pmem/src/stats.rs crates/pmem/src/tracker.rs

crates/pmem/src/lib.rs:
crates/pmem/src/clock.rs:
crates/pmem/src/layout.rs:
crates/pmem/src/pptr.rs:
crates/pmem/src/prot.rs:
crates/pmem/src/region.rs:
crates/pmem/src/stats.rs:
crates/pmem/src/tracker.rs:
