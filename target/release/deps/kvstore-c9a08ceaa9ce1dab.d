/root/repo/target/release/deps/kvstore-c9a08ceaa9ce1dab.d: examples/src/bin/kvstore.rs

/root/repo/target/release/deps/kvstore-c9a08ceaa9ce1dab: examples/src/bin/kvstore.rs

examples/src/bin/kvstore.rs:
