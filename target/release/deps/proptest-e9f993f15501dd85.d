/root/repo/target/release/deps/proptest-e9f993f15501dd85.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-e9f993f15501dd85.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-e9f993f15501dd85.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
