/root/repo/target/release/deps/simurgh_analyze-2cca1a6a78b0c20a.d: crates/analyze/src/lib.rs

/root/repo/target/release/deps/libsimurgh_analyze-2cca1a6a78b0c20a.rlib: crates/analyze/src/lib.rs

/root/repo/target/release/deps/libsimurgh_analyze-2cca1a6a78b0c20a.rmeta: crates/analyze/src/lib.rs

crates/analyze/src/lib.rs:
