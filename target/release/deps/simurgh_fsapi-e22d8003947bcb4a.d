/root/repo/target/release/deps/simurgh_fsapi-e22d8003947bcb4a.d: crates/fsapi/src/lib.rs crates/fsapi/src/error.rs crates/fsapi/src/fs.rs crates/fsapi/src/path.rs crates/fsapi/src/profile.rs crates/fsapi/src/reffs.rs crates/fsapi/src/types.rs

/root/repo/target/release/deps/libsimurgh_fsapi-e22d8003947bcb4a.rlib: crates/fsapi/src/lib.rs crates/fsapi/src/error.rs crates/fsapi/src/fs.rs crates/fsapi/src/path.rs crates/fsapi/src/profile.rs crates/fsapi/src/reffs.rs crates/fsapi/src/types.rs

/root/repo/target/release/deps/libsimurgh_fsapi-e22d8003947bcb4a.rmeta: crates/fsapi/src/lib.rs crates/fsapi/src/error.rs crates/fsapi/src/fs.rs crates/fsapi/src/path.rs crates/fsapi/src/profile.rs crates/fsapi/src/reffs.rs crates/fsapi/src/types.rs

crates/fsapi/src/lib.rs:
crates/fsapi/src/error.rs:
crates/fsapi/src/fs.rs:
crates/fsapi/src/path.rs:
crates/fsapi/src/profile.rs:
crates/fsapi/src/reffs.rs:
crates/fsapi/src/types.rs:
