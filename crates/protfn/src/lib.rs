//! Software simulation of Simurgh's protected user-space functions (§3).
//!
//! The paper proposes two instructions — `jmpp` (jump protected) and `pret`
//! (protected return) — plus one new page-table bit `ep` ("execute
//! protected"). Together they let an application enter predefined
//! file-system entry points at function-call cost while the CPU privilege
//! level is temporarily raised, removing the kernel from the control path.
//!
//! Real silicon with these instructions does not exist; the authors
//! prototyped them in gem5 and added the measured 46-cycle `jmpp`/`pret`
//! delta to every Simurgh call on their Optane testbed. This crate provides
//! the equivalent software construction:
//!
//! * [`cpl`] — a per-thread current privilege level (x86 CPL semantics),
//! * [`page`] — protected code pages with the four fixed entry offsets of
//!   the paper's Fig. 1,
//! * [`domain::ProtectedDomain`] — the `jmpp`/`pret` state machine with all
//!   four security requirements of §3.1 enforced and violations surfaced as
//!   typed [`Fault`]s,
//! * [`policy::KernelPagePolicy`] — an [`simurgh_pmem::AccessPolicy`] that
//!   faults user-mode access to kernel-marked NVMM pages, completing the
//!   "NVMM only reachable from protected functions" guarantee of §3.2,
//! * [`cost`] — the gem5-derived cycle model and [`cost::SecurityMode`],
//!   which the benchmark harness uses to charge each file-system call with
//!   the protected-function or syscall cost it would have on real hardware,
//! * [`gem5`] — the §3.3 microbenchmark reproducing the cycle-count table.

pub mod cost;
pub mod cpl;
pub mod domain;
pub mod gem5;
pub mod page;
pub mod policy;

pub use cost::{CostModel, SecurityMode};
pub use cpl::Ring;
pub use domain::{Fault, FnId, ProtectedDomain};
pub use page::{EntryPoint, ENTRY_OFFSETS, ENTRY_POINTS_PER_PAGE};
pub use policy::KernelPagePolicy;
