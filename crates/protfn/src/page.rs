//! Protected code pages and their fixed entry points (paper Fig. 1).
//!
//! A protected 4-KB page exposes exactly four legal `jmpp` targets at the
//! offsets `0x000`, `0x400`, `0x800` and `0xc00`. A function longer than one
//! slot must be laid out so that the instruction falling on the next entry
//! offset is *not* a valid entry (the paper uses "not a `nop`"); jumping
//! there faults. We model that by recording, per slot, whether a function
//! entry or function *body* occupies it.

use simurgh_pmem::PAGE_SIZE;

/// Number of `jmpp` entry points per protected page.
pub const ENTRY_POINTS_PER_PAGE: usize = 4;

/// The fixed entry offsets within a protected page.
pub const ENTRY_OFFSETS: [usize; ENTRY_POINTS_PER_PAGE] = [0x000, 0x400, 0x800, 0xc00];

/// Bytes of code capacity per entry slot.
pub const SLOT_SIZE: usize = PAGE_SIZE / ENTRY_POINTS_PER_PAGE;

/// A code address in the simulated process image: page index plus offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EntryPoint {
    pub page: usize,
    pub offset: usize,
}

impl EntryPoint {
    /// The slot index this address targets, if it is one of the four legal
    /// entry offsets.
    pub fn slot(&self) -> Option<usize> {
        ENTRY_OFFSETS.iter().position(|&o| o == self.offset)
    }

    /// The flat simulated code address.
    pub fn addr(&self) -> usize {
        self.page * PAGE_SIZE + self.offset
    }

    /// Builds an entry point from a flat code address.
    pub fn from_addr(addr: usize) -> Self {
        EntryPoint { page: addr / PAGE_SIZE, offset: addr % PAGE_SIZE }
    }
}

/// What occupies one entry slot of a protected page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotContent {
    /// Nothing loaded; jumping here faults.
    Empty,
    /// A function entry: a registered protected function starts here.
    Entry(crate::FnId),
    /// Body bytes of a function that started in an earlier slot (the paper's
    /// "the instruction at the next entry offset must not be a nop" rule);
    /// jumping here faults.
    Body,
}

/// The slot map of one protected code page.
#[derive(Debug, Clone)]
pub struct ProtectedPage {
    pub slots: [SlotContent; ENTRY_POINTS_PER_PAGE],
}

impl ProtectedPage {
    /// An empty protected page.
    pub fn new() -> Self {
        ProtectedPage { slots: [SlotContent::Empty; ENTRY_POINTS_PER_PAGE] }
    }

    /// Loads a function of `code_bytes` bytes starting at `slot`; marks any
    /// following slots it spills into as [`SlotContent::Body`]. Returns the
    /// number of slots consumed, or `None` if they don't fit or are taken.
    pub fn load(&mut self, slot: usize, id: crate::FnId, code_bytes: usize) -> Option<usize> {
        let span = code_bytes.div_ceil(SLOT_SIZE).max(1);
        if slot + span > ENTRY_POINTS_PER_PAGE {
            return None;
        }
        if self.slots[slot..slot + span].iter().any(|s| *s != SlotContent::Empty) {
            return None;
        }
        self.slots[slot] = SlotContent::Entry(id);
        for s in &mut self.slots[slot + 1..slot + span] {
            *s = SlotContent::Body;
        }
        Some(span)
    }

    /// First run of `span` free slots, if any.
    pub fn find_free(&self, span: usize) -> Option<usize> {
        (0..=ENTRY_POINTS_PER_PAGE.saturating_sub(span))
            .find(|&s| self.slots[s..s + span].iter().all(|c| *c == SlotContent::Empty))
    }
}

impl Default for ProtectedPage {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FnId;

    #[test]
    fn entry_offsets_match_figure_1() {
        assert_eq!(ENTRY_OFFSETS, [0x000, 0x400, 0x800, 0xc00]);
        assert_eq!(SLOT_SIZE, 1024);
    }

    #[test]
    fn slot_resolution() {
        assert_eq!(EntryPoint { page: 0, offset: 0x400 }.slot(), Some(1));
        assert_eq!(EntryPoint { page: 0, offset: 0x401 }.slot(), None);
        assert_eq!(EntryPoint { page: 2, offset: 0xc00 }.slot(), Some(3));
        let e = EntryPoint::from_addr(2 * PAGE_SIZE + 0x800);
        assert_eq!(e, EntryPoint { page: 2, offset: 0x800 });
        assert_eq!(e.addr(), 2 * PAGE_SIZE + 0x800);
    }

    #[test]
    fn oversized_function_claims_body_slots() {
        // The paper's example: open() slightly bigger than 1 kB occupies two
        // slots; the second may not be jumped to.
        let mut p = ProtectedPage::new();
        let span = p.load(2, FnId(7), 1100).unwrap();
        assert_eq!(span, 2);
        assert_eq!(p.slots[2], SlotContent::Entry(FnId(7)));
        assert_eq!(p.slots[3], SlotContent::Body);
    }

    #[test]
    fn load_rejects_overlap_and_overflow() {
        let mut p = ProtectedPage::new();
        assert!(p.load(3, FnId(1), 2000).is_none(), "would overflow the page");
        p.load(1, FnId(1), 100).unwrap();
        assert!(p.load(1, FnId(2), 100).is_none(), "slot taken");
        assert_eq!(p.find_free(2), Some(2));
        p.load(2, FnId(3), 2048).unwrap();
        assert_eq!(p.find_free(1), Some(0));
        assert_eq!(p.find_free(2), None);
    }
}
