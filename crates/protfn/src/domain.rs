//! The `jmpp`/`pret` state machine (paper §3.1–§3.2).
//!
//! A [`ProtectedDomain`] owns a simulated code region: a page table with
//! `ep` bits and, per protected page, the slot map of loaded functions.
//! The four requirements of §3.1 map onto it as follows:
//!
//! 1. *Normal functions cannot access file-system data* — enforced by
//!    [`crate::KernelPagePolicy`] on the NVMM region.
//! 2. *Normal functions cannot change protected code* — the slot maps are
//!    only mutable through [`ProtectedDomain::load_protected`], the
//!    simulated `load_protected()` system call.
//! 3. *A safe privilege transition exists* — [`ProtectedDomain::jmpp`]
//!    raises the thread's CPL only after validating the `ep` bit.
//! 4. *Privileged execution is restricted to predefined entry points* —
//!    `jmpp` faults unless the target offset is one of the four entry
//!    offsets **and** a function entry (not body bytes) is loaded there.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};

use parking_lot::RwLock;
use simurgh_pmem::prot::{PageFlags, PageTable};

use crate::cpl::{self, Ring};
use crate::page::{EntryPoint, ProtectedPage, SlotContent, ENTRY_OFFSETS};

/// Identifier of a loaded protected function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FnId(pub u32);

/// A security violation detected by the simulated hardware. On real silicon
/// these raise exceptions; here they are values so tests can assert on them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// `jmpp` targeted a page whose `ep` bit is clear.
    EpNotSet { page: usize },
    /// `jmpp` targeted an offset that is not one of the four entry offsets.
    BadEntryOffset { offset: usize },
    /// `jmpp` targeted a legal entry offset with no function entry loaded
    /// there (empty slot, or body bytes of a longer function).
    NoFunctionAtEntry { target: EntryPoint },
    /// `pret` executed with no matching `jmpp` (nesting underflow).
    NestingUnderflow,
    /// The protected-stack return address was corrupted between `jmpp` and
    /// `pret` (modelled stack-tampering detection, §3.2).
    ReturnAddressMismatch { expected: usize, found: usize },
    /// `load_protected` could not place the function (code region full).
    NoCodeSpace,
    /// A function with this name is already loaded.
    DuplicateName,
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fault::EpNotSet { page } => write!(f, "jmpp to page {page} without ep bit"),
            Fault::BadEntryOffset { offset } => {
                write!(f, "jmpp to non-entry offset {offset:#x}")
            }
            Fault::NoFunctionAtEntry { target } => {
                write!(f, "jmpp to empty/body slot at page {} offset {:#x}", target.page, target.offset)
            }
            Fault::NestingUnderflow => write!(f, "pret without jmpp"),
            Fault::ReturnAddressMismatch { expected, found } => {
                write!(f, "protected return address corrupted: expected {expected:#x}, found {found:#x}")
            }
            Fault::NoCodeSpace => write!(f, "no space left in protected code region"),
            Fault::DuplicateName => write!(f, "protected function name already loaded"),
        }
    }
}

impl std::error::Error for Fault {}

thread_local! {
    /// Per-thread protected stack: the return addresses of active protected
    /// calls live here, not on the user stack (§3.2 stack-switching).
    static PROT_STACK: std::cell::RefCell<Vec<usize>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// The simulated protected code region plus the kernel module that loads
/// functions into it.
pub struct ProtectedDomain {
    code_pt: PageTable,
    inner: RwLock<Inner>,
    next_id: AtomicU32,
    jmpp_count: std::sync::atomic::AtomicU64,
}

struct Inner {
    pages: Vec<ProtectedPage>,
    by_name: HashMap<String, EntryPoint>,
}

impl ProtectedDomain {
    /// Creates a domain with `code_pages` protected-code page frames.
    pub fn new(code_pages: usize) -> Self {
        ProtectedDomain {
            code_pt: PageTable::new(code_pages),
            inner: RwLock::new(Inner {
                pages: (0..code_pages).map(|_| ProtectedPage::new()).collect(),
                by_name: HashMap::new(),
            }),
            next_id: AtomicU32::new(1),
            jmpp_count: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The simulated `load_protected()` system call (§3.2 steps 3–5): the
    /// OS security module loads a trusted function of `code_bytes` bytes,
    /// maps it, and sets the `ep` bit on its page. Runs in kernel mode.
    pub fn load_protected(&self, name: &str, code_bytes: usize) -> Result<(FnId, EntryPoint), Fault> {
        let _kernel = cpl::KernelGuard::enter();
        let mut inner = self.inner.write();
        if inner.by_name.contains_key(name) {
            return Err(Fault::DuplicateName);
        }
        let span = code_bytes.div_ceil(crate::page::SLOT_SIZE).max(1);
        let id = FnId(self.next_id.fetch_add(1, Ordering::Relaxed));
        for (page_idx, page) in inner.pages.iter_mut().enumerate() {
            if let Some(slot) = page.find_free(span) {
                page.load(slot, id, code_bytes).expect("find_free guaranteed fit");
                // Only kernel mode may set the ep bit; we hold KernelGuard.
                self.code_pt.set(page_idx, 1, PageFlags::EP.union(PageFlags::KERNEL));
                let ep = EntryPoint { page: page_idx, offset: ENTRY_OFFSETS[slot] };
                inner.by_name.insert(name.to_owned(), ep);
                return Ok((id, ep));
            }
        }
        Err(Fault::NoCodeSpace)
    }

    /// Looks up a loaded function by name (what the preload library does
    /// once at startup; afterwards it calls by address).
    pub fn resolve(&self, name: &str) -> Option<EntryPoint> {
        self.inner.read().by_name.get(name).copied()
    }

    /// The `jmpp` instruction: validates the target and, on success, raises
    /// the thread to kernel mode and pushes the return address onto the
    /// protected stack. Balanced by [`ProtectedCall::pret`] (or drop).
    pub fn jmpp(&self, target: EntryPoint) -> Result<ProtectedCall<'_>, Fault> {
        // 1. ep bit check (done during address translation on real HW).
        if !self.code_pt.get(target.page).contains(PageFlags::EP) {
            return Err(Fault::EpNotSet { page: target.page });
        }
        // 2. Entry-offset check.
        let Some(slot) = target.slot() else {
            return Err(Fault::BadEntryOffset { offset: target.offset });
        };
        // 3. A function entry must be loaded at that slot.
        {
            let inner = self.inner.read();
            match inner.pages.get(target.page).map(|p| p.slots[slot]) {
                Some(SlotContent::Entry(_)) => {}
                _ => return Err(Fault::NoFunctionAtEntry { target }),
            }
        }
        // 4. Raise privilege, switch to the protected stack.
        let ret_addr = target.addr() ^ 0x5a5a_5a5a; // simulated caller address
        PROT_STACK.with(|s| s.borrow_mut().push(ret_addr));
        cpl::set(Ring::Kernel);
        self.jmpp_count.fetch_add(1, Ordering::Relaxed);
        Ok(ProtectedCall { domain: self, ret_addr, done: false })
    }

    /// Runs `body` inside a protected call to `target`.
    pub fn enter<R>(&self, target: EntryPoint, body: impl FnOnce() -> R) -> Result<R, Fault> {
        let call = self.jmpp(target)?;
        let out = body();
        call.pret()?;
        Ok(out)
    }

    /// Number of successful `jmpp` transitions (diagnostic).
    pub fn jmpp_count(&self) -> u64 {
        self.jmpp_count.load(Ordering::Relaxed)
    }

    /// The code-region page table (for tests asserting on `ep` bits).
    pub fn code_page_table(&self) -> &PageTable {
        &self.code_pt
    }

    fn pret_impl(&self, expected_ret: usize) -> Result<(), Fault> {
        PROT_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let Some(found) = stack.pop() else {
                return Err(Fault::NestingUnderflow);
            };
            if found != expected_ret {
                stack.push(found);
                return Err(Fault::ReturnAddressMismatch { expected: expected_ret, found });
            }
            if stack.is_empty() {
                cpl::set(Ring::User);
            }
            Ok(())
        })
    }
}

/// An active protected call; dropping it performs the `pret`.
pub struct ProtectedCall<'d> {
    domain: &'d ProtectedDomain,
    ret_addr: usize,
    done: bool,
}

impl std::fmt::Debug for ProtectedCall<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProtectedCall").field("ret_addr", &self.ret_addr).finish()
    }
}

impl ProtectedCall<'_> {
    /// The `pret` instruction: pops the protected stack, validates the
    /// return address, and drops back to user mode when the nesting counter
    /// reaches zero.
    pub fn pret(mut self) -> Result<(), Fault> {
        self.done = true;
        self.domain.pret_impl(self.ret_addr)
    }
}

impl Drop for ProtectedCall<'_> {
    fn drop(&mut self) {
        if !self.done {
            let _ = self.domain.pret_impl(self.ret_addr);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn domain_with(name: &str, bytes: usize) -> (ProtectedDomain, EntryPoint) {
        let d = ProtectedDomain::new(4);
        let (_, ep) = d.load_protected(name, bytes).unwrap();
        (d, ep)
    }

    #[test]
    fn load_sets_ep_bit_and_resolves() {
        let (d, ep) = domain_with("read", 100);
        assert!(d.code_page_table().get(ep.page).contains(PageFlags::EP));
        assert_eq!(d.resolve("read"), Some(ep));
        assert_eq!(d.resolve("write"), None);
    }

    #[test]
    fn duplicate_names_rejected() {
        let (d, _) = domain_with("read", 100);
        assert_eq!(d.load_protected("read", 100).unwrap_err(), Fault::DuplicateName);
    }

    #[test]
    fn jmpp_raises_and_pret_lowers_privilege() {
        let (d, ep) = domain_with("open", 100);
        assert_eq!(cpl::current(), Ring::User);
        let call = d.jmpp(ep).unwrap();
        assert_eq!(cpl::current(), Ring::Kernel);
        call.pret().unwrap();
        assert_eq!(cpl::current(), Ring::User);
        assert_eq!(d.jmpp_count(), 1);
    }

    #[test]
    fn nested_calls_stay_kernel_until_last_pret() {
        let (d, ep) = domain_with("open", 100);
        let (_, ep2) = d.load_protected("stat", 100).unwrap();
        let outer = d.jmpp(ep).unwrap();
        let inner = d.jmpp(ep2).unwrap();
        assert_eq!(cpl::current(), Ring::Kernel);
        inner.pret().unwrap();
        assert_eq!(cpl::current(), Ring::Kernel, "still nested");
        outer.pret().unwrap();
        assert_eq!(cpl::current(), Ring::User);
    }

    #[test]
    fn jmpp_to_page_without_ep_faults() {
        let d = ProtectedDomain::new(4);
        let target = EntryPoint { page: 2, offset: 0 };
        assert_eq!(d.jmpp(target).unwrap_err(), Fault::EpNotSet { page: 2 });
        assert_eq!(cpl::current(), Ring::User);
    }

    #[test]
    fn jmpp_to_arbitrary_offset_faults() {
        let (d, ep) = domain_with("open", 100);
        let target = EntryPoint { page: ep.page, offset: 0x123 };
        assert_eq!(d.jmpp(target).unwrap_err(), Fault::BadEntryOffset { offset: 0x123 });
    }

    #[test]
    fn jmpp_into_function_body_faults() {
        // A >1 kB function's spill slot is a legal offset but not an entry.
        let (d, ep) = domain_with("open", 1100);
        assert_eq!(ep.offset, 0x000);
        let body = EntryPoint { page: ep.page, offset: 0x400 };
        assert_eq!(d.jmpp(body).unwrap_err(), Fault::NoFunctionAtEntry { target: body });
    }

    #[test]
    fn jmpp_to_empty_slot_faults() {
        let (d, ep) = domain_with("open", 100);
        let empty = EntryPoint { page: ep.page, offset: 0x800 };
        assert_eq!(d.jmpp(empty).unwrap_err(), Fault::NoFunctionAtEntry { target: empty });
    }

    #[test]
    fn enter_runs_body_in_kernel_mode() {
        let (d, ep) = domain_with("open", 100);
        let ring = d.enter(ep, cpl::current).unwrap();
        assert_eq!(ring, Ring::Kernel);
        assert_eq!(cpl::current(), Ring::User);
    }

    #[test]
    fn drop_performs_pret() {
        let (d, ep) = domain_with("open", 100);
        {
            let _call = d.jmpp(ep).unwrap();
            assert_eq!(cpl::current(), Ring::Kernel);
        }
        assert_eq!(cpl::current(), Ring::User);
    }

    #[test]
    fn functions_pack_across_pages() {
        let d = ProtectedDomain::new(2);
        // 4 KB function fills page 0; next goes to page 1.
        let (_, a) = d.load_protected("big", 4096).unwrap();
        let (_, b) = d.load_protected("small", 10).unwrap();
        assert_eq!(a.page, 0);
        assert_eq!(b.page, 1);
        // Two pages of 4 KB functions exhaust the region.
        assert_eq!(d.load_protected("more", 4096).unwrap_err(), Fault::NoCodeSpace);
    }
}
