//! Per-thread current privilege level (CPL).
//!
//! x86 derives the CPL from the low bits of `%cs`; it is a property of the
//! executing hardware thread. We model it as a thread-local. Threads start
//! in user mode ([`Ring::User`]); only the `jmpp` path of
//! [`crate::ProtectedDomain`] (and the simulated kernel-module bootstrap)
//! raises it.

use std::cell::Cell;

/// Privilege rings. Only the two levels the paper distinguishes are modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ring {
    /// CPL 0: supervisor / protected-function mode.
    Kernel,
    /// CPL 3: normal application code.
    User,
}

thread_local! {
    static CPL: Cell<Ring> = const { Cell::new(Ring::User) };
}

/// The calling thread's current privilege level.
#[inline]
pub fn current() -> Ring {
    CPL.with(|c| c.get())
}

/// Sets the calling thread's privilege level. Internal to the simulator —
/// well-behaved code goes through `jmpp`/`pret`; tests use this to model an
/// OS context switch or a misbehaving kernel.
#[inline]
pub fn set(ring: Ring) {
    CPL.with(|c| c.set(ring));
}

/// RAII guard that raises to kernel mode and restores the previous level on
/// drop. Used by the bootstrap path ("the OS security module") and by tests.
pub struct KernelGuard {
    prev: Ring,
}

impl KernelGuard {
    /// Enters kernel mode.
    pub fn enter() -> Self {
        let prev = current();
        set(Ring::Kernel);
        KernelGuard { prev }
    }
}

impl Drop for KernelGuard {
    fn drop(&mut self) {
        set(self.prev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_start_in_user_mode() {
        assert_eq!(current(), Ring::User);
        std::thread::spawn(|| assert_eq!(current(), Ring::User)).join().unwrap();
    }

    #[test]
    fn guard_restores_previous_level() {
        assert_eq!(current(), Ring::User);
        {
            let _g = KernelGuard::enter();
            assert_eq!(current(), Ring::Kernel);
            {
                let _g2 = KernelGuard::enter();
                assert_eq!(current(), Ring::Kernel);
            }
            assert_eq!(current(), Ring::Kernel);
        }
        assert_eq!(current(), Ring::User);
    }

    #[test]
    fn cpl_is_thread_local() {
        let _g = KernelGuard::enter();
        std::thread::spawn(|| assert_eq!(current(), Ring::User)).join().unwrap();
        assert_eq!(current(), Ring::Kernel);
    }
}
