//! The gem5-derived cycle-cost model (paper §3.3) and the per-call security
//! cost charged to file-system operations (§5.1).

use simurgh_pmem::clock::{SpinClock, PAPER_GHZ};

/// Cycle counts reported by the paper's gem5 prototype and host measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// A standard x86 `call` + `ret` routine (gem5): ~24 cycles.
    pub call_ret: u64,
    /// `jmpp` + `pret` combined (gem5): ~70 cycles.
    pub jmpp_pret: u64,
    /// Changing CPL and writing the return address to the protected stack —
    /// the syscall-subset work `jmpp` still has to do: ~30 cycles.
    pub cpl_and_retaddr: u64,
    /// Checking the `ep` bit and the entry-point offset: ~6 cycles.
    pub ep_and_entry_check: u64,
    /// `getuid`/empty syscall on gem5: ~1200 cycles.
    pub syscall_gem5: u64,
    /// `geteuid()` on the paper's Xeon host: ~400 cycles.
    pub syscall_host: u64,
    /// Clock frequency used to convert cycles to time.
    pub ghz: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            call_ret: 24,
            jmpp_pret: 70,
            cpl_and_retaddr: 30,
            ep_and_entry_check: 6,
            syscall_gem5: 1200,
            syscall_host: 400,
            ghz: PAPER_GHZ,
        }
    }
}

impl CostModel {
    /// The extra cycles of a protected call over a plain call — the 46-cycle
    /// delta the paper added to every Simurgh operation.
    pub fn jmpp_delta(&self) -> u64 {
        self.jmpp_pret - self.call_ret
    }

    /// Cycles converted to nanoseconds at the model frequency.
    pub fn cycles_to_ns(&self, cycles: u64) -> f64 {
        cycles as f64 / self.ghz
    }
}

/// How a file-system call crosses the privilege boundary, and therefore what
/// fixed per-call cost it pays. Benchmarks charge this on every public
/// operation, mirroring the paper's methodology of adding the measured
/// 46-cycle delta to Simurgh and comparing against syscall-based systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SecurityMode {
    /// No privilege crossing charged (upper bound; the paper's "library
    /// without protection" configuration).
    Zero,
    /// Protected functions: charge the jmpp/pret delta (~46 cycles).
    #[default]
    Jmpp,
    /// Kernel file system on the real host: charge a ~400-cycle syscall.
    SyscallHost,
    /// Kernel file system on gem5's conservative model: ~1200 cycles.
    SyscallGem5,
}

impl SecurityMode {
    /// Extra cycles charged per file-system call relative to a plain call.
    pub fn per_call_cycles(self, m: &CostModel) -> u64 {
        match self {
            SecurityMode::Zero => 0,
            SecurityMode::Jmpp => m.jmpp_delta(),
            SecurityMode::SyscallHost => m.syscall_host.saturating_sub(m.call_ret),
            SecurityMode::SyscallGem5 => m.syscall_gem5.saturating_sub(m.call_ret),
        }
    }

    /// Busy-waits the per-call cost on the calibrated clock.
    #[inline]
    pub fn charge(self, m: &CostModel, clock: &SpinClock) {
        let cycles = self.per_call_cycles(m);
        if cycles > 0 {
            clock.delay_cycles(cycles, m.ghz);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_numbers() {
        let m = CostModel::default();
        assert_eq!(m.jmpp_delta(), 46);
        assert_eq!(SecurityMode::Jmpp.per_call_cycles(&m), 46);
        assert_eq!(SecurityMode::Zero.per_call_cycles(&m), 0);
        assert_eq!(SecurityMode::SyscallHost.per_call_cycles(&m), 376);
        assert_eq!(SecurityMode::SyscallGem5.per_call_cycles(&m), 1176);
    }

    #[test]
    fn syscall_is_6x_protected_call() {
        // §3.3: geteuid took ~400 cycles, "still 6x more cycles than for
        // protected functions" (70).
        let m = CostModel::default();
        let ratio = m.syscall_host as f64 / m.jmpp_pret as f64;
        assert!(ratio > 5.0 && ratio < 7.0);
    }

    #[test]
    fn cycles_to_time() {
        let m = CostModel::default();
        assert!((m.cycles_to_ns(46) - 18.4).abs() < 0.01);
    }

    #[test]
    fn charge_executes() {
        let m = CostModel::default();
        let clock = SpinClock::global();
        SecurityMode::Jmpp.charge(&m, clock);
        SecurityMode::Zero.charge(&m, clock);
    }
}
