//! The NVMM access policy: kernel pages are only reachable from protected
//! functions (paper §3.2).
//!
//! Simurgh maps all NVMM into every application's address space but marks
//! the pages as kernel pages, so a plain user-mode load or store faults.
//! [`KernelPagePolicy`] implements exactly that check for the emulated
//! region: it compares the calling thread's CPL (raised only by a valid
//! `jmpp`) against the page's flags.

use std::sync::Arc;

use simurgh_pmem::prot::{AccessFault, AccessPolicy, PageFlags, PageTable};

use crate::cpl::{self, Ring};

/// [`AccessPolicy`] enforcing kernel-page isolation for an NVMM region.
pub struct KernelPagePolicy {
    table: Arc<PageTable>,
}

impl KernelPagePolicy {
    /// Wraps a data-region page table.
    pub fn new(table: Arc<PageTable>) -> Self {
        KernelPagePolicy { table }
    }

    /// Marks every page of the region as a kernel page — what the Simurgh
    /// bootstrap does for the whole NVMM device. Requires kernel mode.
    pub fn protect_all(&self) {
        let _k = cpl::KernelGuard::enter();
        self.table.set(0, self.table.pages(), PageFlags::KERNEL);
    }

    /// The underlying page table.
    pub fn table(&self) -> &Arc<PageTable> {
        &self.table
    }
}

impl AccessPolicy for KernelPagePolicy {
    fn check_access(&self, page: usize, write: bool) -> Result<(), AccessFault> {
        let flags = self.table.get(page);
        if cpl::current() == Ring::User {
            if flags.contains(PageFlags::EP) && write {
                return Err(AccessFault::WriteToProtectedCode { page });
            }
            if flags.contains(PageFlags::KERNEL) {
                return Err(AccessFault::UserAccessToKernelPage { page, write });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simurgh_pmem::{PPtr, RegionBuilder, PAGE_SIZE};

    fn protected_region(pages: usize) -> (simurgh_pmem::PmemRegion, Arc<PageTable>) {
        let table = Arc::new(PageTable::new(pages));
        let policy = Arc::new(KernelPagePolicy::new(table.clone()));
        policy.protect_all();
        let region = RegionBuilder::new(pages * PAGE_SIZE).policy(policy).build().unwrap();
        (region, table)
    }

    #[test]
    fn user_mode_access_to_kernel_page_faults() {
        let (region, _) = protected_region(4);
        assert!(matches!(
            region.check_access(PPtr::new(0), 8, false),
            Err(simurgh_pmem::PmemError::Fault(AccessFault::UserAccessToKernelPage {
                page: 0,
                write: false
            }))
        ));
        assert!(matches!(
            region.check_access(PPtr::new(PAGE_SIZE as u64), 8, true),
            Err(simurgh_pmem::PmemError::Fault(AccessFault::UserAccessToKernelPage {
                page: 1,
                write: true
            }))
        ));
    }

    #[test]
    fn kernel_mode_access_is_allowed() {
        let (region, _) = protected_region(4);
        let _k = cpl::KernelGuard::enter();
        assert!(region.check_access(PPtr::new(0), 8, true).is_ok());
        region.write(PPtr::new(16), 99u64);
        assert_eq!(region.read::<u64>(PPtr::new(16)), 99);
    }

    #[test]
    #[should_panic(expected = "protection fault")]
    fn user_mode_store_panics_like_a_sigsegv() {
        let (region, _) = protected_region(1);
        region.write(PPtr::new(0), 1u8);
    }

    #[test]
    fn unprotected_pages_stay_accessible_from_user_mode() {
        let table = Arc::new(PageTable::new(2));
        let policy = Arc::new(KernelPagePolicy::new(table.clone()));
        // Protect only page 1; page 0 stays a user page.
        {
            let _k = cpl::KernelGuard::enter();
            table.set(1, 1, PageFlags::KERNEL);
        }
        let region = RegionBuilder::new(2 * PAGE_SIZE).policy(policy).build().unwrap();
        region.write(PPtr::new(0), 5u8);
        assert_eq!(region.read::<u8>(PPtr::new(0)), 5);
        assert!(region.check_access(PPtr::new(PAGE_SIZE as u64), 1, false).is_err());
    }

    #[test]
    fn user_mode_write_to_ep_page_faults_as_code_write() {
        let table = Arc::new(PageTable::new(1));
        {
            let _k = cpl::KernelGuard::enter();
            table.set(0, 1, PageFlags::EP);
        }
        let policy = KernelPagePolicy::new(table);
        assert_eq!(
            policy.check_access(0, true),
            Err(AccessFault::WriteToProtectedCode { page: 0 })
        );
        // Reading protected code from user mode is fine (it is mapped).
        assert_eq!(policy.check_access(0, false), Ok(()));
    }
}
