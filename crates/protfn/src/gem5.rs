//! The §3.3 microbenchmark: cycle costs of `call`, `jmpp`/`pret` and
//! syscalls, broken into execution blocks like the paper's gem5 runs.
//!
//! The modelled cycle numbers come straight from [`crate::CostModel`]; this
//! module replays them through the simulator (so the security checks really
//! execute) and reports both the model numbers and the measured wall-clock
//! cost per simulated call on this host.

use std::time::Instant;

use crate::cost::CostModel;
use crate::domain::ProtectedDomain;

/// One row of the reproduced gem5 table.
#[derive(Debug, Clone, PartialEq)]
pub struct CycleRow {
    pub mechanism: &'static str,
    pub modelled_cycles: u64,
    pub modelled_ns: f64,
    /// Average wall-clock nanoseconds per simulated invocation on this host
    /// (includes the simulator's own bookkeeping; reported for transparency).
    pub simulated_ns: f64,
}

/// Result of the gem5-reproduction benchmark.
#[derive(Debug, Clone)]
pub struct Gem5Report {
    pub rows: Vec<CycleRow>,
    /// Breakdown of the jmpp/pret cost into the paper's execution blocks.
    pub jmpp_blocks: Vec<(&'static str, u64)>,
    pub iterations: u64,
}

impl Gem5Report {
    /// Ratio of empty-syscall cycles to jmpp/pret cycles (the paper's 6x /
    /// 17x headline depending on host vs gem5 syscall numbers).
    pub fn syscall_speedup_host(&self) -> f64 {
        let m = CostModel::default();
        m.syscall_host as f64 / m.jmpp_pret as f64
    }
}

/// Runs the reproduction benchmark: `iters` protected calls through a real
/// [`ProtectedDomain`] plus modelled numbers for the other mechanisms.
pub fn run(iters: u64) -> Gem5Report {
    let model = CostModel::default();
    let domain = ProtectedDomain::new(1);
    let (_, ep) = domain.load_protected("bench_fn", 64).expect("load bench fn");

    // Plain call baseline: an opaque function call.
    let plain = {
        let start = Instant::now();
        let mut acc = 0u64;
        for i in 0..iters {
            acc = std::hint::black_box(acc.wrapping_add(i));
        }
        std::hint::black_box(acc);
        start.elapsed().as_secs_f64() * 1e9 / iters as f64
    };

    // jmpp/pret through the simulator (validates ep bit + entry each time).
    let jmpp = {
        let start = Instant::now();
        for _ in 0..iters {
            domain.enter(ep, || std::hint::black_box(0u64)).expect("valid entry");
        }
        start.elapsed().as_secs_f64() * 1e9 / iters as f64
    };

    // Syscall stand-in: a real OS round trip for reference.
    let syscall = {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(std::thread::current().id());
        }
        start.elapsed().as_secs_f64() * 1e9 / iters as f64
    };

    let rows = vec![
        CycleRow {
            mechanism: "call/ret (gem5)",
            modelled_cycles: model.call_ret,
            modelled_ns: model.cycles_to_ns(model.call_ret),
            simulated_ns: plain,
        },
        CycleRow {
            mechanism: "jmpp+pret (gem5)",
            modelled_cycles: model.jmpp_pret,
            modelled_ns: model.cycles_to_ns(model.jmpp_pret),
            simulated_ns: jmpp,
        },
        CycleRow {
            mechanism: "empty syscall (gem5)",
            modelled_cycles: model.syscall_gem5,
            modelled_ns: model.cycles_to_ns(model.syscall_gem5),
            simulated_ns: syscall,
        },
        CycleRow {
            mechanism: "geteuid syscall (host)",
            modelled_cycles: model.syscall_host,
            modelled_ns: model.cycles_to_ns(model.syscall_host),
            simulated_ns: syscall,
        },
    ];

    let jmpp_blocks = vec![
        ("CPL change + protected-stack return address", model.cpl_and_retaddr),
        ("ep bit + entry-point check", model.ep_and_entry_check),
        ("call routine", model.call_ret),
        (
            "remaining pipeline effects",
            model.jmpp_pret - model.cpl_and_retaddr - model.ep_and_entry_check - model.call_ret,
        ),
    ];

    Gem5Report { rows, jmpp_blocks, iterations: iters }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_has_all_mechanisms() {
        let r = run(100);
        assert_eq!(r.rows.len(), 4);
        assert_eq!(r.iterations, 100);
        let names: Vec<_> = r.rows.iter().map(|r| r.mechanism).collect();
        assert!(names.iter().any(|n| n.contains("jmpp")));
        assert!(names.iter().any(|n| n.contains("syscall")));
    }

    #[test]
    fn blocks_sum_to_jmpp_total() {
        let r = run(10);
        let model = CostModel::default();
        let sum: u64 = r.jmpp_blocks.iter().map(|(_, c)| c).sum();
        assert_eq!(sum, model.jmpp_pret);
    }

    #[test]
    fn headline_ratio_is_about_six() {
        let r = run(10);
        let ratio = r.syscall_speedup_host();
        assert!(ratio > 5.0 && ratio < 7.0, "6x claim, got {ratio}");
    }
}
