//! Property tests for the protected-function domain: for any sequence of
//! loaded functions, `jmpp` succeeds exactly at loaded entry points and
//! faults everywhere else, and the CPL is always balanced afterwards.

use proptest::prelude::*;
use simurgh_protfn::{cpl, EntryPoint, Fault, ProtectedDomain, Ring, ENTRY_OFFSETS};

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn jmpp_legality_matches_loaded_layout(
        sizes in proptest::collection::vec(1usize..2600, 1..12),
        probe_page in 0usize..6,
        probe_off in 0usize..4096,
    ) {
        let domain = ProtectedDomain::new(4);
        let mut loaded: Vec<(EntryPoint, usize)> = Vec::new();
        for (i, bytes) in sizes.iter().enumerate() {
            match domain.load_protected(&format!("fn{i}"), *bytes) {
                Ok((_, ep)) => loaded.push((ep, *bytes)),
                Err(Fault::NoCodeSpace) => break,
                Err(other) => prop_assert!(false, "unexpected load fault {other}"),
            }
        }
        // Every loaded entry point must be callable.
        for (ep, _) in &loaded {
            let out = domain.enter(*ep, cpl::current);
            prop_assert_eq!(out.expect("loaded entry callable"), Ring::Kernel);
            prop_assert_eq!(cpl::current(), Ring::User);
        }
        // A random probe address must succeed iff it is a loaded entry.
        let probe = EntryPoint { page: probe_page, offset: probe_off };
        let should_work = loaded.iter().any(|(ep, _)| *ep == probe);
        let outcome = domain.jmpp(probe);
        if should_work {
            prop_assert!(outcome.is_ok(), "loaded entry rejected: {probe:?}");
            outcome.unwrap().pret().unwrap();
        } else {
            let fault = outcome.expect_err("illegal jmpp accepted");
            match fault {
                Fault::EpNotSet { .. } => {
                    // Page has no function at all.
                    prop_assert!(!loaded.iter().any(|(ep, _)| ep.page == probe.page));
                }
                Fault::BadEntryOffset { offset } => {
                    prop_assert!(!ENTRY_OFFSETS.contains(&offset));
                }
                Fault::NoFunctionAtEntry { .. } => {
                    prop_assert!(ENTRY_OFFSETS.contains(&probe.offset));
                }
                other => prop_assert!(false, "unexpected fault {other}"),
            }
        }
        prop_assert_eq!(cpl::current(), Ring::User, "CPL balanced at the end");
    }

    #[test]
    fn nesting_depth_always_balances(depth in 1usize..20) {
        let domain = ProtectedDomain::new(4);
        let (_, ep) = domain.load_protected("f", 16).unwrap();
        fn recurse(domain: &ProtectedDomain, ep: EntryPoint, left: usize) {
            if left == 0 {
                assert_eq!(cpl::current(), Ring::Kernel);
                return;
            }
            domain.enter(ep, || recurse(domain, ep, left - 1)).unwrap();
            assert_eq!(cpl::current(), Ring::Kernel, "outer frames stay privileged");
        }
        domain.enter(ep, || recurse(&domain, ep, depth)).unwrap();
        prop_assert_eq!(cpl::current(), Ring::User);
    }

    #[test]
    fn code_capacity_is_exact(bytes in 1usize..4097) {
        // A page holds floor(4096 / slot) functions of `bytes` bytes where
        // slot-span = ceil(bytes / 1024).
        let domain = ProtectedDomain::new(1);
        let span = bytes.div_ceil(1024);
        let fit = 4 / span;
        let mut loaded = 0;
        for i in 0..8 {
            if domain.load_protected(&format!("f{i}"), bytes).is_ok() {
                loaded += 1;
            }
        }
        prop_assert_eq!(loaded, fit, "{} byte functions per 4K page", bytes);
    }
}
