//! Static checker for Simurgh's NVMM invariants.
//!
//! The Fig. 5 protocols and the §4 persistence rules only hold if every
//! function in the tree follows a handful of mechanical conventions:
//! stores are fenced before publication points, busy flags and rename
//! journals are released on every exit path, `unsafe` is justified, and
//! every struct copied to/from the media has a pinned `#[repr(C)]` layout.
//! Those conventions are invisible to `rustc`, so this crate enforces them
//! with a hand-rolled line/token scanner (no `syn`, no dependencies — it
//! must build in offline containers) over the workspace sources.
//!
//! Eleven rule families:
//!
//! * **persist-order** — in a function that issues raw region stores
//!   (`write`, `write_from`, `nt_write_from`, `zero`) and later clears a
//!   busy flag / valid bit / rename flag, a `persist`/`fence` (or
//!   `persist_now`/`fence_now`/scope-`commit`) call must sit between the
//!   last store and the release (§4.3: "metadata updates occur after the
//!   data has been persisted").
//! * **fence-scope** — a group-commit `fence_scope()` elides `persist`/
//!   `fence` calls until the scope closes, so a commit-point publish
//!   (`set_line`, `set_flag`, `write_log`, `clear_dirty`, `invalidate`)
//!   reached with stores staged and no intervening `scope.commit()` would
//!   let the publish become durable before the preparation it vouches for;
//!   the scope must commit first.
//! * **lock-discipline** — a raw `try_busy` acquire, an armed rename log
//!   (`write_log`) or a set `DF_RENAME` flag must be matched by a release
//!   on every exit path; `?`/`return` while held is flagged. Returning an
//!   RAII `*Guard` value is the sanctioned hand-off.
//! * **unsafe-audit** — every `unsafe` block/fn/impl/trait must be
//!   preceded by a `// SAFETY:` (or `/// # Safety`) comment; the full
//!   inventory is reported either way.
//! * **media-layout** — every non-primitive type with an `unsafe impl Pod`
//!   (i.e. passed to `PmemRegion::read::<T>`/`write::<T>`) must be
//!   `#[repr(C)]` and listed in the checked-in `layout.golden` manifest,
//!   whose offsets a companion test pins with `core::mem::offset_of!`.
//! * **data-path-walk** — the data hot path (`read_at`, `write_at`,
//!   `ensure_allocated`) must stay O(1) in the extent count: calling the
//!   O(extents) map helpers (`map_offset`, `allocated_bytes`,
//!   `for_each_extent`) from inside a loop body of one of those functions
//!   reintroduces the per-chunk re-walk the extent cursor cache removed.
//! * **api-surface** — the `fsapi` crate is the workspace's public
//!   contract: every `pub` item there needs a rustdoc comment, and every
//!   `FsError` variant must appear in both the `errno()` and
//!   `errno_name()` mappings (a variant added without an errno silently
//!   breaks the io::Error conversion surface).
//! * **obs-coverage** — the observability layer only catches what it can
//!   see: every public `FileSystem` op implemented in an `fs.rs` (the fns
//!   taking a `ProcCtx`) must run under an `OpTimer`
//!   (`measure(`/`FsOp::` in its body), and every `AtomicU64` counter
//!   battery declared in `core` must be wired into the `ObsRegistry`
//!   (mentioned in the file declaring it) — an unregistered counter or an
//!   untimed op is invisible to `paper obs` and to the flight recorder.
//! * **shared-region** — a shared-file mount rebuilds every volatile cache
//!   per process, trusting only media: any struct in `core` holding a
//!   cache-shaped container (`HashMap`/`FastMap`/`UnsafeCell`/`SegQueue`)
//!   must be listed, with its rebuild story, in the `REBUILDABLE_CACHES`
//!   registry next to the shared mount protocol. An unlisted cache is DRAM
//!   state no peer process can rebuild or invalidate — exactly the thing a
//!   `kill -9` of one mount turns into silent divergence.
//! * **wire-parity** — the serving gateway mirrors the `FileSystem` trait
//!   over a binary protocol: every trait method must have a matching
//!   `Request` variant (snake_case → CamelCase), every variant must map
//!   back to a method, and every variant must be handled by an explicit
//!   arm in a `dispatch` function. A method added without a wire op (or
//!   an op without a handler) is an API the daemon silently cannot serve.
//! * **relocation-order** — online compaction swaps a file's extent map
//!   under the single-slot relocation journal, and the §"Relocation
//!   ordering invariant" (crates/core/src/compact.rs) only holds in one
//!   order: bytes persisted before the journal arms, the map-swap stores
//!   (`set_extent`/`set_ext_next`) inside a fence scope, and an eager
//!   `commit()` sealing the swap before the journal clears or any old
//!   extent is `free`d. A `free(` between the new-map stores and the
//!   `commit()` hands blocks back while the durable truth still points at
//!   them — a crash there double-allocates file data.
//!
//! False positives are suppressed in place with a justified
//! `// analyze:allow(<rule-id>)` marker on the flagged line or in the
//! comment block directly above it; see DESIGN.md "Enforced invariants".

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The eleven rule families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    PersistOrder,
    FenceScope,
    LockDiscipline,
    UnsafeAudit,
    MediaLayout,
    DataPathWalk,
    ApiSurface,
    ObsCoverage,
    SharedRegion,
    WireParity,
    RelocationOrder,
}

impl Rule {
    /// Stable identifier used in reports and `analyze:allow(...)` markers.
    pub fn id(self) -> &'static str {
        match self {
            Rule::PersistOrder => "persist-order",
            Rule::FenceScope => "fence-scope",
            Rule::LockDiscipline => "lock-discipline",
            Rule::UnsafeAudit => "unsafe-audit",
            Rule::MediaLayout => "media-layout",
            Rule::DataPathWalk => "data-path-walk",
            Rule::ApiSurface => "api-surface",
            Rule::ObsCoverage => "obs-coverage",
            Rule::SharedRegion => "shared-region",
            Rule::WireParity => "wire-parity",
            Rule::RelocationOrder => "relocation-order",
        }
    }

    pub const ALL: [Rule; 11] = [
        Rule::PersistOrder,
        Rule::FenceScope,
        Rule::LockDiscipline,
        Rule::UnsafeAudit,
        Rule::MediaLayout,
        Rule::DataPathWalk,
        Rule::ApiSurface,
        Rule::ObsCoverage,
        Rule::SharedRegion,
        Rule::WireParity,
        Rule::RelocationOrder,
    ];
}

/// One violation. `line` is 1-based.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: Rule,
    pub file: String,
    pub line: usize,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule.id(), self.message)
    }
}

/// One `unsafe` site (documented or not) for the audit inventory.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    pub file: String,
    pub line: usize,
    pub kind: String,
    pub documented: bool,
}

/// Scan output: violations plus the informational inventories.
#[derive(Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    pub unsafe_sites: Vec<UnsafeSite>,
    /// Names of non-primitive `Pod` media types found in the tree.
    pub pod_types: Vec<String>,
    pub files_scanned: usize,
}

// ---------------------------------------------------------------------------
// Source model: stripped lines
// ---------------------------------------------------------------------------

struct Line {
    /// Original text (comments intact) — used for SAFETY/allow markers.
    raw: String,
    /// Comments and string/char-literal bodies blanked to spaces.
    code: String,
    /// Inside a `#[cfg(test)]` item: protocol half-states are deliberate
    /// there, so every rule skips these lines.
    skip: bool,
}

struct SourceFile {
    label: String,
    lines: Vec<Line>,
}

/// Blanks comments and literal bodies while preserving line structure, so
/// token matching never fires inside a string or comment.
fn strip(src: &str) -> (Vec<String>, Vec<String>) {
    #[derive(PartialEq)]
    enum St {
        Code,
        LineComment,
        Block(u32),
        Str,
        RawStr(u32),
        Char,
    }
    let mut st = St::Code;
    let mut code = String::with_capacity(src.len());
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        match st {
            St::Code => match c {
                '/' if next == Some('/') => {
                    st = St::LineComment;
                    code.push(' ');
                }
                '/' if next == Some('*') => {
                    st = St::Block(1);
                    code.push(' ');
                }
                '"' => {
                    // Raw-string prefix? (r"", r#""#, br#""#)
                    let mut j = i;
                    let mut hashes = 0u32;
                    while j > 0 && bytes[j - 1] == '#' {
                        hashes += 1;
                        j -= 1;
                    }
                    let is_raw = j > 0 && (bytes[j - 1] == 'r');
                    st = if is_raw { St::RawStr(hashes) } else { St::Str };
                    code.push('"');
                }
                '\'' => {
                    // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                    let is_lifetime = matches!(next, Some(n) if n.is_alphabetic() || n == '_')
                        && bytes.get(i + 2).copied() != Some('\'');
                    if is_lifetime {
                        code.push('\'');
                    } else {
                        st = St::Char;
                        code.push('\'');
                    }
                }
                _ => code.push(c),
            },
            St::LineComment => {
                if c == '\n' {
                    st = St::Code;
                    code.push('\n');
                } else {
                    code.push(' ');
                }
            }
            St::Block(d) => {
                if c == '*' && next == Some('/') {
                    st = if d == 1 { St::Code } else { St::Block(d - 1) };
                    code.push_str("  ");
                    i += 2;
                    continue;
                } else if c == '/' && next == Some('*') {
                    st = St::Block(d + 1);
                    code.push_str("  ");
                    i += 2;
                    continue;
                } else if c == '\n' {
                    code.push('\n');
                } else {
                    code.push(' ');
                }
            }
            St::Str => match c {
                '\\' => {
                    code.push_str("  ");
                    i += 2;
                    continue;
                }
                '"' => {
                    st = St::Code;
                    code.push('"');
                }
                '\n' => code.push('\n'),
                _ => code.push(' '),
            },
            St::RawStr(h) => {
                if c == '"' {
                    let mut k = 0u32;
                    while k < h && bytes.get(i + 1 + k as usize).copied() == Some('#') {
                        k += 1;
                    }
                    if k == h {
                        st = St::Code;
                        code.push('"');
                        for _ in 0..h {
                            code.push(' ');
                        }
                        i += 1 + h as usize;
                        continue;
                    }
                }
                code.push(if c == '\n' { '\n' } else { ' ' });
            }
            St::Char => match c {
                '\\' => {
                    code.push_str("  ");
                    i += 2;
                    continue;
                }
                '\'' => {
                    st = St::Code;
                    code.push('\'');
                }
                _ => code.push(' '),
            },
        }
        i += 1;
    }
    let raw_lines: Vec<String> = src.lines().map(str::to_owned).collect();
    let mut code_lines: Vec<String> = code.lines().map(str::to_owned).collect();
    code_lines.resize(raw_lines.len(), String::new());
    (raw_lines, code_lines)
}

/// Marks every line belonging to a `#[cfg(test)]` item as skipped.
fn mark_cfg_test(lines: &mut [Line]) {
    let mut i = 0;
    while i < lines.len() {
        if !lines[i].code.contains("#[cfg(test)]") {
            i += 1;
            continue;
        }
        let mut depth = 0i64;
        let mut started = false;
        let mut j = i;
        while j < lines.len() {
            let mut done = false;
            for c in lines[j].code.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        started = true;
                    }
                    '}' => {
                        depth -= 1;
                        if started && depth <= 0 {
                            done = true;
                        }
                    }
                    ';' if !started => done = true, // attribute on a braceless item
                    _ => {}
                }
            }
            lines[j].skip = true;
            if done {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
}

fn load(label: &str, src: &str) -> SourceFile {
    let (raw, code) = strip(src);
    let mut lines: Vec<Line> = raw
        .into_iter()
        .zip(code)
        .map(|(raw, code)| Line { raw, code, skip: false })
        .collect();
    mark_cfg_test(&mut lines);
    SourceFile { label: label.to_owned(), lines }
}

// ---------------------------------------------------------------------------
// Token matching
// ---------------------------------------------------------------------------

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Whether `code` invokes `name` as a qualified call: `.name(`, `::name(`
/// or the turbofish forms. Definitions (`fn name(`) do not match.
fn has_call(code: &str, name: &str) -> bool {
    for (pos, _) in code.match_indices(name) {
        let before = code[..pos].chars().next_back();
        if !matches!(before, Some('.') | Some(':')) {
            continue;
        }
        let after = &code[pos + name.len()..];
        if after.starts_with('(') || after.starts_with("::<") {
            return true;
        }
    }
    false
}

/// Whether `code` invokes `name` in any form — bare (`name(`), method
/// (`.name(`) or path-qualified (`::name(`), plus the turbofish variants.
/// Definitions (`fn name(`) do not match.
fn has_invocation(code: &str, name: &str) -> bool {
    for (pos, _) in code.match_indices(name) {
        if code[..pos].chars().next_back().is_some_and(is_ident) {
            continue; // suffix of a longer identifier
        }
        let head = code[..pos].trim_end();
        if head.ends_with("fn")
            && !head[..head.len() - 2].chars().next_back().is_some_and(is_ident)
        {
            continue; // `fn name(` is a definition
        }
        let after = &code[pos + name.len()..];
        if after.starts_with('(') || after.starts_with("::<") {
            return true;
        }
    }
    false
}

/// Whether the line contains bare keyword `word`.
fn has_word(code: &str, word: &str) -> bool {
    for (pos, _) in code.match_indices(word) {
        let before_ok = code[..pos].chars().next_back().is_none_or(|c| !is_ident(c));
        let after_ok = code[pos + word.len()..].chars().next().is_none_or(|c| !is_ident(c));
        if before_ok && after_ok {
            return true;
        }
    }
    false
}

/// The `?` operator (excluding `?Sized` bounds).
fn has_try_op(code: &str) -> bool {
    for (pos, _) in code.match_indices('?') {
        if !code[pos + 1..].starts_with("Sized") {
            return true;
        }
    }
    false
}

/// An `analyze:allow(<id>)` marker on the line itself or anywhere in the
/// contiguous comment/attribute block directly above it.
fn allowed(file: &SourceFile, line_idx: usize, rule: Rule) -> bool {
    let marker = format!("analyze:allow({})", rule.id());
    if file.lines[line_idx].raw.contains(&marker) {
        return true;
    }
    let mut k = line_idx;
    while k > 0 {
        k -= 1;
        let t = file.lines[k].raw.trim();
        if !(t.starts_with("//") || t.starts_with("#[") || t.starts_with("#![")) {
            break;
        }
        if t.contains(&marker) {
            return true;
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Function extraction
// ---------------------------------------------------------------------------

/// `(start, end)` inclusive 0-based line ranges of every `fn` body
/// (signature line included). Nested functions yield nested ranges.
fn function_ranges(file: &SourceFile) -> Vec<(usize, usize)> {
    struct OpenFn {
        start: usize,
        body_depth: Option<i64>,
    }
    let mut ranges = Vec::new();
    let mut open: Vec<OpenFn> = Vec::new();
    let mut depth = 0i64;
    for (ln, line) in file.lines.iter().enumerate() {
        if line.skip {
            continue;
        }
        let chars: Vec<char> = line.code.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if c == 'f'
                && chars.get(i + 1) == Some(&'n')
                && (i == 0 || !is_ident(chars[i - 1]))
                && chars.get(i + 2).is_none_or(|&n| !is_ident(n))
            {
                open.push(OpenFn { start: ln, body_depth: None });
                i += 2;
                continue;
            }
            match c {
                '{' => {
                    depth += 1;
                    if let Some(f) = open.last_mut() {
                        if f.body_depth.is_none() {
                            f.body_depth = Some(depth);
                        }
                    }
                }
                '}' => {
                    if let Some(f) = open.last() {
                        if f.body_depth == Some(depth) {
                            ranges.push((f.start, ln));
                            open.pop();
                        }
                    }
                    depth -= 1;
                }
                ';' => {
                    if let Some(f) = open.last() {
                        if f.body_depth.is_none() {
                            open.pop(); // trait-method declaration, no body
                        }
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    ranges
}

// ---------------------------------------------------------------------------
// Rule 1: persistence ordering
// ---------------------------------------------------------------------------

const STORE_CALLS: [&str; 4] = ["write", "write_from", "nt_write_from", "zero"];
const FENCE_CALLS: [&str; 5] = ["persist", "fence", "persist_now", "fence_now", "commit"];
const RELEASE_CALLS: [&str; 4] = ["release_busy", "clear_flag", "clear_log", "invalidate"];

fn rule_persist_order(file: &SourceFile, report: &mut Report) {
    for &(start, end) in &function_ranges(file) {
        let mut pending: Option<usize> = None;
        for ln in start..=end {
            let line = &file.lines[ln];
            if line.skip {
                continue;
            }
            if STORE_CALLS.iter().any(|s| has_call(&line.code, s)) {
                pending = Some(ln);
            }
            if FENCE_CALLS.iter().any(|s| has_call(&line.code, s)) {
                pending = None;
            }
            if RELEASE_CALLS.iter().any(|s| has_call(&line.code, s)) {
                if let Some(store_ln) = pending {
                    if !allowed(file, ln, Rule::PersistOrder) {
                        report.findings.push(Finding {
                            rule: Rule::PersistOrder,
                            file: file.label.clone(),
                            line: ln + 1,
                            message: format!(
                                "release without a fence after the store on line {}",
                                store_ln + 1
                            ),
                        });
                    }
                    pending = None; // one finding per unfenced store
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 1b: fence scopes
// ---------------------------------------------------------------------------

/// Publish helpers that make protocol state reachable (each fences its own
/// store eagerly): a crash right after one must observe every preparation
/// persist as durable, so inside a group-commit scope — where `persist`/
/// `fence` are elided — they must be preceded by a `scope.commit()`.
const COMMIT_POINT_CALLS: [&str; 5] =
    ["set_line", "set_flag", "write_log", "clear_dirty", "invalidate"];
/// Calls that make the scope's staged stores durable immediately.
const EAGER_FENCE_CALLS: [&str; 3] = ["commit", "persist_now", "fence_now"];

fn rule_fence_scope(file: &SourceFile, report: &mut Report) {
    for &(start, end) in &function_ranges(file) {
        let mut open = false;
        // Line of the newest store/persist staged (elided) since the last
        // eager fence, while a scope is open.
        let mut staged: Option<usize> = None;
        for ln in start..=end {
            let line = &file.lines[ln];
            if line.skip {
                continue;
            }
            if has_invocation(&line.code, "fence_scope") {
                // Opening a scope declares intent to stage: the allocator
                // claims inside helper calls stage without a visible token.
                open = true;
                staged = Some(ln);
                continue;
            }
            if !open {
                continue;
            }
            if has_invocation(&line.code, "drop") {
                // Dropping the scope performs the deferred fence.
                open = false;
                staged = None;
                continue;
            }
            if EAGER_FENCE_CALLS.iter().any(|s| has_call(&line.code, s)) {
                staged = None;
                continue;
            }
            if COMMIT_POINT_CALLS.iter().any(|s| has_call(&line.code, s)) {
                if let Some(st) = staged {
                    if !allowed(file, ln, Rule::FenceScope) {
                        report.findings.push(Finding {
                            rule: Rule::FenceScope,
                            file: file.label.clone(),
                            line: ln + 1,
                            message: format!(
                                "commit-point publish inside a fence scope with stores \
                                 staged since line {} and no intervening scope.commit()",
                                st + 1
                            ),
                        });
                    }
                }
                staged = None; // the publish helper fenced eagerly itself
                continue;
            }
            if STORE_CALLS.iter().any(|s| has_call(&line.code, s))
                || has_call(&line.code, "persist")
                || has_call(&line.code, "fence")
            {
                staged = Some(ln);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 1c: relocation ordering
// ---------------------------------------------------------------------------

/// The map-swap stores of the relocation protocol: rewriting the inline
/// extent slots and the overflow-chain head.
const MAP_SWAP_CALLS: [&str; 2] = ["set_extent", "set_ext_next"];

/// A line arming the *relocation journal* specifically — the `journal`
/// qualifier keeps the pmem fault tracker's unrelated `arm` out.
fn arms_reloc_journal(code: &str) -> bool {
    code.contains("journal") && has_invocation(code, "arm")
}

fn rule_relocation_order(file: &SourceFile, report: &mut Report) {
    for &(start, end) in &function_ranges(file) {
        // Only relocation bodies: functions that arm the journal.
        if !(start..=end)
            .any(|ln| !file.lines[ln].skip && arms_reloc_journal(&file.lines[ln].code))
        {
            continue;
        }
        // Newest raw store (the data copy) not yet covered by a fence.
        let mut pending_store: Option<usize> = None;
        let mut armed = false;
        let mut in_scope = false;
        // First map-swap store since arming, not yet sealed by `commit()`.
        let mut swap: Option<usize> = None;
        for ln in start..=end {
            let line = &file.lines[ln];
            if line.skip {
                continue;
            }
            let code = &line.code;
            if has_invocation(code, "fence_scope") {
                in_scope = true;
            }
            if !armed {
                if STORE_CALLS.iter().any(|s| has_call(code, s)) {
                    pending_store = Some(ln);
                }
                if FENCE_CALLS.iter().any(|s| has_call(code, s)) {
                    pending_store = None;
                }
                if arms_reloc_journal(code) {
                    if let Some(st) = pending_store {
                        if !allowed(file, ln, Rule::RelocationOrder) {
                            report.findings.push(Finding {
                                rule: Rule::RelocationOrder,
                                file: file.label.clone(),
                                line: ln + 1,
                                message: format!(
                                    "journal armed with the copied bytes from line {} \
                                     not yet persisted",
                                    st + 1
                                ),
                            });
                        }
                    }
                    armed = true;
                }
                continue;
            }
            if MAP_SWAP_CALLS.iter().any(|s| has_call(code, s)) && swap.is_none() {
                swap = Some(ln);
                if !in_scope && !allowed(file, ln, Rule::RelocationOrder) {
                    report.findings.push(Finding {
                        rule: Rule::RelocationOrder,
                        file: file.label.clone(),
                        line: ln + 1,
                        message: "relocation map swap outside a fence scope".to_owned(),
                    });
                }
            }
            if has_call(code, "commit") {
                swap = None; // the new map is durable; clear/free may follow
                continue;
            }
            if swap.is_some()
                && (has_invocation(code, "free") || has_invocation(code, "clear"))
            {
                if !allowed(file, ln, Rule::RelocationOrder) {
                    report.findings.push(Finding {
                        rule: Rule::RelocationOrder,
                        file: file.label.clone(),
                        line: ln + 1,
                        message: format!(
                            "old extents released before the map swap from line {} \
                             was sealed by commit()",
                            swap.unwrap_or(0) + 1
                        ),
                    });
                }
                swap = None; // one finding per unsealed swap
            }
        }
        if let Some(sw) = swap {
            if !allowed(file, sw, Rule::RelocationOrder) {
                report.findings.push(Finding {
                    rule: Rule::RelocationOrder,
                    file: file.label.clone(),
                    line: sw + 1,
                    message: "relocation map swap is never sealed by an eager commit()"
                        .to_owned(),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 2: lock discipline
// ---------------------------------------------------------------------------

const ACQUIRE_CALLS: [&str; 2] = ["try_busy", "write_log"];
const LOCK_RELEASES: [&str; 3] = ["release_busy", "clear_flag", "clear_log"];

fn rule_lock_discipline(file: &SourceFile, report: &mut Report) {
    for &(start, end) in &function_ranges(file) {
        let mut open = 0usize;
        let mut acquire_ln = 0usize;
        for ln in start..=end {
            let line = &file.lines[ln];
            if line.skip {
                continue;
            }
            let acq = ACQUIRE_CALLS.iter().any(|s| has_call(&line.code, s))
                || (has_call(&line.code, "set_flag") && line.code.contains("DF_RENAME"));
            if acq {
                open += 1;
                acquire_ln = ln;
            }
            if LOCK_RELEASES.iter().any(|s| has_call(&line.code, s)) {
                open = 0;
            }
            // The acquire line itself is exempt: `if !try_busy { return ... }`
            // is the canonical not-acquired bail-out, not a leak.
            if open > 0 && ln != acquire_ln {
                let escapes = if has_word(&line.code, "return") {
                    // Returning an RAII guard hands the release to the
                    // caller; returning Err(..Busy) is the multi-line form
                    // of the failed-acquire bail-out.
                    let after = line.code.split("return").nth(1).unwrap_or("");
                    !(after.contains("Guard") || after.contains("Busy"))
                } else {
                    has_try_op(&line.code)
                };
                if escapes && !allowed(file, ln, Rule::LockDiscipline) {
                    report.findings.push(Finding {
                        rule: Rule::LockDiscipline,
                        file: file.label.clone(),
                        line: ln + 1,
                        message: format!(
                            "early exit while holding the acquire from line {} \
                             (busy flag / rename log not released)",
                            acquire_ln + 1
                        ),
                    });
                    open = 0; // one finding per leaked acquire
                }
            }
        }
        if open > 0 && !allowed(file, acquire_ln, Rule::LockDiscipline) {
            report.findings.push(Finding {
                rule: Rule::LockDiscipline,
                file: file.label.clone(),
                line: acquire_ln + 1,
                message: "acquire is never released on the fall-through path".to_owned(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 3: unsafe audit
// ---------------------------------------------------------------------------

fn unsafe_kind(code: &str) -> Option<&'static str> {
    if !has_word(code, "unsafe") {
        return None;
    }
    if code.contains("unsafe impl") {
        Some("unsafe impl")
    } else if code.contains("unsafe fn") {
        Some("unsafe fn")
    } else if code.contains("unsafe trait") {
        Some("unsafe trait")
    } else {
        Some("unsafe block")
    }
}

fn safety_documented(file: &SourceFile, ln: usize, kind: &str) -> bool {
    let mentions = |s: &str| s.contains("SAFETY") || s.contains("# Safety");
    if mentions(&file.lines[ln].raw) {
        return true;
    }
    let mut k = ln;
    while k > 0 {
        k -= 1;
        let t = file.lines[k].raw.trim();
        if t.starts_with("//") {
            if mentions(t) {
                return true;
            }
        } else if t.starts_with("#[") || t.starts_with("#![") {
            // attributes sit between the comment and the item
        } else if kind == "unsafe impl" && t.starts_with("unsafe impl") {
            // one SAFETY comment may cover an adjacent group of one-line impls
            if mentions(t) {
                return true;
            }
        } else {
            break;
        }
    }
    false
}

fn rule_unsafe_audit(file: &SourceFile, report: &mut Report) {
    for ln in 0..file.lines.len() {
        let line = &file.lines[ln];
        if line.skip {
            continue;
        }
        let Some(kind) = unsafe_kind(&line.code) else {
            continue;
        };
        let documented = safety_documented(file, ln, kind);
        report.unsafe_sites.push(UnsafeSite {
            file: file.label.clone(),
            line: ln + 1,
            kind: kind.to_owned(),
            documented,
        });
        if !documented && !allowed(file, ln, Rule::UnsafeAudit) {
            report.findings.push(Finding {
                rule: Rule::UnsafeAudit,
                file: file.label.clone(),
                line: ln + 1,
                message: format!("{kind} without a preceding `// SAFETY:` comment"),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 4: media-layout guard
// ---------------------------------------------------------------------------

const POD_PRIMITIVES: [&str; 12] =
    ["u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize"];

/// `(type name, file index, line)` of every non-primitive `unsafe impl Pod`.
fn pod_impls(files: &[SourceFile]) -> Vec<(String, usize, usize)> {
    let mut out = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        for (ln, line) in file.lines.iter().enumerate() {
            if line.skip || !line.code.contains("unsafe impl") {
                continue;
            }
            let Some(rest) = line.code.split(" Pod for ").nth(1) else {
                continue;
            };
            let target = rest.trim();
            if target.starts_with('[') {
                continue; // byte arrays: layout is trivially defined
            }
            let name: String = target.chars().take_while(|&c| is_ident(c)).collect();
            if name.is_empty() || POD_PRIMITIVES.contains(&name.as_str()) {
                continue;
            }
            out.push((name, fi, ln));
        }
    }
    out
}

/// Whether `struct name` is declared with `#[repr(C)]` somewhere in `files`.
fn struct_is_repr_c(files: &[SourceFile], name: &str) -> bool {
    let needle = format!("struct {name}");
    for file in files {
        for (ln, line) in file.lines.iter().enumerate() {
            let Some(pos) = line.code.find(&needle) else {
                continue;
            };
            let after = &line.code[pos + needle.len()..];
            if after.chars().next().is_some_and(is_ident) {
                continue; // prefix of a longer name
            }
            // Walk attributes and comments above the declaration.
            let mut k = ln;
            while k > 0 {
                k -= 1;
                let t = file.lines[k].raw.trim();
                if t.starts_with("#[") {
                    if t.contains("repr(C") {
                        return true;
                    }
                } else if !(t.starts_with("//") || t.starts_with("#![")) {
                    break;
                }
            }
            if line.code.contains("repr(C") {
                return true; // attribute on the same line
            }
        }
    }
    false
}

fn rule_media_layout(files: &[SourceFile], manifest: &[String], report: &mut Report) {
    for (name, fi, ln) in pod_impls(files) {
        let file = &files[fi];
        report.pod_types.push(name.clone());
        if allowed(file, ln, Rule::MediaLayout) {
            continue;
        }
        if !struct_is_repr_c(files, &name) {
            report.findings.push(Finding {
                rule: Rule::MediaLayout,
                file: file.label.clone(),
                line: ln + 1,
                message: format!("`{name}` implements Pod but is not `#[repr(C)]`"),
            });
        }
        if !manifest.iter().any(|m| m == &name) {
            report.findings.push(Finding {
                rule: Rule::MediaLayout,
                file: file.label.clone(),
                line: ln + 1,
                message: format!("`{name}` implements Pod but is missing from layout.golden"),
            });
        }
    }
    report.pod_types.sort();
    report.pod_types.dedup();
}

// ---------------------------------------------------------------------------
// Rule 5: data-path walk guard
// ---------------------------------------------------------------------------

/// Functions forming the per-op data hot path: one extent locate per call.
const DATA_HOT_FNS: [&str; 3] = ["read_at", "write_at", "ensure_allocated"];
/// The O(extents) helpers those functions must not call per loop iteration.
const DATA_WALK_CALLS: [&str; 3] = ["map_offset", "allocated_bytes", "for_each_extent"];

/// Name of the function declared on this line, if any (`fn name(` shapes).
fn declared_fn_name(code: &str) -> Option<String> {
    for (pos, _) in code.match_indices("fn") {
        let before_ok = code[..pos].chars().next_back().is_none_or(|c| !is_ident(c));
        let after = &code[pos + 2..];
        if !before_ok || !after.starts_with(' ') {
            continue;
        }
        let name: String = after.trim_start().chars().take_while(|&c| is_ident(c)).collect();
        if !name.is_empty() {
            return Some(name);
        }
    }
    None
}

fn rule_data_path_walk(file: &SourceFile, report: &mut Report) {
    for &(start, end) in &function_ranges(file) {
        let Some(name) = declared_fn_name(&file.lines[start].code) else {
            continue;
        };
        if !DATA_HOT_FNS.contains(&name.as_str()) {
            continue;
        }
        // Track which brace depths open loop bodies. A `for`/`while`/`loop`
        // keyword arms the next `{`; popping back below an armed depth ends
        // that loop. Line granularity: a walk call on the loop-head line
        // itself (re-evaluated every iteration) counts as inside.
        let mut depth = 0i64;
        let mut loop_depths: Vec<i64> = Vec::new();
        let mut pending_loop = false;
        for ln in start..=end {
            let line = &file.lines[ln];
            if line.skip {
                continue;
            }
            let code = &line.code;
            let opens_loop =
                ["for", "while", "loop"].iter().any(|k| has_word(code, k));
            let hot = !loop_depths.is_empty() || opens_loop;
            if hot {
                for call in DATA_WALK_CALLS {
                    if has_invocation(code, call) && !allowed(file, ln, Rule::DataPathWalk) {
                        report.findings.push(Finding {
                            rule: Rule::DataPathWalk,
                            file: file.label.clone(),
                            line: ln + 1,
                            message: format!(
                                "O(extents) `{call}` inside a loop body of `{name}` — \
                                 locate once via the extent cursor and stream instead"
                            ),
                        });
                    }
                }
            }
            if opens_loop {
                pending_loop = true;
            }
            for ch in code.chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        if pending_loop {
                            loop_depths.push(depth);
                            pending_loop = false;
                        }
                    }
                    '}' => {
                        if loop_depths.last() == Some(&depth) {
                            loop_depths.pop();
                        }
                        depth -= 1;
                    }
                    _ => {}
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 6: fsapi public-surface guard
// ---------------------------------------------------------------------------

/// Item-introducing keywords whose `pub` form requires a rustdoc comment.
const PUB_ITEM_KEYWORDS: [&str; 8] =
    ["fn", "struct", "enum", "trait", "type", "const", "static", "mod"];

/// Name of the `pub` item declared on this line, if any. Restricted
/// visibility (`pub(crate)`, `pub(super)`) and re-exports (`pub use`) are
/// not part of the external contract and return `None`.
fn declared_pub_item(code: &str) -> Option<(&'static str, String)> {
    let t = code.trim_start();
    let rest = t.strip_prefix("pub ")?;
    let rest = rest.trim_start();
    // `pub unsafe fn`, `pub async fn`, `pub const fn` …
    let rest = ["unsafe ", "async ", "extern \"C\" "]
        .iter()
        .fold(rest, |r, p| r.strip_prefix(p).unwrap_or(r).trim_start());
    for kw in PUB_ITEM_KEYWORDS {
        if let Some(after) = rest.strip_prefix(kw) {
            if !after.starts_with(' ') {
                continue; // `pub const fn` handled by the `fn` pass below
            }
            if kw == "const" || kw == "static" {
                // `pub const fn name` — the item is the fn, keep scanning.
                let after = after.trim_start();
                if let Some(fn_rest) = after.strip_prefix("fn ") {
                    let name: String =
                        fn_rest.trim_start().chars().take_while(|&c| is_ident(c)).collect();
                    return Some(("fn", name));
                }
            }
            let name: String =
                after.trim_start().chars().take_while(|&c| is_ident(c)).collect();
            if name.is_empty() {
                return None;
            }
            return Some((kw, name));
        }
    }
    None
}

/// Whether the item starting at `ln` has a rustdoc comment (or `#[doc]`
/// attribute) directly above it, attributes in between allowed.
fn has_rustdoc(file: &SourceFile, ln: usize) -> bool {
    let mut k = ln;
    while k > 0 {
        k -= 1;
        let t = file.lines[k].raw.trim();
        if t.starts_with("///") || t.starts_with("/**") || t.starts_with("#[doc") {
            return true;
        }
        if t.starts_with("#[") || t.starts_with("#![") || t.ends_with(']') {
            continue; // attribute (possibly the tail of a multi-line one)
        }
        if t.ends_with("*/") {
            // Tail of a block comment: walk to its opening line.
            while k > 0 && !file.lines[k].raw.trim_start().starts_with("/*") {
                k -= 1;
            }
            return file.lines[k].raw.trim_start().starts_with("/**");
        }
        break;
    }
    false
}

/// 0-based line range of `enum FsError`'s body, if declared in this file.
fn fs_error_enum_range(file: &SourceFile) -> Option<(usize, usize)> {
    let start = file
        .lines
        .iter()
        .position(|l| !l.skip && has_word(&l.code, "enum") && has_word(&l.code, "FsError"))?;
    let mut depth = 0i64;
    let mut entered = false;
    for (ln, line) in file.lines.iter().enumerate().skip(start) {
        for c in line.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    entered = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        if entered && depth <= 0 {
            return Some((start, ln));
        }
    }
    None
}

/// Variant names of an enum body: capitalized identifiers opening a line.
fn enum_variants(file: &SourceFile, start: usize, end: usize) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for ln in start + 1..end {
        let code = file.lines[ln].code.trim_start();
        let name: String = code.chars().take_while(|&c| is_ident(c)).collect();
        if name.chars().next().is_some_and(|c| c.is_ascii_uppercase())
            && matches!(
                code[name.len()..].trim_start().chars().next(),
                Some('(') | Some(',') | Some('{') | None
            )
        {
            out.push((ln, name));
        }
    }
    out
}

fn rule_api_surface(file: &SourceFile, report: &mut Report) {
    if !file.label.contains("fsapi") {
        return;
    }
    // Every `pub` item of the contract crate carries rustdoc.
    let ranges = function_ranges(file);
    for (ln, line) in file.lines.iter().enumerate() {
        if line.skip {
            continue;
        }
        let Some((kind, name)) = declared_pub_item(&line.code) else {
            continue;
        };
        // Items declared inside a function body are local, not API surface.
        if ranges.iter().any(|&(s, e)| ln > s && ln < e) {
            continue;
        }
        if !has_rustdoc(file, ln) && !allowed(file, ln, Rule::ApiSurface) {
            report.findings.push(Finding {
                rule: Rule::ApiSurface,
                file: file.label.clone(),
                line: ln + 1,
                message: format!("public {kind} `{name}` has no rustdoc comment"),
            });
        }
    }
    // Every FsError variant maps to an errno (both number and name).
    let Some((start, end)) = fs_error_enum_range(file) else {
        return;
    };
    let fn_body = |fn_name: &str| -> Option<(usize, usize)> {
        ranges
            .iter()
            .find(|&&(s, _)| declared_fn_name(&file.lines[s].code).as_deref() == Some(fn_name))
            .copied()
    };
    for (map_fn, what) in [("errno", "errno()"), ("errno_name", "errno_name()")] {
        let Some((fs, fe)) = fn_body(map_fn) else {
            for (ln, _) in enum_variants(file, start, end).into_iter().take(1) {
                if !allowed(file, ln, Rule::ApiSurface) {
                    report.findings.push(Finding {
                        rule: Rule::ApiSurface,
                        file: file.label.clone(),
                        line: ln + 1,
                        message: format!("FsError is declared but no `fn {map_fn}` maps it"),
                    });
                }
            }
            continue;
        };
        for (ln, variant) in enum_variants(file, start, end) {
            let mapped =
                (fs..=fe).any(|l| !file.lines[l].skip && has_word(&file.lines[l].code, &variant));
            // A wildcard arm covers forward-compatible variants.
            let wildcard = (fs..=fe).any(|l| file.lines[l].code.trim_start().starts_with("_ =>"));
            if !mapped && !wildcard && !allowed(file, ln, Rule::ApiSurface) {
                report.findings.push(Finding {
                    rule: Rule::ApiSurface,
                    file: file.label.clone(),
                    line: ln + 1,
                    message: format!("FsError::{variant} is missing from the {what} mapping"),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 7: observability coverage
// ---------------------------------------------------------------------------

/// 0-based inclusive line range of the `impl FileSystem for …` block in
/// `file`, if it declares one.
fn file_system_impl_range(file: &SourceFile) -> Option<(usize, usize)> {
    let start =
        file.lines.iter().position(|l| !l.skip && l.code.contains("impl FileSystem for"))?;
    let mut depth = 0i64;
    let mut entered = false;
    for (ln, line) in file.lines.iter().enumerate().skip(start) {
        for c in line.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    entered = true;
                }
                '}' => {
                    depth -= 1;
                    if entered && depth <= 0 {
                        return Some((start, ln));
                    }
                }
                _ => {}
            }
        }
    }
    Some((start, file.lines.len().saturating_sub(1)))
}

/// `(declaration line, name)` of every struct whose body declares at least
/// two `AtomicU64`s — the shape of a counter battery (a lone atomic is a
/// clock or a lock word, not a stats surface).
fn counter_structs(file: &SourceFile) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (ln, line) in file.lines.iter().enumerate() {
        if line.skip || !has_word(&line.code, "struct") {
            continue;
        }
        let Some(rest) = line.code.split("struct").nth(1) else {
            continue;
        };
        let name: String = rest.trim_start().chars().take_while(|&c| is_ident(c)).collect();
        if name.is_empty() {
            continue;
        }
        let mut depth = 0i64;
        let mut entered = false;
        let mut atomics = 0usize;
        'body: for body_line in &file.lines[ln..] {
            atomics += body_line.code.matches("AtomicU64").count();
            for c in body_line.code.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        entered = true;
                    }
                    '}' => {
                        depth -= 1;
                        if entered && depth <= 0 {
                            break 'body;
                        }
                    }
                    ';' if !entered => break 'body, // unit/tuple struct
                    _ => {}
                }
            }
        }
        if atomics >= 2 {
            out.push((ln, name));
        }
    }
    out
}

fn rule_obs_coverage(files: &[SourceFile], report: &mut Report) {
    // Part A: every public `FileSystem` op implemented in an `fs.rs` must
    // run under an `OpTimer`. The ops proper all take a `ProcCtx`; fns
    // without one (`name()`-style accessors) are not ops.
    for file in files {
        if !(file.label == "fs.rs" || file.label.ends_with("/fs.rs")) {
            continue;
        }
        let Some((impl_start, impl_end)) = file_system_impl_range(file) else {
            continue;
        };
        for &(s, e) in &function_ranges(file) {
            if s <= impl_start || e > impl_end {
                continue;
            }
            let Some(name) = declared_fn_name(&file.lines[s].code) else {
                continue;
            };
            let mut sig_end = s;
            while sig_end < e && !file.lines[sig_end].code.contains('{') {
                sig_end += 1;
            }
            if !(s..=sig_end).any(|l| file.lines[l].code.contains("ProcCtx")) {
                continue;
            }
            let timed = (s..=e).any(|l| {
                let c = &file.lines[l].code;
                has_invocation(c, "measure") || c.contains("FsOp::")
            });
            if !timed && !allowed(file, s, Rule::ObsCoverage) {
                report.findings.push(Finding {
                    rule: Rule::ObsCoverage,
                    file: file.label.clone(),
                    line: s + 1,
                    message: format!(
                        "`FileSystem` op `{name}` runs without an OpTimer \
                         (no `measure(`/`FsOp::` in its body) — invisible to `paper obs`"
                    ),
                });
            }
        }
    }

    // Part B: every AtomicU64 counter battery declared in core must be wired
    // into the registry — its name must appear in the file declaring
    // `struct ObsRegistry` (via its snapshot type or a field). With no
    // registry in scope every battery is by definition unregistered.
    let registry = files
        .iter()
        .find(|f| f.lines.iter().any(|l| !l.skip && l.code.contains("struct ObsRegistry")));
    for file in files {
        if !(file.label.contains("core/src") || file.label.contains("fixtures")) {
            continue;
        }
        for (ln, name) in counter_structs(file) {
            let registered = registry
                .is_some_and(|reg| reg.lines.iter().any(|l| l.code.contains(name.as_str())));
            if !registered && !allowed(file, ln, Rule::ObsCoverage) {
                report.findings.push(Finding {
                    rule: Rule::ObsCoverage,
                    file: file.label.clone(),
                    line: ln + 1,
                    message: format!(
                        "counter struct `{name}` is not registered in the ObsRegistry \
                         — its counters never reach `paper obs`"
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: shared-region
// ---------------------------------------------------------------------------

/// Structs whose body holds a cache-shaped container — the things a second
/// process mounting the same region file cannot see into: `HashMap`/
/// `FastMap` (name or state indexes), `UnsafeCell` (lock-protected free
/// lists), `SegQueue` (free stacks). Returns `(0-based line, name)` pairs.
fn cache_structs(file: &SourceFile) -> Vec<(usize, String)> {
    const CACHE_TOKENS: [&str; 4] = ["HashMap<", "FastMap<", "UnsafeCell<", "SegQueue<"];
    let mut out = Vec::new();
    for (ln, line) in file.lines.iter().enumerate() {
        if line.skip || !has_word(&line.code, "struct") {
            continue;
        }
        let Some(rest) = file.lines[ln].code.split("struct").nth(1) else {
            continue;
        };
        let name: String = rest.trim_start().chars().take_while(|&c| is_ident(c)).collect();
        if name.is_empty() {
            continue;
        }
        let mut depth = 0i64;
        let mut entered = false;
        let mut cached = false;
        'body: for body_line in &file.lines[ln..] {
            if CACHE_TOKENS.iter().any(|t| body_line.code.contains(t)) {
                cached = true;
            }
            for c in body_line.code.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        entered = true;
                    }
                    '}' => {
                        depth -= 1;
                        if entered && depth <= 0 {
                            break 'body;
                        }
                    }
                    ';' if !entered => break 'body, // unit/tuple struct
                    _ => {}
                }
            }
        }
        if cached {
            out.push((ln, name));
        }
    }
    out
}

/// shared-region: every volatile cache struct in `core` must be in the
/// `REBUILDABLE_CACHES` registry (the audited list, with rebuild stories,
/// next to the shared mount protocol). A cache-shaped struct missing from
/// the registry is per-process DRAM a peer mount can neither rebuild nor
/// invalidate.
fn rule_shared_region(files: &[SourceFile], report: &mut Report) {
    // The registry entries are string literals (blanked in `code`), so the
    // membership check reads `raw`.
    let registry = files
        .iter()
        .find(|f| f.lines.iter().any(|l| !l.skip && l.code.contains("REBUILDABLE_CACHES")));
    for file in files {
        if !(file.label.contains("core/src") || file.label.contains("fixtures")) {
            continue;
        }
        for (ln, name) in cache_structs(file) {
            let listed = registry.is_some_and(|reg| {
                reg.lines.iter().any(|l| l.raw.contains(&format!("\"{name}\"")))
            });
            if !listed && !allowed(file, ln, Rule::SharedRegion) {
                report.findings.push(Finding {
                    rule: Rule::SharedRegion,
                    file: file.label.clone(),
                    line: ln + 1,
                    message: format!(
                        "volatile cache struct `{name}` is not in the REBUILDABLE_CACHES \
                         registry — a peer mount of the same region file cannot rebuild \
                         or invalidate it"
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 10: wire parity
// ---------------------------------------------------------------------------

/// `read_to_vec` → `ReadToVec`.
fn snake_to_camel(s: &str) -> String {
    s.split('_')
        .map(|w| {
            let mut cs = w.chars();
            match cs.next() {
                Some(c) => c.to_ascii_uppercase().to_string() + cs.as_str(),
                None => String::new(),
            }
        })
        .collect()
}

/// 0-based inclusive brace range of the first item on whose declaration
/// line `pred` holds.
fn item_brace_range(
    file: &SourceFile,
    pred: impl Fn(&str) -> bool,
) -> Option<(usize, usize)> {
    let start = file.lines.iter().position(|l| !l.skip && pred(&l.code))?;
    let mut depth = 0i64;
    let mut entered = false;
    for (ln, line) in file.lines.iter().enumerate().skip(start) {
        for c in line.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    entered = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        if entered && depth <= 0 {
            return Some((start, ln));
        }
    }
    None
}

/// The serving gateway mirrors `FileSystem` over the wire. Three-way
/// parity is checked across the whole file set: trait method ↔ `Request`
/// variant (snake_case ↔ CamelCase) ↔ explicit `Request::…` arm inside a
/// function named `dispatch`. The rule is silent when no `trait
/// FileSystem` or no `enum Request` is in the scanned set (e.g. a
/// single-crate scan), and the dispatch leg is only checked when some
/// `fn dispatch` exists.
fn rule_wire_parity(files: &[SourceFile], report: &mut Report) {
    let trait_file = files.iter().find_map(|f| {
        // `trait FileSystem` exactly — supertrait bounds like
        // `trait Served: FileSystem` must not match.
        item_brace_range(f, |code| code.contains("trait FileSystem"))
            .map(|range| (f, range))
    });
    let enum_file = files.iter().find_map(|f| {
        item_brace_range(f, |code| has_word(code, "enum") && has_word(code, "Request"))
            .map(|range| (f, range))
    });
    let (Some((tf, (ts, te))), Some((ef, (es, ee)))) = (trait_file, enum_file) else {
        return;
    };

    // Trait methods: `fn name(` declarations inside the trait braces.
    let mut methods: Vec<(usize, String)> = Vec::new();
    for ln in ts + 1..te {
        let line = &tf.lines[ln];
        if line.skip {
            continue;
        }
        if let Some(name) = declared_fn_name(&line.code) {
            methods.push((ln, name));
        }
    }
    let variants = enum_variants(ef, es, ee);

    // Leg 1: every method has a wire variant.
    for (ln, method) in &methods {
        let want = snake_to_camel(method);
        if !variants.iter().any(|(_, v)| *v == want) && !allowed(tf, *ln, Rule::WireParity) {
            report.findings.push(Finding {
                rule: Rule::WireParity,
                file: tf.label.clone(),
                line: ln + 1,
                message: format!(
                    "FileSystem::{method} has no `Request::{want}` wire variant — \
                     the gateway cannot serve it"
                ),
            });
        }
    }

    // Leg 2: every variant maps back to a method.
    for (ln, variant) in &variants {
        let mapped = methods.iter().any(|(_, m)| snake_to_camel(m) == *variant);
        if !mapped && !allowed(ef, *ln, Rule::WireParity) {
            report.findings.push(Finding {
                rule: Rule::WireParity,
                file: ef.label.clone(),
                line: ln + 1,
                message: format!(
                    "Request::{variant} does not correspond to any FileSystem method"
                ),
            });
        }
    }

    // Leg 3: every variant has an explicit arm in a `fn dispatch`.
    let dispatch_files: Vec<&SourceFile> = files
        .iter()
        .filter(|f| {
            f.lines
                .iter()
                .any(|l| !l.skip && declared_fn_name(&l.code).as_deref() == Some("dispatch"))
        })
        .collect();
    if dispatch_files.is_empty() {
        return;
    }
    let mut arms: std::collections::HashSet<String> = std::collections::HashSet::new();
    for f in &dispatch_files {
        for line in f.lines.iter().filter(|l| !l.skip) {
            let code = &line.code;
            let mut rest = code.as_str();
            while let Some(pos) = rest.find("Request::") {
                rest = &rest[pos + "Request::".len()..];
                let ident: String = rest.chars().take_while(|&c| is_ident(c)).collect();
                if !ident.is_empty() {
                    arms.insert(ident);
                }
            }
        }
    }
    for (ln, variant) in &variants {
        if !arms.contains(variant) && !allowed(ef, *ln, Rule::WireParity) {
            report.findings.push(Finding {
                rule: Rule::WireParity,
                file: ef.label.clone(),
                line: ln + 1,
                message: format!(
                    "Request::{variant} has no dispatch arm — the daemon would fail \
                     to answer this wire op"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Tolerance-factor guard (comparative benchmark assertions)
// ---------------------------------------------------------------------------

/// Whether a line multiplies something by a fractional numeric literal
/// (`other * 0.85`, `0.9 * baseline`) — the shape of a tolerance factor
/// softening a comparative assertion.
fn has_fractional_scale(code: &str) -> bool {
    let b: Vec<char> = code.chars().collect();
    let is_num = |c: char| c.is_ascii_digit() || c == '.' || c == '_';
    for (i, &c) in b.iter().enumerate() {
        if c != '*' {
            continue;
        }
        // `**` or `*/` never appear in stripped numeric code; a deref `*x`
        // is filtered below because idents aren't numeric.
        let mut j = i + 1;
        while j < b.len() && b[j] == ' ' {
            j += 1;
        }
        let start = j;
        while j < b.len() && is_num(b[j]) {
            j += 1;
        }
        if j > start && b[start..j].contains(&'.') {
            return true;
        }
        let mut k = i;
        while k > 0 && b[k - 1] == ' ' {
            k -= 1;
        }
        let end = k;
        while k > 0 && is_num(b[k - 1]) {
            k -= 1;
        }
        if end > k && b[k..end].contains(&'.') {
            return true;
        }
    }
    false
}

/// Scans the body of `fn fn_name` in `src` for tolerance factors and
/// returns the offending `(1-based line, text)` pairs. Used by the tier-1
/// guard that keeps `experiments_smoke.rs` asserting *strict* dominance on
/// the Fig. 7 metadata panels: once the O(1) metadata path made the strict
/// comparison hold, reintroducing a `* 0.85`-style deficit allowance is a
/// regression this catches at test time. Comments and string literals are
/// ignored; returns an empty list if the function is not found.
pub fn tolerance_findings(src: &str, fn_name: &str) -> Vec<(usize, String)> {
    let file = load("src", src);
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut in_fn = false;
    let mut entered = false;
    for (idx, line) in file.lines.iter().enumerate() {
        if !in_fn {
            let code = &line.code;
            if let Some(pos) = code.find(fn_name) {
                let is_def = code[..pos].trim_end().ends_with("fn")
                    && code[pos + fn_name.len()..].starts_with('(');
                if is_def {
                    in_fn = true;
                    entered = false;
                    depth = 0;
                }
            }
        }
        if in_fn {
            if has_fractional_scale(&line.code) {
                out.push((idx + 1, line.raw.trim().to_owned()));
            }
            for ch in line.code.chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        entered = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            if entered && depth <= 0 {
                break;
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Drivers
// ---------------------------------------------------------------------------

/// Scans in-memory `(label, source)` pairs against a manifest name list.
pub fn scan_files(sources: &[(&str, &str)], manifest: &[String]) -> Report {
    let files: Vec<SourceFile> = sources.iter().map(|(l, s)| load(l, s)).collect();
    let mut report = Report { files_scanned: files.len(), ..Report::default() };
    for file in &files {
        rule_persist_order(file, &mut report);
        rule_fence_scope(file, &mut report);
        rule_relocation_order(file, &mut report);
        rule_lock_discipline(file, &mut report);
        rule_unsafe_audit(file, &mut report);
        rule_data_path_walk(file, &mut report);
        rule_api_surface(file, &mut report);
    }
    rule_media_layout(&files, manifest, &mut report);
    rule_obs_coverage(&files, &mut report);
    rule_shared_region(&files, &mut report);
    rule_wire_parity(&files, &mut report);
    report.findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    report.findings.dedup();
    report
}

/// Parses `layout.golden`: one struct per line, name first, `#` comments.
pub fn parse_manifest(text: &str) -> Vec<String> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| l.split_whitespace().next().map(str::to_owned))
        .collect()
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let with_path = |e: io::Error| io::Error::new(e.kind(), format!("{}: {e}", dir.display()));
    for entry in fs::read_dir(dir).map_err(with_path)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scans every `.rs` file under the given roots.
pub fn scan_dirs(roots: &[PathBuf], manifest: &[String]) -> io::Result<Report> {
    let mut paths = Vec::new();
    for root in roots {
        collect_rs(root, &mut paths)?;
    }
    paths.sort();
    let mut sources = Vec::with_capacity(paths.len());
    for p in &paths {
        sources.push((p.display().to_string(), fs::read_to_string(p)?));
    }
    let borrowed: Vec<(&str, &str)> =
        sources.iter().map(|(l, s)| (l.as_str(), s.as_str())).collect();
    Ok(scan_files(&borrowed, manifest))
}

/// Scans the Simurgh workspace rooted at `root`: every crate's `src/` tree
/// (vendored third-party stand-ins under `vendor/` and the integration
/// `tests/` crate are intentionally out of scope), with the golden layout
/// manifest at `crates/analyze/layout.golden`.
pub fn scan_workspace(root: &Path) -> io::Result<Report> {
    let manifest_path = root.join("crates/analyze/layout.golden");
    let manifest = match fs::read_to_string(&manifest_path) {
        Ok(text) => parse_manifest(&text),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let mut roots = Vec::new();
    for entry in fs::read_dir(root.join("crates"))? {
        let src = entry?.path().join("src");
        if src.is_dir() {
            roots.push(src);
        }
    }
    roots.sort();
    scan_dirs(&roots, &manifest)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings_of(src: &str, rule: Rule) -> Vec<Finding> {
        let report = scan_files(&[("fixture.rs", src)], &["Known".to_owned()]);
        report.findings.into_iter().filter(|f| f.rule == rule).collect()
    }

    // ----- tolerance guard -------------------------------------------------

    #[test]
    fn tolerance_factor_detected_in_target_fn_only() {
        let src = "
            fn fig7_strict() {
                assert!(simurgh > other);
            }
            fn fig7_soft() {
                // a comment mentioning 0.85 * other is fine
                assert!(simurgh > other * 0.85, \"within 15% of {}\", other);
            }
            fn elsewhere() {
                let x = y * 0.5;
            }
        ";
        assert!(tolerance_findings(src, "fig7_strict").is_empty());
        let hits = tolerance_findings(src, "fig7_soft");
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].1.contains("0.85"));
        // Unknown function: nothing to report.
        assert!(tolerance_findings(src, "no_such_fn").is_empty());
    }

    #[test]
    fn tolerance_factor_shapes() {
        assert!(has_fractional_scale("simurgh > other * 0.85"));
        assert!(has_fractional_scale("simurgh > 0.9*other"));
        assert!(has_fractional_scale("a >= b * 1.15"));
        assert!(!has_fractional_scale("simurgh > other"));
        assert!(!has_fractional_scale("x * 2"));
        assert!(!has_fractional_scale("let p = *ptr;"));
        assert!(!has_fractional_scale("n * factor"));
    }

    // ----- persist-order ---------------------------------------------------

    #[test]
    fn persist_order_good_fenced_release() {
        let src = "
            fn publish(r: &R, b: B) {
                r.write(p, 7u64);
                r.persist(p, 8);
                b.release_busy(r, 3);
            }
        ";
        assert!(findings_of(src, Rule::PersistOrder).is_empty());
    }

    #[test]
    fn persist_order_bad_store_then_release() {
        let src = "
            fn publish(r: &R, b: B) {
                r.write(p, 7u64);
                b.release_busy(r, 3);
            }
        ";
        let f = findings_of(src, Rule::PersistOrder);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn persist_order_bad_nt_store_then_clear_flag() {
        let src = "
            fn finish(r: &R, d: D) {
                r.nt_write_from(p, &buf);
                d.clear_flag(r, DF_RENAME);
            }
        ";
        assert_eq!(findings_of(src, Rule::PersistOrder).len(), 1);
    }

    #[test]
    fn persist_order_bad_zero_then_invalidate() {
        let src = "
            fn wipe(r: &R) {
                r.zero(p, 64);
                obj::invalidate(r, q);
            }
        ";
        assert_eq!(findings_of(src, Rule::PersistOrder).len(), 1);
    }

    #[test]
    fn persist_order_respects_allow_marker() {
        let src = "
            fn publish(r: &R, b: B) {
                r.write(p, 7u64);
                // analyze:allow(persist-order): volatile scratch line
                b.release_busy(r, 3);
            }
        ";
        assert!(findings_of(src, Rule::PersistOrder).is_empty());
    }

    #[test]
    fn persist_order_ignores_unrelated_writes() {
        // `write_log(` must not be read as a raw `write(` store.
        let src = "
            fn log(r: &R, d: D) {
                d.write_log(r, &entry);
                d.clear_flag(r, DF_RENAME);
            }
        ";
        assert!(findings_of(src, Rule::PersistOrder).is_empty());
    }

    // ----- fence-scope -----------------------------------------------------

    #[test]
    fn fence_scope_publish_without_commit_flagged() {
        let src = "
            fn publish(r: &R, b: B) {
                let scope = r.fence_scope();
                r.write(p, 7u64);
                r.persist(p, 8);
                b.set_line(r, 0, p);
            }
        ";
        let f = findings_of(src, Rule::FenceScope);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("scope.commit()"), "{}", f[0].message);
    }

    #[test]
    fn fence_scope_commit_before_publish_is_clean() {
        let src = "
            fn publish(r: &R, b: B) {
                let scope = r.fence_scope();
                r.write(p, 7u64);
                r.persist(p, 8);
                scope.commit();
                b.set_line(r, 0, p);
            }
        ";
        assert!(findings_of(src, Rule::FenceScope).is_empty());
    }

    #[test]
    fn fence_scope_publish_outside_any_scope_is_clean() {
        let src = "
            fn publish(r: &R, b: B) {
                r.write(p, 7u64);
                r.persist(p, 8);
                b.set_line(r, 0, p);
            }
        ";
        assert!(findings_of(src, Rule::FenceScope).is_empty());
    }

    #[test]
    fn fence_scope_rearms_on_stores_after_commit() {
        let src = "
            fn publish(r: &R, b: B) {
                let scope = r.fence_scope();
                r.write(p, 7u64);
                scope.commit();
                b.set_line(r, 0, p);
                r.write(q, 9u64);
                b.set_line(r, 1, q);
            }
        ";
        let f = findings_of(src, Rule::FenceScope);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn fence_scope_drop_closes_the_scope() {
        let src = "
            fn publish(r: &R, b: B) {
                let scope = r.fence_scope();
                r.write(p, 7u64);
                drop(scope);
                b.set_line(r, 0, p);
            }
        ";
        assert!(findings_of(src, Rule::FenceScope).is_empty());
    }

    #[test]
    fn fence_scope_allow_marker_suppresses() {
        let src = "
            fn publish(r: &R, b: B) {
                let scope = r.fence_scope();
                r.write(p, 7u64);
                // analyze:allow(fence-scope) — publish target is unreachable
                b.set_line(r, 0, p);
            }
        ";
        assert!(findings_of(src, Rule::FenceScope).is_empty());
    }

    // ----- relocation-order ------------------------------------------------

    #[test]
    fn relocation_order_good_full_protocol() {
        // copy → persist → arm → scoped swap → commit → clear → free: clean.
        let src = "
            fn relocate(r: &R, env: &E, ino: Inode) {
                r.nt_write_from(dst, &buf);
                r.persist(dst, total);
                if !journal::arm(r, ino) {
                    env.blocks.free(dst, n);
                    return;
                }
                let scope = r.fence_scope();
                ino.set_extent(r, 0, new_extent);
                ino.set_ext_next(r, PPtr::NULL);
                scope.commit();
                drop(scope);
                journal::clear(r);
                env.blocks.free(old, n);
            }
        ";
        assert!(findings_of(src, Rule::RelocationOrder).is_empty());
    }

    #[test]
    fn relocation_order_bad_free_before_commit() {
        let src = "
            fn relocate(r: &R, env: &E, ino: Inode) {
                r.persist(dst, total);
                journal::arm(r, ino);
                let scope = r.fence_scope();
                ino.set_extent(r, 0, new_extent);
                env.blocks.free(old, n);
                scope.commit();
            }
        ";
        let f = findings_of(src, Rule::RelocationOrder);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("sealed by commit()"));
    }

    #[test]
    fn relocation_order_bad_clear_before_commit() {
        let src = "
            fn relocate(r: &R, ino: Inode) {
                journal::arm(r, ino);
                let scope = r.fence_scope();
                ino.set_extent(r, 0, new_extent);
                journal::clear(r);
                scope.commit();
            }
        ";
        assert_eq!(findings_of(src, Rule::RelocationOrder).len(), 1);
    }

    #[test]
    fn relocation_order_bad_swap_outside_scope_and_never_committed() {
        let src = "
            fn relocate(r: &R, ino: Inode) {
                journal::arm(r, ino);
                ino.set_extent(r, 0, new_extent);
            }
        ";
        let f = findings_of(src, Rule::RelocationOrder);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().any(|x| x.message.contains("outside a fence scope")));
        assert!(f.iter().any(|x| x.message.contains("never sealed")));
    }

    #[test]
    fn relocation_order_bad_armed_with_unpersisted_copy() {
        let src = "
            fn relocate(r: &R, ino: Inode) {
                r.nt_write_from(dst, &buf);
                journal::arm(r, ino);
                let scope = r.fence_scope();
                ino.set_extent(r, 0, new_extent);
                scope.commit();
            }
        ";
        let f = findings_of(src, Rule::RelocationOrder);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("not yet persisted"));
    }

    #[test]
    fn relocation_order_ignores_the_fault_tracker_arm() {
        // The pmem fault tracker also has an `arm` — without the journal
        // qualifier the function is not a relocation body.
        let src = "
            fn arm_faults(&self, plan: FaultPlan) {
                self.tracker.arm(plan);
                ino.set_extent(r, 0, e);
            }
        ";
        assert!(findings_of(src, Rule::RelocationOrder).is_empty());
    }

    #[test]
    fn relocation_order_allow_marker_suppresses() {
        let src = "
            fn relocate(r: &R, env: &E, ino: Inode) {
                journal::arm(r, ino);
                let scope = r.fence_scope();
                ino.set_extent(r, 0, new_extent);
                // analyze:allow(relocation-order): staged run, not the old map
                env.blocks.free(dst, n);
                scope.commit();
            }
        ";
        assert!(findings_of(src, Rule::RelocationOrder).is_empty());
    }

    // ----- lock-discipline -------------------------------------------------

    #[test]
    fn lock_discipline_good_paired() {
        let src = "
            fn op(r: &R, b: B) -> FsResult<()> {
                if !b.try_busy(r, 3) { return Err(FsError::Busy); }
                work(r)
                b.release_busy(r, 3);
                Ok(())
            }
        ";
        assert!(findings_of(src, Rule::LockDiscipline).is_empty());
    }

    #[test]
    fn lock_discipline_bad_question_mark_while_held() {
        let src = "
            fn op(r: &R, b: B) -> FsResult<()> {
                b.set_flag(r, DF_RENAME);
                let x = alloc(r)?;
                b.clear_flag(r, DF_RENAME);
                Ok(())
            }
        ";
        let f = findings_of(src, Rule::LockDiscipline);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn lock_discipline_bad_return_while_held() {
        let src = "
            fn op(r: &R, b: B) -> FsResult<()> {
                if b.try_busy(r, 3) {
                    if bad() { return Err(FsError::NoSpace); }
                    b.release_busy(r, 3);
                }
                Ok(())
            }
        ";
        assert_eq!(findings_of(src, Rule::LockDiscipline).len(), 1);
    }

    #[test]
    fn lock_discipline_bad_never_released() {
        let src = "
            fn op(r: &R, d: D) {
                d.write_log(r, &entry);
                finish(r);
            }
        ";
        let f = findings_of(src, Rule::LockDiscipline);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("never released"));
    }

    #[test]
    fn lock_discipline_guard_return_is_raii_handoff() {
        let src = "
            fn lock(r: &R, b: B) -> LineGuard {
                loop {
                    if b.try_busy(r, 3) {
                        return LineGuard { b, line: 3 };
                    }
                    b.release_busy(r, 3);
                }
            }
        ";
        assert!(findings_of(src, Rule::LockDiscipline).is_empty());
    }

    #[test]
    fn lock_discipline_respects_allow_marker() {
        let src = "
            fn crash_while_held(r: &R, b: B) {
                // analyze:allow(lock-discipline): simulates a crashed holder
                b.try_busy(r, 3);
            }
        ";
        assert!(findings_of(src, Rule::LockDiscipline).is_empty());
    }

    // ----- unsafe-audit ----------------------------------------------------

    #[test]
    fn unsafe_audit_good_documented_block() {
        let src = "
            fn read(p: *const u8) -> u8 {
                // SAFETY: caller guarantees p is live.
                unsafe { *p }
            }
        ";
        assert!(findings_of(src, Rule::UnsafeAudit).is_empty());
        let report = scan_files(&[("fixture.rs", src)], &[]);
        assert_eq!(report.unsafe_sites.len(), 1);
        assert!(report.unsafe_sites[0].documented);
    }

    #[test]
    fn unsafe_audit_bad_undocumented_block() {
        let src = "
            fn read(p: *const u8) -> u8 {
                unsafe { *p }
            }
        ";
        let f = findings_of(src, Rule::UnsafeAudit);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn unsafe_audit_bad_undocumented_impl() {
        let src = "
            struct S;
            unsafe impl Sync for S {}
        ";
        assert_eq!(findings_of(src, Rule::UnsafeAudit).len(), 1);
    }

    #[test]
    fn unsafe_audit_comment_covers_impl_group() {
        let src = "
            // SAFETY: plain integers have no invalid bit patterns.
            unsafe impl Pod for u8 {}
            unsafe impl Pod for u16 {}
            unsafe impl Pod for u32 {}
        ";
        assert!(findings_of(src, Rule::UnsafeAudit).is_empty());
    }

    #[test]
    fn unsafe_audit_ignores_comments_strings_and_tests() {
        let src = "
            fn f() -> &'static str {
                // this mentions unsafe in a comment only
                \"unsafe in a string\"
            }
            #[cfg(test)]
            mod tests {
                fn g(p: *const u8) -> u8 { unsafe { *p } }
            }
        ";
        let report = scan_files(&[("fixture.rs", src)], &[]);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert!(report.unsafe_sites.is_empty());
    }

    // ----- media-layout ----------------------------------------------------

    #[test]
    fn media_layout_good_repr_c_and_in_manifest() {
        let src = "
            #[repr(C)]
            #[derive(Clone, Copy)]
            struct Known { a: u64 }
            // SAFETY: repr(C), integers only.
            unsafe impl Pod for Known {}
        ";
        assert!(findings_of(src, Rule::MediaLayout).is_empty());
        let report = scan_files(&[("fixture.rs", src)], &["Known".to_owned()]);
        assert_eq!(report.pod_types, vec!["Known".to_owned()]);
    }

    #[test]
    fn media_layout_bad_missing_repr_c() {
        let src = "
            #[derive(Clone, Copy)]
            struct Known { a: u64 }
            // SAFETY: fixture.
            unsafe impl Pod for Known {}
        ";
        let f = findings_of(src, Rule::MediaLayout);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("repr(C)"));
    }

    #[test]
    fn media_layout_bad_missing_from_manifest() {
        let src = "
            #[repr(C)]
            struct Rogue { a: u64 }
            // SAFETY: fixture.
            unsafe impl Pod for Rogue {}
        ";
        let f = findings_of(src, Rule::MediaLayout);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("layout.golden"));
    }

    #[test]
    fn media_layout_allows_primitives_and_arrays() {
        let src = "
            // SAFETY: primitives.
            unsafe impl Pod for u64 {}
            unsafe impl<const N: usize> Pod for [u8; N] {}
        ";
        assert!(findings_of(src, Rule::MediaLayout).is_empty());
    }

    // ----- data-path-walk --------------------------------------------------

    #[test]
    fn data_path_walk_bad_rewalk_in_loop() {
        let src = "
            fn read_at(env: &FileEnv, ino: Inode, buf: &mut [u8], mut off: u64) -> usize {
                let mut done = 0;
                while done < buf.len() {
                    let (p, run) = map_offset(env, ino, off).unwrap();
                    done += copy(p, run);
                    off += run;
                }
                done
            }
        ";
        let f = findings_of(src, Rule::DataPathWalk);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 5);
        assert!(f[0].message.contains("map_offset"));
    }

    #[test]
    fn data_path_walk_bad_qualified_call_and_loop_head() {
        let src = "
            fn write_at(env: &FileEnv, ino: Inode, data: &[u8]) -> usize {
                for chunk in data.chunks(4096) {
                    file::for_each_extent(env, ino, |e| place(chunk, e));
                }
                data.len()
            }
            fn ensure_allocated(env: &FileEnv, ino: Inode, end: u64) {
                while allocated_bytes(env, ino) < end {
                    grow(env, ino);
                }
            }
        ";
        let f = findings_of(src, Rule::DataPathWalk);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f[0].message.contains("for_each_extent"));
        assert!(f[1].message.contains("allocated_bytes"));
    }

    #[test]
    fn data_path_walk_good_outside_loops_and_cold_fns() {
        let src = "
            fn read_at(env: &FileEnv, ino: Inode, buf: &mut [u8], off: u64) -> usize {
                let total = allocated_bytes(env, ino);
                let mut done = 0;
                for run in stream(env, ino, off) {
                    done += copy(run);
                }
                done.min(total as usize)
            }
            fn fsck_walk(env: &FileEnv, ino: Inode) {
                loop {
                    for_each_extent(env, ino, |e| check(e));
                    break;
                }
            }
        ";
        assert!(findings_of(src, Rule::DataPathWalk).is_empty());
    }

    #[test]
    fn data_path_walk_respects_allow_marker() {
        let src = "
            fn ensure_allocated(env: &FileEnv, ino: Inode, end: u64) {
                while grow(env, ino) {
                    // analyze:allow(data-path-walk): recovery-only slow path
                    let a = allocated_bytes(env, ino);
                    if a >= end { break; }
                }
            }
        ";
        assert!(findings_of(src, Rule::DataPathWalk).is_empty());
    }

    #[test]
    fn invocation_matcher_skips_definitions() {
        assert!(has_invocation("let a = allocated_bytes(env, ino);", "allocated_bytes"));
        assert!(has_invocation("file::map_offset(env, ino, off)", "map_offset"));
        assert!(has_invocation("self.for_each_extent(|e| ());", "for_each_extent"));
        assert!(!has_invocation("pub fn map_offset(env: &FileEnv) {", "map_offset"));
        assert!(!has_invocation("fn allocated_bytes(env: &FileEnv) {", "allocated_bytes"));
        assert!(!has_invocation("let x = shared_map_offset(a);", "map_offset"));
    }

    // ----- api-surface -----------------------------------------------------

    fn fsapi_findings(src: &str) -> Vec<Finding> {
        let report = scan_files(&[("crates/fsapi/src/fixture.rs", src)], &[]);
        report.findings.into_iter().filter(|f| f.rule == Rule::ApiSurface).collect()
    }

    #[test]
    fn api_surface_bad_undocumented_pub_item() {
        let src = "
            pub fn naked() -> u32 { 7 }
        ";
        let f = fsapi_findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("`naked`"));
    }

    #[test]
    fn api_surface_good_documented_or_private() {
        let src = "
            /// Documented public function.
            pub fn covered() -> u32 { 7 }
            /// Attributes between the doc and the item are fine.
            #[inline]
            pub fn attributed() {}
            pub(crate) fn internal() {}
            fn private() {}
            pub use other::thing;
        ";
        assert!(fsapi_findings(src).is_empty());
    }

    #[test]
    fn api_surface_only_applies_to_fsapi_paths() {
        let src = "pub fn naked() {}";
        let report = scan_files(&[("crates/core/src/other.rs", src)], &[]);
        assert!(report.findings.iter().all(|f| f.rule != Rule::ApiSurface));
    }

    #[test]
    fn api_surface_bad_unmapped_error_variant() {
        let src = "
            /// The error enum.
            pub enum FsError {
                NotFound,
                Orphan,
            }
            impl FsError {
                /// errno numbers.
                pub fn errno(&self) -> i32 {
                    match self { FsError::NotFound => 2, FsError::Orphan => 5 }
                }
                /// errno names — Orphan missing: finding.
                pub fn errno_name(&self) -> &'static str {
                    match self { FsError::NotFound => \"ENOENT\" }
                }
            }
        ";
        let f = fsapi_findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("Orphan"));
        assert!(f[0].message.contains("errno_name"));
    }

    #[test]
    fn api_surface_respects_allow_marker() {
        let src = "
            // analyze:allow(api-surface): fixture helper
            pub fn naked() {}
        ";
        assert!(fsapi_findings(src).is_empty());
    }

    // ----- obs-coverage ----------------------------------------------------

    #[test]
    fn obs_coverage_bad_untimed_op() {
        let src = "
            impl FileSystem for ShadowFs {
                fn name(&self) -> &str { \"shadow\" }
                fn open(&self, ctx: &ProcCtx, p: &str) -> FsResult<Fd> {
                    self.measure(FsOp::Open, || self.do_open(ctx, p))
                }
                fn unlink(&self, ctx: &ProcCtx, p: &str) -> FsResult<()> {
                    self.do_unlink(ctx, p)
                }
            }
        ";
        let report = scan_files(&[("crates/core/src/fs.rs", src)], &[]);
        let f: Vec<&Finding> =
            report.findings.iter().filter(|f| f.rule == Rule::ObsCoverage).collect();
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("`unlink`"), "{}", f[0].message);
        // `name()` takes no ProcCtx: an accessor, not an op.
        assert!(!f.iter().any(|f| f.message.contains("`name`")));
    }

    #[test]
    fn obs_coverage_only_applies_to_fs_rs() {
        let src = "
            impl FileSystem for RefFs {
                fn open(&self, ctx: &ProcCtx, p: &str) -> FsResult<Fd> { self.do_open(ctx, p) }
            }
        ";
        let report = scan_files(&[("crates/fsapi/src/reffs.rs", src)], &[]);
        assert!(report.findings.iter().all(|f| f.rule != Rule::ObsCoverage));
    }

    #[test]
    fn obs_coverage_bad_unregistered_counter_struct() {
        let registry = "
            pub struct ObsRegistry { hists: [Histogram; N] }
            fn absorb(d: &WiredStatsSnapshot) {}
        ";
        let counters = "
            pub struct WiredStats {
                pub hits: AtomicU64,
                pub misses: AtomicU64,
            }
            pub struct ShadowStats {
                pub hits: AtomicU64,
                pub misses: AtomicU64,
            }
            struct Clock {
                now: AtomicU64,
            }
        ";
        let report = scan_files(
            &[("crates/core/src/obs.rs", registry), ("crates/core/src/stats.rs", counters)],
            &[],
        );
        let f: Vec<&Finding> =
            report.findings.iter().filter(|f| f.rule == Rule::ObsCoverage).collect();
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("`ShadowStats`"), "{}", f[0].message);
        // A lone AtomicU64 is a clock/lock word, not a counter battery.
        assert!(!f.iter().any(|f| f.message.contains("`Clock`")));
    }

    #[test]
    fn obs_coverage_no_registry_in_scope_flags_all_batteries() {
        let src = "
            struct OrphanStats {
                a: AtomicU64,
                b: AtomicU64,
            }
        ";
        let report = scan_files(&[("crates/core/src/orphan.rs", src)], &[]);
        assert!(report.findings.iter().any(|f| f.rule == Rule::ObsCoverage));
    }

    #[test]
    fn obs_coverage_respects_allow_marker() {
        let src = "
            impl FileSystem for ShadowFs {
                // analyze:allow(obs-coverage): pass-through shim, timed by the inner fs
                fn open(&self, ctx: &ProcCtx, p: &str) -> FsResult<Fd> {
                    self.inner.open(ctx, p)
                }
            }
        ";
        let report = scan_files(&[("crates/core/src/fs.rs", src)], &[]);
        assert!(report.findings.iter().all(|f| f.rule != Rule::ObsCoverage));
    }

    // ----- shared-region ---------------------------------------------------

    #[test]
    fn shared_region_bad_unlisted_cache_struct() {
        let src = "
            struct RogueCache {
                names: HashMap<u64, String>,
            }
        ";
        let report = scan_files(&[("crates/core/src/rogue.rs", src)], &[]);
        let hits: Vec<_> =
            report.findings.iter().filter(|f| f.rule == Rule::SharedRegion).collect();
        assert_eq!(hits.len(), 1, "{:?}", report.findings);
        assert!(hits[0].message.contains("RogueCache"));
    }

    #[test]
    fn shared_region_good_listed_cache_struct() {
        let registry = "
            pub const REBUILDABLE_CACHES: &[&str] = &[
                \"GoodCache\",
            ];
        ";
        let src = "
            struct GoodCache {
                free: UnsafeCell<Vec<(u64, u64)>>,
            }
        ";
        let report = scan_files(
            &[("crates/core/src/shared.rs", registry), ("crates/core/src/good.rs", src)],
            &[],
        );
        assert!(
            report.findings.iter().all(|f| f.rule != Rule::SharedRegion),
            "{:?}",
            report.findings
        );
    }

    #[test]
    fn shared_region_ignores_plain_structs_and_locals() {
        let src = "
            struct NotACache {
                count: u64,
            }
            fn helper() {
                let mut owner: HashMap<u64, String> = HashMap::new();
                owner.insert(1, String::new());
            }
        ";
        let report = scan_files(&[("crates/core/src/plain.rs", src)], &[]);
        assert!(report.findings.iter().all(|f| f.rule != Rule::SharedRegion));
    }

    #[test]
    fn shared_region_detects_real_registry_members() {
        // The live shapes from core: SegQueue stacks and sharded FastMaps.
        let src = "
            pub struct MetaAllocator {
                free: [SegQueue<u64>; 3],
            }
            pub struct DirIndex {
                dirs: Vec<RwLock<FastMap<u64, DirState>>>,
            }
        ";
        let file = load("crates/core/src/x.rs", src);
        let names: Vec<String> = cache_structs(&file).into_iter().map(|(_, n)| n).collect();
        assert_eq!(names, vec!["MetaAllocator".to_owned(), "DirIndex".to_owned()]);
    }

    #[test]
    fn shared_region_respects_allow_marker() {
        let src = "
            // analyze:allow(shared-region): scratch map, never consulted cross-process
            struct ScratchMap {
                names: HashMap<u64, String>,
            }
        ";
        let report = scan_files(&[("crates/core/src/scratch.rs", src)], &[]);
        assert!(report.findings.iter().all(|f| f.rule != Rule::SharedRegion));
    }

    // ----- plumbing --------------------------------------------------------

    #[test]
    fn manifest_parsing_skips_comments() {
        let names = parse_manifest("# header\nRenameLog size=64\n\nPoolSeg size=16\n");
        assert_eq!(names, vec!["RenameLog".to_owned(), "PoolSeg".to_owned()]);
    }

    #[test]
    fn stripper_blanks_strings_and_nested_comments() {
        let (_, code) = strip("let a = \"x.write(\"; /* outer /* inner */ b.zero( */ c();");
        assert!(!code[0].contains("write("));
        assert!(!code[0].contains("zero("));
        assert!(code[0].contains("c();"));
    }
}
