//! `simurgh-analyze` — command-line front end for the static checker.
//!
//! Usage:
//!   simurgh-analyze --workspace [--root <dir>]   scan every crate's src/
//!   simurgh-analyze --path <dir> [...]           scan specific directories
//!   simurgh-analyze --manifest <file>            override layout.golden
//!   simurgh-analyze --ci                         also print the wider CI
//!                                                checklist (clippy command)
//!
//! Exits 0 when the tree is clean, 1 when any rule fires, 2 on usage or
//! I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

use simurgh_analyze::{parse_manifest, scan_dirs, scan_workspace, Report};

struct Opts {
    workspace: bool,
    root: PathBuf,
    paths: Vec<PathBuf>,
    manifest: Option<PathBuf>,
    ci: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: simurgh-analyze (--workspace [--root <dir>] | --path <dir>...) \
         [--manifest <file>] [--ci]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Opts, ExitCode> {
    let mut opts = Opts {
        workspace: false,
        root: PathBuf::from("."),
        paths: Vec::new(),
        manifest: None,
        ci: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => opts.workspace = true,
            "--root" => opts.root = PathBuf::from(args.next().ok_or_else(usage)?),
            "--path" => opts.paths.push(PathBuf::from(args.next().ok_or_else(usage)?)),
            "--manifest" => opts.manifest = Some(PathBuf::from(args.next().ok_or_else(usage)?)),
            "--ci" => opts.ci = true,
            _ => return Err(usage()),
        }
    }
    // Exactly one of --workspace / --path must be given.
    if opts.workspace != opts.paths.is_empty() {
        return Err(usage());
    }
    Ok(opts)
}

fn print_report(report: &Report, ci: bool) {
    let documented = report.unsafe_sites.iter().filter(|s| s.documented).count();
    println!(
        "scanned {} files: {} unsafe sites ({} documented), {} Pod media types",
        report.files_scanned,
        report.unsafe_sites.len(),
        documented,
        report.pod_types.len(),
    );
    for site in &report.unsafe_sites {
        let mark = if site.documented { "ok " } else { "!! " };
        println!("  {mark}{}:{} {}", site.file, site.line, site.kind);
    }
    if report.findings.is_empty() {
        println!("no violations");
    } else {
        println!("{} violation(s):", report.findings.len());
        for f in &report.findings {
            println!("  {f}");
        }
    }
    if ci {
        // The analyzer covers the domain-specific invariants; lint-level
        // hygiene is clippy's job. CI runs both — keep the commands in sync
        // with README.md "Verifying".
        println!();
        println!("CI checklist (run all of):");
        println!("  cargo run -p simurgh-analyze -- --workspace");
        println!("  cargo clippy --workspace --all-targets -- -D warnings");
        println!("  cargo test -q");
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(code) => return code,
    };
    let manifest = match &opts.manifest {
        Some(p) => match std::fs::read_to_string(p) {
            Ok(text) => Some(parse_manifest(&text)),
            Err(e) => {
                eprintln!("simurgh-analyze: cannot read {}: {e}", p.display());
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    let result = if opts.workspace {
        match manifest {
            // --manifest overrides the workspace's checked-in golden file.
            Some(m) => {
                let crates = opts.root.join("crates");
                let roots = match std::fs::read_dir(&crates) {
                    Ok(rd) => {
                        let mut v: Vec<PathBuf> = rd
                            .filter_map(|e| e.ok())
                            .map(|e| e.path().join("src"))
                            .filter(|p| p.is_dir())
                            .collect();
                        v.sort();
                        v
                    }
                    Err(e) => {
                        eprintln!("simurgh-analyze: cannot read {}: {e}", crates.display());
                        return ExitCode::from(2);
                    }
                };
                scan_dirs(&roots, &m)
            }
            None => scan_workspace(&opts.root),
        }
    } else {
        scan_dirs(&opts.paths, &manifest.unwrap_or_default())
    };
    match result {
        Ok(report) => {
            print_report(&report, opts.ci);
            if report.findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("simurgh-analyze: {e}");
            ExitCode::from(2)
        }
    }
}
