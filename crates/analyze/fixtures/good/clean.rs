//! GOOD fixture: every rule satisfied.

#[repr(C)]
#[derive(Clone, Copy)]
struct GoodHeader {
    tag: u64,
    len: u64,
}

// SAFETY: repr(C), integer fields only, no padding invariants.
unsafe impl Pod for GoodHeader {}

fn publish_fenced(r: &PmemRegion, blk: DirBlock, line: usize) {
    r.write(blk.line_ptr(line), 0x1234_5678_u64);
    r.persist(blk.line_ptr(line), 8);
    blk.release_busy(r, line);
}

fn paired_lock(env: &DirEnv, blk: DirBlock, line: usize) -> FsResult<()> {
    if !blk.try_busy(env.region, line) {
        return Err(FsError::Busy);
    }
    let got = blk.line(env.region, line);
    blk.release_busy(env.region, line);
    drop(got);
    Ok(())
}

fn documented_unsafe(p: *const u64) -> u64 {
    // SAFETY: caller guarantees `p` points into the mapped region.
    unsafe { p.read_unaligned() }
}

fn read_at(env: &FileEnv, ino: Inode, buf: &mut [u8], off: u64) -> usize {
    // One O(extents) locate before the loop is fine; only per-iteration
    // re-walks inside the loop body are flagged.
    let total = allocated_bytes(env, ino);
    let mut done = 0;
    for run in stream_extents(env, ino, off) {
        done += copy_run(run, &mut buf[done..]);
    }
    done.min(total as usize)
}
