// Bad fixture for the api-surface rule: the "fsapi" in this file's path
// puts it in scope. An undocumented public item and an FsError variant
// missing from both errno mappings must each fire.

pub fn undocumented_helper() -> u32 {
    7
}

/// Documented, but its variants are only partially mapped below.
pub enum FsError {
    NotFound,
    Unmapped(u8),
}

impl FsError {
    /// Maps to a Linux errno — `Unmapped` is absent: finding.
    pub fn errno(&self) -> i32 {
        match self {
            FsError::NotFound => 2,
        }
    }

    /// Symbolic name — `Unmapped` absent here too.
    pub fn errno_name(&self) -> &'static str {
        match self {
            FsError::NotFound => "ENOENT",
        }
    }
}
