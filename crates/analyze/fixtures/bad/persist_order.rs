//! BAD fixture: store published by a release with no fence in between.
//! Not compiled — scanned by `simurgh-analyze --path crates/analyze/fixtures/bad`.

fn publish_without_fence(r: &PmemRegion, blk: DirBlock, line: usize) {
    r.write(blk.line_ptr(line), 0x1234_5678_u64);
    // missing: r.persist(...) / r.fence()
    blk.release_busy(r, line);
}

fn invalidate_unfenced_zero(r: &PmemRegion, p: PPtr) {
    r.zero(p, 64);
    obj::invalidate(r, p);
}
