//! BAD fixture: a group-commit fence scope reaches a publish point with
//! stores staged and no intervening `scope.commit()`.
//! Not compiled — scanned by `simurgh-analyze --path crates/analyze/fixtures/bad`.

fn publish_with_staged_stores(r: &PmemRegion, blk: DirBlock, fe: PPtr) {
    let scope = r.fence_scope();
    r.write(fe, 0xdead_beef_u64);
    r.persist(fe, 8);
    // missing: scope.commit() — the persist above is elided by the scope
    blk.set_line(r, 0, fe);
    drop(scope);
}
