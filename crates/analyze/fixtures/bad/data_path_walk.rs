//! BAD fixture: re-walking the extent map on the data hot path.
//! Not compiled — scanned by `simurgh-analyze --path crates/analyze/fixtures/bad`.

fn read_at(env: &FileEnv, ino: Inode, buf: &mut [u8], mut off: u64) -> usize {
    let mut done = 0;
    while done < buf.len() {
        // O(extents) locate repeated for every chunk: quadratic in extents.
        let (p, run) = map_offset(env, ino, off).unwrap();
        done += copy_run(p, run, &mut buf[done..]);
        off += run;
    }
    done
}

fn ensure_allocated(env: &FileEnv, ino: Inode, end: u64) {
    while allocated_bytes(env, ino) < end {
        grow_by_one_block(env, ino);
    }
}
