//! BAD fixture: busy flag / rename log held across early exits.

fn leak_on_question_mark(env: &DirEnv, blk: DirBlock, line: usize) -> FsResult<()> {
    if !blk.try_busy(env.region, line) {
        return Err(FsError::Busy);
    }
    let slot = env.meta.alloc(PoolKind::FileEntry)?; // escapes while busy
    blk.release_busy(env.region, line);
    let _ = slot;
    Ok(())
}

fn journal_never_cleared(env: &DirEnv, src: DirBlock) {
    src.write_log(env.region, &entry);
    finish(env);
}
