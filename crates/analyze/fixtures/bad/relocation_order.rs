//! BAD fixture: a relocation frees the old extents before the map swap is
//! sealed by the scope's eager `commit()` — a crash between the free and
//! the commit leaves the durable (journaled) map pointing at blocks the
//! allocator already handed back.
//! Not compiled — scanned by `simurgh-analyze --path crates/analyze/fixtures/bad`.

fn relocate_frees_under_an_open_swap(r: &PmemRegion, env: &FileEnv, ino: Inode) {
    r.nt_write_from(dst, &buf);
    r.persist(dst, total);
    if !journal::arm(r, ino) {
        return;
    }
    let scope = r.fence_scope();
    ino.set_extent(r, 0, new_extent);
    ino.set_ext_next(r, PPtr::NULL);
    // missing: scope.commit() before the frees — the new map is still
    // staged when the old blocks go back to the allocator.
    env.blocks.free(old_start, old_blocks);
    scope.commit();
    journal::clear(r);
}
