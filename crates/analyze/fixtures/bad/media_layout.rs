//! BAD fixture: Pod media struct without #[repr(C)] and not in the manifest.

#[derive(Clone, Copy)]
struct RogueHeader {
    tag: u64,
    len: u64,
}

// SAFETY: fixture only — and still wrong: no repr(C), not in layout.golden.
unsafe impl Pod for RogueHeader {}
