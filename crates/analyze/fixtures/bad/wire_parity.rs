// Bad fixture for the wire-parity rule: a self-contained mini gateway
// whose wire surface drifted from the trait in all three directions.

/// The trait side of the mirror.
pub trait FileSystem {
    /// Served over the wire below.
    fn open(&self, path: &str) -> u32;
    /// Served, but its dispatch arm was dropped: leg-3 finding.
    fn close(&self, fd: u32);
    /// No `Request::SnapshotTree` variant exists: leg-1 finding.
    fn snapshot_tree(&self, root: &str) -> Vec<String>;
}

/// The wire side of the mirror.
pub enum Request {
    Open { path: String },
    Close { fd: u32 },
    // No `chmod` trait method above: leg-2 finding.
    Chmod { path: String },
}

/// The handler: `Close` has no explicit arm, only a wildcard.
pub fn dispatch(req: Request) -> u32 {
    match req {
        Request::Open { .. } => 1,
        _ => 0,
    }
}
