//! BAD fixture: unsafe without a SAFETY justification.

fn raw_read(p: *const u64) -> u64 {
    unsafe { p.read_unaligned() }
}

struct Wrapper(*mut u8);

unsafe impl Send for Wrapper {}
