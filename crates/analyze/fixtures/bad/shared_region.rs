//! BAD fixture: a volatile cache struct missing from the REBUILDABLE_CACHES
//! registry. Not compiled — scanned by
//! `simurgh-analyze --path crates/analyze/fixtures/bad`.

/// A per-process name cache nobody audited for shared-file mounts: a peer
/// process inserting an entry cannot invalidate this map, so two mounts of
/// the same region file silently diverge. The shared-region rule demands it
/// be listed (with a rebuild story) in the REBUILDABLE_CACHES registry.
pub struct RogueNameCache {
    names: HashMap<u64, String>,
    generation: u64,
}

/// Same defect with a lock-protected free list: stale entries here would
/// hand out blocks a peer already claimed on media.
pub struct RogueFreeList {
    free: UnsafeCell<Vec<(u64, u64)>>,
}
