//! BAD fixture: ops and counters the observability layer cannot see.
//! Not compiled — scanned by `simurgh-analyze --path crates/analyze/fixtures/bad`.

/// A counter battery nobody wired into the ObsRegistry: its numbers never
/// reach `paper obs`, so a regression here is invisible.
pub struct ShadowStats {
    pub steals: AtomicU64,
    pub timeouts: AtomicU64,
}

impl FileSystem for ShadowFs {
    fn name(&self) -> &str {
        "shadow"
    }

    // Untimed op: no OpTimer, no trace events — exactly how a slow or
    // misbehaving path hides from the latency histograms.
    fn open(&self, ctx: &ProcCtx, p: &str, flags: OpenFlags, mode: FileMode) -> FsResult<Fd> {
        self.do_open(ctx, p, flags, mode)
    }

    fn unlink(&self, ctx: &ProcCtx, p: &str) -> FsResult<()> {
        self.do_unlink(ctx, p)
    }
}
