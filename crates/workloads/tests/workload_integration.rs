//! Workload-level integration tests: the generators must drive any
//! `FileSystem` implementation identically, and their populations must
//! match their manifests.

use std::sync::Arc;

use simurgh_core::{SimurghConfig, SimurghFs};
use simurgh_fsapi::{FileSystem, ProcCtx};
use simurgh_pmem::PmemRegion;
use simurgh_workloads::minikv::{KvOptions, MiniKv};
use simurgh_workloads::tree::TreeSpec;
use simurgh_workloads::{filebench, fxmark, git, tar, tree};

fn simurgh(bytes: usize) -> SimurghFs {
    SimurghFs::format(Arc::new(PmemRegion::new(bytes)), SimurghConfig::default()).unwrap()
}

#[test]
fn fxmark_kernels_run_on_baselines_too() {
    for make in [
        simurgh_baselines::nova as fn(Arc<PmemRegion>) -> simurgh_baselines::KernelFs,
        simurgh_baselines::pmfs,
        simurgh_baselines::ext4dax,
        simurgh_baselines::splitfs,
    ] {
        let fs = make(Arc::new(PmemRegion::new(128 << 20)));
        assert_eq!(fxmark::create_private(&fs, 2, 20).ops, 40, "{}", fs.name());
        assert_eq!(fxmark::unlink_private(&fs, 2, 20).ops, 40, "{}", fs.name());
        assert_eq!(fxmark::rename_shared(&fs, 2, 10).ops, 20, "{}", fs.name());
        let r = fxmark::append_private(&fs, 2, 8);
        assert_eq!(r.bytes, 2 * 8 * 4096, "{}", fs.name());
        let r = fxmark::read_shared(&fs, 2, 1 << 20, 16, fxmark::ReadPattern::PseudoRandom);
        assert_eq!(r.ops, 32, "{}", fs.name());
    }
}

#[test]
fn filebench_runs_on_baselines() {
    for make in [
        simurgh_baselines::nova as fn(Arc<PmemRegion>) -> simurgh_baselines::KernelFs,
        simurgh_baselines::splitfs,
    ] {
        let fs = make(Arc::new(PmemRegion::new(128 << 20)));
        let mut cfg = filebench::varmail(0.02);
        cfg.threads = 2;
        let r = filebench::run(&fs, cfg, 3);
        assert!(r.ops > 0, "{}", fs.name());
    }
}

#[test]
fn tar_roundtrip_identical_across_filesystems() {
    // The same deterministic tree, packed on Simurgh and unpacked on NOVA,
    // must reproduce the files byte for byte (the archive is portable).
    let spec = TreeSpec { dirs: 6, files: 30, max_file_size: 4096, seed: 77 };
    let ctx = ProcCtx::root(0);

    let src_fs = simurgh(64 << 20);
    let manifest = tree::generate(&src_fs, "/src", spec).unwrap();
    tar::pack(&src_fs, &manifest, "/a.tar").unwrap();
    let archive = src_fs.read_to_vec(&ctx, "/a.tar").unwrap();

    let dst_fs = simurgh_baselines::nova(Arc::new(PmemRegion::new(64 << 20)));
    dst_fs.write_file(&ctx, "/a.tar", &archive).unwrap();
    tar::unpack(&dst_fs, "/a.tar", "/out").unwrap();

    for (path, size) in &manifest.files {
        let orig = src_fs.read_to_vec(&ctx, path).unwrap();
        let copy = dst_fs.read_to_vec(&ctx, &format!("/out{path}")).unwrap();
        assert_eq!(orig.len(), *size);
        assert_eq!(orig, copy, "mismatch at {path}");
    }
}

#[test]
fn git_status_quo_after_two_commits() {
    let fs = simurgh(64 << 20);
    let spec = TreeSpec { dirs: 4, files: 15, max_file_size: 2048, seed: 5 };
    let m = tree::generate(&fs, "/repo", spec).unwrap();
    let mut repo = git::GitRepo::init(&fs, "/repo").unwrap();
    repo.add_all(&m).unwrap();
    repo.commit("first").unwrap();
    // Second add of unchanged files dedups all blobs.
    let second = repo.add_all(&m).unwrap();
    assert_eq!(second.bytes, 0, "no new objects on identical content");
    repo.commit("second").unwrap();
    repo.delete_worktree(&m).unwrap();
    repo.reset_hard().unwrap();
    let ctx = ProcCtx::root(0);
    for (p, s) in &m.files {
        assert_eq!(fs.stat(&ctx, p).unwrap().size, *s as u64);
    }
}

#[test]
fn minikv_survives_fs_crash_via_wal() {
    // End-to-end: the KV's WAL on a tracked Simurgh region survives a
    // simulated power failure of the underlying file system.
    let region = Arc::new(PmemRegion::new_tracked(64 << 20));
    let fs = SimurghFs::format(region, SimurghConfig::default()).unwrap();
    {
        let kv = MiniKv::open(&fs, "/db", KvOptions::default()).unwrap();
        for i in 0..40 {
            kv.put(format!("k{i}").as_bytes(), format!("v{i}").as_bytes()).unwrap();
        }
    }
    let crashed = Arc::new(fs.region().simulate_crash());
    let fs2 = SimurghFs::mount(crashed, SimurghConfig::default()).unwrap();
    let kv2 = MiniKv::open(&fs2, "/db", KvOptions::default()).unwrap();
    for i in 0..40 {
        assert_eq!(
            kv2.get(format!("k{i}").as_bytes()).unwrap().as_deref(),
            Some(format!("v{i}").as_bytes()),
            "k{i} lost across fs crash"
        );
    }
}

#[test]
fn tree_generation_is_deterministic_across_filesystems() {
    let spec = TreeSpec { dirs: 5, files: 20, max_file_size: 1024, seed: 42 };
    let a = tree::generate(&simurgh(32 << 20), "/t", spec).unwrap();
    let b = tree::generate(
        &simurgh_baselines::ext4dax(Arc::new(PmemRegion::new(32 << 20))),
        "/t",
        spec,
    )
    .unwrap();
    assert_eq!(a.files, b.files, "same manifest regardless of backing fs");
    assert_eq!(a.dirs, b.dirs);
}
