//! MiniKV: a from-scratch LSM key-value store in the style of LevelDB.
//!
//! The paper's YCSB experiments use LevelDB as the backing database
//! (§5.4); what they really measure is how the *file system* handles
//! LevelDB's I/O pattern — appends to a write-ahead log, bulk writes of
//! immutable sorted tables, file creates and deletes from compaction.
//! MiniKV reproduces exactly that pattern over the common
//! [`FileSystem`] trait:
//!
//! * every mutation is appended to `wal.log` (`O_APPEND`, optional fsync),
//! * mutations accumulate in a sorted in-memory memtable,
//! * a full memtable is flushed to an immutable `sst-NNNNNN.db` file,
//! * when tables pile up they are merge-compacted into one and the old
//!   files unlinked,
//! * recovery replays the WAL and reloads table indexes from disk.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use simurgh_fsapi::{Fd, FileMode, FileSystem, FsResult, OpenFlags, ProcCtx};

const TOMBSTONE: u32 = u32::MAX;

/// Tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct KvOptions {
    /// Flush the memtable when its WAL exceeds this many bytes.
    pub memtable_bytes: usize,
    /// Compact when more than this many tables exist.
    pub max_tables: usize,
    /// fsync the WAL on every mutation (YCSB runs with this off, matching
    /// LevelDB's default asynchronous writes).
    pub sync_wal: bool,
}

impl Default for KvOptions {
    fn default() -> Self {
        KvOptions { memtable_bytes: 1 << 20, max_tables: 4, sync_wal: false }
    }
}

struct SsTable {
    path: String,
    /// Sorted `(key, record offset, value tag)`; tag == TOMBSTONE deletes.
    index: Vec<(Vec<u8>, u64, u32)>,
}

impl SsTable {
    fn get(&self, fs: &dyn FileSystem, ctx: &ProcCtx, key: &[u8]) -> FsResult<Option<Option<Vec<u8>>>> {
        let Ok(i) = self.index.binary_search_by(|(k, _, _)| k.as_slice().cmp(key)) else {
            return Ok(None);
        };
        let (_, off, tag) = &self.index[i];
        if *tag == TOMBSTONE {
            return Ok(Some(None));
        }
        let fd = fs.open(ctx, &self.path, OpenFlags::RDONLY, FileMode::default())?;
        let hdr_len = 8 + key.len();
        let mut val = vec![0u8; *tag as usize];
        fs.pread(ctx, fd, &mut val, off + hdr_len as u64)?;
        fs.close(ctx, fd)?;
        Ok(Some(Some(val)))
    }
}

struct KvInner {
    mem: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    wal_fd: Fd,
    wal_bytes: usize,
}

/// The store. Like LevelDB, one instance is one "process": internal file
/// descriptors are owned by the store, and application threads share it.
pub struct MiniKv<'fs> {
    fs: &'fs dyn FileSystem,
    ctx: ProcCtx,
    dir: String,
    opts: KvOptions,
    inner: Mutex<KvInner>,
    tables: RwLock<Vec<Arc<SsTable>>>,
    next_id: AtomicU64,
}

fn encode_record(key: &[u8], val: Option<&[u8]>) -> Vec<u8> {
    let vtag = val.map_or(TOMBSTONE, |v| v.len() as u32);
    let mut rec = Vec::with_capacity(8 + key.len() + val.map_or(0, |v| v.len()));
    rec.extend_from_slice(&(key.len() as u32).to_le_bytes());
    rec.extend_from_slice(&vtag.to_le_bytes());
    rec.extend_from_slice(key);
    if let Some(v) = val {
        rec.extend_from_slice(v);
    }
    rec
}

/// Parses records from a buffer, calling `f(offset, key, value)`.
fn parse_records(buf: &[u8], mut f: impl FnMut(u64, &[u8], Option<&[u8]>)) {
    let mut off = 0usize;
    while off + 8 <= buf.len() {
        let klen = u32::from_le_bytes(buf[off..off + 4].try_into().unwrap()) as usize;
        let vtag = u32::from_le_bytes(buf[off + 4..off + 8].try_into().unwrap());
        let vlen = if vtag == TOMBSTONE { 0 } else { vtag as usize };
        if off + 8 + klen + vlen > buf.len() {
            break; // torn tail record (e.g. WAL cut by a crash)
        }
        let key = &buf[off + 8..off + 8 + klen];
        let val = if vtag == TOMBSTONE { None } else { Some(&buf[off + 8 + klen..off + 8 + klen + vlen]) };
        f(off as u64, key, val);
        off += 8 + klen + vlen;
    }
}

impl<'fs> MiniKv<'fs> {
    /// Opens (or creates) a store under `dir`, replaying any existing WAL
    /// and reloading table indexes — LevelDB's recovery path.
    pub fn open(fs: &'fs dyn FileSystem, dir: &str, opts: KvOptions) -> FsResult<Self> {
        let ctx = ProcCtx::root(4242);
        match fs.mkdir(&ctx, dir, FileMode::dir(0o755)) {
            Ok(()) | Err(simurgh_fsapi::FsError::Exists) => {}
            Err(e) => return Err(e),
        }
        // Reload tables (oldest id first so newest ends up at index 0).
        let mut ids: Vec<u64> = fs
            .readdir(&ctx, dir)?
            .into_iter()
            .filter_map(|e| {
                e.name.strip_prefix("sst-")?.strip_suffix(".db")?.parse::<u64>().ok()
            })
            .collect();
        ids.sort_unstable();
        let mut tables = Vec::new();
        for id in &ids {
            let path = format!("{dir}/sst-{id:06}.db");
            let data = fs.read_to_vec(&ctx, &path)?;
            let mut index = Vec::new();
            parse_records(&data, |off, key, val| {
                index.push((key.to_vec(), off, val.map_or(TOMBSTONE, |v| v.len() as u32)));
            });
            index.sort_by(|a, b| a.0.cmp(&b.0));
            tables.insert(0, Arc::new(SsTable { path, index }));
        }
        // Replay the WAL.
        let mut mem = BTreeMap::new();
        let mut wal_bytes = 0usize;
        let wal_path = format!("{dir}/wal.log");
        if let Ok(data) = fs.read_to_vec(&ctx, &wal_path) {
            wal_bytes = data.len();
            parse_records(&data, |_, key, val| {
                mem.insert(key.to_vec(), val.map(|v| v.to_vec()));
            });
        }
        let wal_fd = fs.open(&ctx, &wal_path, OpenFlags::APPEND, FileMode::default())?;
        Ok(MiniKv {
            fs,
            ctx,
            dir: dir.to_owned(),
            opts,
            inner: Mutex::new(KvInner { mem, wal_fd, wal_bytes }),
            tables: RwLock::new(tables),
            next_id: AtomicU64::new(ids.last().map_or(1, |l| l + 1)),
        })
    }

    /// Inserts or overwrites a key.
    pub fn put(&self, key: &[u8], val: &[u8]) -> FsResult<()> {
        self.mutate(key, Some(val))
    }

    /// Deletes a key (tombstone).
    pub fn delete(&self, key: &[u8]) -> FsResult<()> {
        self.mutate(key, None)
    }

    fn mutate(&self, key: &[u8], val: Option<&[u8]>) -> FsResult<()> {
        let rec = encode_record(key, val);
        let mut inner = self.inner.lock();
        self.fs.write(&self.ctx, inner.wal_fd, &rec)?;
        if self.opts.sync_wal {
            self.fs.fsync(&self.ctx, inner.wal_fd)?;
        }
        inner.wal_bytes += rec.len();
        inner.mem.insert(key.to_vec(), val.map(|v| v.to_vec()));
        if inner.wal_bytes >= self.opts.memtable_bytes {
            self.flush_locked(&mut inner)?;
        }
        Ok(())
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> FsResult<Option<Vec<u8>>> {
        {
            let inner = self.inner.lock();
            if let Some(v) = inner.mem.get(key) {
                return Ok(v.clone());
            }
        }
        let tables = self.tables.read().clone();
        for t in &tables {
            if let Some(outcome) = t.get(self.fs, &self.ctx, key)? {
                return Ok(outcome);
            }
        }
        Ok(None)
    }

    /// Range scan: up to `limit` live entries with key ≥ `start`.
    pub fn scan(&self, start: &[u8], limit: usize) -> FsResult<Vec<(Vec<u8>, Vec<u8>)>> {
        // Merge oldest → newest → memtable so newer versions win.
        let mut merged: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        let tables = self.tables.read().clone();
        let over = limit * 4 + 16; // headroom for tombstoned/overwritten keys
        for t in tables.iter().rev() {
            let from = t.index.partition_point(|(k, _, _)| k.as_slice() < start);
            for (k, _, tag) in t.index.iter().skip(from).take(over) {
                if *tag == TOMBSTONE {
                    merged.insert(k.clone(), None);
                } else if let Some(Some(v)) = t.get(self.fs, &self.ctx, k)? {
                    merged.insert(k.clone(), Some(v));
                }
            }
        }
        {
            let inner = self.inner.lock();
            for (k, v) in inner.mem.range(start.to_vec()..).take(over) {
                merged.insert(k.clone(), v.clone());
            }
        }
        Ok(merged
            .into_iter()
            .filter_map(|(k, v)| v.map(|v| (k, v)))
            .take(limit)
            .collect())
    }

    /// Flushes the memtable to a new table file (exposed for tests).
    pub fn flush(&self) -> FsResult<()> {
        let mut inner = self.inner.lock();
        if inner.mem.is_empty() {
            return Ok(());
        }
        self.flush_locked(&mut inner)
    }

    fn flush_locked(&self, inner: &mut KvInner) -> FsResult<()> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let path = format!("{}/sst-{id:06}.db", self.dir);
        let mut buf = Vec::with_capacity(inner.wal_bytes);
        let mut index = Vec::with_capacity(inner.mem.len());
        for (k, v) in &inner.mem {
            index.push((k.clone(), buf.len() as u64, v.as_ref().map_or(TOMBSTONE, |v| v.len() as u32)));
            buf.extend_from_slice(&encode_record(k, v.as_deref()));
        }
        self.fs.write_file(&self.ctx, &path, &buf)?;
        self.tables.write().insert(0, Arc::new(SsTable { path, index }));
        // Retire the WAL: LevelDB deletes the old log file.
        self.fs.close(&self.ctx, inner.wal_fd)?;
        let wal_path = format!("{}/wal.log", self.dir);
        self.fs.unlink(&self.ctx, &wal_path)?;
        inner.wal_fd = self.fs.open(&self.ctx, &wal_path, OpenFlags::APPEND, FileMode::default())?;
        inner.wal_bytes = 0;
        inner.mem.clear();
        self.maybe_compact()?;
        Ok(())
    }

    fn maybe_compact(&self) -> FsResult<()> {
        let mut tables = self.tables.write();
        if tables.len() <= self.opts.max_tables {
            return Ok(());
        }
        // Merge oldest → newest; tombstones drop out of the merged table.
        let mut merged: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        for t in tables.iter().rev() {
            for (k, _, tag) in &t.index {
                if *tag == TOMBSTONE {
                    merged.insert(k.clone(), None);
                } else if let Some(v) = t.get(self.fs, &self.ctx, k)? {
                    merged.insert(k.clone(), v);
                }
            }
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let path = format!("{}/sst-{id:06}.db", self.dir);
        let mut buf = Vec::new();
        let mut index = Vec::new();
        for (k, v) in &merged {
            if let Some(v) = v {
                index.push((k.clone(), buf.len() as u64, v.len() as u32));
                buf.extend_from_slice(&encode_record(k, Some(v)));
            }
        }
        self.fs.write_file(&self.ctx, &path, &buf)?;
        let old: Vec<_> = tables.drain(..).collect();
        tables.push(Arc::new(SsTable { path, index }));
        drop(tables);
        for t in old {
            self.fs.unlink(&self.ctx, &t.path)?;
        }
        Ok(())
    }

    /// Number of table files (diagnostics).
    pub fn table_count(&self) -> usize {
        self.tables.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simurgh_core::{SimurghConfig, SimurghFs};
    use simurgh_pmem::PmemRegion;

    fn fresh() -> SimurghFs {
        SimurghFs::format(
            std::sync::Arc::new(PmemRegion::new(64 << 20)),
            SimurghConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn put_get_delete() {
        let fs = fresh();
        let kv = MiniKv::open(&fs, "/db", KvOptions::default()).unwrap();
        kv.put(b"alpha", b"1").unwrap();
        kv.put(b"beta", b"2").unwrap();
        assert_eq!(kv.get(b"alpha").unwrap().as_deref(), Some(&b"1"[..]));
        kv.put(b"alpha", b"updated").unwrap();
        assert_eq!(kv.get(b"alpha").unwrap().as_deref(), Some(&b"updated"[..]));
        kv.delete(b"beta").unwrap();
        assert_eq!(kv.get(b"beta").unwrap(), None);
        assert_eq!(kv.get(b"gamma").unwrap(), None);
    }

    #[test]
    fn flush_and_read_from_sstable() {
        let fs = fresh();
        let kv = MiniKv::open(&fs, "/db", KvOptions::default()).unwrap();
        for i in 0..100 {
            kv.put(format!("key{i:03}").as_bytes(), format!("val{i}").as_bytes()).unwrap();
        }
        kv.flush().unwrap();
        assert_eq!(kv.table_count(), 1);
        // All reads now come from the table file.
        for i in (0..100).step_by(7) {
            assert_eq!(
                kv.get(format!("key{i:03}").as_bytes()).unwrap().as_deref(),
                Some(format!("val{i}").as_bytes())
            );
        }
    }

    #[test]
    fn newest_table_wins() {
        let fs = fresh();
        let kv = MiniKv::open(&fs, "/db", KvOptions::default()).unwrap();
        kv.put(b"k", b"old").unwrap();
        kv.flush().unwrap();
        kv.put(b"k", b"new").unwrap();
        kv.flush().unwrap();
        assert_eq!(kv.get(b"k").unwrap().as_deref(), Some(&b"new"[..]));
        kv.delete(b"k").unwrap();
        kv.flush().unwrap();
        assert_eq!(kv.get(b"k").unwrap(), None, "tombstone in newest table wins");
    }

    #[test]
    fn compaction_collapses_tables_and_unlinks() {
        let fs = fresh();
        let opts = KvOptions { memtable_bytes: 512, max_tables: 3, ..Default::default() };
        let kv = MiniKv::open(&fs, "/db", opts).unwrap();
        for i in 0..400 {
            kv.put(format!("k{i:04}").as_bytes(), &[7u8; 32]).unwrap();
        }
        assert!(kv.table_count() <= 4, "compaction keeps table count bounded");
        // Everything still readable after compactions.
        for i in (0..400).step_by(41) {
            assert!(kv.get(format!("k{i:04}").as_bytes()).unwrap().is_some());
        }
        let ctx = ProcCtx::root(0);
        let tables = fs
            .readdir(&ctx, "/db")
            .unwrap()
            .into_iter()
            .filter(|e| e.name.starts_with("sst-"))
            .count();
        assert_eq!(tables, kv.table_count(), "old table files unlinked");
    }

    #[test]
    fn recovery_replays_wal_and_tables() {
        let fs = fresh();
        {
            let kv = MiniKv::open(&fs, "/db", KvOptions::default()).unwrap();
            for i in 0..50 {
                kv.put(format!("p{i}").as_bytes(), format!("v{i}").as_bytes()).unwrap();
            }
            kv.flush().unwrap();
            // These stay in the WAL only.
            kv.put(b"wal-only", b"survived").unwrap();
            kv.delete(b"p3").unwrap();
        } // store dropped without clean shutdown
        let kv2 = MiniKv::open(&fs, "/db", KvOptions::default()).unwrap();
        assert_eq!(kv2.get(b"wal-only").unwrap().as_deref(), Some(&b"survived"[..]));
        assert_eq!(kv2.get(b"p3").unwrap(), None, "WAL tombstone replayed");
        assert_eq!(kv2.get(b"p10").unwrap().as_deref(), Some(&b"v10"[..]));
    }

    #[test]
    fn scan_merges_sources() {
        let fs = fresh();
        let kv = MiniKv::open(&fs, "/db", KvOptions::default()).unwrap();
        kv.put(b"a", b"1").unwrap();
        kv.put(b"c", b"3").unwrap();
        kv.flush().unwrap();
        kv.put(b"b", b"2").unwrap(); // memtable
        kv.put(b"c", b"3-new").unwrap(); // overrides flushed version
        kv.delete(b"a").unwrap(); // tombstone over flushed version
        let out = kv.scan(b"a", 10).unwrap();
        let keys: Vec<_> = out.iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(keys, vec![b"b".to_vec(), b"c".to_vec()]);
        assert_eq!(out[1].1, b"3-new");
        let out = kv.scan(b"b5", 10).unwrap();
        assert_eq!(out.len(), 1, "scan start respected");
    }

    #[test]
    fn concurrent_readers_with_writer() {
        let fs = fresh();
        let kv = std::sync::Arc::new(MiniKv::open(&fs, "/db", KvOptions::default()).unwrap());
        for i in 0..100 {
            kv.put(format!("base{i}").as_bytes(), b"x").unwrap();
        }
        crossbeam::thread::scope(|s| {
            let kvw = kv.clone();
            s.spawn(move |_| {
                for i in 0..200 {
                    kvw.put(format!("new{i}").as_bytes(), b"y").unwrap();
                }
            });
            for _ in 0..3 {
                let kvr = kv.clone();
                s.spawn(move |_| {
                    for i in 0..100 {
                        assert!(kvr.get(format!("base{i}").as_bytes()).unwrap().is_some());
                    }
                });
            }
        })
        .unwrap();
    }
}
