//! The git benchmark (Fig. 12): add / commit / reset over a source tree.
//!
//! A minimal content-addressed object store with git's file-system
//! footprint: `add` hashes every file and writes missing objects into
//! fan-out directories (`.git/objects/xx/…`), `commit` re-stats the whole
//! tree (the metadata-retrieval pass where the paper's Simurgh wins) and
//! writes tree+commit objects, `reset` restores the working tree from the
//! object store after the files were deleted.

use simurgh_fsapi::{FileMode, FileSystem, FsError, FsResult, ProcCtx};

use crate::runner::BenchResult;
use crate::tree::TreeManifest;

/// A repository rooted at `<root>/.git`.
pub struct GitRepo<'fs> {
    fs: &'fs dyn FileSystem,
    ctx: ProcCtx,
    git_dir: String,
    /// The staged index: `(path, object id, mode)`.
    index: Vec<(String, u128, u16)>,
}

fn fnv128(data: &[u8]) -> u128 {
    let mut h: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    for &b in data {
        h ^= b as u128;
        h = h.wrapping_mul(0x0000_0000_0100_0000_0000_0000_0000_013b);
    }
    h
}

impl<'fs> GitRepo<'fs> {
    /// `git init`: creates `.git/objects`.
    pub fn init(fs: &'fs dyn FileSystem, root: &str) -> FsResult<Self> {
        let ctx = ProcCtx::root(0);
        let git_dir = format!("{root}/.git");
        fs.mkdir(&ctx, &git_dir, FileMode::dir(0o755))?;
        fs.mkdir(&ctx, &format!("{git_dir}/objects"), FileMode::dir(0o755))?;
        Ok(GitRepo { fs, ctx, git_dir, index: Vec::new() })
    }

    fn object_path(&self, id: u128) -> (String, String) {
        let hex = format!("{id:032x}");
        let dir = format!("{}/objects/{}", self.git_dir, &hex[..2]);
        let path = format!("{dir}/{}", &hex[2..]);
        (dir, path)
    }

    fn write_object(&self, data: &[u8]) -> FsResult<(u128, bool)> {
        let id = fnv128(data);
        let (dir, path) = self.object_path(id);
        if self.fs.stat(&self.ctx, &path).is_ok() {
            return Ok((id, false)); // deduplicated, like git
        }
        match self.fs.mkdir(&self.ctx, &dir, FileMode::dir(0o755)) {
            Ok(()) | Err(FsError::Exists) => {}
            Err(e) => return Err(e),
        }
        self.fs.write_file(&self.ctx, &path, data)?;
        Ok((id, true))
    }

    /// `git add .`: hash every file, store missing blobs, build the index.
    pub fn add_all(&mut self, manifest: &TreeManifest) -> FsResult<BenchResult> {
        let start = std::time::Instant::now();
        let mut ops = 0u64;
        let mut bytes = 0u64;
        self.index.clear();
        for (path, _) in &manifest.files {
            let data = self.fs.read_to_vec(&self.ctx, path)?;
            let st = self.fs.stat(&self.ctx, path)?;
            let (id, fresh) = self.write_object(&data)?;
            if fresh {
                bytes += data.len() as u64;
            }
            self.index.push((path.clone(), id, st.mode.perm));
            ops += 1;
        }
        // Persist the index file.
        let mut buf = Vec::new();
        for (p, id, mode) in &self.index {
            buf.extend_from_slice(&(p.len() as u32).to_le_bytes());
            buf.extend_from_slice(&id.to_le_bytes());
            buf.extend_from_slice(&mode.to_le_bytes());
            buf.extend_from_slice(p.as_bytes());
        }
        self.fs.write_file(&self.ctx, &format!("{}/index", self.git_dir), &buf)?;
        Ok(BenchResult { ops, bytes, seconds: start.elapsed().as_secs_f64(), threads: 1 })
    }

    /// `git commit`: re-stat every indexed file (change detection — the
    /// pass that dominates commit time), then write tree + commit objects.
    pub fn commit(&self, message: &str) -> FsResult<BenchResult> {
        let start = std::time::Instant::now();
        let mut ops = 0u64;
        let mut tree_buf = Vec::new();
        for (path, id, mode) in &self.index {
            // git checks whether the working file still matches the index.
            let _ = self.fs.stat(&self.ctx, path);
            ops += 1;
            tree_buf.extend_from_slice(&id.to_le_bytes());
            tree_buf.extend_from_slice(&mode.to_le_bytes());
            tree_buf.extend_from_slice(path.as_bytes());
            tree_buf.push(0);
        }
        let (tree_id, _) = self.write_object(&tree_buf)?;
        let commit_body = format!("tree {tree_id:032x}\n\n{message}\n");
        let (commit_id, _) = self.write_object(commit_body.as_bytes())?;
        self.fs.write_file(
            &self.ctx,
            &format!("{}/HEAD", self.git_dir),
            format!("{commit_id:032x}").as_bytes(),
        )?;
        ops += 2;
        Ok(BenchResult {
            ops,
            bytes: tree_buf.len() as u64,
            seconds: start.elapsed().as_secs_f64(),
            threads: 1,
        })
    }

    /// Deletes every working file (the paper deletes all files between
    /// commit and reset).
    pub fn delete_worktree(&self, manifest: &TreeManifest) -> FsResult<u64> {
        let mut n = 0;
        for (path, _) in &manifest.files {
            self.fs.unlink(&self.ctx, path)?;
            n += 1;
        }
        Ok(n)
    }

    /// `git reset --hard`: restore every indexed file from its object.
    pub fn reset_hard(&self) -> FsResult<BenchResult> {
        let start = std::time::Instant::now();
        let mut ops = 0u64;
        let mut bytes = 0u64;
        for (path, id, mode) in &self.index {
            let (_, obj) = self.object_path(*id);
            let data = self.fs.read_to_vec(&self.ctx, &obj)?;
            self.fs.write_file(&self.ctx, path, &data)?;
            self.fs.chmod(&self.ctx, path, *mode)?;
            bytes += data.len() as u64;
            ops += 1;
        }
        Ok(BenchResult { ops, bytes, seconds: start.elapsed().as_secs_f64(), threads: 1 })
    }

    /// Number of staged index entries.
    pub fn staged(&self) -> usize {
        self.index.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{self, TreeSpec};
    use simurgh_core::{SimurghConfig, SimurghFs};
    use simurgh_pmem::PmemRegion;
    use std::sync::Arc;

    fn setup() -> (SimurghFs, TreeManifest) {
        let fs = SimurghFs::format(
            Arc::new(PmemRegion::new(128 << 20)),
            SimurghConfig::default(),
        )
        .unwrap();
        let spec = TreeSpec { dirs: 8, files: 40, max_file_size: 4096, seed: 11 };
        let m = tree::generate(&fs, "/repo", spec).unwrap();
        (fs, m)
    }

    #[test]
    fn add_commit_reset_cycle() {
        let (fs, m) = setup();
        let mut repo = GitRepo::init(&fs, "/repo").unwrap();
        let add = repo.add_all(&m).unwrap();
        assert_eq!(add.ops as usize, m.files.len());
        assert_eq!(repo.staged(), m.files.len());

        let commit = repo.commit("initial").unwrap();
        assert_eq!(commit.ops as usize, m.files.len() + 2);

        let deleted = repo.delete_worktree(&m).unwrap();
        assert_eq!(deleted as usize, m.files.len());
        let ctx = ProcCtx::root(0);
        assert!(fs.stat(&ctx, &m.files[0].0).is_err(), "worktree gone");

        let reset = repo.reset_hard().unwrap();
        assert_eq!(reset.ops as usize, m.files.len());
        for (p, s) in m.files.iter().take(10) {
            let data = fs.read_to_vec(&ctx, p).unwrap();
            assert_eq!(data.len(), *s);
            assert_eq!(data, tree::file_content(
                m.files.iter().position(|(q, _)| q == p).unwrap(),
                *s
            ), "restored content matches generator");
        }
    }

    #[test]
    fn objects_are_deduplicated() {
        let (fs, _) = setup();
        let mut repo = GitRepo::init(&fs, "/repo").unwrap();
        // Two identical files → one object.
        fs.write_file(&ProcCtx::root(0), "/repo/dup1", b"same-bytes").unwrap();
        fs.write_file(&ProcCtx::root(0), "/repo/dup2", b"same-bytes").unwrap();
        let m = TreeManifest {
            root: "/repo".into(),
            dirs: vec!["/repo".into()],
            files: vec![("/repo/dup1".into(), 10), ("/repo/dup2".into(), 10)],
        };
        let add = repo.add_all(&m).unwrap();
        assert_eq!(add.ops, 2);
        assert_eq!(add.bytes, 10, "second blob deduplicated");
    }
}
