//! Operation mixes for the gateway load generator.
//!
//! `loadgen` stresses the wire protocol rather than the media, so its op
//! mix is a small weighted alphabet over the remote [`FileSystem`]
//! surface instead of a full workload personality. A mix is written as
//! `"pwrite=4,pread=4,create=1,stat=1"` on the command line and sampled
//! per request.
//!
//! [`FileSystem`]: simurgh_fsapi::FileSystem

use rand::RngExt;

/// One operation kind the load generator can issue over the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GatewayOp {
    /// `pwrite` a payload at a random offset of a per-connection file.
    Pwrite,
    /// `pread` a span back from the same file.
    Pread,
    /// `create` + `close` a fresh file in the connection's directory.
    Create,
    /// `stat` the connection's working file.
    Stat,
    /// `readdir` the connection's directory.
    Readdir,
    /// `unlink` a previously created file (no-op error if none is left —
    /// the generator counts that as a served op, not a failure).
    Unlink,
}

impl GatewayOp {
    /// All kinds, in the spec's canonical order.
    pub const ALL: [GatewayOp; 6] = [
        GatewayOp::Pwrite,
        GatewayOp::Pread,
        GatewayOp::Create,
        GatewayOp::Stat,
        GatewayOp::Readdir,
        GatewayOp::Unlink,
    ];

    /// The spelling used in mix specs and reports.
    pub fn name(self) -> &'static str {
        match self {
            GatewayOp::Pwrite => "pwrite",
            GatewayOp::Pread => "pread",
            GatewayOp::Create => "create",
            GatewayOp::Stat => "stat",
            GatewayOp::Readdir => "readdir",
            GatewayOp::Unlink => "unlink",
        }
    }

    fn from_name(s: &str) -> Option<Self> {
        GatewayOp::ALL.into_iter().find(|op| op.name() == s)
    }
}

/// A weighted mix of [`GatewayOp`]s, sampled per wire request.
#[derive(Debug, Clone)]
pub struct OpMix {
    weights: Vec<(GatewayOp, u32)>,
    total: u32,
}

impl OpMix {
    /// The default mix: write-heavy with metadata seasoning —
    /// `pwrite=4,pread=4,create=1,stat=1`.
    pub fn default_mix() -> Self {
        OpMix::parse("pwrite=4,pread=4,create=1,stat=1").expect("default mix parses")
    }

    /// Parses `"op=weight,op=weight,…"`. Unknown ops, zero weights and
    /// malformed entries are errors; duplicate ops accumulate.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut weights: Vec<(GatewayOp, u32)> = Vec::new();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (name, w) = part
                .split_once('=')
                .ok_or_else(|| format!("malformed mix entry {part:?} (want op=weight)"))?;
            let op = GatewayOp::from_name(name.trim())
                .ok_or_else(|| format!("unknown op {name:?} in mix"))?;
            let w: u32 = w
                .trim()
                .parse()
                .map_err(|_| format!("bad weight {w:?} for {name}"))?;
            if w == 0 {
                return Err(format!("zero weight for {name} (drop the entry instead)"));
            }
            match weights.iter_mut().find(|(o, _)| *o == op) {
                Some((_, acc)) => *acc += w,
                None => weights.push((op, w)),
            }
        }
        let total: u32 = weights.iter().map(|(_, w)| w).sum();
        if total == 0 {
            return Err("empty op mix".into());
        }
        Ok(OpMix { weights, total })
    }

    /// Draws one op according to the weights.
    pub fn sample(&self, rng: &mut impl RngExt) -> GatewayOp {
        let mut ticket = rng.random_range(0..self.total);
        for &(op, w) in &self.weights {
            if ticket < w {
                return op;
            }
            ticket -= w;
        }
        unreachable!("ticket bounded by total weight")
    }

    /// The normalized spec string (weights in parse order).
    pub fn spec(&self) -> String {
        self.weights
            .iter()
            .map(|(op, w)| format!("{}={w}", op.name()))
            .collect::<Vec<_>>()
            .join(",")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn parses_and_round_trips() {
        let mix = OpMix::parse("pwrite=4, pread=4,create=1,stat=1").unwrap();
        assert_eq!(mix.spec(), "pwrite=4,pread=4,create=1,stat=1");
        assert_eq!(OpMix::default_mix().spec(), mix.spec());
    }

    #[test]
    fn duplicates_accumulate() {
        let mix = OpMix::parse("pread=1,pread=2").unwrap();
        assert_eq!(mix.spec(), "pread=3");
    }

    #[test]
    fn rejects_garbage() {
        assert!(OpMix::parse("").is_err());
        assert!(OpMix::parse("fly=1").is_err());
        assert!(OpMix::parse("pread").is_err());
        assert!(OpMix::parse("pread=0").is_err());
        assert!(OpMix::parse("pread=x").is_err());
    }

    #[test]
    fn sampling_tracks_weights() {
        let mix = OpMix::parse("pwrite=9,stat=1").unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let mut writes = 0u32;
        for _ in 0..10_000 {
            if mix.sample(&mut rng) == GatewayOp::Pwrite {
                writes += 1;
            }
        }
        assert!((8500..=9500).contains(&writes), "≈90% writes, got {writes}");
    }
}
