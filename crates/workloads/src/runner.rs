//! The multi-process measurement harness.
//!
//! FxMark-style benchmarks run the same operation loop on N "processes"
//! (threads with distinct pids, like the paper's independent processes
//! sharing the preload library) and report aggregate throughput. Setup
//! phases run outside the timed window, as FxMark does.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use simurgh_fsapi::{FileSystem, ProcCtx};

/// Result of one timed benchmark phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchResult {
    /// Total operations completed across all processes.
    pub ops: u64,
    /// Total bytes moved (data benchmarks; 0 for metadata benchmarks).
    pub bytes: u64,
    /// Wall-clock seconds of the timed phase.
    pub seconds: f64,
    /// Number of processes.
    pub threads: usize,
}

impl BenchResult {
    /// Operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.seconds.max(1e-12)
    }

    /// Thousands of operations per second (the paper's metadata unit).
    pub fn kops(&self) -> f64 {
        self.ops_per_sec() / 1e3
    }

    /// GiB per second (the paper's data unit).
    pub fn gibs(&self) -> f64 {
        self.bytes as f64 / self.seconds.max(1e-12) / (1u64 << 30) as f64
    }
}

/// Runs `threads` processes, each executing `body(ctx, tid)`, and times the
/// whole phase. `body` returns `(ops, bytes)` it completed.
pub struct Runner {
    pub threads: usize,
}

impl Runner {
    pub fn new(threads: usize) -> Self {
        Runner { threads }
    }

    /// Executes the timed phase.
    pub fn run<F>(&self, body: F) -> BenchResult
    where
        F: Fn(&ProcCtx, usize) -> (u64, u64) + Sync,
    {
        let ops = AtomicU64::new(0);
        let bytes = AtomicU64::new(0);
        let start = Instant::now();
        if self.threads == 1 {
            let ctx = ProcCtx::root(1);
            let (o, b) = body(&ctx, 0);
            ops.fetch_add(o, Ordering::Relaxed);
            bytes.fetch_add(b, Ordering::Relaxed);
        } else {
            crossbeam::thread::scope(|s| {
                for tid in 0..self.threads {
                    let body = &body;
                    let ops = &ops;
                    let bytes = &bytes;
                    s.spawn(move |_| {
                        let ctx = ProcCtx::root(tid as u32 + 1);
                        let (o, b) = body(&ctx, tid);
                        ops.fetch_add(o, Ordering::Relaxed);
                        bytes.fetch_add(b, Ordering::Relaxed);
                    });
                }
            })
            .expect("benchmark thread panicked");
        }
        BenchResult {
            ops: ops.load(Ordering::Relaxed),
            bytes: bytes.load(Ordering::Relaxed),
            seconds: start.elapsed().as_secs_f64(),
            threads: self.threads,
        }
    }
}

/// Convenience: per-thread private directory path.
pub fn private_dir(tid: usize) -> String {
    format!("/fx-priv-{tid}")
}

/// Creates the per-thread private directories (setup, untimed). Idempotent
/// so several benchmarks can share one mounted file system.
pub fn setup_private_dirs(fs: &dyn FileSystem, threads: usize) {
    let ctx = ProcCtx::root(0);
    for tid in 0..threads {
        match fs.mkdir(&ctx, &private_dir(tid), simurgh_fsapi::FileMode::dir(0o777)) {
            Ok(()) | Err(simurgh_fsapi::FsError::Exists) => {}
            Err(e) => panic!("setup mkdir: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_math() {
        let r = BenchResult { ops: 10_000, bytes: 1 << 30, seconds: 2.0, threads: 4 };
        assert!((r.ops_per_sec() - 5_000.0).abs() < 1e-9);
        assert!((r.kops() - 5.0).abs() < 1e-9);
        assert!((r.gibs() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn runner_aggregates_all_threads() {
        let r = Runner::new(4).run(|_ctx, tid| ((tid as u64 + 1) * 10, 5));
        assert_eq!(r.ops, 10 + 20 + 30 + 40);
        assert_eq!(r.bytes, 20);
        assert_eq!(r.threads, 4);
        assert!(r.seconds > 0.0);
    }

    #[test]
    fn single_thread_fast_path() {
        let r = Runner::new(1).run(|ctx, tid| {
            assert_eq!(tid, 0);
            assert_eq!(ctx.pid, 1);
            (7, 0)
        });
        assert_eq!(r.ops, 7);
    }
}
