//! Aging churn workload (the "Aging & compaction" experiment).
//!
//! A long-lived file system fragments: files are created, appended to in
//! interleaved bursts, truncated and deleted, and the free space decays
//! from a few huge runs into confetti. This generator reproduces that decay
//! deterministically so the compactor and the fragmentation battery have
//! something real to measure:
//!
//! * a population of files spread over a directory fan-out,
//! * churn ops (append / create / delete / truncate) whose *victims* are
//!   chosen by a scrambled zipfian — a hot minority of files absorbs most
//!   of the churn, exactly the reuse skew that interleaves their extents,
//! * a batch hook so the driver can interleave maintenance (the water-mark
//!   compaction check, a stats sample) every `batch` operations without
//!   this crate depending on any concrete file system.
//!
//! Like every other generator here it drives the plain
//! [`simurgh_fsapi::FileSystem`] trait, so the same churn ages Simurgh and
//! every baseline identically.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use simurgh_fsapi::{FileMode, FileSystem, FsResult, OpenFlags, ProcCtx};

use crate::zipf::Zipfian;

/// Shape of one aging run.
#[derive(Debug, Clone, Copy)]
pub struct AgingSpec {
    /// File population (slots; a slot may be live or deleted at any time).
    pub files: usize,
    /// Directories the population is spread over.
    pub dirs: usize,
    /// Total churn operations.
    pub ops: u64,
    /// Batch hook cadence (ops between calls; 0 disables the hook).
    pub batch: u64,
    /// Largest single append, in bytes.
    pub append_max: usize,
    /// Zipf skew for victim choice ([`Zipfian::DEFAULT_THETA`] = YCSB).
    pub theta: f64,
    pub seed: u64,
}

impl AgingSpec {
    /// A churn mix scaled by `scale` (1.0 ≈ 2k files, 20k ops — enough to
    /// fragment a small region; GB-scale runs pass 10–100).
    pub fn churn(scale: f64) -> AgingSpec {
        AgingSpec {
            files: ((2000.0 * scale) as usize).max(16),
            dirs: ((50.0 * scale) as usize).clamp(2, 512),
            ops: ((20_000.0 * scale) as u64).max(200),
            batch: 500,
            append_max: 16 * 1024,
            theta: Zipfian::DEFAULT_THETA,
            seed: 0xa9e_d00d,
        }
    }
}

/// What one churn run did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AgingReport {
    pub creates: u64,
    pub appends: u64,
    pub truncates: u64,
    pub deletes: u64,
    /// Ops that degenerated to no-ops (delete of a dead slot, …).
    pub skipped: u64,
    pub bytes_written: u64,
    /// Slots live when the run finished.
    pub live_files: u64,
}

fn slot_path(spec: &AgingSpec, idx: usize) -> String {
    format!("/age/d{}/f{idx}", idx % spec.dirs)
}

/// Deterministic fill byte for slot `idx` (verifiable after churn).
pub fn fill_byte(idx: usize) -> u8 {
    (idx as u8) ^ 0xc4
}

/// Creates `/age` and its fan-out directories (untimed setup). Idempotent.
pub fn setup_dirs(fs: &dyn FileSystem, ctx: &ProcCtx, spec: &AgingSpec) -> FsResult<()> {
    for d in std::iter::once("/age".to_owned())
        .chain((0..spec.dirs).map(|d| format!("/age/d{d}")))
    {
        match fs.mkdir(ctx, &d, FileMode::dir(0o755)) {
            Ok(()) | Err(simurgh_fsapi::FsError::Exists) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Runs the churn. `between` fires every [`AgingSpec::batch`] ops with the
/// operation count so far and the running report — the driver's slot for
/// water-mark compaction and stats sampling.
pub fn run_churn(
    fs: &dyn FileSystem,
    ctx: &ProcCtx,
    spec: &AgingSpec,
    mut between: impl FnMut(u64, &AgingReport),
) -> FsResult<AgingReport> {
    setup_dirs(fs, ctx, spec)?;
    let zipf = Zipfian::new(spec.files as u64, spec.theta);
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut report = AgingReport::default();
    // Local size mirror: `None` = slot deleted. Churn is single-threaded,
    // so this never drifts from the file system.
    let mut sizes: Vec<Option<u64>> = vec![None; spec.files];
    // `O_CREAT | O_WRONLY` *without* `O_TRUNC`: an append must extend the
    // file, not clobber it ([`OpenFlags::CREATE`] carries `O_TRUNC`).
    const APPEND_OPEN: OpenFlags = OpenFlags {
        read: false,
        write: true,
        create: true,
        excl: false,
        truncate: false,
        append: false,
    };

    for done in 1..=spec.ops {
        let idx = zipf.next_scrambled(&mut rng) as usize;
        let path = slot_path(spec, idx);
        let roll: u32 = rng.random_range(0..100);
        match roll {
            // Append: the fragmenter. Zipf-hot slots interleave their
            // tails, so their extents end up shuffled together.
            0..=44 => {
                let len = 1 + rng.random_range(0..spec.append_max as u64);
                let off = sizes[idx].unwrap_or(0);
                let fd = fs.open(ctx, &path, APPEND_OPEN, FileMode::file(0o644))?;
                let chunk = vec![fill_byte(idx); len as usize];
                fs.pwrite(ctx, fd, &chunk, off)?;
                fs.close(ctx, fd)?;
                if sizes[idx].is_none() {
                    report.creates += 1;
                }
                sizes[idx] = Some(off + len);
                report.appends += 1;
                report.bytes_written += len;
            }
            // Create / reset: small fresh file in a reused slot.
            45..=64 => {
                let len = 1 + rng.random_range(0..4096u64);
                // CREATE carries O_TRUNC — exactly right for a reset.
                let fd = fs.open(ctx, &path, OpenFlags::CREATE, FileMode::file(0o644))?;
                fs.pwrite(ctx, fd, &vec![fill_byte(idx); len as usize], 0)?;
                fs.close(ctx, fd)?;
                if sizes[idx].is_none() {
                    report.creates += 1;
                }
                sizes[idx] = Some(len);
                report.bytes_written += len;
            }
            // Delete: punches the holes appends later land in.
            65..=84 => {
                if sizes[idx].take().is_some() {
                    fs.unlink(ctx, &path)?;
                    report.deletes += 1;
                } else {
                    report.skipped += 1;
                }
            }
            // Truncate: shears tails, stranding half-used runs.
            _ => match sizes[idx] {
                Some(sz) if sz > 1 => {
                    let fd = fs.open(ctx, &path, OpenFlags::WRONLY, FileMode::file(0o644))?;
                    fs.ftruncate(ctx, fd, sz / 2)?;
                    fs.close(ctx, fd)?;
                    sizes[idx] = Some(sz / 2);
                    report.truncates += 1;
                }
                _ => report.skipped += 1,
            },
        }
        if spec.batch > 0 && done % spec.batch == 0 {
            between(done, &report);
        }
    }
    report.live_files = sizes.iter().filter(|s| s.is_some()).count() as u64;
    Ok(report)
}

/// Spot-checks the churned population against the local mirror: every live
/// slot must exist with the recorded size and the deterministic fill byte
/// in its first page. Returns the number of live files verified.
pub fn verify_sample(
    fs: &dyn FileSystem,
    ctx: &ProcCtx,
    spec: &AgingSpec,
    sample_every: usize,
) -> FsResult<u64> {
    let mut checked = 0;
    for idx in (0..spec.files).step_by(sample_every.max(1)) {
        let path = slot_path(spec, idx);
        let Ok(st) = fs.stat(ctx, &path) else { continue };
        let data = fs.read_to_vec(ctx, &path)?;
        assert_eq!(data.len() as u64, st.size, "{path}: stat/read size agree");
        if let Some(&b) = data.first() {
            assert_eq!(b, fill_byte(idx), "{path}: fill byte intact");
        }
        checked += 1;
    }
    Ok(checked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simurgh_core::{SimurghConfig, SimurghFs};
    use simurgh_pmem::PmemRegion;
    use std::sync::Arc;

    const CTX: ProcCtx = ProcCtx::root(1);

    fn small_spec() -> AgingSpec {
        AgingSpec {
            files: 64,
            dirs: 4,
            ops: 1500,
            batch: 250,
            append_max: 8 * 1024,
            theta: Zipfian::DEFAULT_THETA,
            seed: 7,
        }
    }

    fn mounted() -> SimurghFs {
        SimurghFs::format(Arc::new(PmemRegion::new(64 << 20)), SimurghConfig::default())
            .unwrap()
    }

    #[test]
    fn churn_runs_and_is_deterministic() {
        let fs = mounted();
        let mut batches = 0;
        let r1 = run_churn(&fs, &CTX, &small_spec(), |_, _| batches += 1).unwrap();
        assert_eq!(batches, 1500 / 250);
        assert!(r1.appends > 0 && r1.deletes > 0 && r1.truncates > 0);
        assert!(r1.live_files > 0);
        assert!(verify_sample(&fs, &CTX, &small_spec(), 1).unwrap() >= r1.live_files / 2);

        // Same seed on a fresh region: identical op trace.
        let r2 = run_churn(&mounted(), &CTX, &small_spec(), |_, _| {}).unwrap();
        assert_eq!(r1, r2, "churn is deterministic per seed");
    }

    #[test]
    fn churn_fragments_and_compaction_recovers() {
        let fs = mounted();
        run_churn(&fs, &CTX, &small_spec(), |_, _| {
            fs.maybe_compact();
        })
        .unwrap();
        // The hot slots saw interleaved appends: some survivor must be
        // multi-extent, and an explicit full pass must find work or the
        // water-mark passes already merged everything.
        let (census_files, census_extents) = fs.extent_census();
        assert!(census_files > 0);
        let (moved, blocks) = fs.compact(usize::MAX);
        let (_, extents_after) = fs.extent_census();
        assert!(
            moved > 0 || census_extents == census_files,
            "either the pass relocated something or the image was already compact"
        );
        if moved > 0 {
            assert!(blocks > 0);
            assert!(extents_after < census_extents, "merging shrank the extent count");
        }
        // Bytes survive relocation.
        assert!(verify_sample(&fs, &CTX, &small_spec(), 3).unwrap() > 0);
    }
}
