//! Filebench personalities (Fig. 8, Table 2).
//!
//! Four synthetic macro-workloads re-implemented from the Filebench
//! personality definitions the paper uses with default settings:
//! varmail (mail server: create/delete/append/fsync/read), webserver
//! (open/read whole files + log appends), webproxy (create/delete + repeat
//! reads) and fileserver (create/write/append/read/delete/stat).
//! Throughput is reported in Filebench's unit: completed flow-operations
//! per second.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use simurgh_fsapi::{FileMode, FileSystem, FsError, OpenFlags, ProcCtx};

use crate::runner::{BenchResult, Runner};

/// One personality's parameters (paper Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilebenchConfig {
    pub name: &'static str,
    /// Number of files in the pre-created file set.
    pub nfiles: usize,
    /// Mean directory width; widths ≥ nfiles put everything in one dir.
    pub dir_width: usize,
    /// Mean file size in bytes.
    pub file_size: usize,
    /// Worker processes.
    pub threads: usize,
    /// I/O unit for reads/appends.
    pub io_size: usize,
}

/// Table 2 presets. `scale` shrinks file counts/sizes for quick runs
/// (1.0 = the paper's settings).
pub fn varmail(scale: f64) -> FilebenchConfig {
    FilebenchConfig {
        name: "varmail",
        nfiles: ((1000.0 * scale) as usize).max(16),
        dir_width: 1_000_000,
        file_size: ((128.0 * 1024.0 * scale) as usize).max(1024),
        threads: 16,
        io_size: 16 * 1024,
    }
}

pub fn webserver(scale: f64) -> FilebenchConfig {
    FilebenchConfig {
        name: "webserver",
        nfiles: ((1000.0 * scale) as usize).max(16),
        dir_width: 20,
        file_size: ((128.0 * 1024.0 * scale) as usize).max(1024),
        threads: 100,
        io_size: 16 * 1024,
    }
}

pub fn webproxy(scale: f64) -> FilebenchConfig {
    FilebenchConfig {
        name: "webproxy",
        nfiles: ((10_000.0 * scale) as usize).max(32),
        dir_width: 1_000_000,
        file_size: ((16.0 * 1024.0 * scale) as usize).max(512),
        threads: 100,
        io_size: 16 * 1024,
    }
}

pub fn fileserver(scale: f64) -> FilebenchConfig {
    FilebenchConfig {
        name: "fileserver",
        nfiles: ((10_000.0 * scale) as usize).max(32),
        dir_width: 20,
        file_size: ((128.0 * 1024.0 * scale) as usize).max(1024),
        threads: 50,
        io_size: 16 * 1024,
    }
}

/// The pre-created file population.
pub struct FileSet {
    root: String,
    cfg: FilebenchConfig,
    ndirs: usize,
}

impl FileSet {
    /// Creates the directory tree and initial files (untimed setup).
    pub fn create(fs: &dyn FileSystem, root: &str, cfg: FilebenchConfig) -> FileSet {
        let ctx = ProcCtx::root(0);
        let ndirs = cfg.nfiles.div_ceil(cfg.dir_width).max(1);
        fs.mkdir(&ctx, root, FileMode::dir(0o777)).expect("fileset root");
        for d in 0..ndirs {
            fs.mkdir(&ctx, &format!("{root}/d{d}"), FileMode::dir(0o777)).expect("fileset dir");
        }
        let set = FileSet { root: root.to_owned(), cfg, ndirs };
        let payload = vec![0x66u8; cfg.file_size];
        for i in 0..cfg.nfiles {
            fs.write_file(&ctx, &set.path(i), &payload).expect("fileset file");
        }
        set
    }

    /// Path of logical file `i`.
    pub fn path(&self, i: usize) -> String {
        format!("{}/d{}/f{}", self.root, i % self.ndirs, i)
    }

    fn pick(&self, rng: &mut impl RngExt) -> usize {
        rng.random_range(0..self.cfg.nfiles)
    }
}

fn read_whole(fs: &dyn FileSystem, ctx: &ProcCtx, path: &str, io: usize) -> Result<u64, FsError> {
    let fd = fs.open(ctx, path, OpenFlags::RDONLY, FileMode::default())?;
    let mut buf = vec![0u8; io];
    let mut off = 0u64;
    let mut ops = 1;
    loop {
        let n = fs.pread(ctx, fd, &mut buf, off)?;
        if n == 0 {
            break;
        }
        off += n as u64;
        ops += 1;
    }
    fs.close(ctx, fd)?;
    Ok(ops)
}

/// Runs one personality for `iters` iterations per thread; returns
/// flowops/s. Concurrent create/delete races on shared names are part of
/// the workload; affected flowops simply don't count.
pub fn run(fs: &dyn FileSystem, cfg: FilebenchConfig, iters: usize) -> BenchResult {
    let set = FileSet::create(fs, &format!("/fb-{}", cfg.name), cfg);
    let io = vec![0x77u8; cfg.io_size];
    Runner::new(cfg.threads).run(|ctx, tid| {
        let mut rng = StdRng::seed_from_u64(tid as u64 * 31 + 5);
        let mut ops = 0u64;
        let mut bytes = 0u64;
        for it in 0..iters {
            match cfg.name {
                "varmail" => {
                    // delete; create+append+fsync; open+append+fsync; read.
                    if fs.unlink(ctx, &set.path(set.pick(&mut rng))).is_ok() {
                        ops += 1;
                    }
                    let p = format!("{}/d0/t{tid}-m{it}", set.root);
                    if let Ok(fd) = fs.open(ctx, &p, OpenFlags::APPEND, FileMode::default()) {
                        let _ = fs.write(ctx, fd, &io);
                        let _ = fs.fsync(ctx, fd);
                        let _ = fs.close(ctx, fd);
                        ops += 3;
                        bytes += cfg.io_size as u64;
                    }
                    let p = set.path(set.pick(&mut rng));
                    if let Ok(fd) = fs.open(ctx, &p, OpenFlags { read: true, write: true, append: true, ..Default::default() }, FileMode::default()) {
                        let mut buf = vec![0u8; cfg.io_size];
                        let _ = fs.pread(ctx, fd, &mut buf, 0);
                        let _ = fs.write(ctx, fd, &io);
                        let _ = fs.fsync(ctx, fd);
                        let _ = fs.close(ctx, fd);
                        ops += 4;
                        bytes += 2 * cfg.io_size as u64;
                    }
                    if let Ok(n) = read_whole(fs, ctx, &set.path(set.pick(&mut rng)), cfg.io_size) {
                        ops += n;
                        bytes += cfg.file_size as u64;
                    }
                }
                "webserver" => {
                    // 10 whole-file reads + 1 log append.
                    for _ in 0..10 {
                        if let Ok(n) = read_whole(fs, ctx, &set.path(set.pick(&mut rng)), cfg.io_size)
                        {
                            ops += n;
                            bytes += cfg.file_size as u64;
                        }
                    }
                    let log = format!("{}/d0/log{tid}", set.root);
                    if let Ok(fd) = fs.open(ctx, &log, OpenFlags::APPEND, FileMode::default()) {
                        let _ = fs.write(ctx, fd, &io);
                        let _ = fs.close(ctx, fd);
                        ops += 1;
                        bytes += cfg.io_size as u64;
                    }
                }
                "webproxy" => {
                    // delete; create+append; 5 whole-file reads.
                    if fs.unlink(ctx, &set.path(set.pick(&mut rng))).is_ok() {
                        ops += 1;
                    }
                    let p = format!("{}/d0/t{tid}-p{it}", set.root);
                    if let Ok(fd) = fs.open(ctx, &p, OpenFlags::APPEND, FileMode::default()) {
                        let _ = fs.write(ctx, fd, &io);
                        let _ = fs.close(ctx, fd);
                        ops += 2;
                        bytes += cfg.io_size as u64;
                    }
                    for _ in 0..5 {
                        if let Ok(n) = read_whole(fs, ctx, &set.path(set.pick(&mut rng)), cfg.io_size)
                        {
                            ops += n;
                            bytes += cfg.file_size as u64;
                        }
                    }
                }
                "fileserver" => {
                    // create+write whole; open+append; read whole; delete; stat.
                    let p = format!("{}/d{}/t{tid}-s{it}", set.root, it % set.ndirs);
                    if let Ok(fd) = fs.open(ctx, &p, OpenFlags::CREATE, FileMode::default()) {
                        let mut off = 0u64;
                        while (off as usize) < cfg.file_size {
                            let n = cfg.io_size.min(cfg.file_size - off as usize);
                            let _ = fs.pwrite(ctx, fd, &io[..n], off);
                            off += n as u64;
                        }
                        let _ = fs.close(ctx, fd);
                        ops += 2;
                        bytes += cfg.file_size as u64;
                    }
                    let p = set.path(set.pick(&mut rng));
                    if let Ok(fd) = fs.open(ctx, &p, OpenFlags::APPEND, FileMode::default()) {
                        let _ = fs.write(ctx, fd, &io);
                        let _ = fs.close(ctx, fd);
                        ops += 1;
                        bytes += cfg.io_size as u64;
                    }
                    if let Ok(n) = read_whole(fs, ctx, &set.path(set.pick(&mut rng)), cfg.io_size) {
                        ops += n;
                        bytes += cfg.file_size as u64;
                    }
                    if fs.unlink(ctx, &set.path(set.pick(&mut rng))).is_ok() {
                        ops += 1;
                    }
                    if fs.stat(ctx, &set.path(set.pick(&mut rng))).is_ok() {
                        ops += 1;
                    }
                }
                other => panic!("unknown personality {other}"),
            }
        }
        (ops, bytes)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simurgh_core::{SimurghConfig, SimurghFs};
    use simurgh_pmem::PmemRegion;
    use std::sync::Arc;

    fn fresh() -> SimurghFs {
        SimurghFs::format(Arc::new(PmemRegion::new(128 << 20)), SimurghConfig::default()).unwrap()
    }

    #[test]
    fn presets_match_table2() {
        assert_eq!(varmail(1.0).nfiles, 1000);
        assert_eq!(varmail(1.0).threads, 16);
        assert_eq!(webserver(1.0).dir_width, 20);
        assert_eq!(webserver(1.0).threads, 100);
        assert_eq!(webproxy(1.0).nfiles, 10_000);
        assert_eq!(webproxy(1.0).file_size, 16 * 1024);
        assert_eq!(fileserver(1.0).threads, 50);
    }

    #[test]
    fn fileset_population() {
        let fs = fresh();
        let mut cfg = webserver(0.05);
        cfg.threads = 2;
        let set = FileSet::create(&fs, "/pop", cfg);
        let ctx = ProcCtx::root(0);
        // All files exist at their computed paths.
        for i in 0..cfg.nfiles {
            assert_eq!(fs.stat(&ctx, &set.path(i)).unwrap().size, cfg.file_size as u64);
        }
    }

    #[test]
    fn all_personalities_run_on_simurgh() {
        for make in [varmail, webserver, webproxy, fileserver] {
            let fs = fresh();
            let mut cfg = make(0.02);
            cfg.threads = 2;
            let r = run(&fs, cfg, 3);
            assert!(r.ops > 0, "{} produced no ops", cfg.name);
        }
    }
}
