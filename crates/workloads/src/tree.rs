//! Synthetic Linux-source-like file trees.
//!
//! The paper's tar, git and recovery experiments operate on the Linux
//! kernel source (672,940 files in 88,780 directories for the 10-copy
//! recovery test, §5.5). We generate a deterministic synthetic tree with
//! the same structural ratios: ~7.5 files per directory, nesting depth up
//! to ~12, and small skewed file sizes (most source files are a few KB).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use simurgh_fsapi::{FileMode, FileSystem, FsResult, ProcCtx};

/// Shape of a synthetic tree.
#[derive(Debug, Clone, Copy)]
pub struct TreeSpec {
    pub dirs: usize,
    pub files: usize,
    /// Cap on file size (sizes are drawn skewed towards small).
    pub max_file_size: usize,
    pub seed: u64,
}

impl TreeSpec {
    /// A Linux-source-like tree scaled by `scale` (1.0 ≈ one kernel tree:
    /// 67,294 files / 8,878 dirs per copy in the paper's 10× experiment).
    pub fn linux_like(scale: f64) -> TreeSpec {
        TreeSpec {
            dirs: ((8878.0 * scale) as usize).max(3),
            files: ((67294.0 * scale) as usize).max(10),
            max_file_size: 64 * 1024,
            seed: 0x5_1ee7,
        }
    }
}

/// The generated population: every directory and file path plus sizes.
#[derive(Debug, Clone)]
pub struct TreeManifest {
    pub root: String,
    pub dirs: Vec<String>,
    pub files: Vec<(String, usize)>,
}

impl TreeManifest {
    pub fn total_bytes(&self) -> u64 {
        self.files.iter().map(|(_, s)| *s as u64).sum()
    }
}

/// Deterministic pseudo-content for file `idx` of length `len`.
pub fn file_content(idx: usize, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    let mut x = (idx as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    while out.len() < len {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        out.extend_from_slice(&x.to_le_bytes());
    }
    out.truncate(len);
    out
}

/// Skewed source-file size: mostly small, occasionally tens of KB.
fn draw_size(rng: &mut impl RngExt, max: usize) -> usize {
    let exp = rng.random_range(6..=14u32); // 64 B .. 16 KB typical
    let base = 1usize << exp;
    let jitter: usize = rng.random_range(0..base);
    (base + jitter).min(max).max(16)
}

/// Generates the tree under `root` on `fs`. Returns the manifest.
pub fn generate(fs: &dyn FileSystem, root: &str, spec: TreeSpec) -> FsResult<TreeManifest> {
    let ctx = ProcCtx::root(0);
    let mut rng = StdRng::seed_from_u64(spec.seed);
    fs.mkdir(&ctx, root, FileMode::dir(0o755))?;
    let mut dirs: Vec<String> = vec![root.to_owned()];
    for d in 1..spec.dirs {
        // Attach to a random existing directory; bias towards shallow
        // parents to keep depth realistic.
        let parent = &dirs[rng.random_range(0..dirs.len().min(d))];
        let path = format!("{parent}/dir{d}");
        if path.matches('/').count() > 12 {
            continue;
        }
        fs.mkdir(&ctx, &path, FileMode::dir(0o755))?;
        dirs.push(path);
    }
    let mut files = Vec::with_capacity(spec.files);
    for f in 0..spec.files {
        let dir = &dirs[rng.random_range(0..dirs.len())];
        let size = draw_size(&mut rng, spec.max_file_size);
        let path = format!("{dir}/file{f}.c");
        fs.write_file(&ctx, &path, &file_content(f, size))?;
        files.push((path, size));
    }
    Ok(TreeManifest { root: root.to_owned(), dirs, files })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simurgh_core::{SimurghConfig, SimurghFs};
    use simurgh_pmem::PmemRegion;
    use std::sync::Arc;

    #[test]
    fn generates_requested_population() {
        let fs = SimurghFs::format(
            Arc::new(PmemRegion::new(64 << 20)),
            SimurghConfig::default(),
        )
        .unwrap();
        let spec = TreeSpec { dirs: 20, files: 100, max_file_size: 8192, seed: 1 };
        let m = generate(&fs, "/src", spec).unwrap();
        assert_eq!(m.files.len(), 100);
        assert!(m.dirs.len() <= 20 && m.dirs.len() >= 3);
        assert!(m.total_bytes() > 0);
        let ctx = ProcCtx::root(0);
        for (p, s) in m.files.iter().take(10) {
            assert_eq!(fs.stat(&ctx, p).unwrap().size, *s as u64);
        }
    }

    #[test]
    fn content_is_deterministic() {
        assert_eq!(file_content(5, 100), file_content(5, 100));
        assert_ne!(file_content(5, 100), file_content(6, 100));
        assert_eq!(file_content(9, 33).len(), 33);
    }

    #[test]
    fn linux_like_scales() {
        let s = TreeSpec::linux_like(0.01);
        assert_eq!(s.dirs, 88);
        assert_eq!(s.files, 672);
        let full = TreeSpec::linux_like(1.0);
        assert!(full.files > 60_000);
    }
}
