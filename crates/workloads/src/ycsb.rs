//! YCSB core workloads A–F over [`MiniKv`] (Fig. 9 / Fig. 10).
//!
//! Generators follow the YCSB core-workload definitions: zipfian request
//! keys (θ = 0.99, scrambled), 1-KB values by default, and the standard
//! operation mixes — A 50/50 read/update, B 95/5, C read-only, D
//! read-latest with inserts, E short scans with inserts, F
//! read-modify-write. The *Load* phase inserts the initial records (the
//! paper's "LoadA" column).

use std::sync::atomic::{AtomicU64, Ordering};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use simurgh_fsapi::FsResult;

use crate::minikv::MiniKv;
use crate::runner::{BenchResult, Runner};
use crate::zipf::Zipfian;

/// The six core workloads plus the load phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    LoadA,
    A,
    B,
    C,
    D,
    E,
    F,
}

impl Workload {
    pub const RUNS: [Workload; 6] = [Workload::A, Workload::B, Workload::C, Workload::D, Workload::E, Workload::F];

    pub fn label(self) -> &'static str {
        match self {
            Workload::LoadA => "LoadA",
            Workload::A => "RunA",
            Workload::B => "RunB",
            Workload::C => "RunC",
            Workload::D => "RunD",
            Workload::E => "RunE",
            Workload::F => "RunF",
        }
    }
}

/// Parameters shared by all runs.
#[derive(Debug, Clone, Copy)]
pub struct YcsbConfig {
    pub records: usize,
    pub ops: usize,
    pub threads: usize,
    pub value_size: usize,
}

impl Default for YcsbConfig {
    fn default() -> Self {
        YcsbConfig { records: 1000, ops: 1000, threads: 1, value_size: 1024 }
    }
}

fn key(i: u64) -> Vec<u8> {
    format!("user{i:012}").into_bytes()
}

fn value(rng: &mut impl RngExt, len: usize) -> Vec<u8> {
    let mut v = vec![0u8; len];
    rng.fill(&mut v[..]);
    v
}

/// The load phase: insert `records` fresh rows (YCSB LoadA).
pub fn load(kv: &MiniKv<'_>, cfg: YcsbConfig) -> FsResult<BenchResult> {
    let start = std::time::Instant::now();
    let mut rng = StdRng::seed_from_u64(0x10ad);
    for i in 0..cfg.records as u64 {
        kv.put(&key(i), &value(&mut rng, cfg.value_size))?;
    }
    Ok(BenchResult {
        ops: cfg.records as u64,
        bytes: (cfg.records * cfg.value_size) as u64,
        seconds: start.elapsed().as_secs_f64(),
        threads: 1,
    })
}

/// Runs one workload against a loaded store.
pub fn run(kv: &MiniKv<'_>, wl: Workload, cfg: YcsbConfig) -> BenchResult {
    if wl == Workload::LoadA {
        return load(kv, cfg).expect("load phase");
    }
    let zipf = Zipfian::new(cfg.records as u64, Zipfian::DEFAULT_THETA);
    let insert_counter = AtomicU64::new(cfg.records as u64);
    let per_thread = cfg.ops / cfg.threads.max(1);
    Runner::new(cfg.threads).run(|_ctx, tid| {
        let mut rng = StdRng::seed_from_u64(tid as u64 * 977 + 13);
        let mut ops = 0u64;
        let mut bytes = 0u64;
        for _ in 0..per_thread {
            let r: f64 = rng.random();
            match wl {
                Workload::A | Workload::B | Workload::C => {
                    let read_ratio = match wl {
                        Workload::A => 0.5,
                        Workload::B => 0.95,
                        _ => 1.0,
                    };
                    let k = key(zipf.next_scrambled(&mut rng));
                    if r < read_ratio {
                        if let Ok(Some(v)) = kv.get(&k) {
                            bytes += v.len() as u64;
                        }
                    } else {
                        let v = value(&mut rng, cfg.value_size);
                        kv.put(&k, &v).expect("update");
                        bytes += v.len() as u64;
                    }
                }
                Workload::D => {
                    // 95% read-latest / 5% insert.
                    if r < 0.95 {
                        let newest = insert_counter.load(Ordering::Relaxed);
                        let back = zipf.next(&mut rng).min(newest - 1);
                        let k = key(newest - 1 - back);
                        if let Ok(Some(v)) = kv.get(&k) {
                            bytes += v.len() as u64;
                        }
                    } else {
                        let i = insert_counter.fetch_add(1, Ordering::Relaxed);
                        let v = value(&mut rng, cfg.value_size);
                        kv.put(&key(i), &v).expect("insert");
                        bytes += v.len() as u64;
                    }
                }
                Workload::E => {
                    // 95% short scans / 5% insert.
                    if r < 0.95 {
                        let start = key(zipf.next_scrambled(&mut rng));
                        let len = rng.random_range(1..=100);
                        if let Ok(rows) = kv.scan(&start, len) {
                            bytes += rows.iter().map(|(_, v)| v.len() as u64).sum::<u64>();
                        }
                    } else {
                        let i = insert_counter.fetch_add(1, Ordering::Relaxed);
                        let v = value(&mut rng, cfg.value_size);
                        kv.put(&key(i), &v).expect("insert");
                        bytes += v.len() as u64;
                    }
                }
                Workload::F => {
                    // Read-modify-write.
                    let k = key(zipf.next_scrambled(&mut rng));
                    if let Ok(Some(mut v)) = kv.get(&k) {
                        bytes += v.len() as u64;
                        if !v.is_empty() {
                            v[0] = v[0].wrapping_add(1);
                        }
                        kv.put(&k, &v).expect("rmw put");
                        bytes += v.len() as u64;
                    }
                }
                Workload::LoadA => unreachable!(),
            }
            ops += 1;
        }
        (ops, bytes)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minikv::KvOptions;
    use simurgh_core::{SimurghConfig, SimurghFs};
    use simurgh_pmem::PmemRegion;
    use std::sync::Arc;

    fn db() -> SimurghFs {
        SimurghFs::format(
            Arc::new(PmemRegion::new(256 << 20)),
            SimurghConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn load_then_all_workloads() {
        let fs = db();
        let kv = MiniKv::open(&fs, "/ycsb", KvOptions::default()).unwrap();
        let cfg = YcsbConfig { records: 200, ops: 100, threads: 1, value_size: 128 };
        let loaded = load(&kv, cfg).unwrap();
        assert_eq!(loaded.ops, 200);
        for wl in Workload::RUNS {
            let r = run(&kv, wl, cfg);
            assert_eq!(r.ops, 100, "{}", wl.label());
            assert!(r.seconds > 0.0);
        }
    }

    #[test]
    fn read_only_workload_moves_read_bytes() {
        let fs = db();
        let kv = MiniKv::open(&fs, "/ycsb", KvOptions::default()).unwrap();
        let cfg = YcsbConfig { records: 100, ops: 200, threads: 1, value_size: 64 };
        load(&kv, cfg).unwrap();
        let r = run(&kv, Workload::C, cfg);
        assert_eq!(r.ops, 200);
        assert_eq!(r.bytes, 200 * 64, "every C op reads one value");
    }

    #[test]
    fn multithreaded_run() {
        let fs = db();
        let kv = MiniKv::open(&fs, "/ycsb", KvOptions::default()).unwrap();
        let cfg = YcsbConfig { records: 100, ops: 120, threads: 3, value_size: 64 };
        load(&kv, cfg).unwrap();
        let r = run(&kv, Workload::A, cfg);
        assert_eq!(r.ops, 120);
        assert_eq!(r.threads, 3);
    }

    #[test]
    fn labels() {
        assert_eq!(Workload::LoadA.label(), "LoadA");
        assert_eq!(Workload::F.label(), "RunF");
        assert_eq!(Workload::RUNS.len(), 6);
    }
}
