//! FxMark-derived microbenchmarks (Fig. 6 and Fig. 7 of the paper).
//!
//! Ten kernels, each stressing one file-system path at 1..N processes. The
//! four-letter codes follow FxMark: MWCL/MWCM (create private/shared),
//! MWUL (unlink), MWRM (rename shared), MRPL/MRPM (path resolution
//! private/shared), DWAL (append), DWTL (fallocate/truncate), DRBL/DRBM
//! (block reads private/shared), DWOL/DWOM (block overwrites).
//!
//! Following §5.2, the read benchmarks come in two flavours: the *original*
//! FxMark pattern that re-reads the same blocks (measuring the CPU cache)
//! and the paper's *adapted* pattern using pseudo-random block addresses
//! (measuring the NVMM) — the distinction behind Fig. 6.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use simurgh_fsapi::{FileMode, FileSystem, OpenFlags, ProcCtx};

use crate::runner::{private_dir, setup_private_dirs, BenchResult, Runner};

/// 4-KB I/O unit used by all data benchmarks (FxMark's block size).
pub const IO_SIZE: usize = 4096;

fn root_ctx() -> ProcCtx {
    ProcCtx::root(0)
}

/// Setup helper: makes sure `path` exists as an empty-ish file. Idempotent,
/// like `setup_private_dirs`, so kernels can share one mounted file system
/// (e.g. unlink after create reuses the same population).
fn ensure_file(fs: &dyn FileSystem, ctx: &ProcCtx, path: &str) {
    match fs.create(ctx, path, FileMode::default()) {
        Ok(fd) => fs.close(ctx, fd).expect("close"),
        Err(simurgh_fsapi::FsError::Exists) => {}
        Err(e) => panic!("setup create {path}: {e}"),
    }
}

// ---------------------------------------------------------------------------
// Metadata benchmarks
// ---------------------------------------------------------------------------

/// MWCL — create empty files, one private directory per process (Fig. 7a).
pub fn create_private(fs: &dyn FileSystem, threads: usize, files: usize) -> BenchResult {
    setup_private_dirs(fs, threads);
    Runner::new(threads).run(|ctx, tid| {
        let dir = private_dir(tid);
        for i in 0..files {
            let fd = fs.create(ctx, &format!("{dir}/f{i}"), FileMode::default()).expect("create");
            fs.close(ctx, fd).expect("close");
        }
        (files as u64, 0)
    })
}

/// MWCM — create empty files in one shared directory (Fig. 7b).
pub fn create_shared(fs: &dyn FileSystem, threads: usize, files: usize) -> BenchResult {
    let ctx = root_ctx();
    fs.mkdir(&ctx, "/fx-shared", FileMode::dir(0o777)).expect("setup");
    Runner::new(threads).run(|ctx, tid| {
        for i in 0..files {
            let fd = fs
                .create(ctx, &format!("/fx-shared/t{tid}-f{i}"), FileMode::default())
                .expect("create");
            fs.close(ctx, fd).expect("close");
        }
        (files as u64, 0)
    })
}

/// MWUL — unlink empty files from private directories (Fig. 7c).
pub fn unlink_private(fs: &dyn FileSystem, threads: usize, files: usize) -> BenchResult {
    setup_private_dirs(fs, threads);
    let ctx = root_ctx();
    for tid in 0..threads {
        for i in 0..files {
            ensure_file(fs, &ctx, &format!("{}/f{i}", private_dir(tid)));
        }
    }
    Runner::new(threads).run(|ctx, tid| {
        let dir = private_dir(tid);
        for i in 0..files {
            fs.unlink(ctx, &format!("{dir}/f{i}")).expect("unlink");
        }
        (files as u64, 0)
    })
}

/// MWRM — rename empty files within one shared directory (Fig. 7d).
pub fn rename_shared(fs: &dyn FileSystem, threads: usize, files: usize) -> BenchResult {
    let ctx = root_ctx();
    match fs.mkdir(&ctx, "/fx-ren", FileMode::dir(0o777)) {
        Ok(()) | Err(simurgh_fsapi::FsError::Exists) => {}
        Err(e) => panic!("setup mkdir: {e}"),
    }
    for tid in 0..threads {
        for i in 0..files {
            ensure_file(fs, &ctx, &format!("/fx-ren/t{tid}-f{i}"));
        }
    }
    Runner::new(threads).run(|ctx, tid| {
        for i in 0..files {
            fs.rename(ctx, &format!("/fx-ren/t{tid}-f{i}"), &format!("/fx-ren/t{tid}-r{i}"))
                .expect("rename");
        }
        (files as u64, 0)
    })
}

/// Builds a nested path `base/d0/d1/../d{depth-1}` and a `leaf` file in it.
fn build_nested(fs: &dyn FileSystem, base: &str, depth: usize) -> String {
    let ctx = root_ctx();
    let mut p = base.to_owned();
    if !p.is_empty() {
        fs.mkdir(&ctx, &p, FileMode::dir(0o777)).expect("mkdir base");
    }
    for d in 0..depth {
        p = format!("{p}/d{d}");
        fs.mkdir(&ctx, &p, FileMode::dir(0o777)).expect("mkdir nest");
    }
    let leaf = format!("{p}/leaf");
    let fd = fs.create(&ctx, &leaf, FileMode::default()).expect("leaf");
    fs.close(&ctx, fd).expect("close");
    leaf
}

/// MRPL — resolve private nested paths of depth 5 by `open`+`close`
/// (Fig. 7e).
pub fn resolve_private(fs: &dyn FileSystem, threads: usize, depth: usize, ops: usize) -> BenchResult {
    let leaves: Vec<String> =
        (0..threads).map(|tid| build_nested(fs, &format!("/fx-res{tid}"), depth)).collect();
    Runner::new(threads).run(|ctx, tid| {
        let leaf = &leaves[tid];
        for _ in 0..ops {
            let fd = fs.open(ctx, leaf, OpenFlags::RDONLY, FileMode::default()).expect("open");
            fs.close(ctx, fd).expect("close");
        }
        (ops as u64, 0)
    })
}

/// MRPM — all processes resolve the same shared nested path (Fig. 7f).
pub fn resolve_shared(fs: &dyn FileSystem, threads: usize, depth: usize, ops: usize) -> BenchResult {
    let leaf = build_nested(fs, "/fx-resS", depth);
    Runner::new(threads).run(|ctx, _tid| {
        for _ in 0..ops {
            let fd = fs.open(ctx, &leaf, OpenFlags::RDONLY, FileMode::default()).expect("open");
            fs.close(ctx, fd).expect("close");
        }
        (ops as u64, 0)
    })
}

// ---------------------------------------------------------------------------
// Data benchmarks
// ---------------------------------------------------------------------------

/// DWAL — append 4-KB blocks to private files (Fig. 7g).
pub fn append_private(fs: &dyn FileSystem, threads: usize, appends: usize) -> BenchResult {
    setup_private_dirs(fs, threads);
    let block = vec![0x41u8; IO_SIZE];
    Runner::new(threads).run(|ctx, tid| {
        let path = format!("{}/app", private_dir(tid));
        let fd = fs.open(ctx, &path, OpenFlags::APPEND, FileMode::default()).expect("open");
        for _ in 0..appends {
            fs.write(ctx, fd, &block).expect("append");
        }
        fs.close(ctx, fd).expect("close");
        (appends as u64, (appends * IO_SIZE) as u64)
    })
}

/// DWTL — fallocate 4-MB chunks into private files + fsync (Fig. 7h).
pub fn fallocate_private(fs: &dyn FileSystem, threads: usize, chunks: usize) -> BenchResult {
    const CHUNK: u64 = 4 << 20;
    setup_private_dirs(fs, threads);
    Runner::new(threads).run(|ctx, tid| {
        let path = format!("{}/fal", private_dir(tid));
        let fd = fs.open(ctx, &path, OpenFlags::CREATE, FileMode::default()).expect("open");
        for i in 0..chunks {
            fs.fallocate(ctx, fd, i as u64 * CHUNK, CHUNK).expect("fallocate");
            fs.fsync(ctx, fd).expect("fsync");
        }
        fs.close(ctx, fd).expect("close");
        (chunks as u64, chunks as u64 * CHUNK)
    })
}

fn make_file(fs: &dyn FileSystem, path: &str, bytes: usize) {
    let ctx = root_ctx();
    let fd = fs.open(&ctx, path, OpenFlags::CREATE, FileMode::default()).expect("open");
    let chunk = vec![0x5au8; 64 * 1024];
    let mut off = 0u64;
    while (off as usize) < bytes {
        let n = chunk.len().min(bytes - off as usize);
        fs.pwrite(&ctx, fd, &chunk[..n], off).expect("fill");
        off += n as u64;
    }
    fs.close(&ctx, fd).expect("close");
}

/// Read pattern of the read benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadPattern {
    /// Original FxMark: every process re-reads the same few blocks, so the
    /// CPU cache serves most requests (the "original" series of Fig. 6).
    CachedRepeat,
    /// The paper's adaptation: pseudo-random block addresses defeat the CPU
    /// cache and expose NVMM bandwidth (the "adapted" series of Fig. 6).
    PseudoRandom,
}

/// DRBM — read 4-KB blocks from one shared file (Fig. 7i / Fig. 6).
pub fn read_shared(
    fs: &dyn FileSystem,
    threads: usize,
    file_bytes: usize,
    reads: usize,
    pattern: ReadPattern,
) -> BenchResult {
    make_file(fs, "/fx-bigR", file_bytes);
    let blocks = (file_bytes / IO_SIZE) as u64;
    Runner::new(threads).run(|ctx, tid| {
        let fd = fs.open(ctx, "/fx-bigR", OpenFlags::RDONLY, FileMode::default()).expect("open");
        let mut rng = StdRng::seed_from_u64(tid as u64 + 1);
        let mut buf = vec![0u8; IO_SIZE];
        for i in 0..reads {
            let block = match pattern {
                ReadPattern::CachedRepeat => (i % 4) as u64,
                ReadPattern::PseudoRandom => rng.random_range(0..blocks),
            };
            fs.pread(ctx, fd, &mut buf, block * IO_SIZE as u64).expect("pread");
        }
        fs.close(ctx, fd).expect("close");
        (reads as u64, (reads * IO_SIZE) as u64)
    })
}

/// DRBL — read 4-KB blocks from private files (Fig. 7j).
pub fn read_private(
    fs: &dyn FileSystem,
    threads: usize,
    file_bytes: usize,
    reads: usize,
    pattern: ReadPattern,
) -> BenchResult {
    setup_private_dirs(fs, threads);
    for tid in 0..threads {
        make_file(fs, &format!("{}/big", private_dir(tid)), file_bytes);
    }
    let blocks = (file_bytes / IO_SIZE) as u64;
    Runner::new(threads).run(|ctx, tid| {
        let path = format!("{}/big", private_dir(tid));
        let fd = fs.open(ctx, &path, OpenFlags::RDONLY, FileMode::default()).expect("open");
        let mut rng = StdRng::seed_from_u64(tid as u64 + 99);
        let mut buf = vec![0u8; IO_SIZE];
        for i in 0..reads {
            let block = match pattern {
                ReadPattern::CachedRepeat => (i % 4) as u64,
                ReadPattern::PseudoRandom => rng.random_range(0..blocks),
            };
            fs.pread(ctx, fd, &mut buf, block * IO_SIZE as u64).expect("pread");
        }
        fs.close(ctx, fd).expect("close");
        (reads as u64, (reads * IO_SIZE) as u64)
    })
}

/// DWOM — overwrite random 4-KB blocks of one shared file (Fig. 7k).
pub fn overwrite_shared(
    fs: &dyn FileSystem,
    threads: usize,
    file_bytes: usize,
    writes: usize,
) -> BenchResult {
    make_file(fs, "/fx-bigW", file_bytes);
    let blocks = (file_bytes / IO_SIZE) as u64;
    let block = vec![0x42u8; IO_SIZE];
    Runner::new(threads).run(|ctx, tid| {
        let fd = fs.open(ctx, "/fx-bigW", OpenFlags::RDWR, FileMode::default()).expect("open");
        let mut rng = StdRng::seed_from_u64(tid as u64 + 7);
        for _ in 0..writes {
            let b = rng.random_range(0..blocks);
            fs.pwrite(ctx, fd, &block, b * IO_SIZE as u64).expect("pwrite");
        }
        fs.close(ctx, fd).expect("close");
        (writes as u64, (writes * IO_SIZE) as u64)
    })
}

/// DWOL — write 4-KB blocks to growing private files (Fig. 7l).
pub fn write_private(fs: &dyn FileSystem, threads: usize, writes: usize) -> BenchResult {
    setup_private_dirs(fs, threads);
    let block = vec![0x43u8; IO_SIZE];
    Runner::new(threads).run(|ctx, tid| {
        let path = format!("{}/w", private_dir(tid));
        let fd = fs.open(ctx, &path, OpenFlags::CREATE, FileMode::default()).expect("open");
        for i in 0..writes {
            fs.pwrite(ctx, fd, &block, (i * IO_SIZE) as u64).expect("pwrite");
        }
        fs.close(ctx, fd).expect("close");
        (writes as u64, (writes * IO_SIZE) as u64)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simurgh_core::{SimurghConfig, SimurghFs};
    use simurgh_pmem::PmemRegion;
    use std::sync::Arc;

    fn fresh() -> SimurghFs {
        let region = Arc::new(PmemRegion::new(128 << 20));
        SimurghFs::format(region, SimurghConfig::default()).unwrap()
    }

    #[test]
    fn create_benchmarks_count_files() {
        let fs = fresh();
        let r = create_private(&fs, 2, 30);
        assert_eq!(r.ops, 60);
        let r = create_shared(&fs, 2, 30);
        assert_eq!(r.ops, 60);
        let ctx = ProcCtx::root(0);
        assert_eq!(fs.readdir(&ctx, "/fx-shared").unwrap().len(), 60);
    }

    #[test]
    fn unlink_empties_directories() {
        let fs = fresh();
        let r = unlink_private(&fs, 2, 25);
        assert_eq!(r.ops, 50);
        let ctx = ProcCtx::root(0);
        assert_eq!(fs.readdir(&ctx, "/fx-priv-0").unwrap().len(), 0);
        assert_eq!(fs.readdir(&ctx, "/fx-priv-1").unwrap().len(), 0);
    }

    #[test]
    fn rename_keeps_population() {
        let fs = fresh();
        let r = rename_shared(&fs, 2, 20);
        assert_eq!(r.ops, 40);
        let ctx = ProcCtx::root(0);
        let entries = fs.readdir(&ctx, "/fx-ren").unwrap();
        assert_eq!(entries.len(), 40);
        assert!(entries.iter().all(|e| e.name.contains("-r")), "all renamed");
    }

    #[test]
    fn resolve_benchmarks_run() {
        let fs = fresh();
        assert_eq!(resolve_private(&fs, 2, 5, 50).ops, 100);
        assert_eq!(resolve_shared(&fs, 2, 5, 50).ops, 100);
    }

    #[test]
    fn data_benchmarks_move_bytes() {
        let fs = fresh();
        let r = append_private(&fs, 2, 16);
        assert_eq!(r.bytes, 2 * 16 * 4096);
        let ctx = ProcCtx::root(0);
        assert_eq!(fs.stat(&ctx, "/fx-priv-0/app").unwrap().size, 16 * 4096);
        let r = read_shared(&fs, 2, 1 << 20, 64, ReadPattern::PseudoRandom);
        assert_eq!(r.ops, 128);
        let r = overwrite_shared(&fs, 2, 1 << 20, 32);
        assert_eq!(r.bytes, 2 * 32 * 4096);
        let r = write_private(&fs, 2, 32);
        assert_eq!(r.ops, 64);
    }

    #[test]
    fn fallocate_reserves_chunks() {
        let fs = fresh();
        let r = fallocate_private(&fs, 1, 4);
        assert_eq!(r.bytes, 4 * (4 << 20));
        let ctx = ProcCtx::root(0);
        assert_eq!(fs.stat(&ctx, "/fx-priv-0/fal").unwrap().size, 4 * (4 << 20));
    }

    #[test]
    fn cached_vs_random_patterns_touch_different_blocks() {
        let fs = fresh();
        let r1 = read_private(&fs, 1, 1 << 20, 32, ReadPattern::CachedRepeat);
        let r2 = read_private(&fs, 1, 1 << 20, 32, ReadPattern::PseudoRandom);
        assert_eq!(r1.ops, r2.ops);
    }
}
