//! The tar benchmark (Fig. 11): pack a source tree into one archive and
//! unpack it back.
//!
//! Pack stresses path resolution plus whole-file reads; unpack issues
//! several metadata syscalls per extracted file (create, write, chmod,
//! utimes) — the exact mix the paper uses to show Simurgh's 2× unpack win
//! from avoiding syscalls and the VFS. The archive format is a minimal
//! tar-like stream: `[name_len u32][mode u16][mtime u64][size u64][name]
//! [data]` per entry, with directories carried as zero-size entries.

use simurgh_fsapi::{FileMode, FileSystem, FsResult, OpenFlags, ProcCtx};

use crate::runner::BenchResult;
use crate::tree::TreeManifest;

const IO: usize = 64 * 1024;

fn put_entry(out: &mut Vec<u8>, name: &str, mode: u16, mtime: u64, data: &[u8]) {
    out.extend_from_slice(&(name.len() as u32).to_le_bytes());
    out.extend_from_slice(&mode.to_le_bytes());
    out.extend_from_slice(&mtime.to_le_bytes());
    out.extend_from_slice(&(data.len() as u64).to_le_bytes());
    out.extend_from_slice(name.as_bytes());
    out.extend_from_slice(data);
}

/// Packs every file of `manifest` into `archive`. Returns ops (= files
/// packed) and bytes archived.
pub fn pack(fs: &dyn FileSystem, manifest: &TreeManifest, archive: &str) -> FsResult<BenchResult> {
    let ctx = ProcCtx::root(0);
    let start = std::time::Instant::now();
    let out_fd = fs.open(&ctx, archive, OpenFlags::CREATE, FileMode::default())?;
    let mut off = 0u64;
    let mut ops = 0u64;
    let mut bytes = 0u64;
    let mut buf = Vec::with_capacity(IO * 2);
    for d in &manifest.dirs {
        buf.clear();
        put_entry(&mut buf, d, 0o755, 1, &[]);
        fs.pwrite(&ctx, out_fd, &buf, off)?;
        off += buf.len() as u64;
        ops += 1;
    }
    for (path, _) in &manifest.files {
        let st = fs.stat(&ctx, path)?;
        let data = fs.read_to_vec(&ctx, path)?;
        buf.clear();
        put_entry(&mut buf, path, st.mode.perm, st.mtime, &data);
        fs.pwrite(&ctx, out_fd, &buf, off)?;
        off += buf.len() as u64;
        bytes += data.len() as u64;
        ops += 1;
    }
    fs.fsync(&ctx, out_fd)?;
    fs.close(&ctx, out_fd)?;
    Ok(BenchResult { ops, bytes, seconds: start.elapsed().as_secs_f64(), threads: 1 })
}

/// Unpacks `archive` under `dest` (paths in the archive are re-rooted).
/// Each extracted file also gets its permissions and times set, like tar.
pub fn unpack(fs: &dyn FileSystem, archive: &str, dest: &str) -> FsResult<BenchResult> {
    let ctx = ProcCtx::root(0);
    let start = std::time::Instant::now();
    let data = fs.read_to_vec(&ctx, archive)?;
    match fs.mkdir(&ctx, dest, FileMode::dir(0o755)) {
        Ok(()) | Err(simurgh_fsapi::FsError::Exists) => {}
        Err(e) => return Err(e),
    }
    let mut off = 0usize;
    let mut ops = 0u64;
    let mut bytes = 0u64;
    while off + 22 <= data.len() {
        let name_len = u32::from_le_bytes(data[off..off + 4].try_into().unwrap()) as usize;
        let mode = u16::from_le_bytes(data[off + 4..off + 6].try_into().unwrap());
        let mtime = u64::from_le_bytes(data[off + 6..off + 14].try_into().unwrap());
        let size = u64::from_le_bytes(data[off + 14..off + 22].try_into().unwrap()) as usize;
        let name =
            std::str::from_utf8(&data[off + 22..off + 22 + name_len]).expect("utf8 entry name");
        let body = &data[off + 22 + name_len..off + 22 + name_len + size];
        let target = format!("{dest}{name}");
        if size == 0 && mode & 0o111 != 0 && body.is_empty() && name_len > 0 && is_dir_entry(mode) {
            match fs.mkdir(&ctx, &target, FileMode::dir(mode)) {
                Ok(()) | Err(simurgh_fsapi::FsError::Exists) => {}
                Err(e) => return Err(e),
            }
        } else {
            fs.write_file(&ctx, &target, body)?;
            fs.chmod(&ctx, &target, mode)?;
            fs.set_times(&ctx, &target, mtime, mtime)?;
            bytes += size as u64;
        }
        ops += 1;
        off += 22 + name_len + size;
    }
    Ok(BenchResult { ops, bytes, seconds: start.elapsed().as_secs_f64(), threads: 1 })
}

// Directories are archived with mode 0o755 and no body; files always carry
// at least read permission without the dir marker used here.
fn is_dir_entry(mode: u16) -> bool {
    mode == 0o755
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{self, TreeSpec};
    use simurgh_core::{SimurghConfig, SimurghFs};
    use simurgh_pmem::PmemRegion;
    use std::sync::Arc;

    #[test]
    fn pack_unpack_roundtrip() {
        let fs = SimurghFs::format(
            Arc::new(PmemRegion::new(128 << 20)),
            SimurghConfig::default(),
        )
        .unwrap();
        let spec = TreeSpec { dirs: 10, files: 60, max_file_size: 8192, seed: 3 };
        let m = tree::generate(&fs, "/src", spec).unwrap();
        let packed = pack(&fs, &m, "/src.tar").unwrap();
        assert_eq!(packed.ops as usize, m.dirs.len() + m.files.len());
        assert_eq!(packed.bytes, m.total_bytes());

        let unpacked = unpack(&fs, "/src.tar", "/out").unwrap();
        assert_eq!(unpacked.ops, packed.ops);
        assert_eq!(unpacked.bytes, packed.bytes);

        // Contents and metadata survive the roundtrip.
        let ctx = ProcCtx::root(0);
        for (p, size) in m.files.iter().take(15) {
            let orig = fs.read_to_vec(&ctx, p).unwrap();
            let copy = fs.read_to_vec(&ctx, &format!("/out{p}")).unwrap();
            assert_eq!(orig, copy);
            assert_eq!(copy.len(), *size);
            let st = fs.stat(&ctx, &format!("/out{p}")).unwrap();
            let orig_st = fs.stat(&ctx, p).unwrap();
            assert_eq!(st.mode.perm, orig_st.mode.perm);
            assert_eq!(st.mtime, orig_st.mtime);
        }
    }

    #[test]
    fn unpack_is_idempotent_over_existing_dirs() {
        let fs = SimurghFs::format(
            Arc::new(PmemRegion::new(64 << 20)),
            SimurghConfig::default(),
        )
        .unwrap();
        let spec = TreeSpec { dirs: 4, files: 10, max_file_size: 2048, seed: 9 };
        let m = tree::generate(&fs, "/s", spec).unwrap();
        pack(&fs, &m, "/a.tar").unwrap();
        unpack(&fs, "/a.tar", "/o").unwrap();
        // Second unpack overwrites in place without error.
        unpack(&fs, "/a.tar", "/o").unwrap();
    }
}
