//! Workload generators for the Simurgh evaluation (§5).
//!
//! Everything here drives the common [`simurgh_fsapi::FileSystem`] trait,
//! so the same workload runs unmodified against Simurgh and every baseline
//! model — the property the paper's comparisons depend on.
//!
//! * [`fxmark`] — the ten FxMark-derived microbenchmarks of Fig. 6/7,
//!   including the paper's "adapted" pseudo-random read variant;
//! * [`filebench`] — varmail / webserver / webproxy / fileserver
//!   personalities with the Table 2 parameter presets;
//! * [`minikv`] — a from-scratch LevelDB-style LSM store (WAL, memtable,
//!   SSTables, compaction) standing in for LevelDB under YCSB;
//! * [`ycsb`] — YCSB workload generators A–F with zipfian key choice;
//! * [`tree`] — synthetic Linux-source-like file trees;
//! * [`tar`] — pack/unpack of a tree into/from one archive file;
//! * [`git`] — a content-addressed object store modelling git add/commit/
//!   reset;
//! * [`gateway`] — weighted op mixes for the wire-protocol load
//!   generator in `simurgh-served`;
//! * [`aging`] — create/append/truncate/delete churn with zipfian file
//!   reuse, the fragmentation driver for the compaction experiments;
//! * [`runner`] — the multi-"process" measurement harness shared by all.

pub mod aging;
pub mod filebench;
pub mod fxmark;
pub mod gateway;
pub mod git;
pub mod minikv;
pub mod runner;
pub mod tar;
pub mod tree;
pub mod ycsb;
pub mod zipf;

pub use runner::{BenchResult, Runner};
