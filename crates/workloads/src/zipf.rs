//! Zipfian and scrambled-zipfian request generators (YCSB's defaults).
//!
//! Implements the Gray et al. rejection-free zipfian generator used by the
//! original YCSB client, with θ = 0.99, plus the scrambled variant that
//! spreads the hot keys over the whole key space.

use rand::RngExt;

/// Zipfian generator over `[0, n)` with exponent `theta`.
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipfian {
    /// YCSB's default skew.
    pub const DEFAULT_THETA: f64 = 0.99;

    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0);
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian { n, theta, alpha, zetan, eta, zeta2 }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct sum; n is at most a few million in our workloads.
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Next rank in `[0, n)`; rank 0 is the hottest item.
    pub fn next(&self, rng: &mut impl RngExt) -> u64 {
        let u: f64 = rng.random();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let v = ((self.eta * u - self.eta + 1.0).powf(self.alpha) * self.n as f64) as u64;
        v.min(self.n - 1)
    }

    /// Scrambled zipfian: hot ranks spread over the key space via FNV.
    pub fn next_scrambled(&self, rng: &mut impl RngExt) -> u64 {
        let rank = self.next(rng);
        fnv64(rank) % self.n
    }

    /// Item count.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Used internally; exposed for tests.
    pub fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

fn fnv64(mut x: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for _ in 0..8 {
        h ^= x & 0xff;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
        x >>= 8;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ranks_in_range() {
        let z = Zipfian::new(1000, Zipfian::DEFAULT_THETA);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            assert!(z.next(&mut rng) < 1000);
            assert!(z.next_scrambled(&mut rng) < 1000);
        }
    }

    #[test]
    fn distribution_is_skewed() {
        let z = Zipfian::new(1000, Zipfian::DEFAULT_THETA);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = vec![0u32; 1000];
        for _ in 0..100_000 {
            counts[z.next(&mut rng) as usize] += 1;
        }
        // Rank 0 should dominate; the hot 10% should take well over half.
        assert!(counts[0] > counts[500] * 10, "head much hotter than tail");
        let hot: u32 = counts[..100].iter().sum();
        let total: u32 = counts.iter().sum();
        assert!(hot as f64 / total as f64 > 0.5, "top-10% gets >50% of traffic");
    }

    #[test]
    fn scrambled_spreads_the_head() {
        let z = Zipfian::new(1000, Zipfian::DEFAULT_THETA);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0u32; 1000];
        for _ in 0..100_000 {
            counts[z.next_scrambled(&mut rng) as usize] += 1;
        }
        // Still skewed overall, but the single hottest key is not key 0.
        let hottest = counts.iter().enumerate().max_by_key(|(_, c)| **c).unwrap().0;
        assert_ne!(hottest, 0, "scrambling moved the head");
    }

    #[test]
    fn uniform_theta_zero() {
        // theta → 0 degenerates towards uniform; sanity only.
        let z = Zipfian::new(100, 0.01);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = vec![0u32; 100];
        for _ in 0..50_000 {
            counts[z.next(&mut rng) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(max / min < 5.0, "near-uniform at tiny theta");
    }
}
