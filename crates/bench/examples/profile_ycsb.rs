use simurgh_bench::FsKind;
use simurgh_workloads::minikv::{KvOptions, MiniKv};
use simurgh_workloads::ycsb::{self, Workload, YcsbConfig};
use std::time::Instant;

fn main() {
    let _ = simurgh_pmem::SpinClock::global();
    let cfg = YcsbConfig { records: 2000, ops: 2000, threads: 1, value_size: 1024 };
    for kind in [FsKind::Simurgh, FsKind::SplitFs] {
        let fs = kind.make(1 << 30);
        let kv = MiniKv::open(fs.as_ref(), "/db", KvOptions::default()).unwrap();
        let t = Instant::now();
        ycsb::load(&kv, cfg).unwrap();
        println!("{:<10} LoadA {:>8.1} ms  tables={}", kind.label(), t.elapsed().as_secs_f64()*1e3, kv.table_count());
        let t = Instant::now();
        ycsb::run(&kv, Workload::A, cfg);
        println!("{:<10} RunA  {:>8.1} ms  tables={}", kind.label(), t.elapsed().as_secs_f64()*1e3, kv.table_count());
        let t = Instant::now();
        ycsb::run(&kv, Workload::F, cfg);
        println!("{:<10} RunF  {:>8.1} ms  tables={}", kind.label(), t.elapsed().as_secs_f64()*1e3, kv.table_count());
    }
    // Breakdown for simurgh RunF
    let fs = simurgh_bench::FsKind::make_simurgh(1 << 30);
    let kv = MiniKv::open(&fs, "/db", KvOptions::default()).unwrap();
    ycsb::load(&kv, cfg).unwrap();
    ycsb::run(&kv, Workload::A, cfg);
    fs.timers().reset();
    let t = Instant::now();
    ycsb::run(&kv, Workload::F, cfg);
    let wall = t.elapsed().as_nanos() as u64;
    let b = fs.timers().breakdown(wall);
    println!("simurgh RunF breakdown: wall={:.1}ms fs={:.1}ms copy={:.1}ms ops={}",
        wall as f64/1e6, b.fs_ns as f64/1e6, b.copy_ns as f64/1e6, fs.timers().ops());
}
