use std::sync::Arc;
use std::time::Instant;
use simurgh_core::{SimurghFs, SimurghConfig};
use simurgh_fsapi::{FileSystem, ProcCtx, FileMode};

fn main() {
    let region = Arc::new(simurgh_pmem::PmemRegion::new(512 << 20));
    let fs = SimurghFs::format(region, SimurghConfig::default()).unwrap();
    let ctx = ProcCtx::root(1);
    fs.mkdir(&ctx, "/d", FileMode::dir(0o777)).unwrap();
    let n = 100_000;
    let start = Instant::now();
    for i in 0..n {
        let fd = fs.create(&ctx, &format!("/d/f{i}"), FileMode::default()).unwrap();
        fs.close(&ctx, fd).unwrap();
    }
    let el = start.elapsed();
    println!("create+close: {:.0} ns/op, {:.0} kops/s", el.as_nanos() as f64 / n as f64, n as f64 / el.as_secs_f64() / 1e3);

    // stat cost
    let start = Instant::now();
    for i in 0..n {
        fs.stat(&ctx, &format!("/d/f{i}")).unwrap();
    }
    let el = start.elapsed();
    println!("stat: {:.0} ns/op", el.as_nanos() as f64 / n as f64);
}
