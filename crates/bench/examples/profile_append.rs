use simurgh_bench::FsKind;
use simurgh_fsapi::{ProcCtx, OpenFlags, FileMode};
use std::time::Instant;

fn main() {
    let ctx = ProcCtx::root(1);
    for kind in [FsKind::Simurgh, FsKind::SplitFs, FsKind::Nova] {
        let fs = kind.make(256 << 20);
        let fd = fs.open(&ctx, "/wal", OpenFlags::APPEND, FileMode::default()).unwrap();
        let rec = vec![7u8; 1060]; // YCSB-ish record
        let n = 50_000;
        let start = Instant::now();
        for _ in 0..n {
            fs.write(&ctx, fd, &rec).unwrap();
        }
        let el = start.elapsed();
        println!("{:<10} append 1KB: {:>6.0} ns/op", kind.label(), el.as_nanos() as f64 / n as f64);
        // open/close cost
        fs.write_file(&ctx, "/probe", b"x").unwrap();
        let start = Instant::now();
        for _ in 0..20_000 {
            let fd = fs.open(&ctx, "/probe", OpenFlags::RDONLY, FileMode::default()).unwrap();
            fs.close(&ctx, fd).unwrap();
        }
        println!("{:<10} open+close: {:>6.0} ns/op", kind.label(), start.elapsed().as_nanos() as f64 / 20_000.0);
    }
}
