//! Criterion benches for the metadata microbenchmarks (Fig. 7a–7d).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simurgh_bench::FsKind;
use simurgh_workloads::fxmark;

const FILES: usize = 500;
const REGION: usize = 256 << 20;

fn bench_meta(c: &mut Criterion) {
    let mut g = c.benchmark_group("fxmark_meta");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for kind in FsKind::COMPARED {
        g.bench_with_input(BenchmarkId::new("create_private", kind.label()), &kind, |b, k| {
            b.iter_batched(
                || k.make(REGION),
                |fs| fxmark::create_private(fs.as_ref(), 2, FILES),
                criterion::BatchSize::PerIteration,
            )
        });
        g.bench_with_input(BenchmarkId::new("create_shared", kind.label()), &kind, |b, k| {
            b.iter_batched(
                || k.make(REGION),
                |fs| fxmark::create_shared(fs.as_ref(), 2, FILES),
                criterion::BatchSize::PerIteration,
            )
        });
        g.bench_with_input(BenchmarkId::new("unlink_private", kind.label()), &kind, |b, k| {
            b.iter_batched(
                || k.make(REGION),
                |fs| fxmark::unlink_private(fs.as_ref(), 2, FILES),
                criterion::BatchSize::PerIteration,
            )
        });
        g.bench_with_input(BenchmarkId::new("rename_shared", kind.label()), &kind, |b, k| {
            b.iter_batched(
                || k.make(REGION),
                |fs| fxmark::rename_shared(fs.as_ref(), 2, FILES),
                criterion::BatchSize::PerIteration,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_meta);
criterion_main!(benches);
