//! Criterion bench for the §3.3 protected-function mechanisms.

use criterion::{criterion_group, criterion_main, Criterion};
use simurgh_protfn::{ProtectedDomain, SecurityMode, CostModel};
use simurgh_pmem::SpinClock;
use std::sync::Arc;

fn bench_protfn(c: &mut Criterion) {
    let mut g = c.benchmark_group("protfn_cycles");
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    let domain = Arc::new(ProtectedDomain::new(4));
    let (_, ep) = domain.load_protected("bench", 64).unwrap();
    g.bench_function("jmpp_pret", |b| {
        b.iter(|| domain.enter(ep, || std::hint::black_box(1u64)).unwrap())
    });
    let model = CostModel::default();
    let clock = SpinClock::global();
    g.bench_function("charged_jmpp_cost", |b| {
        b.iter(|| SecurityMode::Jmpp.charge(&model, clock))
    });
    g.bench_function("charged_syscall_cost", |b| {
        b.iter(|| SecurityMode::SyscallHost.charge(&model, clock))
    });
    g.finish();
}

criterion_group!(benches, bench_protfn);
criterion_main!(benches);
