//! Criterion benches for the Filebench personalities (Fig. 8).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simurgh_bench::FsKind;
use simurgh_workloads::filebench;

const REGION: usize = 512 << 20;

fn bench_filebench(c: &mut Criterion) {
    let mut g = c.benchmark_group("filebench");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    type Personality = fn(f64) -> filebench::FilebenchConfig;
    let personalities: [(Personality, &str); 4] = [
        (filebench::varmail, "varmail"),
        (filebench::webserver, "webserver"),
        (filebench::webproxy, "webproxy"),
        (filebench::fileserver, "fileserver"),
    ];
    for (make, name) in personalities {
        for kind in FsKind::COMPARED {
            g.bench_with_input(BenchmarkId::new(name, kind.label()), &kind, |b, k| {
                b.iter_batched(
                    || k.make(REGION),
                    |fs| {
                        let mut cfg = make(0.01);
                        cfg.threads = 2;
                        filebench::run(fs.as_ref(), cfg, 3)
                    },
                    criterion::BatchSize::PerIteration,
                )
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_filebench);
criterion_main!(benches);
