//! Criterion benches for the tar and git applications (Fig. 11 / Fig. 12).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simurgh_bench::FsKind;
use simurgh_workloads::tree::TreeSpec;
use simurgh_workloads::{git, tar, tree};

const REGION: usize = 512 << 20;
const SCALE: f64 = 0.005;

fn bench_apps(c: &mut Criterion) {
    let mut g = c.benchmark_group("apps");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for kind in FsKind::COMPARED {
        g.bench_with_input(BenchmarkId::new("tar_pack", kind.label()), &kind, |b, k| {
            let fs = k.make(REGION);
            let m = tree::generate(fs.as_ref(), "/src", TreeSpec::linux_like(SCALE)).unwrap();
            let mut i = 0u32;
            b.iter(|| {
                i += 1;
                tar::pack(fs.as_ref(), &m, &format!("/src{i}.tar")).unwrap()
            });
        });
        g.bench_with_input(BenchmarkId::new("tar_unpack", kind.label()), &kind, |b, k| {
            let fs = k.make(REGION);
            let m = tree::generate(fs.as_ref(), "/src", TreeSpec::linux_like(SCALE)).unwrap();
            tar::pack(fs.as_ref(), &m, "/src.tar").unwrap();
            let mut i = 0u32;
            b.iter(|| {
                i += 1;
                tar::unpack(fs.as_ref(), "/src.tar", &format!("/out{i}")).unwrap()
            });
        });
        g.bench_with_input(BenchmarkId::new("git_commit", kind.label()), &kind, |b, k| {
            let fs = k.make(REGION);
            let m = tree::generate(fs.as_ref(), "/repo", TreeSpec::linux_like(SCALE)).unwrap();
            let mut repo = git::GitRepo::init(fs.as_ref(), "/repo").unwrap();
            repo.add_all(&m).unwrap();
            b.iter(|| repo.commit("bench").unwrap());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_apps);
criterion_main!(benches);
