//! Criterion benches for shared/private reads, original vs adapted FxMark
//! patterns (Fig. 6, Fig. 7i/7j).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simurgh_bench::FsKind;
use simurgh_workloads::fxmark::{self, ReadPattern};

const REGION: usize = 512 << 20;
const FILE: usize = 16 << 20;

fn bench_read(c: &mut Criterion) {
    let mut g = c.benchmark_group("fxmark_read");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for kind in FsKind::COMPARED {
        for (pat, name) in
            [(ReadPattern::CachedRepeat, "read_shared_original"), (ReadPattern::PseudoRandom, "read_shared_adapted")]
        {
            g.bench_with_input(BenchmarkId::new(name, kind.label()), &kind, |b, k| {
                let fs = k.make(REGION);
                fxmark::read_shared(fs.as_ref(), 1, FILE, 1, pat);
                b.iter(|| fxmark::read_shared(fs.as_ref(), 2, FILE, 2000, pat));
            });
        }
        g.bench_with_input(BenchmarkId::new("read_private", kind.label()), &kind, |b, k| {
            let fs = k.make(REGION);
            fxmark::read_private(fs.as_ref(), 2, FILE, 1, ReadPattern::PseudoRandom);
            b.iter(|| fxmark::read_private(fs.as_ref(), 2, FILE, 2000, ReadPattern::PseudoRandom));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_read);
criterion_main!(benches);
