//! Criterion benches for path resolution (Fig. 7e/7f).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simurgh_bench::FsKind;
use simurgh_workloads::fxmark;

const REGION: usize = 128 << 20;

fn bench_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("fxmark_path");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for kind in FsKind::COMPARED {
        g.bench_with_input(BenchmarkId::new("resolve_private", kind.label()), &kind, |b, k| {
            let fs = k.make(REGION);
            // Setup once; the timed body re-resolves existing paths.
            fxmark::resolve_private(fs.as_ref(), 2, 5, 1);
            b.iter(|| fxmark::resolve_private(fs.as_ref(), 2, 5, 500));
        });
        g.bench_with_input(BenchmarkId::new("resolve_shared", kind.label()), &kind, |b, k| {
            let fs = k.make(REGION);
            fxmark::resolve_shared(fs.as_ref(), 2, 5, 1);
            b.iter(|| fxmark::resolve_shared(fs.as_ref(), 2, 5, 500));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_path);
criterion_main!(benches);
