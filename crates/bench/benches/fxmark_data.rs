//! Criterion benches for the data-path microbenchmarks (Fig. 7g–7l).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simurgh_bench::FsKind;
use simurgh_workloads::fxmark;

const REGION: usize = 512 << 20;
const FILE: usize = 8 << 20;

fn bench_data(c: &mut Criterion) {
    let mut g = c.benchmark_group("fxmark_data");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for kind in FsKind::COMPARED {
        g.bench_with_input(BenchmarkId::new("append", kind.label()), &kind, |b, k| {
            b.iter_batched(
                || k.make(REGION),
                |fs| fxmark::append_private(fs.as_ref(), 2, 500),
                criterion::BatchSize::PerIteration,
            )
        });
        g.bench_with_input(BenchmarkId::new("fallocate", kind.label()), &kind, |b, k| {
            b.iter_batched(
                || k.make(REGION),
                |fs| fxmark::fallocate_private(fs.as_ref(), 2, 4),
                criterion::BatchSize::PerIteration,
            )
        });
        g.bench_with_input(BenchmarkId::new("overwrite_shared", kind.label()), &kind, |b, k| {
            let fs = k.make(REGION);
            fxmark::overwrite_shared(fs.as_ref(), 1, FILE, 1);
            b.iter(|| fxmark::overwrite_shared(fs.as_ref(), 2, FILE, 1000));
        });
        g.bench_with_input(BenchmarkId::new("write_private", kind.label()), &kind, |b, k| {
            b.iter_batched(
                || k.make(REGION),
                |fs| fxmark::write_private(fs.as_ref(), 2, 1000),
                criterion::BatchSize::PerIteration,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_data);
criterion_main!(benches);
