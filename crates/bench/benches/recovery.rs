//! Criterion bench for §5.5 full-system recovery.

use criterion::{criterion_group, criterion_main, Criterion};
use simurgh_core::{SimurghConfig, SimurghFs};
use simurgh_pmem::PmemRegion;
use simurgh_workloads::tree::{self, TreeSpec};
use std::sync::Arc;

fn bench_recovery(c: &mut Criterion) {
    let mut g = c.benchmark_group("recovery");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.bench_function("mount_after_crash", |b| {
        // Populate once; every iteration re-runs the full recovery path on
        // the same dirty image.
        let region = Arc::new(PmemRegion::new(256 << 20));
        let fs = SimurghFs::format(region.clone(), SimurghConfig::default()).unwrap();
        for t in 0..2 {
            tree::generate(&fs, &format!("/linux-{t}"), TreeSpec::linux_like(0.01)).unwrap();
        }
        drop(fs); // no clean unmount
        b.iter(|| SimurghFs::mount(region.clone(), SimurghConfig::default()).unwrap());
    });
    g.finish();
}

criterion_group!(benches, bench_recovery);
criterion_main!(benches);
