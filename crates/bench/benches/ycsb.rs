//! Criterion benches for YCSB over MiniKV (Fig. 9).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simurgh_bench::FsKind;
use simurgh_workloads::minikv::{KvOptions, MiniKv};
use simurgh_workloads::ycsb::{self, Workload, YcsbConfig};

const REGION: usize = 512 << 20;

fn bench_ycsb(c: &mut Criterion) {
    let mut g = c.benchmark_group("ycsb");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    let cfg = YcsbConfig { records: 500, ops: 500, threads: 1, value_size: 512 };
    for kind in FsKind::COMPARED {
        g.bench_with_input(BenchmarkId::new("loadA", kind.label()), &kind, |b, k| {
            b.iter_batched(
                || k.make(REGION),
                |fs| {
                    let kv = MiniKv::open(fs.as_ref(), "/db", KvOptions::default()).unwrap();
                    ycsb::load(&kv, cfg).unwrap()
                },
                criterion::BatchSize::PerIteration,
            )
        });
        for wl in [Workload::A, Workload::C, Workload::F] {
            g.bench_with_input(BenchmarkId::new(wl.label(), kind.label()), &kind, |b, k| {
                let fs = k.make(REGION);
                let kv = MiniKv::open(fs.as_ref(), "/db", KvOptions::default()).unwrap();
                ycsb::load(&kv, cfg).unwrap();
                b.iter(|| ycsb::run(&kv, wl, cfg));
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_ycsb);
criterion_main!(benches);
