//! Criterion benches for the design-choice ablations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simurgh_bench::FsKind;
use simurgh_core::{SimurghConfig, SimurghFs};
use simurgh_pmem::PmemRegion;
use simurgh_workloads::fxmark;
use std::sync::Arc;

const REGION: usize = 256 << 20;

fn bench_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    // Allocator segmentation.
    for (name, segments) in [("segmented", None), ("single_segment", Some(1))] {
        g.bench_with_input(BenchmarkId::new("alloc", name), &segments, |b, segs| {
            b.iter_batched(
                || {
                    let cfg = SimurghConfig { segments: *segs, ..SimurghConfig::default() };
                    SimurghFs::format(Arc::new(PmemRegion::new(REGION)), cfg).unwrap()
                },
                |fs| fxmark::append_private(&fs, 2, 500),
                criterion::BatchSize::PerIteration,
            )
        });
    }
    // Security cost per call.
    for kind in [FsKind::SimurghNoSec, FsKind::Simurgh, FsKind::SimurghSyscall] {
        g.bench_with_input(BenchmarkId::new("security", kind.label()), &kind, |b, k| {
            let fs = k.make(REGION);
            fxmark::resolve_private(fs.as_ref(), 1, 5, 1);
            b.iter(|| fxmark::resolve_private(fs.as_ref(), 1, 5, 500));
        });
    }
    // Relaxed vs locked shared-file writes.
    for kind in [FsKind::Simurgh, FsKind::SimurghRelaxed] {
        g.bench_with_input(BenchmarkId::new("write_lock", kind.label()), &kind, |b, k| {
            let fs = k.make(REGION);
            fxmark::overwrite_shared(fs.as_ref(), 1, 4 << 20, 1);
            b.iter(|| fxmark::overwrite_shared(fs.as_ref(), 2, 4 << 20, 500));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
