//! Every table and figure of the paper's evaluation (§5), as callable
//! experiment functions. The `paper` binary prints them; Criterion benches
//! and integration tests call them with small [`Scale`]s.

use std::sync::Arc;
use std::time::Instant;

use simurgh_core::{SimurghConfig, SimurghFs};
use simurgh_fsapi::{Breakdown, FileSystem};
use simurgh_pmem::clock::NvmmPerfModel;
use simurgh_pmem::PmemRegion;
use simurgh_protfn::gem5::{self, Gem5Report};
use simurgh_workloads::filebench::{self, FilebenchConfig};
use simurgh_workloads::minikv::{KvOptions, MiniKv};
use simurgh_workloads::runner::BenchResult;
use simurgh_workloads::tree::TreeSpec;
use simurgh_workloads::ycsb::{self, Workload, YcsbConfig};
use simurgh_workloads::{fxmark, git, tar, tree};

use crate::{FsKind, Scale, Series};

// ---------------------------------------------------------------------------
// Sweep plumbing
// ---------------------------------------------------------------------------

/// Runs `bench(fs, threads)` for every `(kind, thread-count)` combination on
/// a fresh file system, converting each result with `value`.
pub fn sweep(
    kinds: &[FsKind],
    scale: &Scale,
    region_bytes: usize,
    unit: &'static str,
    value: impl Fn(&BenchResult) -> f64,
    bench: impl Fn(&dyn FileSystem, usize) -> BenchResult,
) -> Vec<Series> {
    kinds
        .iter()
        .map(|kind| {
            let points = scale
                .threads
                .iter()
                .map(|&t| {
                    let fs = kind.make(region_bytes);
                    let r = bench(fs.as_ref(), t);
                    (t, value(&r))
                })
                .collect();
            Series { fs: kind.label(), unit, points }
        })
        .collect()
}

fn kops(r: &BenchResult) -> f64 {
    r.kops()
}

fn gibs(r: &BenchResult) -> f64 {
    r.gibs()
}

// ---------------------------------------------------------------------------
// Table 1 — NOVA execution-time breakdown
// ---------------------------------------------------------------------------

/// Table 1: share of runtime spent in the application, in data copies and
/// in file-system code, for three applications running on the NOVA model.
pub fn table1(scale: &Scale) -> Vec<(&'static str, Breakdown)> {
    let mut rows = Vec::new();

    // YCSB Load A on NOVA.
    {
        let fs = FsKind::make_nova(scale.data_region);
        fs.timers().reset();
        let start = Instant::now();
        let kv = MiniKv::open(&fs, "/ycsb", KvOptions::default()).expect("kv");
        ycsb::load(
            &kv,
            YcsbConfig {
                records: scale.ycsb_records,
                ops: scale.ycsb_ops,
                threads: 1,
                value_size: 1024,
            },
        )
        .expect("load");
        let wall = start.elapsed().as_nanos() as u64;
        rows.push(("YCSB LoadA", fs.timers().breakdown(wall)));
    }

    // Tar pack on NOVA.
    {
        let fs = FsKind::make_nova(scale.data_region);
        let manifest =
            tree::generate(&fs, "/src", TreeSpec::linux_like(scale.tree_scale)).expect("tree");
        fs.timers().reset();
        let start = Instant::now();
        tar::pack(&fs, &manifest, "/src.tar").expect("pack");
        let wall = start.elapsed().as_nanos() as u64;
        rows.push(("Tar Pack", fs.timers().breakdown(wall)));
    }

    // Git commit on NOVA.
    {
        let fs = FsKind::make_nova(scale.data_region);
        let manifest =
            tree::generate(&fs, "/repo", TreeSpec::linux_like(scale.tree_scale)).expect("tree");
        let mut repo = git::GitRepo::init(&fs, "/repo").expect("init");
        repo.add_all(&manifest).expect("add");
        fs.timers().reset();
        let start = Instant::now();
        repo.commit("bench").expect("commit");
        let wall = start.elapsed().as_nanos() as u64;
        rows.push(("Git Commit", fs.timers().breakdown(wall)));
    }

    rows
}

/// Table 2: the Filebench workload parameters (inputs, reproduced verbatim).
pub fn table2() -> Vec<FilebenchConfig> {
    vec![
        filebench::varmail(1.0),
        filebench::webserver(1.0),
        filebench::webproxy(1.0),
        filebench::fileserver(1.0),
    ]
}

/// §3.3: the gem5 cycle-count comparison.
pub fn gem5_cycles(iters: u64) -> Gem5Report {
    gem5::run(iters)
}

// ---------------------------------------------------------------------------
// Fig. 6 — original vs adapted FxMark read
// ---------------------------------------------------------------------------

/// Fig. 6: shared-file read bandwidth under the original (cache-friendly)
/// and adapted (pseudo-random) FxMark patterns for Simurgh and NOVA, plus
/// the modelled NVMM max-bandwidth reference line.
pub fn fig6(scale: &Scale) -> Vec<Series> {
    let mut out = Vec::new();
    for (kind, label_orig, label_adapted) in [
        (FsKind::Simurgh, "simurgh (original)", "simurgh (adapted)"),
        (FsKind::Nova, "nova (original)", "nova (adapted)"),
    ] {
        for (pattern, label) in [
            (fxmark::ReadPattern::CachedRepeat, label_orig),
            (fxmark::ReadPattern::PseudoRandom, label_adapted),
        ] {
            let points = scale
                .threads
                .iter()
                .map(|&t| {
                    let fs = kind.make(scale.data_region);
                    let r =
                        fxmark::read_shared(fs.as_ref(), t, scale.file_bytes, scale.data_ops, pattern);
                    (t, r.gibs())
                })
                .collect();
            out.push(Series { fs: label, unit: "GiB/s", points });
        }
    }
    let bw = NvmmPerfModel::default().max_read_gibs(fxmark::IO_SIZE);
    out.push(Series {
        fs: "max NVMM bandwidth",
        unit: "GiB/s",
        points: scale.threads.iter().map(|&t| (t, bw)).collect(),
    });
    out
}

// ---------------------------------------------------------------------------
// Fig. 7 — the twelve microbenchmark panels
// ---------------------------------------------------------------------------

/// One panel of Fig. 7 by letter (`'a'..='l'`).
pub fn fig7(panel: char, scale: &Scale) -> Vec<Series> {
    let all = &FsKind::COMPARED;
    match panel {
        'a' => sweep(all, scale, scale.meta_region, "kops/s", kops, |fs, t| {
            fxmark::create_private(fs, t, scale.meta_files)
        }),
        'b' => sweep(all, scale, scale.meta_region, "kops/s", kops, |fs, t| {
            fxmark::create_shared(fs, t, scale.meta_files)
        }),
        'c' => sweep(all, scale, scale.meta_region, "kops/s", kops, |fs, t| {
            fxmark::unlink_private(fs, t, scale.meta_files)
        }),
        'd' => sweep(all, scale, scale.meta_region, "kops/s", kops, |fs, t| {
            fxmark::rename_shared(fs, t, scale.meta_files)
        }),
        'e' => sweep(all, scale, scale.meta_region, "kops/s", kops, |fs, t| {
            fxmark::resolve_private(fs, t, 5, scale.resolves)
        }),
        'f' => sweep(all, scale, scale.meta_region, "kops/s", kops, |fs, t| {
            fxmark::resolve_shared(fs, t, 5, scale.resolves)
        }),
        'g' => sweep(all, scale, scale.data_region, "GiB/s", gibs, |fs, t| {
            fxmark::append_private(fs, t, scale.appends)
        }),
        'h' => sweep(all, scale, scale.data_region, "GiB/s", gibs, |fs, t| {
            fxmark::fallocate_private(fs, t, scale.fallocate_chunks)
        }),
        'i' => {
            let mut out = sweep(all, scale, scale.data_region, "GiB/s", gibs, |fs, t| {
                fxmark::read_shared(fs, t, scale.file_bytes, scale.data_ops, fxmark::ReadPattern::PseudoRandom)
            });
            let bw = NvmmPerfModel::default().max_read_gibs(fxmark::IO_SIZE);
            out.push(Series {
                fs: "max NVMM bandwidth",
                unit: "GiB/s",
                points: scale.threads.iter().map(|&t| (t, bw)).collect(),
            });
            out
        }
        'j' => sweep(all, scale, scale.data_region, "GiB/s", gibs, |fs, t| {
            fxmark::read_private(fs, t, scale.file_bytes, scale.data_ops, fxmark::ReadPattern::PseudoRandom)
        }),
        'k' => {
            let mut kinds = vec![FsKind::SimurghRelaxed];
            kinds.extend_from_slice(&FsKind::COMPARED);
            sweep(&kinds, scale, scale.data_region, "GiB/s", gibs, |fs, t| {
                fxmark::overwrite_shared(fs, t, scale.file_bytes, scale.data_ops)
            })
        }
        'l' => sweep(all, scale, scale.data_region, "GiB/s", gibs, |fs, t| {
            fxmark::write_private(fs, t, scale.data_ops)
        }),
        other => panic!("Fig. 7 has panels a..l, not {other}"),
    }
}

// ---------------------------------------------------------------------------
// Directory probe accounting
// ---------------------------------------------------------------------------

/// Runs the metadata phases (create / stat / unlink of `meta_files` names in
/// one shared directory) on a fresh Simurgh mount and reports the per-phase
/// probe-counter deltas as a JSON object — the machine-readable form of the
/// O(1) metadata-path claim asserted by `tests/tests/scaling.rs`.
pub fn dir_probe_stats(scale: &Scale) -> String {
    use simurgh_fsapi::{FileMode, OpenFlags, ProcCtx};

    let region = Arc::new(PmemRegion::new(scale.meta_region));
    let fs = SimurghFs::format(region, SimurghConfig::default()).expect("format");
    let ctx = ProcCtx::root(1);
    fs.mkdir(&ctx, "/probe", FileMode::dir(0o777)).expect("mkdir");

    let mut phases = Vec::new();
    let mut base = fs.dir_stats();
    let phase = |fs: &SimurghFs, name: &str, base: &mut simurgh_core::dir::DirStatsSnapshot| {
        let now = fs.dir_stats();
        let delta = now.since(base);
        *base = now;
        format!(
            "\"{name}\":{{\"stats\":{},\"probes_per_lookup\":{:.3}}}",
            delta.to_json(),
            delta.probes_per_lookup()
        )
    };

    for i in 0..scale.meta_files {
        let fd = fs
            .open(&ctx, &format!("/probe/f{i}"), OpenFlags::CREATE, FileMode::default())
            .expect("create");
        fs.close(&ctx, fd).expect("close");
    }
    phases.push(phase(&fs, "create", &mut base));
    for i in 0..scale.meta_files {
        fs.stat(&ctx, &format!("/probe/f{i}")).expect("stat");
    }
    phases.push(phase(&fs, "stat", &mut base));
    for i in 0..scale.meta_files {
        fs.unlink(&ctx, &format!("/probe/f{i}")).expect("unlink");
    }
    phases.push(phase(&fs, "unlink", &mut base));

    format!("{{\"meta_files\":{},{}}}", scale.meta_files, phases.join(","))
}

// ---------------------------------------------------------------------------
// Data-path probe accounting
// ---------------------------------------------------------------------------

/// Fragments a file into roughly `extents` single-block extents by
/// interleaving appends between it and a decoy file: every allocation for the
/// decoy claims the block right after the main file's tail, so the tail-extend
/// fast path is blocked and each append lands in its own extent.
fn fragmented_file(fs: &SimurghFs, extents: usize) -> (simurgh_fsapi::ProcCtx, simurgh_fsapi::Fd) {
    use simurgh_fsapi::{FileMode, OpenFlags, ProcCtx};

    let ctx = ProcCtx::root(1);
    let rw_create = OpenFlags { read: true, ..OpenFlags::CREATE };
    let main = fs.open(&ctx, "/frag", rw_create, FileMode::default()).expect("create");
    let decoy = fs.open(&ctx, "/decoy", OpenFlags::CREATE, FileMode::default()).expect("create");
    let chunk = vec![0xA5u8; 4096];
    for i in 0..extents as u64 {
        fs.pwrite(&ctx, main, &chunk, i * 4096).expect("append main");
        fs.pwrite(&ctx, decoy, &chunk, i * 4096).expect("append decoy");
    }
    fs.close(&ctx, decoy).expect("close decoy");
    (ctx, main)
}

/// Runs a fixed batch of 4 KiB reads and overwrites against files fragmented
/// into 16 / 256 / 2048 extents on fresh Simurgh mounts, plus one contiguous
/// single-thread append phase, and reports the [`simurgh_core::file::DataStats`]
/// deltas as JSON — the machine-readable form of the O(1) data-path claim
/// asserted by `tests/tests/scaling.rs`.
pub fn data_probe_stats(scale: &Scale) -> String {
    use simurgh_fsapi::{FileMode, OpenFlags, ProcCtx};

    let ops = scale.data_ops.clamp(256, 8192) as u64;
    let mut levels = Vec::new();
    for extents in [16usize, 256, 2048] {
        let region = Arc::new(PmemRegion::new(64 << 20));
        let fs = SimurghFs::format(region, SimurghConfig::default()).expect("format");
        let (ctx, fd) = fragmented_file(&fs, extents);
        let file_bytes = extents as u64 * 4096;

        let mut buf = vec![0u8; 4096];
        let mut base = fs.data_stats();
        for i in 0..ops {
            let off = (i * 7919 * 4096) % file_bytes;
            fs.pread(&ctx, fd, &mut buf, off).expect("pread");
        }
        let read = fs.data_stats().since(&base);
        base = fs.data_stats();
        for i in 0..ops {
            let off = (i * 6271 * 4096) % file_bytes;
            fs.pwrite(&ctx, fd, &buf, off).expect("pwrite");
        }
        let write = fs.data_stats().since(&base);
        levels.push(format!(
            "{{\"extents\":{extents},\"read\":{{\"stats\":{},\"walk_steps_per_op\":{:.3}}},\
             \"write\":{{\"stats\":{},\"walk_steps_per_op\":{:.3}}}}}",
            read.to_json(),
            read.walk_steps_per_op(),
            write.to_json(),
            write.walk_steps_per_op()
        ));
    }

    // Contiguous single-thread append phase: the tail-extend fast path should
    // absorb nearly every append.
    let region = Arc::new(PmemRegion::new(64 << 20));
    let fs = SimurghFs::format(region, SimurghConfig::default()).expect("format");
    let ctx = ProcCtx::root(1);
    let fd = fs.open(&ctx, "/seq", OpenFlags::CREATE, FileMode::default()).expect("create");
    let chunk = vec![0x5Au8; 4096];
    let base = fs.data_stats();
    for i in 0..ops.min(2048) {
        fs.pwrite(&ctx, fd, &chunk, i * 4096).expect("append");
    }
    let append = fs.data_stats().since(&base);

    format!(
        "{{\"ops\":{ops},\"levels\":[{}],\"append\":{{\"stats\":{},\"tail_extend_rate\":{:.3}}}}}",
        levels.join(","),
        append.to_json(),
        append.tail_extend_rate()
    )
}

// ---------------------------------------------------------------------------
// Unified observability probe
// ---------------------------------------------------------------------------

/// Runs the seven scripted crash-matrix op shapes (create, unlink, both
/// renames, append, shrinking truncate, symlink) against one fresh mount so
/// every histogram they drive has samples, then reports the unified
/// [`simurgh_core::obs::ObsRegistry`]: the full JSON registry when `json` is
/// set (the `paper obs --json` surface, schema in EXPERIMENTS.md), otherwise
/// an aligned per-op count/p50/p99/max latency table.
pub fn obs_probe(scale: &Scale, json: bool) -> String {
    use simurgh_core::obs::FsOp;

    let region = Arc::new(PmemRegion::new(64 << 20));
    let fs = Arc::new(SimurghFs::format(region, SimurghConfig::default()).expect("format"));
    let rounds = (scale.meta_files as u64 / 8).clamp(16, 512);
    mixed_metadata_workload(&fs, rounds);
    let gw = gateway_burst(&fs, 8, 50);

    if json {
        return fs.obs_json();
    }
    let mut out = String::new();
    out.push_str(&format!(
        "{:<16}{:>10}{:>12}{:>12}{:>12}\n",
        "op", "count", "p50_ns", "p99_ns", "max_ns"
    ));
    for op in FsOp::ALL {
        let s = fs.obs().snapshot(op);
        if s.count == 0 {
            continue;
        }
        out.push_str(&format!(
            "{:<16}{:>10}{:>12}{:>12}{:>12}\n",
            op.name(),
            s.count,
            s.p50_ns,
            s.p99_ns,
            s.max_ns
        ));
    }
    let g = &fs.obs().gateway;
    let o = std::sync::atomic::Ordering::Relaxed;
    out.push_str(&format!(
        "\ngateway: conns {} ops {} flushes {} batched_ops {} busy {}\n\
         loadgen: {:.0} ops/s, p50 {} ns, p99 {} ns\n",
        g.connections.load(o),
        g.ops.load(o),
        g.flushes.load(o),
        g.batched_ops.load(o),
        g.admission_rejections.load(o),
        gw.throughput(),
        gw.latency.p50_ns,
        gw.latency.p99_ns,
    ));
    out
}

/// Serves `fs` on a throwaway unix socket and drives it with an
/// in-process loadgen burst, so the registry's `gateway` section (and the
/// snapshot's `gateway_loadgen` object) report a live serving path rather
/// than zeros. Small on purpose: 8 connections × `ops_per_conn` ops keep
/// `paper obs` interactive.
fn gateway_burst(
    fs: &Arc<SimurghFs>,
    connections: usize,
    ops_per_conn: usize,
) -> simurgh_served::LoadgenReport {
    use simurgh_served::{LoadgenConfig, Server, ServerConfig};
    use std::sync::atomic::{AtomicU32, Ordering};

    static N: AtomicU32 = AtomicU32::new(0);
    let sock = std::env::temp_dir().join(format!(
        "sg-bench-gw-{}-{}.sock",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let handle = Server::start(Arc::clone(fs), ServerConfig::new(sock.clone()))
        .expect("gateway server starts");
    let mut cfg = LoadgenConfig::new(sock);
    cfg.connections = connections;
    cfg.ops_per_conn = ops_per_conn;
    cfg.pipeline = 8;
    let report = simurgh_served::loadgen::run(&cfg);
    handle.shutdown();
    assert_eq!(report.protocol_errors, 0, "gateway burst must be protocol-clean");
    report
}

/// The mixed metadata workload behind `paper obs` and `paper
/// bench-snapshot`: `rounds` times over, create / append+fsync /
/// truncate-shrink / both rename shapes / symlink / readlink / stat /
/// unlink — every op shape the crash matrix scripts, so the latency
/// histograms cover the same vocabulary the cost probe pins.
fn mixed_metadata_workload(fs: &SimurghFs, rounds: u64) {
    use simurgh_fsapi::{FileMode, OpenFlags, ProcCtx};
    let ctx = ProcCtx::root(1);

    fs.mkdir(&ctx, "/d", FileMode::dir(0o755)).expect("mkdir /d");
    fs.mkdir(&ctx, "/e", FileMode::dir(0o755)).expect("mkdir /e");
    let chunk = vec![0xA7u8; 2048];
    for i in 0..rounds {
        // create
        let fd = fs
            .open(&ctx, &format!("/d/f{i}"), OpenFlags::CREATE, FileMode::default())
            .expect("create");
        fs.close(&ctx, fd).expect("close");
        // append (open + pwrite + fsync, the matrix shape)
        let fd =
            fs.open(&ctx, &format!("/d/f{i}"), OpenFlags::WRONLY, FileMode::default()).expect("open");
        fs.pwrite(&ctx, fd, &chunk, 0).expect("pwrite");
        fs.fsync(&ctx, fd).expect("fsync");
        // truncate-shrink
        fs.ftruncate(&ctx, fd, 100).expect("ftruncate");
        fs.close(&ctx, fd).expect("close");
        // rename-samedir, then rename-crossdir
        fs.rename(&ctx, &format!("/d/f{i}"), &format!("/d/r{i}")).expect("rename samedir");
        fs.rename(&ctx, &format!("/d/r{i}"), &format!("/e/r{i}")).expect("rename crossdir");
        // symlink (+ readlink so the histogram isn't write-only)
        fs.symlink(&ctx, &format!("/e/r{i}"), &format!("/d/l{i}")).expect("symlink");
        fs.readlink(&ctx, &format!("/d/l{i}")).expect("readlink");
        fs.stat(&ctx, &format!("/e/r{i}")).expect("stat");
        // unlink both
        fs.unlink(&ctx, &format!("/d/l{i}")).expect("unlink link");
        fs.unlink(&ctx, &format!("/e/r{i}")).expect("unlink file");
    }
    fs.statfs(&ctx).expect("statfs");
}

/// Machine-readable group-commit profile (`paper bench-snapshot`): the
/// deterministic per-op persistence costs (fences crossed, fences absorbed
/// by scopes, allocator round trips), per-op p50/p99 tail latency over the
/// mixed metadata workload, Simurgh throughput on four representative
/// Fig. 7 panels, and the full observability registry. One JSON object —
/// redirect to a file to pin a change's before/after profile.
pub fn bench_snapshot(scale: &Scale) -> String {
    use simurgh_core::obs::FsOp;
    use simurgh_core::testing::matrix::probe_costs;

    let costs = probe_costs()
        .iter()
        .map(|c| {
            format!(
                "{{\"op\":\"{}\",\"fences\":{},\"fences_elided\":{},\"pool_trips\":{},\"seg_trips\":{}}}",
                c.op, c.fences, c.fences_elided, c.pool_trips, c.seg_trips
            )
        })
        .collect::<Vec<_>>()
        .join(",");

    let region = Arc::new(PmemRegion::new(64 << 20));
    let fs = Arc::new(SimurghFs::format(region, SimurghConfig::default()).expect("format"));
    let rounds = (scale.meta_files as u64 / 8).clamp(16, 512);
    mixed_metadata_workload(&fs, rounds);
    // Age the instrumented image with a short zipfian churn (water-mark
    // compaction armed between batches) so the registry's `frag` section
    // pins an aged profile, not a freshly formatted one.
    let churn = simurgh_workloads::aging::AgingSpec::churn(0.25);
    simurgh_workloads::aging::run_churn(
        fs.as_ref(),
        &simurgh_fsapi::ProcCtx::root(1),
        &churn,
        |_, _| {
            fs.maybe_compact();
        },
    )
    .expect("bench-snapshot churn");
    let gw = gateway_burst(&fs, 8, 50);
    let mut latency = Vec::new();
    for op in FsOp::ALL {
        let s = fs.obs().snapshot(op);
        if s.count == 0 {
            continue;
        }
        let ratio = if s.p50_ns > 0 { s.p99_ns as f64 / s.p50_ns as f64 } else { 0.0 };
        latency.push(format!(
            "{{\"op\":\"{}\",\"count\":{},\"p50_ns\":{},\"p99_ns\":{},\"p99_over_p50\":{ratio:.2}}}",
            op.name(),
            s.count,
            s.p50_ns,
            s.p99_ns
        ));
    }
    let registry = fs.obs_json();

    let threads = scale.threads.iter().copied().max().unwrap_or(1);
    let create_private = fxmark::create_private(
        FsKind::Simurgh.make(scale.meta_region).as_ref(),
        threads,
        scale.meta_files,
    )
    .kops();
    let create_shared = fxmark::create_shared(
        FsKind::Simurgh.make(scale.meta_region).as_ref(),
        threads,
        scale.meta_files,
    )
    .kops();
    let rename_shared = fxmark::rename_shared(
        FsKind::Simurgh.make(scale.meta_region).as_ref(),
        threads,
        scale.meta_files,
    )
    .kops();
    let append = fxmark::append_private(
        FsKind::Simurgh.make(scale.data_region).as_ref(),
        threads,
        scale.appends,
    )
    .gibs();

    format!(
        "{{\"snapshot\":\"group-commit\",\"threads\":{threads},\
         \"op_costs\":[{costs}],\"latency\":[{latency}],\
         \"fig7_simurgh\":{{\"create_private_kops\":{create_private:.1},\
         \"create_shared_kops\":{create_shared:.1},\
         \"rename_shared_kops\":{rename_shared:.1},\
         \"append_gibs\":{append:.3}}},\
         \"gateway_loadgen\":{gateway},\
         \"registry\":{registry}}}",
        latency = latency.join(","),
        gateway = gw.to_json()
    )
}

// ---------------------------------------------------------------------------
// Aging & compaction
// ---------------------------------------------------------------------------

/// One frag-battery sample: the registry's `frag` section for `fs`, as the
/// same JSON object `paper obs --json` embeds.
fn frag_sample(fs: &SimurghFs) -> String {
    let (files, extents) = fs.extent_census();
    fs.frag_stats().to_json(fs.block_alloc(), files, extents)
}

fn frag_gauges(fs: &SimurghFs) -> (u64, u64, u64, u64) {
    let snap = fs.block_alloc().frag_snapshot();
    let free_runs: u64 = snap.iter().map(|&(r, _)| r).sum();
    let max_free_run = snap.iter().map(|&(_, m)| m).max().unwrap_or(0);
    let (files, extents) = fs.extent_census();
    (free_runs, max_free_run, files, extents)
}

/// The aging→compaction experiment (`paper compact`): zipfian churn ages a
/// fresh image with water-mark compaction armed between batches, then one
/// explicit full pass runs; the frag battery is sampled after the churn and
/// after the pass. Returns the printed table, or one JSON object with
/// `--json` (the EXPERIMENTS.md aging-run schema).
pub fn compact_run(scale: &Scale, json: bool) -> String {
    use simurgh_workloads::aging::{self, AgingSpec};

    // `--full` ages at GB scale; quick keeps CI interactive.
    let full = scale.meta_files >= 100_000;
    let (churn_scale, region_bytes) = if full { (8.0, 2usize << 30) } else { (1.0, 256 << 20) };
    let spec = AgingSpec::churn(churn_scale);
    let region = Arc::new(PmemRegion::new(region_bytes));
    let fs = SimurghFs::format(region, SimurghConfig::default()).expect("format");
    let ctx = simurgh_fsapi::ProcCtx::root(1);

    let start = Instant::now();
    let report = aging::run_churn(&fs, &ctx, &spec, |_, _| {
        fs.maybe_compact();
    })
    .expect("aging churn");
    let churn_secs = start.elapsed().as_secs_f64();
    let watermark_moved = fs.frag_stats().relocated_files.load(std::sync::atomic::Ordering::Relaxed);

    let aged = frag_sample(&fs);
    let (runs_b, max_b, files_b, ext_b) = frag_gauges(&fs);

    let start = Instant::now();
    let (moved, blocks) = fs.compact(usize::MAX);
    let pass_secs = start.elapsed().as_secs_f64();
    let compacted = frag_sample(&fs);
    let (runs_a, max_a, _, ext_a) = frag_gauges(&fs);

    if json {
        return format!(
            "{{\"experiment\":\"compact\",\"region_bytes\":{region_bytes},\
             \"churn\":{{\"files\":{},\"ops\":{},\"appends\":{},\"deletes\":{},\
             \"truncates\":{},\"bytes_written\":{},\"live_files\":{},\
             \"seconds\":{churn_secs:.3},\"watermark_relocations\":{watermark_moved}}},\
             \"aged\":{aged},\
             \"pass\":{{\"files_moved\":{moved},\"blocks_moved\":{blocks},\
             \"seconds\":{pass_secs:.3}}},\
             \"compacted\":{compacted}}}",
            spec.files, spec.ops, report.appends, report.deletes, report.truncates,
            report.bytes_written, report.live_files,
        );
    }
    let mut out = String::new();
    out.push_str(&format!(
        "churn: {} ops over {} file slots ({} appends, {} deletes, {} truncates, \
         {:.1} MiB written) in {churn_secs:.2}s\n",
        spec.ops,
        spec.files,
        report.appends,
        report.deletes,
        report.truncates,
        report.bytes_written as f64 / (1 << 20) as f64,
    ));
    out.push_str(&format!("water-mark passes relocated {watermark_moved} files during churn\n"));
    out.push_str(&format!(
        "{:<12}{:>10}{:>14}{:>14}{:>16}\n",
        "", "files", "extents", "free runs", "max free run"
    ));
    out.push_str(&format!(
        "{:<12}{files_b:>10}{ext_b:>14}{runs_b:>14}{max_b:>16}\n",
        "aged"
    ));
    out.push_str(&format!(
        "{:<12}{files_b:>10}{ext_a:>14}{runs_a:>14}{max_a:>16}\n",
        "compacted"
    ));
    out.push_str(&format!(
        "explicit pass: relocated {moved} files / {blocks} blocks in {pass_secs:.2}s\n"
    ));
    out
}

// ---------------------------------------------------------------------------
// Fig. 8 — Filebench
// ---------------------------------------------------------------------------

/// Fig. 8: Filebench throughput (kops/s) per workload and file system.
pub fn fig8(scale: &Scale) -> Vec<(&'static str, Vec<(&'static str, f64)>)> {
    let workloads = [
        filebench::varmail(scale.fb_scale),
        filebench::webserver(scale.fb_scale),
        filebench::webproxy(scale.fb_scale),
        filebench::fileserver(scale.fb_scale),
    ];
    workloads
        .into_iter()
        .map(|mut cfg| {
            // Thread counts beyond the machine make quick runs crawl;
            // cap to the sweep maximum while keeping relative ratios.
            let max_threads = *scale.threads.iter().max().unwrap_or(&4);
            cfg.threads = cfg.threads.min(max_threads * 4);
            let rows = FsKind::COMPARED
                .iter()
                .map(|kind| {
                    let fs = kind.make(scale.data_region);
                    let r = filebench::run(fs.as_ref(), cfg, scale.fb_iters);
                    (kind.label(), r.kops())
                })
                .collect();
            (cfg.name, rows)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Fig. 9 / Fig. 10 — YCSB
// ---------------------------------------------------------------------------

/// Fig. 9: YCSB throughput per workload and file system, normalized to
/// SplitFS (the paper's presentation).
pub fn fig9(scale: &Scale) -> Vec<(&'static str, Vec<(&'static str, f64)>)> {
    let cfg = YcsbConfig {
        records: scale.ycsb_records,
        ops: scale.ycsb_ops,
        threads: 1,
        value_size: 1024,
    };
    let phases: Vec<Workload> = std::iter::once(Workload::LoadA)
        .chain(Workload::RUNS)
        .collect();
    // Collect absolute throughput for every fs × phase. Each phase runs
    // three times and the best run counts (FxMark-style noise rejection on
    // a shared machine); the extra runs also keep the store state of every
    // file system in step.
    let mut absolute: Vec<(&'static str, Vec<f64>)> = Vec::new();
    for kind in FsKind::COMPARED {
        let fs = kind.make(scale.data_region);
        let kv = MiniKv::open(fs.as_ref(), "/ycsb", KvOptions::default()).expect("kv open");
        let mut vals = Vec::new();
        for wl in &phases {
            let mut best = 0.0f64;
            let reps = if *wl == Workload::LoadA { 1 } else { 3 };
            for _ in 0..reps {
                let r = ycsb::run(&kv, *wl, cfg);
                best = best.max(r.ops_per_sec());
            }
            vals.push(best);
        }
        absolute.push((kind.label(), vals));
    }
    let split_idx = absolute
        .iter()
        .position(|(n, _)| *n == "splitfs")
        .expect("splitfs in comparison set");
    let baseline: Vec<f64> = absolute[split_idx].1.clone();
    phases
        .iter()
        .enumerate()
        .map(|(i, wl)| {
            let rows = absolute
                .iter()
                .map(|(name, vals)| (*name, vals[i] / baseline[i].max(1e-12)))
                .collect();
            (wl.label(), rows)
        })
        .collect()
}

/// Fig. 10: Simurgh's execution-time breakdown under each YCSB workload.
pub fn fig10(scale: &Scale) -> Vec<(&'static str, Breakdown)> {
    let cfg = YcsbConfig {
        records: scale.ycsb_records,
        ops: scale.ycsb_ops,
        threads: 1,
        value_size: 1024,
    };
    let mut out = Vec::new();
    let fs = FsKind::make_simurgh(scale.data_region);
    let kv = MiniKv::open(&fs, "/ycsb", KvOptions::default()).expect("kv open");
    for wl in std::iter::once(Workload::LoadA).chain(Workload::RUNS) {
        fs.timers().reset();
        let start = Instant::now();
        ycsb::run(&kv, wl, cfg);
        let wall = start.elapsed().as_nanos() as u64;
        out.push((wl.label(), fs.timers().breakdown(wall)));
    }
    out
}

// ---------------------------------------------------------------------------
// Fig. 11 / Fig. 12 — tar and git
// ---------------------------------------------------------------------------

/// Fig. 11: tar pack/unpack throughput (MiB/s archived) per file system.
pub fn fig11(scale: &Scale) -> Vec<(&'static str, f64, f64)> {
    FsKind::COMPARED
        .iter()
        .map(|kind| {
            let fs = kind.make(scale.data_region);
            let manifest =
                tree::generate(fs.as_ref(), "/src", TreeSpec::linux_like(scale.tree_scale))
                    .expect("tree");
            let pack = tar::pack(fs.as_ref(), &manifest, "/src.tar").expect("pack");
            let unpack = tar::unpack(fs.as_ref(), "/src.tar", "/out").expect("unpack");
            let mibs = |r: &BenchResult| r.bytes as f64 / r.seconds.max(1e-12) / (1 << 20) as f64;
            (kind.label(), mibs(&pack), mibs(&unpack))
        })
        .collect()
}

/// Fig. 12: git add / commit / reset throughput (files/s) per file system.
pub fn fig12(scale: &Scale) -> Vec<(&'static str, f64, f64, f64)> {
    FsKind::COMPARED
        .iter()
        .map(|kind| {
            let fs = kind.make(scale.data_region);
            let manifest =
                tree::generate(fs.as_ref(), "/repo", TreeSpec::linux_like(scale.tree_scale))
                    .expect("tree");
            let mut repo = git::GitRepo::init(fs.as_ref(), "/repo").expect("init");
            let add = repo.add_all(&manifest).expect("add");
            let commit = repo.commit("bench").expect("commit");
            repo.delete_worktree(&manifest).expect("delete");
            let reset = repo.reset_hard().expect("reset");
            (kind.label(), add.ops_per_sec(), commit.ops_per_sec(), reset.ops_per_sec())
        })
        .collect()
}

// ---------------------------------------------------------------------------
// §5.5 — recovery
// ---------------------------------------------------------------------------

/// Outcome of the §5.5 recovery experiment.
#[derive(Debug, Clone)]
pub struct RecoveryOutcome {
    pub files: u64,
    pub directories: u64,
    pub mark_seconds: f64,
    pub repair_seconds: f64,
    pub sweep_seconds: f64,
}

impl RecoveryOutcome {
    pub fn total_seconds(&self) -> f64 {
        self.mark_seconds + self.repair_seconds + self.sweep_seconds
    }
}

/// §5.5: populate `trees` Linux-like source trees, cut the power (no clean
/// unmount) and measure the full mark-and-sweep recovery on remount.
pub fn recovery(scale: &Scale) -> RecoveryOutcome {
    let region = Arc::new(PmemRegion::new(scale.data_region));
    let fs = SimurghFs::format(region.clone(), SimurghConfig::default()).expect("format");
    for t in 0..scale.recovery_trees {
        tree::generate(&fs, &format!("/linux-{t}"), TreeSpec::linux_like(scale.tree_scale))
            .expect("tree");
    }
    drop(fs); // power cut: clean flag stays false
    let remounted = SimurghFs::mount(region, SimurghConfig::default()).expect("recover");
    let r = remounted.recovery_report();
    assert!(!r.was_clean, "recovery path must have run");
    RecoveryOutcome {
        files: r.files,
        directories: r.directories,
        mark_seconds: r.mark_time.as_secs_f64(),
        repair_seconds: r.repair_time.as_secs_f64(),
        sweep_seconds: r.sweep_time.as_secs_f64(),
    }
}

// ---------------------------------------------------------------------------
// Ablations (design choices called out in DESIGN.md)
// ---------------------------------------------------------------------------

/// Ablation: segmented block allocator vs a single segment, under the
/// append benchmark that stresses concurrent allocation.
pub fn ablate_alloc(scale: &Scale) -> Vec<Series> {
    let mut out = Vec::new();
    for (label, segments) in [("segmented (2x cores)", None), ("single segment", Some(1))] {
        let points = scale
            .threads
            .iter()
            .map(|&t| {
                let region = Arc::new(PmemRegion::new(scale.data_region));
                let cfg = SimurghConfig { segments, ..SimurghConfig::default() };
                let fs = SimurghFs::format(region, cfg).expect("format");
                let r = fxmark::append_private(&fs, t, scale.appends);
                (t, r.gibs())
            })
            .collect();
        out.push(Series { fs: label, unit: "GiB/s", points });
    }
    out
}

/// Ablation: per-call security cost (none / jmpp / host syscall / gem5
/// syscall) on the fast resolvepath operation — §5.2's observation that
/// removing the ~330-cycle syscall halves the latency of fast operations.
pub fn ablate_security(scale: &Scale) -> Vec<Series> {
    let kinds = [
        FsKind::SimurghNoSec,
        FsKind::Simurgh,
        FsKind::SimurghSyscall,
    ];
    sweep(&kinds, scale, scale.meta_region, "kops/s", kops, |fs, t| {
        fxmark::resolve_private(fs, t, 5, scale.resolves)
    })
}

/// Ablation: per-file write locking vs relaxed mode on shared-file
/// overwrites (the two Simurgh series of Fig. 7k).
pub fn ablate_relaxed(scale: &Scale) -> Vec<Series> {
    let kinds = [FsKind::Simurgh, FsKind::SimurghRelaxed];
    sweep(&kinds, scale, scale.data_region, "GiB/s", gibs, |fs, t| {
        fxmark::overwrite_shared(fs, t, scale.file_bytes, scale.data_ops)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            threads: vec![1, 2],
            meta_files: 50,
            appends: 50,
            fallocate_chunks: 2,
            data_ops: 100,
            file_bytes: 1 << 20,
            resolves: 100,
            fb_scale: 0.01,
            fb_iters: 2,
            ycsb_records: 100,
            ycsb_ops: 100,
            tree_scale: 0.002,
            recovery_trees: 1,
            meta_region: 64 << 20,
            data_region: 128 << 20,
        }
    }

    #[test]
    fn table1_produces_three_rows() {
        let rows = table1(&tiny());
        assert_eq!(rows.len(), 3);
        for (name, b) in rows {
            let (a, c, f) = b.percentages();
            assert!((a + c + f - 100.0).abs() < 1e-6, "{name} sums to 100%");
        }
    }

    #[test]
    fn fig7_all_panels_produce_series() {
        let scale = tiny();
        for panel in ['a', 'd', 'g', 'k'] {
            let series = fig7(panel, &scale);
            assert!(series.len() >= 5, "panel {panel}");
            for s in &series {
                assert_eq!(s.points.len(), scale.threads.len());
                assert!(s.points.iter().all(|(_, v)| *v >= 0.0));
            }
        }
    }

    #[test]
    fn fig9_is_normalized_to_splitfs() {
        let rows = fig9(&tiny());
        assert_eq!(rows.len(), 7, "LoadA + six runs");
        for (wl, vals) in rows {
            let split = vals.iter().find(|(n, _)| *n == "splitfs").unwrap().1;
            assert!((split - 1.0).abs() < 1e-9, "{wl} splitfs normalized to 1.0");
        }
    }

    #[test]
    fn recovery_runs_and_reports() {
        let out = recovery(&tiny());
        assert!(out.files > 0);
        assert!(out.directories > 0);
        assert!(out.total_seconds() > 0.0);
    }

    #[test]
    fn gem5_reproduction() {
        let r = gem5_cycles(50);
        assert_eq!(r.rows.len(), 4);
    }
}
