//! Benchmark harness for the Simurgh reproduction.
//!
//! [`FsKind`] builds each evaluated file system in its benchmark
//! configuration (Simurgh charging the 46-cycle jmpp delta per call, the
//! kernel baselines charging a host syscall per crossing — §5.1's
//! methodology), [`experiments`] regenerates every table and figure of the
//! paper's evaluation, and the `paper` binary prints them. The Criterion
//! benches under `benches/` reuse the same experiment functions.

pub mod experiments;

use std::sync::Arc;

use simurgh_baselines::KernelFs;
use simurgh_core::{SimurghConfig, SimurghFs};
use simurgh_fsapi::FileSystem;
use simurgh_pmem::PmemRegion;
use simurgh_protfn::SecurityMode;

/// The evaluated file systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsKind {
    Simurgh,
    /// Simurgh with per-file write locking disabled (Fig. 7k "relaxed").
    SimurghRelaxed,
    /// Simurgh without the security cost (ablation upper bound).
    SimurghNoSec,
    /// Simurgh charged as if each call were a host syscall (ablation).
    SimurghSyscall,
    Nova,
    Pmfs,
    Ext4Dax,
    SplitFs,
}

impl FsKind {
    /// The five systems every paper figure compares.
    pub const COMPARED: [FsKind; 5] =
        [FsKind::Simurgh, FsKind::Nova, FsKind::Pmfs, FsKind::Ext4Dax, FsKind::SplitFs];

    pub fn label(self) -> &'static str {
        match self {
            FsKind::Simurgh => "simurgh",
            FsKind::SimurghRelaxed => "simurgh-relaxed",
            FsKind::SimurghNoSec => "simurgh-nosec",
            FsKind::SimurghSyscall => "simurgh-syscall",
            FsKind::Nova => "nova",
            FsKind::Pmfs => "pmfs",
            FsKind::Ext4Dax => "ext4-dax",
            FsKind::SplitFs => "splitfs",
        }
    }

    /// Builds a fresh instance over `bytes` of emulated NVMM.
    pub fn make(self, bytes: usize) -> Box<dyn FileSystem> {
        // Calibrate the cost-injection clock before any timed phase so the
        // one-time calibration never lands inside a measurement.
        let _ = simurgh_pmem::SpinClock::global();
        let region = Arc::new(PmemRegion::new(bytes));
        region.prewarm(); // take first-touch faults outside the timed phase
        match self {
            FsKind::Simurgh | FsKind::SimurghRelaxed | FsKind::SimurghNoSec
            | FsKind::SimurghSyscall => {
                let cfg = SimurghConfig {
                    security: match self {
                        FsKind::SimurghNoSec => SecurityMode::Zero,
                        FsKind::SimurghSyscall => SecurityMode::SyscallHost,
                        _ => SecurityMode::Jmpp,
                    },
                    charge_security_cost: true,
                    relaxed_writes: self == FsKind::SimurghRelaxed,
                    ..SimurghConfig::default()
                };
                Box::new(SimurghFs::format(region, cfg).expect("format simurgh"))
            }
            FsKind::Nova => Box::new(simurgh_baselines::nova(region)),
            FsKind::Pmfs => Box::new(simurgh_baselines::pmfs(region)),
            FsKind::Ext4Dax => Box::new(simurgh_baselines::ext4dax(region)),
            FsKind::SplitFs => Box::new(simurgh_baselines::splitfs(region)),
        }
    }

    /// Builds an instrumented SimurghFs (for breakdown experiments).
    pub fn make_simurgh(bytes: usize) -> SimurghFs {
        let _ = simurgh_pmem::SpinClock::global();
        let region = Arc::new(PmemRegion::new(bytes));
        region.prewarm();
        let cfg = SimurghConfig { charge_security_cost: true, ..SimurghConfig::default() };
        SimurghFs::format(region, cfg).expect("format simurgh")
    }

    /// Builds an instrumented NOVA model (for Table 1).
    pub fn make_nova(bytes: usize) -> KernelFs {
        let _ = simurgh_pmem::SpinClock::global();
        let region = Arc::new(PmemRegion::new(bytes));
        region.prewarm();
        simurgh_baselines::nova(region)
    }
}

/// One plotted series: `(threads, value)` points for one file system.
#[derive(Debug, Clone)]
pub struct Series {
    pub fs: &'static str,
    pub unit: &'static str,
    pub points: Vec<(usize, f64)>,
}

impl Series {
    pub fn value_at(&self, threads: usize) -> Option<f64> {
        self.points.iter().find(|(t, _)| *t == threads).map(|(_, v)| *v)
    }

    pub fn max_value(&self) -> f64 {
        self.points.iter().map(|(_, v)| *v).fold(0.0, f64::max)
    }
}

/// Experiment scale knobs. `quick` keeps every figure under a few seconds
/// per point; `paper` approaches the published workload sizes.
#[derive(Debug, Clone)]
pub struct Scale {
    pub threads: Vec<usize>,
    /// Files per process in create/unlink/rename benches.
    pub meta_files: usize,
    /// 4-KB appends per process.
    pub appends: usize,
    /// 4-MB fallocate chunks per process.
    pub fallocate_chunks: usize,
    /// Random 4-KB reads/writes per process.
    pub data_ops: usize,
    /// Shared/private file size for read/overwrite benches.
    pub file_bytes: usize,
    /// Path resolutions per process.
    pub resolves: usize,
    /// Filebench scale factor and iterations.
    pub fb_scale: f64,
    pub fb_iters: usize,
    /// YCSB records / operations.
    pub ycsb_records: usize,
    pub ycsb_ops: usize,
    /// Source-tree scale for tar/git (1.0 = one Linux tree).
    pub tree_scale: f64,
    /// Trees for the recovery test (paper: 10).
    pub recovery_trees: usize,
    /// Region size for metadata benches / data benches.
    pub meta_region: usize,
    pub data_region: usize,
}

impl Scale {
    /// Sub-second-per-point scale for CI and Criterion.
    pub fn quick() -> Scale {
        Scale {
            threads: vec![1, 2, 4],
            meta_files: 10_000,
            appends: 5_000,
            fallocate_chunks: 8,
            data_ops: 10_000,
            file_bytes: 16 << 20,
            resolves: 20_000,
            fb_scale: 0.02,
            fb_iters: 10,
            ycsb_records: 2000,
            ycsb_ops: 2000,
            tree_scale: 0.02,
            recovery_trees: 2,
            meta_region: 512 << 20,
            data_region: 1 << 30,
        }
    }

    /// Closer to the paper's sizes (minutes per figure).
    pub fn paper() -> Scale {
        Scale {
            threads: vec![1, 2, 4, 6, 8, 10],
            meta_files: 100_000,
            appends: 100_000,
            fallocate_chunks: 100,
            data_ops: 100_000,
            file_bytes: 256 << 20,
            resolves: 200_000,
            fb_scale: 1.0,
            fb_iters: 50,
            ycsb_records: 100_000,
            ycsb_ops: 100_000,
            tree_scale: 1.0,
            recovery_trees: 10,
            meta_region: 4 << 30,
            data_region: 8 << 30,
        }
    }
}

/// Pretty-prints a figure's series as an aligned table.
pub fn print_series(title: &str, series: &[Series]) {
    println!("\n== {title} ==");
    let threads: Vec<usize> = series
        .first()
        .map(|s| s.points.iter().map(|(t, _)| *t).collect())
        .unwrap_or_default();
    print!("{:<18}", "fs \\ threads");
    for t in &threads {
        print!("{t:>12}");
    }
    println!("  [{}]", series.first().map_or("", |s| s.unit));
    for s in series {
        print!("{:<18}", s.fs);
        for (_, v) in &s.points {
            print!("{v:>12.2}");
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simurgh_fsapi::{FileMode, ProcCtx};

    #[test]
    fn every_kind_builds_and_works() {
        for kind in [
            FsKind::Simurgh,
            FsKind::SimurghRelaxed,
            FsKind::SimurghNoSec,
            FsKind::SimurghSyscall,
            FsKind::Nova,
            FsKind::Pmfs,
            FsKind::Ext4Dax,
            FsKind::SplitFs,
        ] {
            let fs = kind.make(32 << 20);
            let ctx = ProcCtx::root(1);
            fs.mkdir(&ctx, "/x", FileMode::dir(0o755)).unwrap();
            fs.write_file(&ctx, "/x/f", b"abc").unwrap();
            assert_eq!(fs.read_to_vec(&ctx, "/x/f").unwrap(), b"abc", "{}", kind.label());
        }
    }

    #[test]
    fn series_helpers() {
        let s = Series { fs: "x", unit: "kops/s", points: vec![(1, 2.0), (2, 5.0)] };
        assert_eq!(s.value_at(2), Some(5.0));
        assert_eq!(s.value_at(3), None);
        assert_eq!(s.max_value(), 5.0);
    }

    #[test]
    fn scales_are_ordered() {
        let q = Scale::quick();
        let p = Scale::paper();
        assert!(q.meta_files < p.meta_files);
        assert!(q.threads.len() <= p.threads.len());
    }
}
