//! The paper harness: regenerates every table and figure of the Simurgh
//! evaluation and prints them as aligned text tables.
//!
//! ```text
//! cargo run -p simurgh-bench --release --bin paper -- all
//! cargo run -p simurgh-bench --release --bin paper -- fig7a fig7b --threads 1,2,4
//! cargo run -p simurgh-bench --release --bin paper -- recovery --full
//! ```

use simurgh_bench::{experiments, print_series, Scale};

fn print_breakdowns(title: &str, rows: &[(&'static str, simurgh_fsapi::Breakdown)]) {
    println!("\n== {title} ==");
    println!("{:<14}{:>14}{:>14}{:>14}", "workload", "application", "data copy", "file system");
    for (name, b) in rows {
        let (a, c, f) = b.percentages();
        println!("{name:<14}{a:>13.2}%{c:>13.2}%{f:>13.2}%");
    }
}

fn print_grouped(title: &str, unit: &str, rows: &[(&'static str, Vec<(&'static str, f64)>)]) {
    println!("\n== {title} ==");
    if let Some((_, first)) = rows.first() {
        print!("{:<12}", "workload");
        for (fs, _) in first {
            print!("{fs:>14}");
        }
        println!("  [{unit}]");
    }
    for (wl, vals) in rows {
        print!("{wl:<12}");
        for (_, v) in vals {
            print!("{v:>14.2}");
        }
        println!();
    }
}

fn run_experiment(name: &str, scale: &Scale) {
    match name {
        "table1" => {
            let rows = experiments::table1(scale);
            print_breakdowns("Table 1: execution-time breakdown on NOVA", &rows);
        }
        "table2" => {
            println!("\n== Table 2: Filebench workloads (default settings) ==");
            println!(
                "{:<12}{:>10}{:>12}{:>11}{:>10}",
                "workload", "# files", "dir width", "file size", "threads"
            );
            for cfg in experiments::table2() {
                println!(
                    "{:<12}{:>10}{:>12}{:>10}K{:>10}",
                    cfg.name,
                    cfg.nfiles,
                    cfg.dir_width,
                    cfg.file_size / 1024,
                    cfg.threads
                );
            }
        }
        "gem5" => {
            let r = experiments::gem5_cycles(100);
            println!("\n== §3.3: protected-function cycle costs (gem5 model) ==");
            println!("{:<26}{:>10}{:>12}{:>16}", "mechanism", "cycles", "ns @2.5GHz", "simulated ns/op");
            for row in &r.rows {
                println!(
                    "{:<26}{:>10}{:>12.1}{:>16.1}",
                    row.mechanism, row.modelled_cycles, row.modelled_ns, row.simulated_ns
                );
            }
            println!("jmpp+pret execution blocks:");
            for (block, cycles) in &r.jmpp_blocks {
                println!("  {block:<46}{cycles:>6} cycles");
            }
            println!(
                "host syscall vs protected call: {:.1}x more cycles",
                r.syscall_speedup_host()
            );
        }
        "fig6" => print_series("Fig. 6: FxMark DRBL read, original vs adapted", &experiments::fig6(scale)),
        p if p.starts_with("fig7") && p.len() == 5 => {
            let panel = p.chars().last().unwrap();
            let titles = [
                ('a', "create, private dirs (MWCL)"),
                ('b', "create, shared dir (MWCM)"),
                ('c', "unlink, private dirs (MWUL)"),
                ('d', "rename, shared dir (MWRM)"),
                ('e', "resolvepath, private (MRPL)"),
                ('f', "resolvepath, shared (MRPM)"),
                ('g', "append (DWAL)"),
                ('h', "fallocate (DWTL)"),
                ('i', "shared-file read (DRBM)"),
                ('j', "private-file read (DRBL)"),
                ('k', "shared-file overwrite (DWOM)"),
                ('l', "private-file write (DWOL)"),
            ];
            let title = titles.iter().find(|(c, _)| *c == panel).map(|(_, t)| *t).unwrap_or("?");
            print_series(&format!("Fig. 7{panel}: {title}"), &experiments::fig7(panel, scale));
        }
        "fig7" => {
            for panel in 'a'..='l' {
                run_experiment(&format!("fig7{panel}"), scale);
            }
        }
        "fig8" => print_grouped("Fig. 8: Filebench throughput", "kops/s", &experiments::fig8(scale)),
        "fig9" => print_grouped(
            "Fig. 9: YCSB throughput (normalized to SplitFS)",
            "x SplitFS",
            &experiments::fig9(scale),
        ),
        "fig10" => {
            let rows = experiments::fig10(scale);
            print_breakdowns("Fig. 10: YCSB execution-time breakdown for Simurgh", &rows);
        }
        "fig11" => {
            println!("\n== Fig. 11: tar throughput ==");
            println!("{:<12}{:>14}{:>14}", "fs", "pack MiB/s", "unpack MiB/s");
            for (fs, pack, unpack) in experiments::fig11(scale) {
                println!("{fs:<12}{pack:>14.1}{unpack:>14.1}");
            }
        }
        "fig12" => {
            println!("\n== Fig. 12: git throughput ==");
            println!("{:<12}{:>14}{:>14}{:>14}", "fs", "add files/s", "commit f/s", "reset f/s");
            for (fs, add, commit, reset) in experiments::fig12(scale) {
                println!("{fs:<12}{add:>14.0}{commit:>14.0}{reset:>14.0}");
            }
        }
        "recovery" => {
            let out = experiments::recovery(scale);
            println!("\n== §5.5: full-system recovery ==");
            println!("files: {}  directories: {}", out.files, out.directories);
            println!(
                "mark: {:.3}s  repair: {:.3}s  sweep: {:.3}s  total: {:.3}s",
                out.mark_seconds, out.repair_seconds, out.sweep_seconds, out.total_seconds()
            );
            println!("(paper: 672,940 files / 88,780 dirs recovered in 4.1 s)");
        }
        "obs" => {
            // --json is filtered out of the experiment list by main(), so it
            // can only mean "emit the machine-readable registry".
            let json = std::env::args().any(|a| a == "--json");
            if json {
                println!("{}", experiments::obs_probe(scale, true));
            } else {
                println!("\n== Unified observability registry: per-op latency ==");
                print!("{}", experiments::obs_probe(scale, false));
                println!("(run with --json for the full registry: latency + dir + data + pmem + timers + alloc_faults)");
            }
        }
        "compact" => {
            let json = std::env::args().any(|a| a == "--json");
            if json {
                println!("{}", experiments::compact_run(scale, true));
            } else {
                println!("\n== Aging & compaction: zipfian churn, then online compaction ==");
                print!("{}", experiments::compact_run(scale, false));
            }
        }
        "bench-snapshot" => {
            // Always machine-readable: this is the profile pin a change
            // commits next to its EXPERIMENTS.md table.
            println!("{}", experiments::bench_snapshot(scale));
        }
        // Thin aliases kept for scripts that predate `paper obs`: each prints
        // the probe-counter slice the unified registry also carries.
        "dirstats" => {
            println!("\n== Directory probe counters (JSON) ==");
            println!("{}", experiments::dir_probe_stats(scale));
        }
        "datastats" => {
            println!("\n== Data-path probe counters (JSON) ==");
            println!("{}", experiments::data_probe_stats(scale));
        }
        "ablate-alloc" => print_series("Ablation: segmented vs serial block allocator (DWAL)", &experiments::ablate_alloc(scale)),
        "ablate-sec" => print_series("Ablation: security cost per call (MRPL)", &experiments::ablate_security(scale)),
        "ablate-relaxed" => print_series("Ablation: per-file write lock vs relaxed (DWOM)", &experiments::ablate_relaxed(scale)),
        "all" => {
            for e in [
                "gem5", "table1", "table2", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
                "fig12", "recovery", "ablate-alloc", "ablate-sec", "ablate-relaxed",
            ] {
                run_experiment(e, scale);
            }
        }
        other => {
            eprintln!("unknown experiment '{other}'; see --help");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") || args.is_empty() {
        eprintln!(
            "usage: paper [EXPERIMENT...] [--full] [--threads 1,2,4] [--json]\n\
             experiments: all gem5 table1 table2 fig6 fig7 fig7a..fig7l fig8 fig9 fig10\n\
                          fig11 fig12 recovery obs compact bench-snapshot dirstats\n\
                          datastats ablate-alloc ablate-sec ablate-relaxed\n\
             --full    run near paper-scale workloads (minutes per figure)\n\
             --threads comma-separated process counts for the sweeps\n\
             --json    with obs/compact: emit the machine-readable object"
        );
        if args.is_empty() {
            std::process::exit(2);
        }
        return;
    }
    let mut scale = if args.iter().any(|a| a == "--full") { Scale::paper() } else { Scale::quick() };
    if let Some(pos) = args.iter().position(|a| a == "--threads") {
        let spec = args.get(pos + 1).expect("--threads needs a value");
        scale.threads = spec
            .split(',')
            .map(|s| s.parse().expect("thread counts are integers"))
            .collect();
    }
    let experiments: Vec<&String> =
        args.iter().filter(|a| !a.starts_with("--") && Some(*a) != args.iter().skip_while(|x| *x != "--threads").nth(1)).collect();
    for e in experiments {
        run_experiment(e, &scale);
    }
}
