//! The generic modelled kernel file system.
//!
//! One implementation serves all four baselines; an [`FsProfile`] selects
//! the directory index, allocator, journal and data-path mechanisms. File
//! *data* lives in the shared pmem region (so copies cost what Simurgh's
//! copies cost); metadata lives in volatile maps guarded by the modelled
//! VFS locks — the baselines are never crash-tested, only benchmarked, and
//! their crash consistency is represented by their journal traffic.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use simurgh_fsapi::fs::{DirEntry, FileSystem, OpenTable, ProcCtx};
use simurgh_fsapi::types::{access, Fd, FileMode, FileType, FsStats, OpenFlags, SeekFrom, Stat};
use simurgh_fsapi::{path, FsError, FsResult, OpTimers, TimerCategory};
use simurgh_pmem::{PPtr, PmemRegion};

use crate::profile::{AllocKind, DirKind, FsProfile, JournalKind};
use crate::vfs::{DentryCache, DirLocks, RwSem, SyscallMeter};

const BLOCK: u64 = 4096;
const ROOT_INO: u64 = 1;
const JOURNAL_OFF: u64 = 4096;
const JOURNAL_LEN: u64 = 4 << 20;
const SYMLINK_HOPS: usize = 16;

// ---------------------------------------------------------------------------
// Directory index per profile
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum DirIndex {
    Hash(HashMap<String, u64>),
    /// PMFS: unsorted dirents; every lookup/remove scans.
    Linear(Vec<(String, u64)>),
    Tree(BTreeMap<String, u64>),
}

impl DirIndex {
    fn new(kind: DirKind) -> Self {
        match kind {
            DirKind::Hash => DirIndex::Hash(HashMap::new()),
            DirKind::Linear => DirIndex::Linear(Vec::new()),
            DirKind::Tree => DirIndex::Tree(BTreeMap::new()),
        }
    }

    fn get(&self, name: &str) -> Option<u64> {
        match self {
            DirIndex::Hash(m) => m.get(name).copied(),
            DirIndex::Linear(v) => v.iter().find(|(n, _)| n == name).map(|(_, i)| *i),
            DirIndex::Tree(m) => m.get(name).copied(),
        }
    }

    fn insert(&mut self, name: String, ino: u64) {
        match self {
            DirIndex::Hash(m) => {
                m.insert(name, ino);
            }
            DirIndex::Linear(v) => v.push((name, ino)),
            DirIndex::Tree(m) => {
                m.insert(name, ino);
            }
        }
    }

    fn remove(&mut self, name: &str) -> Option<u64> {
        match self {
            DirIndex::Hash(m) => m.remove(name),
            DirIndex::Linear(v) => {
                let idx = v.iter().position(|(n, _)| n == name)?;
                Some(v.remove(idx).1) // O(n) shift, like PMFS's dirent scan
            }
            DirIndex::Tree(m) => m.remove(name),
        }
    }

    fn len(&self) -> usize {
        match self {
            DirIndex::Hash(m) => m.len(),
            DirIndex::Linear(v) => v.len(),
            DirIndex::Tree(m) => m.len(),
        }
    }

    fn entries(&self) -> Vec<(String, u64)> {
        match self {
            DirIndex::Hash(m) => m.iter().map(|(n, i)| (n.clone(), *i)).collect(),
            DirIndex::Linear(v) => v.clone(),
            DirIndex::Tree(m) => m.iter().map(|(n, i)| (n.clone(), *i)).collect(),
        }
    }
}

// ---------------------------------------------------------------------------
// Block pool & journal
// ---------------------------------------------------------------------------

struct BlockPool {
    kind: AllocKind,
    serial: Mutex<Vec<(u64, u64)>>,
    shards: Vec<Mutex<Vec<(u64, u64)>>>,
}

impl BlockPool {
    fn new(kind: AllocKind, first_block: u64, nblocks: u64) -> Self {
        const NSHARDS: u64 = 8;
        match kind {
            AllocKind::Serial => BlockPool {
                kind,
                serial: Mutex::new(vec![(first_block, nblocks)]),
                shards: Vec::new(),
            },
            AllocKind::PerCpu => {
                let per = nblocks / NSHARDS;
                let mut shards = Vec::new();
                for s in 0..NSHARDS {
                    let start = first_block + s * per;
                    let len = if s == NSHARDS - 1 { nblocks - s * per } else { per };
                    shards.push(Mutex::new(vec![(start, len)]));
                }
                BlockPool { kind, serial: Mutex::new(Vec::new()), shards }
            }
        }
    }

    fn take(list: &mut Vec<(u64, u64)>, blocks: u64) -> Option<u64> {
        let idx = list.iter().position(|&(_, len)| len >= blocks)?;
        let (start, len) = list[idx];
        if len == blocks {
            list.remove(idx);
        } else {
            list[idx] = (start + blocks, len - blocks);
        }
        Some(start)
    }

    fn alloc(&self, blocks: u64) -> Option<u64> {
        match self.kind {
            AllocKind::Serial => Self::take(&mut self.serial.lock(), blocks),
            AllocKind::PerCpu => {
                let tid = std::thread::current().id();
                let mut h = std::collections::hash_map::DefaultHasher::new();
                use std::hash::{Hash, Hasher};
                tid.hash(&mut h);
                let start = (h.finish() as usize) % self.shards.len();
                for i in 0..self.shards.len() {
                    let shard = &self.shards[(start + i) % self.shards.len()];
                    if let Some(b) = Self::take(&mut shard.lock(), blocks) {
                        return Some(b);
                    }
                }
                None
            }
        }
    }

    fn free(&self, first: u64, blocks: u64) {
        match self.kind {
            AllocKind::Serial => self.serial.lock().push((first, blocks)),
            AllocKind::PerCpu => self.shards[0].lock().push((first, blocks)),
        }
    }
}

/// Journals metadata operations with *real* pmem traffic per the profile.
struct Journal {
    kind: JournalKind,
    region: Arc<PmemRegion>,
    /// Rotating cursors; PerInode shards by inode, others use slot 0.
    cursors: Vec<AtomicU64>,
    global: Mutex<u32>,
    payload: Vec<u8>,
}

impl Journal {
    fn new(kind: JournalKind, region: Arc<PmemRegion>) -> Self {
        let max_bytes = match kind {
            JournalKind::PerInode { bytes } | JournalKind::GlobalMutex { bytes } => bytes,
            JournalKind::Batched { bytes, commit_bytes, .. } => bytes.max(commit_bytes),
        };
        Journal {
            kind,
            region,
            cursors: (0..16).map(|_| AtomicU64::new(0)).collect(),
            global: Mutex::new(0),
            payload: vec![0xa5; max_bytes],
        }
    }

    fn slot_write(&self, shard: usize, bytes: usize, persist: bool) {
        let lane = JOURNAL_LEN / 16;
        let cur = self.cursors[shard].fetch_add(bytes as u64, Ordering::Relaxed) % (lane - BLOCK);
        let off = PPtr::new(JOURNAL_OFF + shard as u64 * lane + cur);
        self.region.write_from(off, &self.payload[..bytes]);
        if persist {
            self.region.persist(off, bytes);
        }
    }

    /// Charges one metadata operation on `ino`.
    fn meta_op(&self, ino: u64) {
        match self.kind {
            JournalKind::PerInode { bytes } => {
                self.slot_write((ino as usize) % 16, bytes, true);
            }
            JournalKind::GlobalMutex { bytes } => {
                let _g = self.global.lock();
                self.slot_write(0, bytes, true);
            }
            JournalKind::Batched { bytes, flush_every, commit_bytes } => {
                let mut count = self.global.lock();
                self.slot_write(0, bytes, false);
                *count += 1;
                if *count >= flush_every {
                    *count = 0;
                    self.slot_write(0, commit_bytes, true);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Nodes
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum KKind {
    File { extents: Vec<(u64, u64)>, size: u64, allocated: u64 },
    Dir(DirIndex),
    Symlink(String),
}

#[derive(Debug, Clone)]
struct KNode {
    kind: KKind,
    perm: u16,
    uid: u32,
    gid: u32,
    nlink: u32,
    atime: u64,
    mtime: u64,
    ctime: u64,
}

impl KNode {
    fn ftype(&self) -> FileType {
        match self.kind {
            KKind::File { .. } => FileType::Regular,
            KKind::Dir(_) => FileType::Directory,
            KKind::Symlink(_) => FileType::Symlink,
        }
    }

    fn size(&self) -> u64 {
        match &self.kind {
            KKind::File { size, .. } => *size,
            KKind::Dir(d) => d.len() as u64,
            KKind::Symlink(t) => t.len() as u64,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct KOpen {
    ino: u64,
    pos: u64,
    flags: OpenFlags,
}

/// The modelled kernel file system.
pub struct KernelFs {
    region: Arc<PmemRegion>,
    profile: FsProfile,
    nodes: RwLock<HashMap<u64, Arc<RwLock<KNode>>>>,
    next_ino: AtomicU64,
    dcache: DentryCache,
    dir_locks: DirLocks,
    rwsems: Mutex<HashMap<u64, Arc<RwSem>>>,
    syscall: SyscallMeter,
    pool: BlockPool,
    journal: Journal,
    opens: OpenTable<KOpen>,
    timers: OpTimers,
    clock: AtomicU64,
}

impl KernelFs {
    pub fn new(region: Arc<PmemRegion>, profile: FsProfile) -> Self {
        let data_start = JOURNAL_OFF + JOURNAL_LEN;
        assert!(region.len() as u64 > data_start + BLOCK, "region too small for a baseline fs");
        let nblocks = (region.len() as u64 - data_start) / BLOCK;
        let mut nodes = HashMap::new();
        nodes.insert(
            ROOT_INO,
            Arc::new(RwLock::new(KNode {
                kind: KKind::Dir(DirIndex::new(profile.dir)),
                perm: 0o755,
                uid: 0,
                gid: 0,
                nlink: 2,
                atime: 0,
                mtime: 0,
                ctime: 0,
            })),
        );
        KernelFs {
            journal: Journal::new(profile.journal, region.clone()),
            pool: BlockPool::new(profile.alloc, data_start / BLOCK, nblocks),
            region,
            profile,
            nodes: RwLock::new(nodes),
            next_ino: AtomicU64::new(2),
            dcache: DentryCache::default(),
            dir_locks: DirLocks::default(),
            rwsems: Mutex::new(HashMap::new()),
            syscall: SyscallMeter::new(profile.syscall),
            opens: OpenTable::new(),
            timers: OpTimers::default(),
            clock: AtomicU64::new(1),
        }
    }

    /// Breakdown counters (Table 1 harness).
    pub fn timers(&self) -> &OpTimers {
        &self.timers
    }

    /// Number of syscalls charged so far (diagnostics).
    pub fn syscalls(&self) -> u64 {
        self.syscall.calls()
    }

    fn now(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    fn node(&self, ino: u64) -> FsResult<Arc<RwLock<KNode>>> {
        self.nodes.read().get(&ino).cloned().ok_or(FsError::BadFd)
    }

    fn rwsem(&self, ino: u64) -> Arc<RwSem> {
        self.rwsems.lock().entry(ino).or_insert_with(|| Arc::new(RwSem::default())).clone()
    }

    fn alloc_node(&self, node: KNode) -> u64 {
        let ino = self.next_ino.fetch_add(1, Ordering::Relaxed);
        self.nodes.write().insert(ino, Arc::new(RwLock::new(node)));
        ino
    }

    fn drop_node(&self, ino: u64) {
        if let Some(n) = self.nodes.write().remove(&ino) {
            let n = n.read();
            if let KKind::File { extents, .. } = &n.kind {
                for (start, len) in extents {
                    self.pool.free(start / BLOCK, len.div_ceil(BLOCK));
                }
            }
        }
        self.rwsems.lock().remove(&ino);
        self.dir_locks.forget(ino);
    }

    /// Resolves a path; the VFS walk: dcache first, directory index on miss.
    fn resolve(&self, ctx: &ProcCtx, p: &str, follow_final: bool) -> FsResult<u64> {
        let comps = path::components(p)?;
        self.walk(ctx, &comps, follow_final, 0)
    }

    fn walk(&self, ctx: &ProcCtx, comps: &[&str], follow_final: bool, hops: usize) -> FsResult<u64> {
        if hops > SYMLINK_HOPS {
            return Err(FsError::TooManyLinks);
        }
        let mut cur = ROOT_INO;
        for (i, comp) in comps.iter().enumerate() {
            let dir = self.node(cur).map_err(|_| FsError::NotFound)?;
            {
                let d = dir.read();
                if !matches!(d.kind, KKind::Dir(_)) {
                    return Err(FsError::NotDir);
                }
                if !ctx.creds.may(access::X, d.perm, d.uid, d.gid) {
                    return Err(FsError::Access);
                }
            }
            let next = match self.dcache.lookup(cur, comp) {
                Some(ino) => ino,
                None => {
                    let d = dir.read();
                    let KKind::Dir(index) = &d.kind else {
                        return Err(FsError::NotDir);
                    };
                    let ino = index.get(comp).ok_or(FsError::NotFound)?;
                    drop(d);
                    self.dcache.insert(cur, comp, ino);
                    ino
                }
            };
            let is_final = i + 1 == comps.len();
            let node = self.node(next).map_err(|_| FsError::NotFound)?;
            let target = {
                let n = node.read();
                match &n.kind {
                    KKind::Symlink(t) if !is_final || follow_final => Some(t.clone()),
                    _ => None,
                }
            };
            if let Some(t) = target {
                let tcomps = path::components(&t)?;
                let resolved = self.walk(ctx, &tcomps, true, hops + 1)?;
                if is_final {
                    return Ok(resolved);
                }
                cur = resolved;
            } else {
                cur = next;
            }
        }
        Ok(cur)
    }

    fn resolve_parent<'p>(&self, ctx: &ProcCtx, p: &'p str) -> FsResult<(u64, &'p str)> {
        let (parent, name) = path::split_parent(p)?;
        let dir = self.walk(ctx, &parent, true, 0)?;
        let node = self.node(dir)?;
        let n = node.read();
        if !matches!(n.kind, KKind::Dir(_)) {
            return Err(FsError::NotDir);
        }
        if !ctx.creds.may(access::W | access::X, n.perm, n.uid, n.gid) {
            return Err(FsError::Access);
        }
        Ok((dir, name))
    }

    fn stat_of(&self, ino: u64) -> FsResult<Stat> {
        let node = self.node(ino)?;
        let n = node.read();
        Ok(Stat {
            ino,
            mode: FileMode { ftype: n.ftype(), perm: n.perm },
            uid: n.uid,
            gid: n.gid,
            size: n.size(),
            nlink: n.nlink,
            atime: n.atime,
            mtime: n.mtime,
            ctime: n.ctime,
        })
    }

    /// Grows a file's allocation; staging-aware for SplitFS appends.
    fn grow(&self, node: &mut KNode, want: u64) -> FsResult<()> {
        let KKind::File { extents, allocated, .. } = &mut node.kind else {
            return Err(FsError::IsDir);
        };
        if want <= *allocated {
            return Ok(());
        }
        let staging = self.profile.append_staging as u64;
        let need = want - *allocated;
        // Staged growth doubles from 64 KB up to the staging region size,
        // so small files do not each pin a whole 2-MB region.
        let chunk_bytes = if staging > 0 {
            need.max(staging.min((*allocated).max(64 * 1024)))
        } else {
            need
        };
        let mut blocks = chunk_bytes.div_ceil(BLOCK);
        while blocks > 0 {
            let mut try_blocks = blocks;
            let got = loop {
                match self.pool.alloc(try_blocks) {
                    Some(b) => break Some((b, try_blocks)),
                    None if try_blocks > 1 => try_blocks = try_blocks.div_ceil(2),
                    None => break None,
                }
            };
            let Some((b, n)) = got else {
                return Err(FsError::NoSpace);
            };
            let bytes = n * BLOCK;
            // Merge with physical tail when contiguous.
            if let Some(last) = extents.last_mut() {
                if last.0 + last.1 == b * BLOCK {
                    last.1 += bytes;
                } else {
                    extents.push((b * BLOCK, bytes));
                }
            } else {
                extents.push((b * BLOCK, bytes));
            }
            *allocated += bytes;
            blocks -= n;
            if *allocated >= want {
                break;
            }
        }
        Ok(())
    }

    fn map_off(extents: &[(u64, u64)], off: u64) -> Option<(u64, u64)> {
        let mut logical = 0;
        for &(start, len) in extents {
            if off < logical + len {
                return Some((start + (off - logical), len - (off - logical)));
            }
            logical += len;
        }
        None
    }

    fn write_node(&self, node: &mut KNode, off: u64, data: &[u8]) -> FsResult<usize> {
        let end = off + data.len() as u64;
        self.grow(node, end)?;
        let KKind::File { extents, size, .. } = &mut node.kind else {
            return Err(FsError::IsDir);
        };
        // Zero-fill a hole if writing past the current end.
        if off > *size {
            let mut pos = *size;
            let zeros = [0u8; 4096];
            while pos < off {
                let (addr, avail) = Self::map_off(extents, pos).ok_or(FsError::NoSpace)?;
                let n = (off - pos).min(avail).min(4096);
                self.region.write_from(PPtr::new(addr), &zeros[..n as usize]);
                pos += n;
            }
        }
        let mut done = 0usize;
        while done < data.len() {
            let (addr, avail) =
                Self::map_off(extents, off + done as u64).ok_or(FsError::NoSpace)?;
            let n = (data.len() - done).min(avail as usize);
            self.region.write_from(PPtr::new(addr), &data[done..done + n]);
            self.region.persist(PPtr::new(addr), n);
            done += n;
        }
        if end > *size {
            *size = end;
        }
        node.mtime = self.now();
        Ok(data.len())
    }

    fn read_node(&self, node: &KNode, off: u64, buf: &mut [u8]) -> FsResult<usize> {
        let KKind::File { extents, size, .. } = &node.kind else {
            return Err(FsError::IsDir);
        };
        if off >= *size {
            return Ok(0);
        }
        let want = buf.len().min((*size - off) as usize);
        let mut done = 0usize;
        while done < want {
            let Some((addr, avail)) = Self::map_off(extents, off + done as u64) else {
                break;
            };
            let n = (want - done).min(avail as usize);
            self.region.read_into(PPtr::new(addr), &mut buf[done..done + n]);
            done += n;
        }
        Ok(done)
    }

    fn create_in(
        &self,
        _ctx: &ProcCtx,
        dir_ino: u64,
        name: &str,
        node: KNode,
        excl_err: FsError,
    ) -> FsResult<u64> {
        path::validate_name(name)?;
        let dir_lock = self.dir_locks.get(dir_ino);
        let _dg = dir_lock.lock(); // i_rwsem exclusive: serializes the dir
        let dirn = self.node(dir_ino)?;
        {
            let d = dirn.read();
            let KKind::Dir(index) = &d.kind else {
                return Err(FsError::NotDir);
            };
            if index.get(name).is_some() {
                return Err(excl_err);
            }
        }
        let ino = self.alloc_node(node);
        {
            let mut d = dirn.write();
            let KKind::Dir(index) = &mut d.kind else {
                return Err(FsError::NotDir);
            };
            index.insert(name.to_owned(), ino);
            d.mtime = self.now();
        }
        self.dcache.insert(dir_ino, name, ino);
        self.journal.meta_op(dir_ino);
        Ok(ino)
    }

    fn charge_meta(&self) {
        self.syscall.charge();
        self.syscall.charge_cycles(self.profile.meta_path_cycles);
    }

    fn with_open(&self, ctx: &ProcCtx, fd: Fd) -> FsResult<KOpen> {
        self.opens.with(ctx.pid, fd, |o| *o)
    }
}

impl simurgh_fsapi::Instrumented for KernelFs {
    fn timers(&self) -> &OpTimers {
        &self.timers
    }
}

impl FileSystem for KernelFs {
    fn name(&self) -> &str {
        self.profile.name
    }

    fn open(&self, ctx: &ProcCtx, p: &str, flags: OpenFlags, mode: FileMode) -> FsResult<Fd> {
        self.charge_meta();
        self.timers.time(TimerCategory::Fs, || {
            let ino = match self.resolve(ctx, p, true) {
                Ok(ino) => {
                    if flags.excl && flags.create {
                        return Err(FsError::Exists);
                    }
                    let node = self.node(ino)?;
                    {
                        let n = node.read();
                        if matches!(n.kind, KKind::Dir(_)) && flags.write {
                            return Err(FsError::IsDir);
                        }
                        let mut want = 0;
                        if flags.read {
                            want |= access::R;
                        }
                        if flags.write {
                            want |= access::W;
                        }
                        if want != 0 && !ctx.creds.may(want, n.perm, n.uid, n.gid) {
                            return Err(FsError::Access);
                        }
                    }
                    if flags.truncate && flags.write {
                        let mut n = node.write();
                        if let KKind::File { size, .. } = &mut n.kind {
                            *size = 0;
                        }
                        self.journal.meta_op(ino);
                    }
                    ino
                }
                Err(FsError::NotFound) if flags.create => {
                    let (dir, name) = self.resolve_parent(ctx, p)?;
                    let now = self.now();
                    self.create_in(
                        ctx,
                        dir,
                        name,
                        KNode {
                            kind: KKind::File { extents: Vec::new(), size: 0, allocated: 0 },
                            perm: mode.perm,
                            uid: ctx.creds.uid,
                            gid: ctx.creds.gid,
                            nlink: 1,
                            atime: now,
                            mtime: now,
                            ctime: now,
                        },
                        FsError::Exists,
                    )
                    .or_else(|e| {
                        if e == FsError::Exists && !flags.excl {
                            self.resolve(ctx, p, true)
                        } else {
                            Err(e)
                        }
                    })?
                }
                Err(e) => return Err(e),
            };
            let pos = if flags.append { self.node(ino)?.read().size() } else { 0 };
            Ok(self.opens.insert(ctx.pid, KOpen { ino, pos, flags }))
        })
    }

    fn close(&self, ctx: &ProcCtx, fd: Fd) -> FsResult<()> {
        self.syscall.charge();
        self.opens.remove(ctx.pid, fd).map(|_| ())
    }

    fn read(&self, ctx: &ProcCtx, fd: Fd, buf: &mut [u8]) -> FsResult<usize> {
        let open = self.with_open(ctx, fd)?;
        let n = self.pread(ctx, fd, buf, open.pos)?;
        self.opens.with_mut(ctx.pid, fd, |o| o.pos += n as u64)?;
        Ok(n)
    }

    fn write(&self, ctx: &ProcCtx, fd: Fd, data: &[u8]) -> FsResult<usize> {
        let open = self.with_open(ctx, fd)?;
        let off = if open.flags.append { self.node(open.ino)?.read().size() } else { open.pos };
        let n = self.pwrite(ctx, fd, data, off)?;
        self.opens.with_mut(ctx.pid, fd, |o| o.pos = off + n as u64)?;
        Ok(n)
    }

    fn pread(&self, ctx: &ProcCtx, fd: Fd, buf: &mut [u8], off: u64) -> FsResult<usize> {
        if !self.profile.userspace_data {
            self.syscall.charge();
        }
        self.syscall.charge_cycles(self.profile.data_path_cycles);
        self.timers.time(TimerCategory::Fs, || {
            let open = self.with_open(ctx, fd)?;
            if !open.flags.read {
                return Err(FsError::BadFd);
            }
            let sem = self.rwsem(open.ino);
            let _r = sem.read(); // the shared-file reader bottleneck
            let node = self.node(open.ino)?;
            let n = node.read();
            self.timers.time(TimerCategory::Copy, || self.read_node(&n, off, buf))
        })
    }

    fn pwrite(&self, ctx: &ProcCtx, fd: Fd, data: &[u8], off: u64) -> FsResult<usize> {
        let open = self.with_open(ctx, fd)?;
        if !open.flags.write {
            return Err(FsError::BadFd);
        }
        // SplitFS: staged appends stay in user space (no syscall). Writes
        // that need a metadata update still journal through EXT4.
        let mut needs_journal = true;
        if self.profile.userspace_data {
            let node = self.node(open.ino)?;
            let n = node.read();
            if let KKind::File { allocated, .. } = &n.kind {
                if off + data.len() as u64 <= *allocated {
                    needs_journal = false; // fits staging: pure user space
                }
            }
        } else {
            self.syscall.charge();
        }
        self.syscall.charge_cycles(self.profile.data_path_cycles);
        self.timers.time(TimerCategory::Fs, || {
            let sem = self.rwsem(open.ino);
            let _w = sem.write();
            let node = self.node(open.ino)?;
            let mut n = node.write();
            let out = self.timers.time(TimerCategory::Copy, || self.write_node(&mut n, off, data))?;
            drop(n);
            if needs_journal {
                self.journal.meta_op(open.ino);
            }
            Ok(out)
        })
    }

    fn lseek(&self, ctx: &ProcCtx, fd: Fd, pos: SeekFrom) -> FsResult<u64> {
        self.syscall.charge();
        let open = self.with_open(ctx, fd)?;
        let size = self.node(open.ino)?.read().size();
        self.opens.with_mut(ctx.pid, fd, |o| {
            let new = match pos {
                SeekFrom::Start(s) => s as i128,
                SeekFrom::Current(d) => o.pos as i128 + d as i128,
                SeekFrom::End(d) => size as i128 + d as i128,
            };
            if new < 0 {
                return Err(FsError::Invalid);
            }
            o.pos = new as u64;
            Ok(o.pos)
        })?
    }

    fn fsync(&self, ctx: &ProcCtx, fd: Fd) -> FsResult<()> {
        self.syscall.charge();
        let _ = self.with_open(ctx, fd)?;
        self.region.fence();
        Ok(())
    }

    fn fstat(&self, ctx: &ProcCtx, fd: Fd) -> FsResult<Stat> {
        self.syscall.charge();
        let open = self.with_open(ctx, fd)?;
        self.stat_of(open.ino)
    }

    fn ftruncate(&self, ctx: &ProcCtx, fd: Fd, len: u64) -> FsResult<()> {
        self.charge_meta();
        let open = self.with_open(ctx, fd)?;
        if !open.flags.write {
            return Err(FsError::BadFd);
        }
        let node = self.node(open.ino)?;
        {
            let mut n = node.write();
            let want = len;
            self.grow(&mut n, want)?;
            let KKind::File { size, .. } = &mut n.kind else {
                return Err(FsError::IsDir);
            };
            *size = len;
        }
        self.journal.meta_op(open.ino);
        Ok(())
    }

    fn fallocate(&self, ctx: &ProcCtx, fd: Fd, off: u64, len: u64) -> FsResult<()> {
        self.charge_meta();
        let open = self.with_open(ctx, fd)?;
        if !open.flags.write {
            return Err(FsError::BadFd);
        }
        let node = self.node(open.ino)?;
        {
            let mut n = node.write();
            self.grow(&mut n, off + len)?;
            let KKind::File { size, .. } = &mut n.kind else {
                return Err(FsError::IsDir);
            };
            if off + len > *size {
                *size = off + len;
            }
        }
        self.journal.meta_op(open.ino);
        Ok(())
    }

    fn unlink(&self, ctx: &ProcCtx, p: &str) -> FsResult<()> {
        self.charge_meta();
        self.timers.time(TimerCategory::Fs, || {
            let (dir, name) = self.resolve_parent(ctx, p)?;
            let dir_lock = self.dir_locks.get(dir);
            let _dg = dir_lock.lock();
            let dirn = self.node(dir)?;
            let ino = {
                let d = dirn.read();
                let KKind::Dir(index) = &d.kind else {
                    return Err(FsError::NotDir);
                };
                index.get(name).ok_or(FsError::NotFound)?
            };
            let node = self.node(ino)?;
            if matches!(node.read().kind, KKind::Dir(_)) {
                return Err(FsError::IsDir);
            }
            {
                let mut d = dirn.write();
                let KKind::Dir(index) = &mut d.kind else {
                    return Err(FsError::NotDir);
                };
                index.remove(name);
            }
            // analyze:allow(persist-order): DRAM dentry cache of a simulated kernel FS; `.write()` above is an RwLock guard, not a pmem store.
            self.dcache.invalidate(dir, name);
            self.journal.meta_op(dir);
            let gone = {
                let mut n = node.write();
                n.nlink -= 1;
                n.nlink == 0
            };
            if gone {
                self.drop_node(ino);
            }
            Ok(())
        })
    }

    fn mkdir(&self, ctx: &ProcCtx, p: &str, mode: FileMode) -> FsResult<()> {
        self.charge_meta();
        self.timers.time(TimerCategory::Fs, || {
            let (dir, name) = self.resolve_parent(ctx, p)?;
            let now = self.now();
            self.create_in(
                ctx,
                dir,
                name,
                KNode {
                    kind: KKind::Dir(DirIndex::new(self.profile.dir)),
                    perm: mode.perm,
                    uid: ctx.creds.uid,
                    gid: ctx.creds.gid,
                    nlink: 2,
                    atime: now,
                    mtime: now,
                    ctime: now,
                },
                FsError::Exists,
            )
            .map(|_| ())
        })
    }

    fn rmdir(&self, ctx: &ProcCtx, p: &str) -> FsResult<()> {
        self.charge_meta();
        let (dir, name) = self.resolve_parent(ctx, p)?;
        let dir_lock = self.dir_locks.get(dir);
        let _dg = dir_lock.lock();
        let dirn = self.node(dir)?;
        let ino = {
            let d = dirn.read();
            let KKind::Dir(index) = &d.kind else {
                return Err(FsError::NotDir);
            };
            index.get(name).ok_or(FsError::NotFound)?
        };
        let node = self.node(ino)?;
        {
            let n = node.read();
            match &n.kind {
                KKind::Dir(index) if index.len() == 0 => {}
                KKind::Dir(_) => return Err(FsError::NotEmpty),
                _ => return Err(FsError::NotDir),
            }
        }
        {
            let mut d = dirn.write();
            let KKind::Dir(index) = &mut d.kind else {
                return Err(FsError::NotDir);
            };
            index.remove(name);
        }
        // analyze:allow(persist-order): DRAM dentry cache of a simulated kernel FS; `.write()` above is an RwLock guard, not a pmem store.
        self.dcache.invalidate(dir, name);
        self.journal.meta_op(dir);
        self.drop_node(ino);
        Ok(())
    }

    fn rename(&self, ctx: &ProcCtx, old: &str, new: &str) -> FsResult<()> {
        self.charge_meta();
        self.timers.time(TimerCategory::Fs, || {
            let (odir, oname) = self.resolve_parent(ctx, old)?;
            let (ndir, nname) = self.resolve_parent(ctx, new)?;
            path::validate_name(nname)?;
            // Lock both directories in ino order (the kernel's rename lock
            // ordering).
            let (l1, l2) = if odir <= ndir { (odir, ndir) } else { (ndir, odir) };
            let g1 = self.dir_locks.get(l1);
            let _dg1 = g1.lock();
            let _g2holder = if l1 != l2 { Some(self.dir_locks.get(l2)) } else { None };
            let _dg2 = _g2holder.as_ref().map(|g| g.lock());

            let odirn = self.node(odir)?;
            let ino = {
                let d = odirn.read();
                let KKind::Dir(index) = &d.kind else {
                    return Err(FsError::NotDir);
                };
                index.get(oname).ok_or(FsError::NotFound)?
            };
            let moving_dir = matches!(self.node(ino)?.read().kind, KKind::Dir(_));
            if moving_dir {
                let oc = path::components(old)?;
                let nc = path::components(new)?;
                if path::is_descendant(&oc, &nc) {
                    return Err(FsError::Invalid);
                }
            }
            let ndirn = self.node(ndir)?;
            // Target handling.
            let target = {
                let d = ndirn.read();
                let KKind::Dir(index) = &d.kind else {
                    return Err(FsError::NotDir);
                };
                index.get(nname)
            };
            if let Some(t) = target {
                if t == ino {
                    return Ok(());
                }
                let tnode = self.node(t)?;
                let tn = tnode.read();
                match (&tn.kind, moving_dir) {
                    (KKind::Dir(idx), true) if idx.len() == 0 => {}
                    (KKind::Dir(_), true) => return Err(FsError::NotEmpty),
                    (KKind::Dir(_), false) => return Err(FsError::IsDir),
                    (_, true) => return Err(FsError::NotDir),
                    _ => {}
                }
                drop(tn);
                {
                    let mut d = ndirn.write();
                    if let KKind::Dir(index) = &mut d.kind {
                        index.remove(nname);
                    }
                }
                let gone = {
                    let mut n = tnode.write();
                    n.nlink = n.nlink.saturating_sub(1);
                    n.nlink == 0 || moving_dir
                };
                if gone {
                    self.drop_node(t);
                }
            }
            {
                let mut d = odirn.write();
                if let KKind::Dir(index) = &mut d.kind {
                    index.remove(oname);
                }
            }
            {
                let mut d = ndirn.write();
                if let KKind::Dir(index) = &mut d.kind {
                    index.insert(nname.to_owned(), ino);
                }
            }
            // analyze:allow(persist-order): DRAM dentry cache of a simulated kernel FS; `.write()` above is an RwLock guard, not a pmem store.
            self.dcache.invalidate(odir, oname);
            self.dcache.insert(ndir, nname, ino);
            self.journal.meta_op(odir);
            if ndir != odir {
                self.journal.meta_op(ndir);
            }
            Ok(())
        })
    }

    fn stat(&self, ctx: &ProcCtx, p: &str) -> FsResult<Stat> {
        self.charge_meta();
        self.timers.time(TimerCategory::Fs, || {
            let ino = self.resolve(ctx, p, true)?;
            self.stat_of(ino)
        })
    }

    fn readdir(&self, ctx: &ProcCtx, p: &str) -> FsResult<Vec<DirEntry>> {
        self.charge_meta();
        let ino = self.resolve(ctx, p, true)?;
        let node = self.node(ino)?;
        let n = node.read();
        let KKind::Dir(index) = &n.kind else {
            return Err(FsError::NotDir);
        };
        if !ctx.creds.may(access::R, n.perm, n.uid, n.gid) {
            return Err(FsError::Access);
        }
        let mut out: Vec<DirEntry> = index
            .entries()
            .into_iter()
            .filter_map(|(name, eid)| {
                let ftype = self.node(eid).ok()?.read().ftype();
                Some(DirEntry { name, ftype, ino: eid })
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(out)
    }

    fn symlink(&self, ctx: &ProcCtx, target: &str, linkpath: &str) -> FsResult<()> {
        self.charge_meta();
        let (dir, name) = self.resolve_parent(ctx, linkpath)?;
        let now = self.now();
        self.create_in(
            ctx,
            dir,
            name,
            KNode {
                kind: KKind::Symlink(target.to_owned()),
                perm: 0o777,
                uid: ctx.creds.uid,
                gid: ctx.creds.gid,
                nlink: 1,
                atime: now,
                mtime: now,
                ctime: now,
            },
            FsError::Exists,
        )
        .map(|_| ())
    }

    fn readlink(&self, ctx: &ProcCtx, p: &str) -> FsResult<String> {
        self.charge_meta();
        let ino = self.resolve(ctx, p, false)?;
        let node = self.node(ino)?;
        let n = node.read();
        match &n.kind {
            KKind::Symlink(t) => Ok(t.clone()),
            _ => Err(FsError::Invalid),
        }
    }

    fn link(&self, ctx: &ProcCtx, existing: &str, new: &str) -> FsResult<()> {
        self.charge_meta();
        let ino = self.resolve(ctx, existing, false)?;
        let node = self.node(ino)?;
        if matches!(node.read().kind, KKind::Dir(_)) {
            return Err(FsError::IsDir);
        }
        let (dir, name) = self.resolve_parent(ctx, new)?;
        path::validate_name(name)?;
        let dir_lock = self.dir_locks.get(dir);
        let _dg = dir_lock.lock();
        let dirn = self.node(dir)?;
        {
            let d = dirn.read();
            let KKind::Dir(index) = &d.kind else {
                return Err(FsError::NotDir);
            };
            if index.get(name).is_some() {
                return Err(FsError::Exists);
            }
        }
        node.write().nlink += 1;
        {
            let mut d = dirn.write();
            if let KKind::Dir(index) = &mut d.kind {
                index.insert(name.to_owned(), ino);
            }
        }
        self.dcache.insert(dir, name, ino);
        self.journal.meta_op(dir);
        Ok(())
    }

    fn chmod(&self, ctx: &ProcCtx, p: &str, perm: u16) -> FsResult<()> {
        self.charge_meta();
        let ino = self.resolve(ctx, p, true)?;
        let node = self.node(ino)?;
        let mut n = node.write();
        if ctx.creds.uid != 0 && ctx.creds.uid != n.uid {
            return Err(FsError::Access);
        }
        n.perm = perm & 0o777;
        drop(n);
        self.journal.meta_op(ino);
        Ok(())
    }

    fn statfs(&self, _ctx: &ProcCtx) -> FsResult<FsStats> {
        self.syscall.charge();
        let free_blocks: u64 = match self.pool.kind {
            crate::profile::AllocKind::Serial => {
                self.pool.serial.lock().iter().map(|&(_, n)| n).sum()
            }
            crate::profile::AllocKind::PerCpu => self
                .pool
                .shards
                .iter()
                .map(|s| s.lock().iter().map(|&(_, n)| n).sum::<u64>())
                .sum(),
        };
        Ok(FsStats {
            total_bytes: self.region.len() as u64,
            free_bytes: free_blocks * BLOCK,
            block_size: BLOCK as u32,
        })
    }

    fn set_times(&self, ctx: &ProcCtx, p: &str, atime: u64, mtime: u64) -> FsResult<()> {
        self.charge_meta();
        let ino = self.resolve(ctx, p, true)?;
        let node = self.node(ino)?;
        let mut n = node.write();
        if ctx.creds.uid != 0 && ctx.creds.uid != n.uid {
            return Err(FsError::Access);
        }
        n.atime = atime;
        n.mtime = mtime;
        drop(n);
        self.journal.meta_op(ino);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::FsProfile;

    fn fs(profile: FsProfile) -> (KernelFs, ProcCtx) {
        (KernelFs::new(Arc::new(PmemRegion::new(32 << 20)), profile), ProcCtx::root(1))
    }

    #[test]
    fn lifecycle_all_profiles() {
        for p in [FsProfile::nova(), FsProfile::pmfs(), FsProfile::ext4dax(), FsProfile::splitfs()] {
            let (fs, ctx) = fs(p);
            fs.mkdir(&ctx, "/dir", FileMode::dir(0o755)).unwrap();
            fs.write_file(&ctx, "/dir/a", b"alpha").unwrap();
            fs.write_file(&ctx, "/dir/b", b"beta").unwrap();
            assert_eq!(fs.read_to_vec(&ctx, "/dir/a").unwrap(), b"alpha", "{}", fs.name());
            fs.rename(&ctx, "/dir/a", "/dir/c").unwrap();
            assert_eq!(fs.read_to_vec(&ctx, "/dir/c").unwrap(), b"alpha");
            fs.unlink(&ctx, "/dir/b").unwrap();
            fs.unlink(&ctx, "/dir/c").unwrap();
            fs.rmdir(&ctx, "/dir").unwrap();
            assert_eq!(fs.readdir(&ctx, "/").unwrap().len(), 0);
        }
    }

    #[test]
    fn appends_and_seeks() {
        let (fs, ctx) = fs(FsProfile::splitfs());
        let fd = fs.open(&ctx, "/log", OpenFlags::APPEND, FileMode::default()).unwrap();
        for _ in 0..10 {
            fs.write(&ctx, fd, &[9u8; 4096]).unwrap();
        }
        assert_eq!(fs.fstat(&ctx, fd).unwrap().size, 40960);
        fs.close(&ctx, fd).unwrap();
    }

    #[test]
    fn syscall_counting_differs_for_splitfs_data_path() {
        let (nova, ctx) = fs(FsProfile::nova());
        let (split, _) = fs(FsProfile::splitfs());
        for f in [&nova, &split] {
            let fd = f.open(&ctx, "/f", OpenFlags::APPEND, FileMode::default()).unwrap();
            let before = f.syscalls();
            for _ in 0..50 {
                f.write(&ctx, fd, &[1u8; 128]).unwrap();
            }
            let delta = f.syscalls() - before;
            if f.name() == "nova" {
                assert_eq!(delta, 50, "kernel fs: one syscall per write");
            } else {
                assert_eq!(delta, 0, "splitfs: staged appends bypass the kernel");
            }
            f.close(&ctx, fd).unwrap();
        }
    }

    #[test]
    fn hard_links_and_symlinks() {
        let (fs, ctx) = fs(FsProfile::ext4dax());
        fs.write_file(&ctx, "/orig", b"x").unwrap();
        fs.link(&ctx, "/orig", "/alias").unwrap();
        assert_eq!(fs.stat(&ctx, "/orig").unwrap().nlink, 2);
        fs.unlink(&ctx, "/orig").unwrap();
        assert_eq!(fs.read_to_vec(&ctx, "/alias").unwrap(), b"x");
        fs.symlink(&ctx, "/alias", "/ln").unwrap();
        assert_eq!(fs.read_to_vec(&ctx, "/ln").unwrap(), b"x");
        assert_eq!(fs.readlink(&ctx, "/ln").unwrap(), "/alias");
    }

    #[test]
    fn permissions_respected() {
        let (fs, root) = fs(FsProfile::nova());
        fs.mkdir(&root, "/priv", FileMode::dir(0o700)).unwrap();
        fs.write_file(&root, "/priv/s", b"secret").unwrap();
        let user = ProcCtx::new(7, simurgh_fsapi::Credentials::user(500, 500));
        assert_eq!(fs.stat(&user, "/priv/s").unwrap_err(), FsError::Access);
    }

    #[test]
    fn concurrent_private_dir_creates() {
        let fs = Arc::new(KernelFs::new(
            Arc::new(PmemRegion::new(64 << 20)),
            FsProfile::nova(),
        ));
        let root = ProcCtx::root(0);
        for t in 0..4 {
            fs.mkdir(&root, &format!("/t{t}"), FileMode::dir(0o777)).unwrap();
        }
        crossbeam::thread::scope(|s| {
            for t in 0..4u32 {
                let fs = &fs;
                s.spawn(move |_| {
                    let ctx = ProcCtx::root(t + 1);
                    for i in 0..50 {
                        let fd =
                            fs.create(&ctx, &format!("/t{t}/f{i}"), FileMode::default()).unwrap();
                        fs.close(&ctx, fd).unwrap();
                    }
                });
            }
        })
        .unwrap();
        for t in 0..4 {
            assert_eq!(fs.readdir(&root, &format!("/t{t}")).unwrap().len(), 50);
        }
    }

    #[test]
    fn pmfs_linear_dir_is_order_preserving_scan() {
        let (fs, ctx) = fs(FsProfile::pmfs());
        for i in 0..100 {
            fs.write_file(&ctx, &format!("/f{i:03}"), b"").unwrap();
        }
        assert_eq!(fs.readdir(&ctx, "/").unwrap().len(), 100);
        // Unlink from the front repeatedly (worst case for linear dirents).
        for i in 0..100 {
            fs.unlink(&ctx, &format!("/f{i:03}")).unwrap();
        }
        assert_eq!(fs.readdir(&ctx, "/").unwrap().len(), 0);
    }

    #[test]
    fn truncate_open_flag_and_sparse() {
        let (fs, ctx) = fs(FsProfile::nova());
        fs.write_file(&ctx, "/t", b"0123456789").unwrap();
        let rw_create = OpenFlags { read: true, ..OpenFlags::CREATE };
        let fd = fs.open(&ctx, "/t", rw_create, FileMode::default()).unwrap();
        assert_eq!(fs.fstat(&ctx, fd).unwrap().size, 0);
        fs.pwrite(&ctx, fd, b"z", 5000).unwrap();
        assert_eq!(fs.fstat(&ctx, fd).unwrap().size, 5001);
        let mut buf = vec![0xau8; 5001];
        assert_eq!(fs.pread(&ctx, fd, &mut buf, 0).unwrap(), 5001);
        assert!(buf[..5000].iter().all(|&b| b == 0));
        assert_eq!(buf[5000], b'z');
        fs.close(&ctx, fd).unwrap();
    }
}
