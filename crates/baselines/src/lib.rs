//! Baseline file-system models for the Simurgh evaluation.
//!
//! The paper compares Simurgh against four real systems — NOVA, PMFS,
//! EXT4-DAX and SplitFS — and attributes each one's performance curve to a
//! specific structural mechanism (§2, §5.2):
//!
//! * every kernel file system pays a **syscall** per operation and crosses
//!   the **VFS**: a dentry cache whose updates serialize, a per-directory
//!   inode mutex that serializes shared-directory writes, and a per-file
//!   read/write semaphore whose atomic updates bounce between readers;
//! * **NOVA** appends to per-inode logs and allocates from per-CPU free
//!   lists (scales in private directories, stuck behind the VFS in shared
//!   ones);
//! * **PMFS** searches *unsorted linear directories* and allocates from a
//!   single serial allocator behind an undo journal;
//! * **EXT4-DAX** journals through a single jbd2-style handle (batched) and
//!   allocates sequentially; data ops on large files are cheap;
//! * **SplitFS** serves data from user space — appends go to 2-MB staging
//!   regions with no syscall — while every metadata operation falls back to
//!   the EXT4 path.
//!
//! [`KernelFs`] is one generic implementation parameterized by an
//! [`FsProfile`] selecting those mechanisms; [`nova`], [`pmfs`],
//! [`ext4dax`] and [`splitfs`] build the four paper configurations over a
//! shared [`simurgh_pmem::PmemRegion`], so data-path traffic is as real as
//! Simurgh's and only the control-path structure differs.

pub mod kernelfs;
pub mod profile;
pub mod vfs;

use std::sync::Arc;

use simurgh_pmem::PmemRegion;

pub use kernelfs::KernelFs;
pub use profile::{AllocKind, DirKind, FsProfile, JournalKind};

/// The NOVA model (log-structured NVMM kernel FS).
pub fn nova(region: Arc<PmemRegion>) -> KernelFs {
    KernelFs::new(region, FsProfile::nova())
}

/// The PMFS model (linear directories, serial allocator, undo journal).
pub fn pmfs(region: Arc<PmemRegion>) -> KernelFs {
    KernelFs::new(region, FsProfile::pmfs())
}

/// The EXT4-DAX model (jbd2 journal, sequential allocator).
pub fn ext4dax(region: Arc<PmemRegion>) -> KernelFs {
    KernelFs::new(region, FsProfile::ext4dax())
}

/// The SplitFS model (user-space staged data path over EXT4 metadata).
pub fn splitfs(region: Arc<PmemRegion>) -> KernelFs {
    KernelFs::new(region, FsProfile::splitfs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use simurgh_fsapi::{FileMode, FileSystem, ProcCtx};

    #[test]
    fn all_profiles_do_basic_io() {
        for make in [nova, pmfs, ext4dax, splitfs] {
            let fs = make(Arc::new(PmemRegion::new(16 << 20)));
            let ctx = ProcCtx::root(1);
            fs.mkdir(&ctx, "/d", FileMode::dir(0o755)).unwrap();
            fs.write_file(&ctx, "/d/f", b"hello").unwrap();
            assert_eq!(fs.read_to_vec(&ctx, "/d/f").unwrap(), b"hello", "{}", fs.name());
            fs.unlink(&ctx, "/d/f").unwrap();
            fs.rmdir(&ctx, "/d").unwrap();
        }
    }

    #[test]
    fn profile_names_match_paper_systems() {
        let r = Arc::new(PmemRegion::new(16 << 20));
        assert_eq!(nova(r.clone()).name(), "nova");
        assert_eq!(pmfs(r.clone()).name(), "pmfs");
        assert_eq!(ext4dax(r.clone()).name(), "ext4-dax");
        assert_eq!(splitfs(r).name(), "splitfs");
    }
}
