//! Baseline profiles: which structural mechanisms a modelled kernel file
//! system uses, with the four paper configurations as presets.

use simurgh_protfn::SecurityMode;

/// Directory index structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirKind {
    /// Hash map (NOVA's radix/hash lookup — O(1)).
    Hash,
    /// Unsorted linear list — PMFS; lookups and unlinks scan (O(n)).
    Linear,
    /// Balanced tree (EXT4 htree approximation — O(log n)).
    Tree,
}

/// Block allocator structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocKind {
    /// Per-CPU free lists (NOVA): allocation scales with threads.
    PerCpu,
    /// One serial free list behind a mutex (PMFS, EXT4): allocation
    /// throughput flattens beyond a few threads (Fig. 7g/7h).
    Serial,
}

/// Metadata journaling scheme. Journal traffic is written to a real area of
/// the pmem region so its cost is physical, not just modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalKind {
    /// Per-inode log appends, no global lock (NOVA).
    PerInode { bytes: usize },
    /// Single undo journal behind a global mutex (PMFS).
    GlobalMutex { bytes: usize },
    /// jbd2-style: a global handle mutex with batched commit flushes
    /// (EXT4); `flush_every` operations share one `commit_bytes` flush.
    Batched { bytes: usize, flush_every: u32, commit_bytes: usize },
}

/// Full structural profile of one modelled file system.
#[derive(Debug, Clone, Copy)]
pub struct FsProfile {
    pub name: &'static str,
    pub dir: DirKind,
    pub alloc: AllocKind,
    pub journal: JournalKind,
    /// Per-syscall privilege-crossing cost charged on kernel-path ops.
    pub syscall: SecurityMode,
    /// Data operations (read/write/append on an open fd) bypass the kernel
    /// entirely (SplitFS): no syscall charge, no VFS locks on the data path.
    pub userspace_data: bool,
    /// Appends go to pre-allocated staging regions of this many bytes
    /// (SplitFS's 2-MB staged appends); 0 = block-granular allocation.
    pub append_staging: usize,
    /// Modelled in-kernel CPU cycles per metadata operation beyond what the
    /// simplified structures here actually execute (inode/bitmap updates,
    /// security hooks, VFS bookkeeping). Calibrated so single-thread
    /// latencies land near published measurements of the real systems
    /// (NOVA create ≈ 3-4 µs, PMFS ≈ 5 µs, EXT4 ≈ 6-8 µs @2.5 GHz).
    pub meta_path_cycles: u64,
    /// Modelled in-kernel cycles per data operation (read/write path).
    pub data_path_cycles: u64,
}

impl FsProfile {
    pub fn nova() -> Self {
        FsProfile {
            name: "nova",
            dir: DirKind::Hash,
            alloc: AllocKind::PerCpu,
            journal: JournalKind::PerInode { bytes: 64 },
            syscall: SecurityMode::SyscallHost,
            userspace_data: false,
            append_staging: 0,
            meta_path_cycles: 6500,
            data_path_cycles: 3500,
        }
    }

    pub fn pmfs() -> Self {
        FsProfile {
            name: "pmfs",
            dir: DirKind::Linear,
            alloc: AllocKind::Serial,
            journal: JournalKind::GlobalMutex { bytes: 128 },
            syscall: SecurityMode::SyscallHost,
            userspace_data: false,
            append_staging: 0,
            meta_path_cycles: 9500,
            data_path_cycles: 4000,
        }
    }

    pub fn ext4dax() -> Self {
        FsProfile {
            name: "ext4-dax",
            dir: DirKind::Tree,
            alloc: AllocKind::Serial,
            journal: JournalKind::Batched { bytes: 256, flush_every: 16, commit_bytes: 4096 },
            syscall: SecurityMode::SyscallHost,
            userspace_data: false,
            append_staging: 0,
            meta_path_cycles: 13500,
            data_path_cycles: 6000,
        }
    }

    pub fn splitfs() -> Self {
        FsProfile {
            name: "splitfs",
            dir: DirKind::Tree,
            alloc: AllocKind::Serial,
            journal: JournalKind::Batched { bytes: 256, flush_every: 16, commit_bytes: 4096 },
            syscall: SecurityMode::SyscallHost,
            userspace_data: true,
            append_staging: 2 << 20,
            meta_path_cycles: 13500,
            data_path_cycles: 1800,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_encode_paper_mechanisms() {
        assert_eq!(FsProfile::nova().dir, DirKind::Hash);
        assert_eq!(FsProfile::nova().alloc, AllocKind::PerCpu);
        assert_eq!(FsProfile::pmfs().dir, DirKind::Linear, "PMFS unsorted dirents");
        assert_eq!(FsProfile::pmfs().alloc, AllocKind::Serial, "PMFS serial allocator");
        assert!(matches!(FsProfile::ext4dax().journal, JournalKind::Batched { .. }));
        let s = FsProfile::splitfs();
        assert!(s.userspace_data, "SplitFS data path in user space");
        assert_eq!(s.append_staging, 2 << 20, "2 MB staging");
    }
}
