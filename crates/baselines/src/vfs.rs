//! The modelled VFS layer shared by every kernel baseline.
//!
//! The paper traces the kernel file systems' scalability ceilings to the
//! VFS itself (§2, §5.2, citing FxMark): the dentry cache serializes its
//! updates, shared directories serialize on the per-directory inode mutex,
//! shared-file readers fight over the read/write semaphore's atomics, and
//! every call pays the syscall crossing. This module reproduces each of
//! those mechanisms with real shared state, so contention — not a fudge
//! factor — produces the curves.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use simurgh_pmem::SpinClock;
use simurgh_protfn::{CostModel, SecurityMode};

/// One cached dentry: the resolved inode plus a reference counter whose
/// atomic bumps model the shared-cacheline traffic of `dget`/`dput` that
/// limits `resolvepath` on shared path prefixes (Fig. 7f).
struct Dentry {
    ino: u64,
    refs: AtomicU64,
}

/// The dentry cache: one global map behind one RwLock. Hits take the read
/// side plus an atomic bump; *any* namespace change takes the write side —
/// the serialization the paper blames for deletefile's flat curves.
pub struct DentryCache {
    map: RwLock<HashMap<(u64, String), Dentry>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for DentryCache {
    fn default() -> Self {
        DentryCache { map: RwLock::new(HashMap::new()), hits: AtomicU64::new(0), misses: AtomicU64::new(0) }
    }
}

impl DentryCache {
    /// Looks up `(parent, name)`; a hit bumps the dentry refcount.
    pub fn lookup(&self, parent: u64, name: &str) -> Option<u64> {
        let map = self.map.read();
        match map.get(&(parent, name.to_owned())) {
            Some(d) => {
                d.refs.fetch_add(1, Ordering::AcqRel);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(d.ino)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a resolved dentry (fill on miss).
    pub fn insert(&self, parent: u64, name: &str, ino: u64) {
        self.map
            .write()
            .insert((parent, name.to_owned()), Dentry { ino, refs: AtomicU64::new(1) });
    }

    /// Invalidates a dentry (unlink/rename/rmdir): write-side lock.
    pub fn invalidate(&self, parent: u64, name: &str) {
        self.map.write().remove(&(parent, name.to_owned()));
    }

    /// (hits, misses) — diagnostics.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }
}

/// Per-directory inode mutex table (`i_rwsem` held exclusively for
/// directory writes — what serializes shared-directory creates, Fig. 7b).
#[derive(Default)]
pub struct DirLocks {
    locks: Mutex<HashMap<u64, Arc<Mutex<()>>>>,
}

impl DirLocks {
    pub fn get(&self, dir_ino: u64) -> Arc<Mutex<()>> {
        self.locks.lock().entry(dir_ino).or_insert_with(|| Arc::new(Mutex::new(()))).clone()
    }

    pub fn forget(&self, dir_ino: u64) {
        self.locks.lock().remove(&dir_ino);
    }
}

/// Per-file read/write semaphore with an explicit atomic reader count — the
/// "Linux read and write semaphore which is being updated atomically" that
/// caps shared-file read scaling (Fig. 7i).
#[derive(Default)]
pub struct RwSem {
    /// Bit 63: writer; low bits: reader count.
    state: AtomicU64,
}

const WRITER: u64 = 1 << 63;

/// Guard for the read side.
pub struct ReadSem<'a>(&'a RwSem);

impl Drop for ReadSem<'_> {
    fn drop(&mut self) {
        self.0.state.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Guard for the write side.
pub struct WriteSem<'a>(&'a RwSem);

impl Drop for WriteSem<'_> {
    fn drop(&mut self) {
        self.0.state.fetch_and(!WRITER, Ordering::AcqRel);
    }
}

impl RwSem {
    pub fn read(&self) -> ReadSem<'_> {
        let mut spins = 0u32;
        loop {
            let s = self.state.load(Ordering::Acquire);
            if s & WRITER == 0
                && self
                    .state
                    .compare_exchange_weak(s, s + 1, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            {
                return ReadSem(self);
            }
            std::hint::spin_loop();
            spins += 1;
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            }
        }
    }

    pub fn write(&self) -> WriteSem<'_> {
        let mut spins = 0u32;
        loop {
            if self
                .state
                .compare_exchange_weak(0, WRITER, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return WriteSem(self);
            }
            std::hint::spin_loop();
            spins += 1;
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            }
        }
    }
}

/// Charges the fixed syscall crossing of one kernel-path operation.
pub struct SyscallMeter {
    mode: SecurityMode,
    model: CostModel,
    calls: AtomicU64,
}

impl SyscallMeter {
    pub fn new(mode: SecurityMode) -> Self {
        SyscallMeter { mode, model: CostModel::default(), calls: AtomicU64::new(0) }
    }

    #[inline]
    pub fn charge(&self) {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.mode.charge(&self.model, SpinClock::global());
    }

    /// Busy-waits `cycles` of modelled in-kernel path work.
    #[inline]
    pub fn charge_cycles(&self, cycles: u64) {
        if cycles > 0 {
            SpinClock::global().delay_cycles(cycles, self.model.ghz);
        }
    }

    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dcache_hit_miss_and_invalidate() {
        let dc = DentryCache::default();
        assert_eq!(dc.lookup(1, "a"), None);
        dc.insert(1, "a", 42);
        assert_eq!(dc.lookup(1, "a"), Some(42));
        assert_eq!(dc.lookup(2, "a"), None, "keyed by parent");
        dc.invalidate(1, "a");
        assert_eq!(dc.lookup(1, "a"), None);
        let (hits, misses) = dc.stats();
        assert_eq!(hits, 1);
        assert_eq!(misses, 3);
    }

    #[test]
    fn dir_locks_are_per_directory() {
        let dl = DirLocks::default();
        let a = dl.get(1);
        let b = dl.get(2);
        let _ga = a.lock();
        let _gb = b.try_lock().expect("different directory not blocked");
        let a2 = dl.get(1);
        assert!(a2.try_lock().is_none(), "same directory blocked");
    }

    #[test]
    fn rwsem_semantics() {
        let s = RwSem::default();
        {
            let _r1 = s.read();
            let _r2 = s.read();
            assert_eq!(s.state.load(Ordering::SeqCst), 2);
        }
        {
            let _w = s.write();
            assert_eq!(s.state.load(Ordering::SeqCst), WRITER);
        }
        assert_eq!(s.state.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn rwsem_excludes_writer_from_readers() {
        let s = Arc::new(RwSem::default());
        let r = s.read();
        let done = Arc::new(AtomicU64::new(0));
        crossbeam::thread::scope(|scope| {
            let s2 = s.clone();
            let done2 = done.clone();
            scope.spawn(move |_| {
                let _w = s2.write();
                done2.store(1, Ordering::SeqCst);
            });
            std::thread::sleep(std::time::Duration::from_millis(20));
            assert_eq!(done.load(Ordering::SeqCst), 0, "writer blocked by reader");
            drop(r);
        })
        .unwrap();
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn syscall_meter_counts() {
        let m = SyscallMeter::new(SecurityMode::Zero);
        m.charge();
        m.charge();
        assert_eq!(m.calls(), 2);
    }
}
