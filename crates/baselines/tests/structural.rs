//! Structural-behaviour tests of the baseline models: the mechanisms the
//! paper blames for each system's curve must actually be present.

use std::sync::Arc;

use simurgh_baselines::{ext4dax, nova, pmfs, splitfs};
use simurgh_fsapi::{FileMode, FileSystem, OpenFlags, ProcCtx};
use simurgh_pmem::PmemRegion;

const CTX: ProcCtx = ProcCtx::root(1);

fn region() -> Arc<PmemRegion> {
    Arc::new(PmemRegion::new(64 << 20))
}

#[test]
fn kernel_fs_charges_syscalls_per_operation() {
    let fs = nova(region());
    let before = fs.syscalls();
    fs.write_file(&CTX, "/f", b"x").unwrap(); // open + pwrite + fsync + close
    let delta = fs.syscalls() - before;
    assert!(delta >= 4, "expected ≥4 syscalls for a file write, got {delta}");
}

#[test]
fn splitfs_staged_appends_skip_the_kernel_but_metadata_does_not() {
    let fs = splitfs(region());
    let fd = fs.open(&CTX, "/log", OpenFlags::APPEND, FileMode::default()).unwrap();
    // First append allocates staging (journaled); subsequent appends that
    // fit the staging region must not add syscalls.
    fs.write(&CTX, fd, &[0u8; 512]).unwrap();
    let before = fs.syscalls();
    for _ in 0..32 {
        fs.write(&CTX, fd, &[0u8; 512]).unwrap();
    }
    assert_eq!(fs.syscalls(), before, "staged appends are user-space");
    // Metadata operations still cross into the kernel.
    fs.stat(&CTX, "/log").unwrap();
    assert!(fs.syscalls() > before);
    fs.close(&CTX, fd).unwrap();
}

#[test]
fn journal_traffic_is_physical() {
    // Metadata ops must generate real pmem write traffic (the journal),
    // beyond what the data itself requires.
    let r = region();
    let fs = pmfs(r.clone());
    let before = r.stats().snapshot();
    for i in 0..50 {
        let fd = fs.create(&CTX, &format!("/e{i}"), FileMode::default()).unwrap();
        fs.close(&CTX, fd).unwrap();
    }
    let after = r.stats().snapshot().since(&before);
    // PMFS journals ≥128 bytes per create.
    assert!(
        after.bytes_written >= 50 * 128,
        "journal writes missing: {} bytes",
        after.bytes_written
    );
    assert!(after.fences >= 50, "undo journal persists per op");
}

#[test]
fn ext4_batches_journal_commits() {
    let r = region();
    let fs = ext4dax(r.clone());
    let before = r.stats().snapshot();
    for i in 0..64 {
        let fd = fs.create(&CTX, &format!("/e{i}"), FileMode::default()).unwrap();
        fs.close(&CTX, fd).unwrap();
    }
    let after = r.stats().snapshot().since(&before);
    // jbd2-style: far fewer fences than operations (commits amortized).
    assert!(
        after.fences < 64,
        "expected batched commits, saw {} fences for 64 creates",
        after.fences
    );
}

#[test]
fn pmfs_linear_directory_scales_linearly_in_work() {
    // Not a timing test: verify the structure by observing that lookups
    // still succeed at large populations (the scan is exercised) and that
    // readdir preserves insertion order — the signature of an unsorted
    // dirent list.
    let fs = pmfs(region());
    for i in 0..300 {
        fs.write_file(&CTX, &format!("/f{i:04}"), b"").unwrap();
    }
    fs.unlink(&CTX, "/f0000").unwrap();
    fs.write_file(&CTX, "/zzz-last", b"").unwrap();
    assert!(fs.stat(&CTX, "/f0299").is_ok());
    assert!(fs.stat(&CTX, "/zzz-last").is_ok());
}

#[test]
fn dentry_cache_serves_repeat_lookups() {
    let fs = nova(region());
    fs.mkdir(&CTX, "/a", FileMode::dir(0o755)).unwrap();
    fs.write_file(&CTX, "/a/f", b"x").unwrap();
    // Repeat stats hit the dcache; correctness: invalidation on unlink.
    for _ in 0..10 {
        assert!(fs.stat(&CTX, "/a/f").is_ok());
    }
    fs.unlink(&CTX, "/a/f").unwrap();
    assert!(fs.stat(&CTX, "/a/f").is_err(), "dcache invalidated on unlink");
    fs.write_file(&CTX, "/a/f", b"y").unwrap();
    assert_eq!(fs.read_to_vec(&CTX, "/a/f").unwrap(), b"y", "fresh dentry after recreate");
}

#[test]
fn rename_across_directories_keeps_dcache_coherent() {
    let fs = ext4dax(region());
    fs.mkdir(&CTX, "/x", FileMode::dir(0o755)).unwrap();
    fs.mkdir(&CTX, "/y", FileMode::dir(0o755)).unwrap();
    fs.write_file(&CTX, "/x/m", b"1").unwrap();
    // Warm the cache on the old path.
    fs.stat(&CTX, "/x/m").unwrap();
    fs.rename(&CTX, "/x/m", "/y/m").unwrap();
    assert!(fs.stat(&CTX, "/x/m").is_err());
    assert_eq!(fs.read_to_vec(&CTX, "/y/m").unwrap(), b"1");
}
