//! Name hashing for the directory hash blocks.
//!
//! Directory blocks are linear hash maps from name hashes to file-entry
//! pointers (§4.3). The hash must be stable across mounts (it is implied by
//! the persistent layout), so we use FNV-1a rather than anything seeded.

/// FNV-1a 64-bit.
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The directory line a name maps to, for a directory with `nlines` lines.
#[inline]
pub fn dir_line(name: &str, nlines: usize) -> usize {
    (fnv1a(name.as_bytes()) % nlines as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn lines_are_stable_and_in_range() {
        for name in ["file-1", "file-2", "a/b", "xyz", ""] {
            let l = dir_line(name, 256);
            assert!(l < 256);
            assert_eq!(l, dir_line(name, 256));
        }
    }

    #[test]
    fn distribution_is_reasonable() {
        // 10k sequential names over 256 lines: no line should be wildly hot.
        let mut counts = [0u32; 256];
        for i in 0..10_000 {
            counts[dir_line(&format!("file-{i}"), 256)] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max < 100, "hot line: {max}");
        assert!(min > 5, "cold line: {min}");
    }
}
