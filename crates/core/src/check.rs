//! `fsck`-style consistency checker.
//!
//! Walks the persistent image and verifies every invariant the Simurgh
//! design promises after any completed operation or recovery:
//!
//! * every reachable object is valid, correctly tagged and **not dirty**
//!   (dirty bits only live while an operation is in flight);
//! * every hash-line slot points at a live file entry whose name hashes to
//!   that line;
//! * every inode's link count equals the number of file entries that
//!   reference it;
//! * file extents lie inside the data area and no data block is referenced
//!   by two files (or by a file and a metadata pool);
//! * directories referenced by entries have a first hash block; no rename
//!   logs are left armed; no busy flags are left set (when `quiescent`).
//!
//! Tests call [`check`] after stress runs and after every crash-recovery
//! to prove the tree is not just readable but structurally sound.

use std::collections::HashMap;

use simurgh_fsapi::types::FileType;
use simurgh_pmem::PPtr;

use crate::fs::SimurghFs;
use crate::hash::dir_line;
use crate::obj::dirblock::{logop, DirBlock, NLINES};
use crate::obj::fentry::FileEntry;
use crate::obj::inode::{extblock, Inode};
use crate::obj::{self, Tag};
use crate::super_block::{PoolKind, Superblock};
use crate::BLOCK_SIZE;

/// One invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub at: PPtr,
    pub what: String,
}

/// Result of a full check.
#[derive(Debug, Default, Clone)]
pub struct CheckReport {
    pub violations: Vec<Violation>,
    pub files: u64,
    pub directories: u64,
    pub symlinks: u64,
    pub entries: u64,
}

impl CheckReport {
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    fn flag(&mut self, at: PPtr, what: impl Into<String>) {
        self.violations.push(Violation { at, what: what.into() });
    }
}

/// Runs the full consistency check on a mounted file system. When
/// `quiescent` is true (no concurrent operations), busy flags and dirty
/// bits are also violations.
pub fn check(fs: &SimurghFs, quiescent: bool) -> CheckReport {
    let region = fs.region().as_ref();
    let mut report = CheckReport::default();
    let data = Superblock::data_extent(region);
    let data_start = data.start.align_up(BLOCK_SIZE as u64).off();
    let data_end = data.start.off() + data.len;

    // block byte-offset -> owner description, to catch double references.
    let mut block_owner: HashMap<u64, String> = HashMap::new();
    for kind in PoolKind::ALL {
        for seg in Superblock::pool_segs(region, kind) {
            let mut b = seg.start;
            let end = seg.start + seg.count * kind.obj_size();
            while b < end {
                block_owner.insert(b / BLOCK_SIZE as u64, format!("pool {kind:?}"));
                b += BLOCK_SIZE as u64;
            }
        }
    }
    let mut claim_blocks =
        |report: &mut CheckReport, start: u64, len: u64, owner: &str| {
            if len == 0 {
                return;
            }
            if start < data_start || start + len > data_end {
                report.flag(PPtr::new(start), format!("extent outside data area ({owner})"));
                return;
            }
            let first = start / BLOCK_SIZE as u64;
            let last = (start + len - 1) / BLOCK_SIZE as u64;
            for b in first..=last {
                if let Some(prev) = block_owner.insert(b, owner.to_owned()) {
                    report.flag(
                        PPtr::new(b * BLOCK_SIZE as u64),
                        format!("block referenced by both {prev} and {owner}"),
                    );
                }
            }
        };

    // inode -> observed reference count from file entries.
    let mut refs: HashMap<u64, u32> = HashMap::new();
    let mut stack = vec![Superblock::root_inode(region)];
    let mut visited: std::collections::HashSet<u64> = std::collections::HashSet::new();
    refs.insert(Superblock::root_inode(region).off(), 1); // root is self-referenced

    while let Some(ip) = stack.pop() {
        if !visited.insert(ip.off()) {
            continue;
        }
        let h = obj::header(region, ip);
        if !obj::is_valid(h) || Tag::from_header(h) != Some(Tag::Inode) {
            report.flag(ip, "reachable inode has invalid header");
            continue;
        }
        if quiescent && obj::is_dirty(h) {
            report.flag(ip, "inode dirty at quiescence");
        }
        let ino = Inode(ip);
        match ino.mode(region).ftype {
            FileType::Directory => {
                report.directories += 1;
                let e = ino.extent(region, 0);
                if e.is_empty() {
                    report.flag(ip, "directory inode without hash block");
                    continue;
                }
                let first = DirBlock(PPtr::new(e.start));
                if first.read_log(region).op != logop::IDLE {
                    report.flag(first.ptr(), "rename log left armed");
                }
                let mut seen = std::collections::HashSet::new();
                let mut blk = first.ptr();
                while !blk.is_null() {
                    if !seen.insert(blk.off()) {
                        report.flag(blk, "directory chain cycle");
                        break;
                    }
                    let bh = obj::header(region, blk);
                    if !obj::is_valid(bh) || Tag::from_header(bh) != Some(Tag::DirBlock) {
                        report.flag(blk, "chained block has invalid header");
                        break;
                    }
                    if quiescent && obj::is_dirty(bh) {
                        report.flag(blk, "dir block dirty at quiescence");
                    }
                    let db = DirBlock(blk);
                    for line in 0..NLINES {
                        if quiescent && db == first && db.is_busy(region, line) {
                            report.flag(blk, format!("line {line} busy at quiescence"));
                        }
                        let slot = db.line(region, line);
                        if slot.is_null() {
                            continue;
                        }
                        let fh = obj::header(region, slot);
                        if !obj::is_valid(fh) || Tag::from_header(fh) != Some(Tag::FileEntry) {
                            report.flag(slot, format!("line {line} points at non-live entry"));
                            continue;
                        }
                        if quiescent && obj::is_dirty(fh) {
                            report.flag(slot, "file entry dirty at quiescence");
                        }
                        let fe = FileEntry(slot);
                        let name = fe.name(region);
                        if dir_line(&name, NLINES) != line {
                            report.flag(slot, format!("entry '{name}' on wrong line {line}"));
                        }
                        report.entries += 1;
                        let child = fe.inode(region);
                        if child.is_null() {
                            report.flag(slot, format!("entry '{name}' has null inode"));
                            continue;
                        }
                        *refs.entry(child.off()).or_insert(0) += 1;
                        stack.push(child);
                    }
                    blk = db.next(region);
                }
            }
            FileType::Regular | FileType::Symlink => {
                if ino.mode(region).ftype == FileType::Symlink {
                    report.symlinks += 1;
                } else {
                    report.files += 1;
                }
                let owner = format!("inode {:#x}", ip.off());
                let mut allocated = 0u64;
                // Scan every inline slot (not just the dense prefix): the
                // writer keeps slots prefix-dense, so an empty slot followed
                // by a live extent means a torn shrink/regrow — flag it, but
                // still account the later extents so the double-reference
                // and size checks see the whole file. Exception: while the
                // relocation journal is armed *for this inode* the map is
                // mid-swap by design — recovery will roll it back to the
                // journaled old map, so a transient hole is not a defect.
                let mid_relocation = crate::compact::journal::armed_for(region, ino);
                let mut seen_empty = false;
                for i in 0..crate::obj::inode::INLINE_EXTENTS {
                    let e = ino.extent(region, i);
                    if e.is_empty() {
                        seen_empty = true;
                        continue;
                    }
                    if seen_empty {
                        if !mid_relocation {
                            report.flag(ip, format!(
                                "inline extents not prefix-dense (slot {i} live after a hole)"
                            ));
                        }
                        seen_empty = false;
                    }
                    claim_blocks(&mut report, e.start, e.len, &owner);
                    allocated += e.len;
                }
                let mut blk = ino.ext_next(region);
                let mut seen = std::collections::HashSet::new();
                while !blk.is_null() && seen.insert(blk.off()) {
                    claim_blocks(&mut report, blk.off(), BLOCK_SIZE as u64, &owner);
                    let n = extblock::count(region, blk).min(extblock::CAPACITY);
                    for i in 0..n {
                        let e = extblock::get(region, blk, i);
                        claim_blocks(&mut report, e.start, e.len, &owner);
                        allocated += e.len;
                    }
                    blk = extblock::next(region, blk);
                }
                // Same exception as above: a mid-swap map may transiently
                // under-cover the size until recovery rolls it back.
                if ino.size(region) > allocated && !mid_relocation {
                    report.flag(ip, format!(
                        "size {} exceeds allocation {allocated}",
                        ino.size(region)
                    ));
                }
            }
        }
    }

    // Link counts: only regular files and symlinks (directories use the
    // conventional fixed nlink=2).
    for (ino_off, &observed) in &refs {
        let ip = PPtr::new(*ino_off);
        let h = obj::header(region, ip);
        if !obj::is_valid(h) {
            continue;
        }
        let ino = Inode(ip);
        if ino.mode(region).ftype == FileType::Directory {
            continue;
        }
        let recorded = ino.nlink(region);
        if recorded != observed {
            report.flag(ip, format!("nlink {recorded} but {observed} entries reference it"));
        }
    }

    // Allocator accounting vs. the shared claim bitmap (shared mounts
    // only). At quiescence the volatile free counter plus the bitmap's
    // used popcount must cover the capacity exactly. `reconcile_shared`
    // first drops free-list entries for blocks peers claimed (ordinary
    // optimistic staleness, not a defect) and adopts blocks a dead peer
    // released — the kill-9 convergence step — so what remains is real
    // drift: a claim/clear ordering bug or mis-masked slack bits.
    if quiescent {
        let blocks = fs.block_alloc();
        if let Some(used) = {
            blocks.reconcile_shared();
            blocks.shared_used_blocks()
        } {
            // Parked tail reservations stay claimed in the bitmap, so they
            // count as used, not free — no correction term needed.
            let free = blocks.free_blocks();
            let cap = blocks.capacity_blocks();
            if free + used != cap {
                report.flag(
                    PPtr::NULL,
                    format!(
                        "allocator accounting drift: free {free} + bitmap-used {used} \
                         != capacity {cap}"
                    ),
                );
            }
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::SimurghConfig;
    use simurgh_fsapi::{FileMode, FileSystem, ProcCtx};
    use std::sync::Arc;

    fn fresh() -> (SimurghFs, ProcCtx) {
        let fs = SimurghFs::format(
            Arc::new(simurgh_pmem::PmemRegion::new(64 << 20)),
            SimurghConfig::default(),
        )
        .unwrap();
        (fs, ProcCtx::root(1))
    }

    #[test]
    fn fresh_fs_is_clean() {
        let (fs, _) = fresh();
        let r = check(&fs, true);
        assert!(r.is_clean(), "{:?}", r.violations);
        assert_eq!(r.directories, 1);
    }

    #[test]
    fn populated_fs_is_clean_and_counted() {
        let (fs, ctx) = fresh();
        fs.mkdir(&ctx, "/a", FileMode::dir(0o755)).unwrap();
        for i in 0..50 {
            fs.write_file(&ctx, &format!("/a/f{i}"), &vec![1u8; 5000]).unwrap();
        }
        fs.link(&ctx, "/a/f0", "/a/hard").unwrap();
        fs.symlink(&ctx, "/a/f1", "/a/soft").unwrap();
        fs.rename(&ctx, "/a/f2", "/a/renamed").unwrap();
        fs.unlink(&ctx, "/a/f3").unwrap();
        let r = check(&fs, true);
        assert!(r.is_clean(), "{:?}", r.violations);
        assert_eq!(r.files, 49);
        assert_eq!(r.symlinks, 1);
        assert_eq!(r.directories, 2);
        assert_eq!(r.entries, 52, "49 file entries + hard link + symlink + the /a dirent");
    }

    #[test]
    fn detects_wrong_nlink() {
        let (fs, ctx) = fresh();
        fs.write_file(&ctx, "/f", b"x").unwrap();
        let st = fs.stat(&ctx, "/f").unwrap();
        Inode(PPtr::new(st.ino)).set_nlink(fs.region(), 9);
        let r = check(&fs, true);
        assert!(!r.is_clean());
        assert!(r.violations[0].what.contains("nlink 9"));
    }

    #[test]
    fn detects_armed_log_and_busy_line() {
        let (fs, ctx) = fresh();
        fs.mkdir(&ctx, "/d", FileMode::dir(0o755)).unwrap();
        let (_, first) = fs.testing_dir_block("/d").unwrap();
        first.try_busy(fs.region(), 3);
        let log = crate::obj::dirblock::RenameLog { op: logop::CROSS_RENAME, ..Default::default() };
        first.write_log(fs.region(), &log);
        let r = check(&fs, true);
        assert!(r.violations.iter().any(|v| v.what.contains("busy")));
        assert!(r.violations.iter().any(|v| v.what.contains("log")));
        // Non-quiescent mode tolerates busy flags (concurrent writers).
        first.clear_log(fs.region());
        let r = check(&fs, false);
        assert!(r.is_clean(), "{:?}", r.violations);
    }

    #[test]
    fn detects_dirty_entry_at_quiescence() {
        let (fs, ctx) = fresh();
        fs.write_file(&ctx, "/f", b"x").unwrap();
        let env = fs.testing_dir_env();
        let (_, first) = fs.testing_dir_block("/").unwrap();
        let fe = crate::dir::lookup(&env, first, "f").unwrap();
        obj::set_dirty(fs.region(), fe.ptr());
        let r = check(&fs, true);
        assert!(r.violations.iter().any(|v| v.what.contains("dirty")));
    }

    #[test]
    fn flags_non_prefix_dense_inline_extents() {
        use crate::obj::inode::{Extent, Inode};
        use simurgh_fsapi::OpenFlags;

        let (fs, ctx) = fresh();
        let rw = OpenFlags { read: true, ..OpenFlags::CREATE };
        let main = fs.open(&ctx, "/f", rw, FileMode::default()).unwrap();
        let decoy = fs.open(&ctx, "/decoy", OpenFlags::CREATE, FileMode::default()).unwrap();
        let chunk = vec![1u8; 4096];
        for i in 0..3u64 {
            fs.pwrite(&ctx, main, &chunk, i * 4096).unwrap();
            fs.pwrite(&ctx, decoy, &chunk, i * 4096).unwrap();
        }
        let st = fs.fstat(&ctx, main).unwrap();
        fs.close(&ctx, main).unwrap();
        fs.close(&ctx, decoy).unwrap();
        let ino = Inode(PPtr::new(st.ino));
        assert!(!ino.extent(fs.region(), 2).is_empty(), "need three inline extents");
        ino.set_extent(fs.region(), 1, Extent::default());
        let r = check(&fs, true);
        assert!(
            r.violations.iter().any(|v| v.what.contains("prefix")),
            "expected a prefix-density violation, got {:?}",
            r.violations
        );
    }

    #[test]
    fn mid_relocation_hole_is_not_a_crash_hole() {
        use crate::obj::inode::{Extent, Inode};
        use simurgh_fsapi::OpenFlags;

        let (fs, ctx) = fresh();
        let rw = OpenFlags { read: true, ..OpenFlags::CREATE };
        let main = fs.open(&ctx, "/f", rw, FileMode::default()).unwrap();
        let decoy = fs.open(&ctx, "/decoy", OpenFlags::CREATE, FileMode::default()).unwrap();
        let chunk = vec![1u8; 4096];
        for i in 0..3u64 {
            fs.pwrite(&ctx, main, &chunk, i * 4096).unwrap();
            fs.pwrite(&ctx, decoy, &chunk, i * 4096).unwrap();
        }
        let st = fs.fstat(&ctx, main).unwrap();
        fs.close(&ctx, main).unwrap();
        fs.close(&ctx, decoy).unwrap();
        let ino = Inode(PPtr::new(st.ino));
        assert!(!ino.extent(fs.region(), 2).is_empty(), "need three inline extents");

        // A mid-swap crash image: the relocation journal is armed for this
        // inode and the map has a hole. Not a defect — recovery rolls it
        // back — so fsck must not raise the prefix-density flag.
        assert!(crate::compact::journal::arm(fs.region(), ino));
        let saved = ino.extent(fs.region(), 1);
        ino.set_extent(fs.region(), 1, Extent::default());
        let r = check(&fs, false);
        assert!(
            !r.violations.iter().any(|v| v.what.contains("prefix")),
            "armed relocation misread as a crash hole: {:?}",
            r.violations
        );

        // The same hole with the journal idle IS a crash hole.
        crate::compact::journal::clear(fs.region());
        let r = check(&fs, false);
        assert!(
            r.violations.iter().any(|v| v.what.contains("prefix")),
            "genuine hole must still be flagged, got {:?}",
            r.violations
        );

        // A journal armed for a *different* inode gives no cover either.
        ino.set_extent(fs.region(), 1, saved);
        let other = fs.stat(&ctx, "/decoy").unwrap();
        assert!(crate::compact::journal::arm(fs.region(), Inode(PPtr::new(other.ino))));
        ino.set_extent(fs.region(), 1, Extent::default());
        let r = check(&fs, false);
        assert!(
            r.violations.iter().any(|v| v.what.contains("prefix")),
            "peer relocation must not mask this inode's hole, got {:?}",
            r.violations
        );
        crate::compact::journal::clear(fs.region());
    }

    #[test]
    fn clean_after_heavy_churn() {
        let (fs, ctx) = fresh();
        for round in 0..3 {
            for i in 0..40 {
                fs.write_file(&ctx, &format!("/r{round}-{i}"), &vec![round; 2000]).unwrap();
            }
            for i in (0..40).step_by(2) {
                fs.unlink(&ctx, &format!("/r{round}-{i}")).unwrap();
            }
            for i in (1..40).step_by(4) {
                fs.rename(&ctx, &format!("/r{round}-{i}"), &format!("/m{round}-{i}")).unwrap();
            }
        }
        let r = check(&fs, true);
        assert!(r.is_clean(), "{:?}", r.violations);
    }
}
