//! Security integration: protected entry points and per-call cost.
//!
//! On real Simurgh hardware every public file-system function is a
//! protected function: the preload library redirects libc calls through
//! `jmpp`, the CPU enters kernel mode, and the NVMM kernel pages become
//! accessible (§3.2). Here the same wiring is reproduced in software:
//!
//! * with **enforcement** on, a [`ProtectedDomain`] is loaded with one
//!   entry point per operation family and every call runs inside
//!   `domain.enter(..)`, which raises the thread CPL so the region's
//!   [`simurgh_protfn::KernelPagePolicy`] admits the access;
//! * with **cost charging** on, each call busy-waits the configured
//!   [`SecurityMode`] cost (46 cycles for jmpp, ~400/1200 for syscalls) on
//!   the calibrated clock — the paper's own evaluation methodology.

use std::sync::Arc;

use simurgh_pmem::SpinClock;
use simurgh_protfn::{CostModel, EntryPoint, ProtectedDomain, SecurityMode};

/// The protected functions Simurgh registers at bootstrap. Grouping every
/// operation family under few entry points mirrors Fig. 1 (read/write/open
/// share a page).
pub const PROTECTED_FNS: [(&str, usize); 4] = [
    ("simurgh_data", 900),  // read/write/append data path
    ("simurgh_meta", 2100), // create/unlink/rename/mkdir (spills one slot)
    ("simurgh_walk", 800),  // path resolution, stat, readdir
    ("simurgh_ctl", 700),   // chmod, times, fsync, recovery entry
];

/// Which entry point an operation uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    Data = 0,
    Meta = 1,
    Walk = 2,
    Ctl = 3,
}

/// Per-mount security state.
pub struct Security {
    mode: SecurityMode,
    model: CostModel,
    charge: bool,
    domain: Option<(Arc<ProtectedDomain>, [EntryPoint; 4])>,
}

impl Security {
    /// No enforcement, no cost charging (unit tests, crash tests).
    pub fn disabled() -> Self {
        Security { mode: SecurityMode::Zero, model: CostModel::default(), charge: false, domain: None }
    }

    /// Cost charging only — the benchmark configuration, identical to the
    /// paper's "add 46 cycles to each Simurgh call".
    pub fn charging(mode: SecurityMode) -> Self {
        Security { mode, model: CostModel::default(), charge: true, domain: None }
    }

    /// Full enforcement through a protected domain (plus optional charging).
    /// Performs the §3.2 bootstrap: loads the four Simurgh entry points.
    pub fn enforced(domain: Arc<ProtectedDomain>, mode: SecurityMode, charge: bool) -> Self {
        let mut eps = [EntryPoint { page: 0, offset: 0 }; 4];
        for (i, (name, bytes)) in PROTECTED_FNS.iter().enumerate() {
            let (_, ep) = domain
                .load_protected(name, *bytes)
                .unwrap_or_else(|e| panic!("bootstrap failed loading {name}: {e}"));
            eps[i] = ep;
        }
        Security { mode, model: CostModel::default(), charge, domain: Some((domain, eps)) }
    }

    /// Runs one file-system operation across the privilege boundary.
    #[inline]
    pub fn call<R>(&self, class: OpClass, body: impl FnOnce() -> R) -> R {
        if self.charge {
            self.mode.charge(&self.model, SpinClock::global());
        }
        match &self.domain {
            Some((domain, eps)) => domain
                .enter(eps[class as usize], body)
                .expect("registered entry point cannot fault"),
            None => body(),
        }
    }

    /// The active mode (harness labelling).
    pub fn mode(&self) -> SecurityMode {
        self.mode
    }

    /// The loaded domain, if enforcement is on.
    pub fn domain(&self) -> Option<&Arc<ProtectedDomain>> {
        self.domain.as_ref().map(|(d, _)| d)
    }
}

impl Default for Security {
    fn default() -> Self {
        Security::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simurgh_protfn::cpl;

    #[test]
    fn disabled_runs_in_user_mode() {
        let s = Security::disabled();
        let ring = s.call(OpClass::Data, cpl::current);
        assert_eq!(ring, cpl::Ring::User);
    }

    #[test]
    fn enforced_runs_in_kernel_mode_and_returns() {
        let domain = Arc::new(ProtectedDomain::new(4));
        let s = Security::enforced(domain.clone(), SecurityMode::Jmpp, false);
        let ring = s.call(OpClass::Meta, cpl::current);
        assert_eq!(ring, cpl::Ring::Kernel);
        assert_eq!(cpl::current(), cpl::Ring::User, "pret restored user mode");
        assert!(domain.jmpp_count() >= 1);
    }

    #[test]
    fn all_entry_points_resolve() {
        let domain = Arc::new(ProtectedDomain::new(4));
        let _s = Security::enforced(domain.clone(), SecurityMode::Jmpp, false);
        for (name, _) in PROTECTED_FNS {
            assert!(domain.resolve(name).is_some(), "{name} loaded");
        }
    }

    #[test]
    fn charging_executes_without_domain() {
        let s = Security::charging(SecurityMode::Jmpp);
        assert_eq!(s.mode(), SecurityMode::Jmpp);
        let out = s.call(OpClass::Walk, || 42);
        assert_eq!(out, 42);
    }

    #[test]
    fn each_class_uses_its_own_entry() {
        let domain = Arc::new(ProtectedDomain::new(4));
        let s = Security::enforced(domain.clone(), SecurityMode::Zero, false);
        for class in [OpClass::Data, OpClass::Meta, OpClass::Walk, OpClass::Ctl] {
            s.call(class, || ());
        }
        assert_eq!(domain.jmpp_count(), 4);
    }
}
