//! The shared-DRAM directory index.
//!
//! Simurgh's memory layout (paper Fig. 3) pairs the persistent NVMM region
//! with a *shared DRAM* area holding volatile metadata — the allocator
//! free lists and friends — that every process maps and that is rebuilt at
//! mount ("the recovery [is] split into two parts: scanning and repairing
//! the persistent data, and rebuilding the shared memory data structures",
//! artifact appendix). This module is that shared-DRAM structure for
//! directories: a hash index from `(directory, name-hash)` to the file
//! entry's persistent pointer, plus per-line insertion hints.
//!
//! The persistent hash-block chains remain the ground truth — the index is
//! never required for correctness. Lookups verify every hit against the
//! persistent entry (valid bit + name compare) and fall back to the chain
//! walk whenever a directory is not marked fully indexed (e.g. right after
//! a decentralized line repair). What the index buys is O(1) lookup and
//! insertion independent of directory size, where the raw chain costs one
//! probe per chained block.

use std::collections::{HashMap, HashSet};

use parking_lot::RwLock;
use simurgh_pmem::PPtr;

const SHARDS: usize = 32;

/// `(dir, fnv64(name))` → `(file-entry pointer, containing block)`.
type EntryShard = RwLock<HashMap<(u64, u64), (u64, u64)>>;

/// Volatile per-mount directory index. Directories are keyed by the
/// persistent pointer of their first hash block.
pub struct DirIndex {
    entries: Vec<EntryShard>,
    /// `(dir, line)` → a block known to have a free slot at `line`
    /// (set by deletes, consumed by the next insert on that line).
    free_hints: Vec<RwLock<HashMap<(u64, u32), u64>>>,
    /// Directories whose index is complete: a miss is authoritative.
    complete: RwLock<HashSet<u64>>,
    /// Per-directory chain tail (avoids walking the chain to extend it).
    tails: RwLock<HashMap<u64, u64>>,
}

impl Default for DirIndex {
    fn default() -> Self {
        Self::new()
    }
}

/// Outcome of an index lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexHit {
    /// The name maps to this candidate `(entry, block)` (caller verifies).
    Found(PPtr, PPtr),
    /// The directory is fully indexed and the name is not present.
    AbsentForSure,
    /// The index cannot answer; walk the persistent chain.
    Unknown,
}

impl DirIndex {
    pub fn new() -> Self {
        DirIndex {
            entries: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            free_hints: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            complete: RwLock::new(HashSet::new()),
            tails: RwLock::new(HashMap::new()),
        }
    }

    #[inline]
    fn shard(&self, h: u64) -> usize {
        (h as usize ^ (h >> 32) as usize) % SHARDS
    }

    /// Looks up `(dir, name-hash)`.
    pub fn lookup(&self, dir: PPtr, nhash: u64) -> IndexHit {
        let shard = &self.entries[self.shard(nhash)];
        if let Some(&(fe, blk)) = shard.read().get(&(dir.off(), nhash)) {
            return IndexHit::Found(PPtr::new(fe), PPtr::new(blk));
        }
        if self.complete.read().contains(&dir.off()) {
            IndexHit::AbsentForSure
        } else {
            IndexHit::Unknown
        }
    }

    /// Records a published entry and the block whose line slot holds it.
    pub fn insert(&self, dir: PPtr, nhash: u64, fe: PPtr, block: PPtr) {
        self.entries[self.shard(nhash)]
            .write()
            .insert((dir.off(), nhash), (fe.off(), block.off()));
    }

    /// Removes an entry.
    pub fn remove(&self, dir: PPtr, nhash: u64) {
        self.entries[self.shard(nhash)].write().remove(&(dir.off(), nhash));
    }

    /// Marks a directory as fully indexed (fresh mkdir, or after a rebuild
    /// scan); misses become authoritative.
    pub fn mark_complete(&self, dir: PPtr) {
        self.complete.write().insert(dir.off());
    }

    /// Drops a directory's completeness (decentralized repair touched it);
    /// its entries stay as verified-on-read hints.
    pub fn mark_incomplete(&self, dir: PPtr) {
        self.complete.write().remove(&dir.off());
    }

    /// Whether misses on this directory are authoritative.
    pub fn is_complete(&self, dir: PPtr) -> bool {
        self.complete.read().contains(&dir.off())
    }

    /// Forgets everything about a directory (rmdir).
    pub fn forget_dir(&self, dir: PPtr) {
        self.mark_incomplete(dir);
        self.tails.write().remove(&dir.off());
        for shard in &self.entries {
            shard.write().retain(|(d, _), _| *d != dir.off());
        }
        for shard in &self.free_hints {
            shard.write().retain(|(d, _), _| *d != dir.off());
        }
    }

    /// A block known to have a free slot at `(dir, line)`, if any.
    pub fn take_free_hint(&self, dir: PPtr, line: usize) -> Option<PPtr> {
        self.free_hints[self.shard(line as u64)]
            .write()
            .remove(&(dir.off(), line as u32))
            .map(PPtr::new)
    }

    /// Remembers that `block` has a free slot at `(dir, line)`.
    pub fn put_free_hint(&self, dir: PPtr, line: usize, block: PPtr) {
        self.free_hints[self.shard(line as u64)]
            .write()
            .insert((dir.off(), line as u32), block.off());
    }

    /// Forgets references to one reclaimed chain block: resets the tail to
    /// the first block and drops free hints pointing at it. Entries never
    /// reference an empty block, so they are untouched.
    pub fn forget_block(&self, dir: PPtr, block: PPtr, first: PPtr) {
        {
            let mut tails = self.tails.write();
            if tails.get(&dir.off()) == Some(&block.off()) {
                tails.insert(dir.off(), first.off());
            }
        }
        for shard in &self.free_hints {
            shard.write().retain(|(d, _), b| *d != dir.off() || *b != block.off());
        }
    }

    /// The chain tail of `dir`, if known.
    pub fn tail(&self, dir: PPtr) -> Option<PPtr> {
        self.tails.read().get(&dir.off()).copied().map(PPtr::new)
    }

    /// Updates the chain tail of `dir`.
    pub fn set_tail(&self, dir: PPtr, tail: PPtr) {
        self.tails.write().insert(dir.off(), tail.off());
    }

    /// Number of indexed entries (diagnostics).
    pub fn len(&self) -> usize {
        self.entries.iter().map(|s| s.read().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_states() {
        let ix = DirIndex::new();
        let dir = PPtr::new(4096);
        assert_eq!(ix.lookup(dir, 7), IndexHit::Unknown);
        ix.mark_complete(dir);
        assert_eq!(ix.lookup(dir, 7), IndexHit::AbsentForSure);
        ix.insert(dir, 7, PPtr::new(8192), PPtr::new(12288));
        assert_eq!(ix.lookup(dir, 7), IndexHit::Found(PPtr::new(8192), PPtr::new(12288)));
        ix.remove(dir, 7);
        assert_eq!(ix.lookup(dir, 7), IndexHit::AbsentForSure);
        ix.mark_incomplete(dir);
        assert_eq!(ix.lookup(dir, 7), IndexHit::Unknown);
    }

    #[test]
    fn forget_dir_clears_everything() {
        let ix = DirIndex::new();
        let a = PPtr::new(4096);
        let b = PPtr::new(8192);
        ix.mark_complete(a);
        ix.mark_complete(b);
        ix.insert(a, 1, PPtr::new(100), PPtr::new(1));
        ix.insert(b, 1, PPtr::new(200), PPtr::new(2));
        ix.put_free_hint(a, 3, PPtr::new(300));
        ix.set_tail(a, PPtr::new(400));
        ix.forget_dir(a);
        assert_eq!(ix.lookup(a, 1), IndexHit::Unknown);
        assert_eq!(ix.lookup(b, 1), IndexHit::Found(PPtr::new(200), PPtr::new(2)));
        assert_eq!(ix.take_free_hint(a, 3), None);
        assert_eq!(ix.tail(a), None);
    }

    #[test]
    fn free_hints_are_consumed_once() {
        let ix = DirIndex::new();
        let dir = PPtr::new(4096);
        ix.put_free_hint(dir, 9, PPtr::new(555));
        assert_eq!(ix.take_free_hint(dir, 9), Some(PPtr::new(555)));
        assert_eq!(ix.take_free_hint(dir, 9), None);
    }

    #[test]
    fn tails_update() {
        let ix = DirIndex::new();
        let dir = PPtr::new(4096);
        assert_eq!(ix.tail(dir), None);
        ix.set_tail(dir, PPtr::new(1));
        ix.set_tail(dir, PPtr::new(2));
        assert_eq!(ix.tail(dir), Some(PPtr::new(2)));
    }
}
