//! The shared-DRAM directory index.
//!
//! Simurgh's memory layout (paper Fig. 3) pairs the persistent NVMM region
//! with a *shared DRAM* area holding volatile metadata — the allocator
//! free lists and friends — that every process maps and that is rebuilt at
//! mount ("the recovery [is] split into two parts: scanning and repairing
//! the persistent data, and rebuilding the shared memory data structures",
//! artifact appendix). This module is that shared-DRAM structure for
//! directories: a hash index from `(directory, name-hash)` to the file
//! entry's persistent pointer, plus per-`(dir, line)` free-slot stacks, a
//! per-line completeness bitmap and the chain tail.
//!
//! The persistent hash-block chains remain the ground truth — the index is
//! never required for correctness. Lookups verify every hit against the
//! persistent entry (valid bit + name compare) and fall back to the chain
//! walk whenever the *line* is not marked fully indexed (e.g. right after a
//! decentralized line repair — other lines keep their authority). What the
//! index buys is O(1) lookup and insertion independent of directory size,
//! where the raw chain costs one probe per chained block:
//!
//! * **Lookup**: hit → one entry-map probe (verified); authoritative miss →
//!   one bitmap test. Only an incomplete line walks the chain.
//! * **Insert**: the free-slot stack yields a block with a hole at this
//!   line, or the cached chain tail is probed/extended — never a walk from
//!   the first block.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use parking_lot::RwLock;
use simurgh_pmem::PPtr;

use crate::obj::dirblock::NLINES;

const SHARDS: usize = 32;
const LINE_WORDS: usize = NLINES / 64;

/// Multiply-xorshift folding hasher. Index keys are persistent pointers and
/// FNV-1a name hashes — already well-mixed words — so the default SipHash
/// (DoS hardening for untrusted keys) only adds per-op cost on the hottest
/// metadata path. Not stable across mounts; never persisted.
#[derive(Default)]
pub struct FoldHasher(u64);

impl Hasher for FoldHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        let x = (self.0 ^ v).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        self.0 = x ^ (x >> 32);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

type FastBuild = BuildHasherDefault<FoldHasher>;
type FastMap<K, V> = HashMap<K, V, FastBuild>;

/// `(dir, fnv64(name))` → `(file-entry pointer, containing block)`.
type EntryShard = RwLock<FastMap<(u64, u64), (u64, u64)>>;

/// Volatile per-directory state: chain tail, per-line miss authority and
/// per-line free-slot stacks.
#[derive(Default)]
struct DirState {
    /// Chain tail block (0 = unknown; inserts then start from the first
    /// block, which is always correct, just slower).
    tail: u64,
    /// Bit `i` set ⇒ line `i` is fully indexed and a miss is authoritative.
    complete: [u64; LINE_WORDS],
    /// `line` → blocks known to have a free slot at that line (pushed by
    /// deletes, popped — and re-verified — by inserts).
    free: FastMap<u32, Vec<u64>>,
}

impl DirState {
    #[inline]
    fn line_complete(&self, line: usize) -> bool {
        self.complete[line / 64] & (1 << (line % 64)) != 0
    }
}

/// Volatile per-mount directory index. Directories are keyed by the
/// persistent pointer of their first hash block.
pub struct DirIndex {
    entries: Vec<EntryShard>,
    dirs: Vec<RwLock<FastMap<u64, DirState>>>,
    /// Whether completeness bits may turn a miss into an authoritative
    /// `AbsentForSure`. Shared (multi-process) mounts turn this off: a peer
    /// process inserting a name cannot invalidate *our* DRAM, so only the
    /// verified positive hints, free-slot stacks and chain tails — all
    /// re-checked against media on use — remain safe to serve.
    negative_authority: std::sync::atomic::AtomicBool,
}

impl Default for DirIndex {
    fn default() -> Self {
        Self::new()
    }
}

/// Outcome of an index lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexHit {
    /// The name maps to this candidate `(entry, block)` (caller verifies).
    Found(PPtr, PPtr),
    /// The line is fully indexed and the name is not present.
    AbsentForSure,
    /// The index cannot answer; walk the persistent chain.
    Unknown,
}

impl DirIndex {
    pub fn new() -> Self {
        DirIndex {
            entries: (0..SHARDS).map(|_| RwLock::new(FastMap::default())).collect(),
            dirs: (0..SHARDS).map(|_| RwLock::new(FastMap::default())).collect(),
            negative_authority: std::sync::atomic::AtomicBool::new(true),
        }
    }

    /// Demotes the index to positive-hints-only (shared mounts): misses are
    /// never authoritative and always fall back to the chain walk.
    pub fn disable_negative_authority(&self) {
        self.negative_authority.store(false, std::sync::atomic::Ordering::Release);
    }

    #[inline]
    fn negatives_on(&self) -> bool {
        self.negative_authority.load(std::sync::atomic::Ordering::Acquire)
    }

    #[inline]
    fn eshard(&self, nhash: u64) -> usize {
        (nhash ^ (nhash >> 32)) as usize % SHARDS
    }

    #[inline]
    fn dshard(&self, dir: u64) -> usize {
        (dir.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) as usize % SHARDS
    }

    /// Runs `f` on the (existing or fresh) state of `dir` under a write lock.
    fn with_dir<R>(&self, dir: PPtr, f: impl FnOnce(&mut DirState) -> R) -> R {
        f(self.dirs[self.dshard(dir.off())].write().entry(dir.off()).or_default())
    }

    /// Runs `f` on the state of `dir` under a read lock, if it exists.
    fn read_dir<R>(&self, dir: PPtr, f: impl FnOnce(&DirState) -> R) -> Option<R> {
        self.dirs[self.dshard(dir.off())].read().get(&dir.off()).map(f)
    }

    /// Looks up `(dir, name-hash)`; `line` is the name's hash line, used for
    /// per-line miss authority.
    pub fn lookup(&self, dir: PPtr, line: usize, nhash: u64) -> IndexHit {
        let shard = &self.entries[self.eshard(nhash)];
        if let Some(&(fe, blk)) = shard.read().get(&(dir.off(), nhash)) {
            return IndexHit::Found(PPtr::new(fe), PPtr::new(blk));
        }
        match self.negatives_on() && self.read_dir(dir, |st| st.line_complete(line)) == Some(true)
        {
            true => IndexHit::AbsentForSure,
            false => IndexHit::Unknown,
        }
    }

    /// Records a published entry and the block whose line slot holds it.
    pub fn insert(&self, dir: PPtr, nhash: u64, fe: PPtr, block: PPtr) {
        self.entries[self.eshard(nhash)]
            .write()
            .insert((dir.off(), nhash), (fe.off(), block.off()));
    }

    /// Removes an entry.
    pub fn remove(&self, dir: PPtr, nhash: u64) {
        self.entries[self.eshard(nhash)].write().remove(&(dir.off(), nhash));
    }

    /// Marks every line of a directory as fully indexed (fresh mkdir, or
    /// after a full rebuild scan); misses become authoritative.
    pub fn mark_complete(&self, dir: PPtr) {
        self.with_dir(dir, |st| st.complete = [u64::MAX; LINE_WORDS]);
    }

    /// Drops every line's completeness (whole-directory degradation; the
    /// per-line [`Self::mark_line_incomplete`] is preferred where the
    /// damage is known). Entries stay as verified-on-read hints.
    pub fn mark_incomplete(&self, dir: PPtr) {
        self.with_dir(dir, |st| st.complete = [0; LINE_WORDS]);
    }

    /// Marks one line fully indexed; misses on it become authoritative.
    pub fn mark_line_complete(&self, dir: PPtr, line: usize) {
        self.with_dir(dir, |st| st.complete[line / 64] |= 1 << (line % 64));
    }

    /// Drops one line's completeness (a repair touched it); lookups on this
    /// line fall back to the chain walk until it is reindexed, while every
    /// other line keeps its O(1) authority.
    pub fn mark_line_incomplete(&self, dir: PPtr, line: usize) {
        self.with_dir(dir, |st| st.complete[line / 64] &= !(1 << (line % 64)));
    }

    /// Whether misses on `(dir, line)` are authoritative.
    pub fn is_line_complete(&self, dir: PPtr, line: usize) -> bool {
        self.negatives_on() && self.read_dir(dir, |st| st.line_complete(line)).unwrap_or(false)
    }

    /// Whether misses on every line of this directory are authoritative.
    pub fn is_complete(&self, dir: PPtr) -> bool {
        self.negatives_on()
            && self
                .read_dir(dir, |st| st.complete.iter().all(|w| *w == u64::MAX))
                .unwrap_or(false)
    }

    /// Forgets everything about a directory (rmdir).
    pub fn forget_dir(&self, dir: PPtr) {
        self.dirs[self.dshard(dir.off())].write().remove(&dir.off());
        for shard in &self.entries {
            shard.write().retain(|(d, _), _| *d != dir.off());
        }
    }

    /// Pops a block known to have a free slot at `(dir, line)`, if any.
    /// The caller re-verifies the slot and drops stale hints.
    pub fn take_free_hint(&self, dir: PPtr, line: usize) -> Option<PPtr> {
        self.take_free_hint_or_tail(dir, line).0
    }

    /// One-locking-pass fetch of the insert-path hints: a popped free-slot
    /// block (if any) and the cached chain tail. The common no-hints case
    /// stays on the shared (read) lock.
    pub fn take_free_hint_or_tail(&self, dir: PPtr, line: usize) -> (Option<PPtr>, Option<PPtr>) {
        let shard = &self.dirs[self.dshard(dir.off())];
        {
            let g = shard.read();
            let Some(st) = g.get(&dir.off()) else {
                return (None, None);
            };
            let tail = (st.tail != 0).then(|| PPtr::new(st.tail));
            if st.free.get(&(line as u32)).is_none_or(|v| v.is_empty()) {
                return (None, tail);
            }
        }
        let mut g = shard.write();
        let Some(st) = g.get_mut(&dir.off()) else {
            return (None, None);
        };
        let tail = (st.tail != 0).then(|| PPtr::new(st.tail));
        let hint = st.free.get_mut(&(line as u32)).and_then(|v| v.pop()).map(PPtr::new);
        (hint, tail)
    }

    /// Remembers that `block` has a free slot at `(dir, line)`.
    pub fn put_free_hint(&self, dir: PPtr, line: usize, block: PPtr) {
        self.with_dir(dir, |st| {
            let v = st.free.entry(line as u32).or_default();
            if !v.contains(&block.off()) {
                v.push(block.off());
            }
        });
    }

    /// Number of free-slot hints recorded for `(dir, line)` (diagnostics).
    pub fn free_hint_count(&self, dir: PPtr, line: usize) -> usize {
        self.read_dir(dir, |st| st.free.get(&(line as u32)).map_or(0, Vec::len)).unwrap_or(0)
    }

    /// Drops the free-slot hints of one line (before a line reindex).
    pub fn clear_free_hints(&self, dir: PPtr, line: usize) {
        self.with_dir(dir, |st| {
            st.free.remove(&(line as u32));
        });
    }

    /// Drops every free-slot hint of a directory (before a full reindex).
    pub fn clear_all_free_hints(&self, dir: PPtr) {
        self.with_dir(dir, |st| st.free.clear());
    }

    /// Forgets references to one reclaimed chain block: drops free hints
    /// pointing at it and, if it was the cached tail, falls back to
    /// `new_tail` (its predecessor, or the first block). Entries never
    /// reference an empty block, so they are untouched.
    pub fn forget_block(&self, dir: PPtr, block: PPtr, new_tail: PPtr) {
        self.with_dir(dir, |st| {
            for v in st.free.values_mut() {
                v.retain(|b| *b != block.off());
            }
            if st.tail == block.off() {
                st.tail = new_tail.off();
            }
        });
    }

    /// The chain tail of `dir`, if known.
    pub fn tail(&self, dir: PPtr) -> Option<PPtr> {
        self.read_dir(dir, |st| (st.tail != 0).then(|| PPtr::new(st.tail))).flatten()
    }

    /// Updates the chain tail of `dir`.
    pub fn set_tail(&self, dir: PPtr, tail: PPtr) {
        self.with_dir(dir, |st| st.tail = tail.off());
    }

    /// Number of indexed entries (diagnostics).
    pub fn len(&self) -> usize {
        self.entries.iter().map(|s| s.read().len()).sum()
    }

    /// Number of indexed entries of one directory (diagnostics; O(len)).
    pub fn dir_len(&self, dir: PPtr) -> usize {
        self.entries
            .iter()
            .map(|s| s.read().keys().filter(|(d, _)| *d == dir.off()).count())
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_states() {
        let ix = DirIndex::new();
        let dir = PPtr::new(4096);
        assert_eq!(ix.lookup(dir, 3, 7), IndexHit::Unknown);
        ix.mark_complete(dir);
        assert_eq!(ix.lookup(dir, 3, 7), IndexHit::AbsentForSure);
        ix.insert(dir, 7, PPtr::new(8192), PPtr::new(12288));
        assert_eq!(ix.lookup(dir, 3, 7), IndexHit::Found(PPtr::new(8192), PPtr::new(12288)));
        ix.remove(dir, 7);
        assert_eq!(ix.lookup(dir, 3, 7), IndexHit::AbsentForSure);
        ix.mark_incomplete(dir);
        assert_eq!(ix.lookup(dir, 3, 7), IndexHit::Unknown);
    }

    #[test]
    fn line_authority_is_independent() {
        let ix = DirIndex::new();
        let dir = PPtr::new(4096);
        ix.mark_complete(dir);
        assert!(ix.is_complete(dir));
        ix.mark_line_incomplete(dir, 5);
        assert!(!ix.is_complete(dir), "one incomplete line taints the whole");
        assert!(!ix.is_line_complete(dir, 5));
        assert_eq!(ix.lookup(dir, 5, 7), IndexHit::Unknown, "damaged line walks");
        for other in [0, 4, 6, 63, 64, 255] {
            assert!(ix.is_line_complete(dir, other));
            assert_eq!(ix.lookup(dir, other, 7), IndexHit::AbsentForSure, "line {other}");
        }
        ix.mark_line_complete(dir, 5);
        assert!(ix.is_complete(dir), "reindexing the line restores the whole");
    }

    #[test]
    fn forget_dir_clears_everything() {
        let ix = DirIndex::new();
        let a = PPtr::new(4096);
        let b = PPtr::new(8192);
        ix.mark_complete(a);
        ix.mark_complete(b);
        ix.insert(a, 1, PPtr::new(100), PPtr::new(1));
        ix.insert(b, 1, PPtr::new(200), PPtr::new(2));
        ix.put_free_hint(a, 3, PPtr::new(300));
        ix.set_tail(a, PPtr::new(400));
        ix.forget_dir(a);
        assert_eq!(ix.lookup(a, 0, 1), IndexHit::Unknown);
        assert_eq!(ix.lookup(b, 0, 1), IndexHit::Found(PPtr::new(200), PPtr::new(2)));
        assert_eq!(ix.take_free_hint(a, 3), None);
        assert_eq!(ix.tail(a), None);
    }

    #[test]
    fn free_hints_stack_and_dedup() {
        let ix = DirIndex::new();
        let dir = PPtr::new(4096);
        ix.put_free_hint(dir, 9, PPtr::new(555));
        ix.put_free_hint(dir, 9, PPtr::new(666));
        ix.put_free_hint(dir, 9, PPtr::new(555)); // duplicate: ignored
        assert_eq!(ix.free_hint_count(dir, 9), 2, "every freed slot is remembered");
        assert_eq!(ix.take_free_hint(dir, 9), Some(PPtr::new(666)));
        assert_eq!(ix.take_free_hint(dir, 9), Some(PPtr::new(555)));
        assert_eq!(ix.take_free_hint(dir, 9), None);
        assert_eq!(ix.take_free_hint(dir, 8), None, "lines are independent");
    }

    #[test]
    fn hint_or_tail_is_one_call() {
        let ix = DirIndex::new();
        let dir = PPtr::new(4096);
        assert_eq!(ix.take_free_hint_or_tail(dir, 9), (None, None));
        ix.set_tail(dir, PPtr::new(111));
        assert_eq!(ix.take_free_hint_or_tail(dir, 9), (None, Some(PPtr::new(111))));
        ix.put_free_hint(dir, 9, PPtr::new(555));
        assert_eq!(
            ix.take_free_hint_or_tail(dir, 9),
            (Some(PPtr::new(555)), Some(PPtr::new(111)))
        );
        assert_eq!(ix.take_free_hint_or_tail(dir, 9), (None, Some(PPtr::new(111))));
    }

    #[test]
    fn forget_block_drops_hints_and_repoints_tail() {
        let ix = DirIndex::new();
        let dir = PPtr::new(4096);
        ix.put_free_hint(dir, 1, PPtr::new(555));
        ix.put_free_hint(dir, 2, PPtr::new(555));
        ix.put_free_hint(dir, 2, PPtr::new(777));
        ix.set_tail(dir, PPtr::new(555));
        ix.forget_block(dir, PPtr::new(555), PPtr::new(4096));
        assert_eq!(ix.take_free_hint(dir, 1), None);
        assert_eq!(ix.take_free_hint(dir, 2), Some(PPtr::new(777)), "other blocks kept");
        assert_eq!(ix.tail(dir), Some(PPtr::new(4096)), "tail fell back");
    }

    #[test]
    fn tails_update() {
        let ix = DirIndex::new();
        let dir = PPtr::new(4096);
        assert_eq!(ix.tail(dir), None);
        ix.set_tail(dir, PPtr::new(1));
        ix.set_tail(dir, PPtr::new(2));
        assert_eq!(ix.tail(dir), Some(PPtr::new(2)));
    }
}
