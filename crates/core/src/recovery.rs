//! Whole-system crash recovery: mark-and-sweep over the persistent image
//! (§4.3 "Crash recovery", §5.5).
//!
//! After an unclean shutdown nothing volatile survives — allocator free
//! lists, open-file maps and lock words are gone, and any number of Fig. 5
//! protocols may have been cut mid-step. Recovery rebuilds everything from
//! the persistent truth alone:
//!
//! 1. **Mark** — walk the tree from the root inode, tolerantly (invalid
//!    pointers and half-written entries are skipped), collecting reachable
//!    metadata objects and used data blocks.
//! 2. **Repair** — if the shutdown was unclean, run the decentralized
//!    repair of [`crate::dir::repair_dir`] over every reachable directory,
//!    completing or rolling back interrupted creates/deletes/renames and
//!    clearing stale busy flags.
//! 3. **Re-mark & sweep** — walk again (repairs may have changed
//!    reachability), rebuild the block allocator's volatile free lists from
//!    the used-block set, and sweep every pool slot: free slots feed the
//!    metadata allocator, reachable objects get their volatile lock words
//!    cleared, and allocated-but-unreachable objects (the paper's "assigned
//!    but unused metadata objects") are reclaimed.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use simurgh_fsapi::types::FileType;
use simurgh_fsapi::{FsError, FsResult};
use simurgh_pmem::{PPtr, PmemRegion};

use crate::alloc::{BlockAlloc, MetaAllocator};
use crate::dir::{self, DirEnv};
use crate::obj::dirblock::DirBlock;
use crate::obj::inode::{extblock, Inode};
use crate::obj::{self, Tag};
use crate::super_block::{PoolKind, Superblock};
use crate::BLOCK_SIZE;

/// Outcome of a recovery run.
#[derive(Debug, Default, Clone)]
pub struct RecoveryReport {
    /// The region was cleanly unmounted (no repairs needed).
    pub was_clean: bool,
    pub files: u64,
    pub directories: u64,
    pub symlinks: u64,
    /// Allocated-but-unreachable metadata objects reclaimed by the sweep.
    pub reclaimed_objects: u64,
    /// Mid-swap compactor relocations rolled back from the relocation
    /// journal (0 or 1 — the journal has one slot).
    pub reloc_rollbacks: u64,
    /// Data blocks found in use.
    pub used_blocks: u64,
    /// Wall-clock time of the scan (mark), repair and sweep phases.
    pub mark_time: Duration,
    pub repair_time: Duration,
    pub sweep_time: Duration,
    /// Time to rebuild the shared-DRAM structures (directory index) — the
    /// second half of the paper's reported recovery time.
    pub rebuild_time: Duration,
}

impl RecoveryReport {
    pub fn total_time(&self) -> Duration {
        self.mark_time + self.repair_time + self.sweep_time + self.rebuild_time
    }
}

#[derive(Default)]
struct Marked {
    /// Offsets of reachable metadata objects.
    meta: HashSet<u64>,
    /// Block indices (relative to the data area) in use.
    blocks: HashSet<u64>,
    /// First hash blocks of every reachable directory.
    dir_firsts: Vec<u64>,
    files: u64,
    dirs: u64,
    symlinks: u64,
}

struct Walker<'a> {
    region: &'a PmemRegion,
    data_start: u64,
    data_blocks: u64,
}

impl<'a> Walker<'a> {
    fn block_range(&self, start: u64, len: u64, out: &mut HashSet<u64>) {
        if len == 0 || start < self.data_start {
            return;
        }
        let first = (start - self.data_start) / BLOCK_SIZE as u64;
        let last = (start - self.data_start + len - 1) / BLOCK_SIZE as u64;
        for b in first..=last.min(self.data_blocks.saturating_sub(1)) {
            out.insert(b);
        }
    }

    fn valid_obj(&self, p: PPtr, tag: Tag) -> bool {
        self.region.in_bounds(p, 8)
            && p.is_aligned(8)
            && {
                let h = obj::header(self.region, p);
                obj::is_valid(h) && Tag::from_header(h) == Some(tag)
            }
    }

    fn mark(&self, root: PPtr) -> Marked {
        let mut m = Marked::default();
        // Pool segments themselves occupy data blocks.
        for kind in PoolKind::ALL {
            for seg in Superblock::pool_segs(self.region, kind) {
                self.block_range(seg.start, seg.count * kind.obj_size(), &mut m.blocks);
            }
        }
        let mut stack = vec![root];
        let mut visited: HashSet<u64> = HashSet::new();
        while let Some(ip) = stack.pop() {
            if !visited.insert(ip.off()) || !self.valid_obj(ip, Tag::Inode) {
                continue;
            }
            m.meta.insert(ip.off());
            let ino = Inode(ip);
            match ino.mode(self.region).ftype {
                FileType::Directory => {
                    m.dirs += 1;
                    let e = ino.extent(self.region, 0);
                    if e.is_empty() || !self.region.in_bounds(PPtr::new(e.start), 8) {
                        continue;
                    }
                    m.dir_firsts.push(e.start);
                    let mut blk = PPtr::new(e.start);
                    let mut seen_blocks: HashSet<u64> = HashSet::new();
                    while !blk.is_null()
                        && self.region.in_bounds(blk, crate::obj::dirblock::DIRBLOCK_SIZE as usize)
                        && seen_blocks.insert(blk.off())
                    {
                        m.meta.insert(blk.off());
                        let db = DirBlock(blk);
                        for line in 0..crate::obj::dirblock::NLINES {
                            let slot = db.line(self.region, line);
                            if slot.is_null() || !self.valid_obj(slot, Tag::FileEntry) {
                                continue;
                            }
                            m.meta.insert(slot.off());
                            let fe = crate::obj::fentry::FileEntry(slot);
                            let child = fe.inode(self.region);
                            if !child.is_null() {
                                stack.push(child);
                            }
                        }
                        blk = db.next(self.region);
                    }
                }
                FileType::Regular | FileType::Symlink => {
                    if ino.mode(self.region).ftype == FileType::Symlink {
                        m.symlinks += 1;
                    } else {
                        m.files += 1;
                    }
                    // Inline extents. Scan *every* slot: a crash between a
                    // shrink and a regrow can leave a hole (empty slot
                    // followed by live extents), and breaking at the first
                    // empty slot would leak the later extents to the sweep —
                    // the block allocator would then be rebuilt over live
                    // data. The writer keeps slots prefix-dense; recovery
                    // tolerates holes and fsck flags them.
                    for i in 0..crate::obj::inode::INLINE_EXTENTS {
                        let e = ino.extent(self.region, i);
                        if e.is_empty() {
                            continue;
                        }
                        self.block_range(e.start, e.len, &mut m.blocks);
                    }
                    // Overflow extent blocks.
                    let mut blk = ino.ext_next(self.region);
                    let mut seen: HashSet<u64> = HashSet::new();
                    while !blk.is_null()
                        && self.region.in_bounds(blk, BLOCK_SIZE)
                        && seen.insert(blk.off())
                    {
                        self.block_range(blk.off(), BLOCK_SIZE as u64, &mut m.blocks);
                        let n = extblock::count(self.region, blk).min(extblock::CAPACITY);
                        for i in 0..n {
                            let e = extblock::get(self.region, blk, i);
                            self.block_range(e.start, e.len, &mut m.blocks);
                        }
                        blk = extblock::next(self.region, blk);
                    }
                }
            }
        }
        m
    }
}

/// Runs recovery on a mounted region, returning rebuilt allocators and the
/// report. Used by [`crate::SimurghFs::mount`]; also callable directly by
/// the benchmark harness (§5.5 measures exactly this).
pub fn recover(
    region: &Arc<PmemRegion>,
    segments: usize,
) -> FsResult<(Arc<BlockAlloc>, Arc<MetaAllocator>, RecoveryReport)> {
    if !Superblock::is_valid(region) {
        return Err(FsError::Corrupt("bad superblock"));
    }
    let was_clean = Superblock::is_clean(region);
    // Release pool-table slots a crashed grower left mid-claim; recovery
    // runs exclusively, so no live claimer can be racing us.
    Superblock::clear_torn_pool_claims(region);
    // Roll back a relocation that crashed mid map-swap *before* the mark
    // phase, so the walk sees the restored (old) map and the abandoned new
    // run stays unreferenced for the sweep.
    let reloc_rollbacks = crate::compact::journal::recover(region);
    let data = Superblock::data_extent(region);
    let data_start = data.start.align_up(BLOCK_SIZE as u64).off();
    let data_blocks = (data.start.off() + data.len - data_start) / BLOCK_SIZE as u64;
    let root = Superblock::root_inode(region);
    let walker = Walker { region, data_start, data_blocks };

    let mut report = RecoveryReport { was_clean, reloc_rollbacks, ..Default::default() };

    // Phase 1: mark.
    let t = Instant::now();
    let m1 = walker.mark(root);
    report.mark_time = t.elapsed();
    if !m1.meta.contains(&root.off()) {
        return Err(FsError::Corrupt("root inode unreachable"));
    }

    // Phase 2: repair (unclean shutdown only).
    let t = Instant::now();
    let m_final = if was_clean {
        m1
    } else {
        let tmp_blocks =
            Arc::new(BlockAlloc::rebuild(data, segments, |b| m1.blocks.contains(&b)));
        let tmp_meta = MetaAllocator::new(region.clone(), tmp_blocks);
        let env = DirEnv::new(region, &tmp_meta);
        for first in &m1.dir_firsts {
            dir::repair_dir(&env, DirBlock(PPtr::new(*first)));
        }
        // Repairs change reachability; walk again for the final truth.
        walker.mark(root)
    };
    report.repair_time = t.elapsed();

    // Phase 3: rebuild allocators and sweep the pools.
    let t = Instant::now();
    let blocks =
        Arc::new(BlockAlloc::rebuild(data, segments, |b| m_final.blocks.contains(&b)));
    let meta = Arc::new(MetaAllocator::new(region.clone(), blocks.clone()));
    for kind in PoolKind::ALL {
        MetaAllocator::for_each_slot(region, kind, |slot| {
            if m_final.meta.contains(&slot.off()) {
                // Reachable: reset the volatile lock word of inodes.
                if kind == PoolKind::Inode {
                    region.write(Inode(slot).lock_ptr(), 0u64);
                }
                return;
            }
            let h = obj::header(region, slot);
            if h == 0 {
                meta.adopt_free(kind, slot);
            } else {
                // Allocated but unreachable: reclaim (finishes interrupted
                // allocations and deallocations alike).
                meta.free(kind, slot);
                report.reclaimed_objects += 1;
            }
        });
    }
    report.sweep_time = t.elapsed();

    report.files = m_final.files;
    report.directories = m_final.dirs;
    report.symlinks = m_final.symlinks;
    report.used_blocks = m_final.blocks.len() as u64;
    Ok((blocks, meta, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::{SimurghConfig, SimurghFs};
    use simurgh_fsapi::{FileMode, FileSystem, ProcCtx};

    fn tracked_fs(bytes: usize) -> (SimurghFs, ProcCtx) {
        let region = Arc::new(PmemRegion::new_tracked(bytes));
        let fs = SimurghFs::format(region, SimurghConfig::default()).unwrap();
        (fs, ProcCtx::root(1))
    }

    /// Crash the region under a live fs and remount from the media image.
    fn crash_and_remount(fs: &SimurghFs) -> SimurghFs {
        let crashed = Arc::new(fs.region().simulate_crash());
        SimurghFs::mount(crashed, SimurghConfig::default()).unwrap()
    }

    #[test]
    fn clean_remount_preserves_tree() {
        let region = Arc::new(PmemRegion::new(16 << 20));
        let fs = SimurghFs::format(region.clone(), SimurghConfig::default()).unwrap();
        let ctx = ProcCtx::root(1);
        fs.mkdir(&ctx, "/d", FileMode::dir(0o755)).unwrap();
        fs.write_file(&ctx, "/d/f", b"persist me").unwrap();
        fs.unmount();
        let fs2 = SimurghFs::mount(region, SimurghConfig::default()).unwrap();
        assert!(fs2.recovery_report().was_clean);
        assert_eq!(fs2.recovery_report().files, 1);
        assert_eq!(fs2.recovery_report().directories, 2, "root + /d");
        assert_eq!(fs2.read_to_vec(&ctx, "/d/f").unwrap(), b"persist me");
    }

    #[test]
    fn crash_recovery_rebuilds_from_media() {
        let (fs, ctx) = tracked_fs(16 << 20);
        fs.mkdir(&ctx, "/a", FileMode::dir(0o755)).unwrap();
        fs.write_file(&ctx, "/a/one", b"1111").unwrap();
        fs.write_file(&ctx, "/a/two", b"2222").unwrap();
        // No unmount: simulated power failure.
        let fs2 = crash_and_remount(&fs);
        assert!(!fs2.recovery_report().was_clean);
        assert_eq!(fs2.read_to_vec(&ctx, "/a/one").unwrap(), b"1111");
        assert_eq!(fs2.read_to_vec(&ctx, "/a/two").unwrap(), b"2222");
    }

    #[test]
    fn sweep_reclaims_unreachable_objects() {
        let (fs, ctx) = tracked_fs(16 << 20);
        fs.write_file(&ctx, "/keep", b"k").unwrap();
        // Leak: allocate metadata objects and never link them (simulates a
        // crash between Fig. 5a steps 2 and 5).
        use crate::super_block::PoolKind;
        for _ in 0..5 {
            let p = fs.region(); // keep names short
            let obj = {
                let meta = MetaAllocator::new(p.clone(), {
                    // use the fs's own allocator via a fresh handle
                    fs.block_alloc().clone()
                });
                meta.alloc(PoolKind::FileEntry).unwrap()
            };
            fs.region().persist(obj, 8);
        }
        let fs2 = crash_and_remount(&fs);
        assert!(fs2.recovery_report().reclaimed_objects >= 5);
        assert_eq!(fs2.read_to_vec(&ctx, "/keep").unwrap(), b"k");
    }

    #[test]
    fn usable_after_recovery() {
        let (fs, ctx) = tracked_fs(16 << 20);
        fs.mkdir(&ctx, "/work", FileMode::dir(0o755)).unwrap();
        for i in 0..20 {
            fs.write_file(&ctx, &format!("/work/f{i}"), format!("data{i}").as_bytes()).unwrap();
        }
        let fs2 = crash_and_remount(&fs);
        // All twenty files intact and the fs accepts new work.
        for i in 0..20 {
            assert_eq!(
                fs2.read_to_vec(&ctx, &format!("/work/f{i}")).unwrap(),
                format!("data{i}").as_bytes()
            );
        }
        fs2.write_file(&ctx, "/work/after-crash", b"new").unwrap();
        fs2.unlink(&ctx, "/work/f0").unwrap();
        assert_eq!(fs2.readdir(&ctx, "/work").unwrap().len(), 20);
    }

    #[test]
    fn recovery_counts_match_tree() {
        let (fs, ctx) = tracked_fs(32 << 20);
        for d in 0..3 {
            fs.mkdir(&ctx, &format!("/d{d}"), FileMode::dir(0o755)).unwrap();
            for f in 0..4 {
                fs.write_file(&ctx, &format!("/d{d}/f{f}"), b"x").unwrap();
            }
        }
        fs.symlink(&ctx, "/d0/f0", "/ln").unwrap();
        let fs2 = crash_and_remount(&fs);
        let r = fs2.recovery_report();
        assert_eq!(r.files, 12);
        assert_eq!(r.directories, 4, "root + 3");
        assert_eq!(r.symlinks, 1);
        assert!(r.used_blocks > 0);
        assert!(r.total_time() > Duration::ZERO);
    }

    #[test]
    fn holes_in_inline_extents_survive_crash_sweep() {
        // Regression: `Walker::mark` used to stop at the first empty inline
        // slot, so an inode with a hole (crash between shrink and regrow)
        // leaked every later extent to the sweep — the rebuilt block
        // allocator would hand live data blocks to new files.
        use crate::obj::inode::{Extent, Inode};
        use simurgh_fsapi::OpenFlags;

        let (fs, ctx) = tracked_fs(16 << 20);
        // Fragment /hole into three inline extents: the decoy claims the
        // block after /hole's tail each round, so the tail-extend fast
        // path never merges the appends.
        let rw = OpenFlags { read: true, ..OpenFlags::CREATE };
        let main = fs.open(&ctx, "/hole", rw, FileMode::default()).unwrap();
        let decoy = fs.open(&ctx, "/decoy", OpenFlags::CREATE, FileMode::default()).unwrap();
        for i in 0..3u64 {
            let pat = vec![0x10 + i as u8; 4096];
            fs.pwrite(&ctx, main, &pat, i * 4096).unwrap();
            fs.pwrite(&ctx, decoy, &pat, i * 4096).unwrap();
        }
        let st = fs.fstat(&ctx, main).unwrap();
        fs.close(&ctx, main).unwrap();
        fs.close(&ctx, decoy).unwrap();
        let ino = Inode(PPtr::new(st.ino));
        let e2 = ino.extent(fs.region(), 2);
        assert!(
            !ino.extent(fs.region(), 1).is_empty() && !e2.is_empty(),
            "setup must produce three inline extents"
        );
        // Punch slot 1: the persistent image a crash can leave behind —
        // an empty slot followed by a live extent.
        ino.set_extent(fs.region(), 1, Extent::default());

        let fs2 = crash_and_remount(&fs);
        // The extent after the hole must be in the used-block set: drain
        // the rebuilt allocator and assert it never hands out that block.
        let alloc = fs2.block_alloc();
        while let Some(b) = alloc.alloc(0, 1) {
            assert_ne!(
                b.off(),
                e2.start,
                "sweep freed a live block sitting after the hole"
            );
        }
        // And the bytes themselves are still there.
        let mut buf = vec![0u8; 4096];
        fs2.region().read_into(PPtr::new(e2.start), &mut buf);
        assert!(buf.iter().all(|&b| b == 0x12), "data after the hole was lost");
    }

    #[test]
    fn mount_rejects_unformatted_region() {
        let region = Arc::new(PmemRegion::new(1 << 20));
        assert!(SimurghFs::mount(region, SimurghConfig::default()).is_err());
    }
}
