//! Timestamp-stamped busy-wait lock with crash stealing.
//!
//! The paper's allocator segments use "an atomic flag per segment ... while
//! a `last_accessed` field stores the timestamp of acquiring this lock.
//! Processes can detect that another process crashed while holding the lock
//! by considering this field, the current time, and the maximum duration
//! that a process is allowed to hold a lock" (§4.2). [`TsLock`] is exactly
//! that: the lock word *is* the acquisition timestamp, and a waiter that
//! observes the same timestamp for longer than the hold limit steals the
//! lock (after which the caller runs whatever recovery the protected
//! structure needs).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

fn monotonic_us() -> u64 {
    use std::sync::OnceLock;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    // +1 keeps 0 reserved as the "free" value.
    epoch.elapsed().as_micros() as u64 + 1
}

// ---------------------------------------------------------------------------
// Backoff policy
// ---------------------------------------------------------------------------

/// Tunables for the adaptive busy-wait schedule shared by every spin path
/// (segment locks, file rw-locks, directory line flags). Replaces the old
/// fixed ladder — one `pause` per probe, one `yield` every 64th — with
/// bounded exponential backoff: round *r* issues `min(2^r, spin_cap)` pause
/// instructions, and once `yield_after` total pauses have been burnt every
/// further round also yields the CPU (oversubscribed-host courtesy).
///
/// The schedule is deterministic (no randomized jitter): waiters desynchronize
/// naturally because their round counters differ, and determinism keeps the
/// crash matrix and the spin-accounting assertions reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Cap on pause instructions per round (the plateau of the exponential).
    pub spin_cap: u32,
    /// Total pause instructions after which rounds start yielding.
    pub yield_after: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        // 1+2+…+64 ≈ 127 pauses reach the plateau; eight plateau rounds
        // (~640 pauses total) before conceding the core — roughly the point
        // where the old ladder had yielded ten times.
        BackoffPolicy { spin_cap: 64, yield_after: 640 }
    }
}

/// Per-wait state driving one [`BackoffPolicy`] schedule. Create one per
/// blocking acquisition; call [`wait`](Backoff::wait) once per failed probe.
#[derive(Debug)]
pub struct Backoff {
    policy: BackoffPolicy,
    round: u32,
    spun: u64,
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff::new(BackoffPolicy::default())
    }
}

impl Backoff {
    pub fn new(policy: BackoffPolicy) -> Self {
        Backoff { policy, round: 0, spun: 0 }
    }

    /// One backoff round: exponentially more pause instructions up to the
    /// cap, then cooperative yields. Also feeds the process-wide
    /// [`LockStats`] spin-round counter.
    pub fn wait(&mut self) {
        let n = 1u32.checked_shl(self.round.min(31)).unwrap_or(u32::MAX).min(self.policy.spin_cap);
        for _ in 0..n {
            std::hint::spin_loop();
        }
        self.round += 1;
        self.spun += n as u64;
        if self.spun >= self.policy.yield_after {
            std::thread::yield_now();
        }
        lock_stats().spin_rounds.fetch_add(1, Ordering::Relaxed);
    }

    /// Rounds waited so far (diagnostics).
    pub fn rounds(&self) -> u32 {
        self.round
    }
}

// ---------------------------------------------------------------------------
// Process-wide lock battery
// ---------------------------------------------------------------------------

/// Process-wide busy-wait accounting, exported through the `ObsRegistry`
/// lock section: blocking acquisitions, crash steals, and backoff rounds.
/// Tests assert contention deltas (steals/op, spin-rounds/op) against it.
#[derive(Debug, Default)]
pub struct LockStats {
    /// Blocking acquisitions completed (any spin path).
    pub acquires: AtomicU64,
    /// Crash steals: a waiter replaced a presumed-dead holder's stamp.
    pub steals: AtomicU64,
    /// Backoff rounds burnt across all waits.
    pub spin_rounds: AtomicU64,
}

impl LockStats {
    /// `{"acquires":…,"steals":…,"spin_rounds":…}`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"acquires\":{},\"steals\":{},\"spin_rounds\":{}}}",
            self.acquires.load(Ordering::Relaxed),
            self.steals.load(Ordering::Relaxed),
            self.spin_rounds.load(Ordering::Relaxed)
        )
    }
}

/// The process-wide [`LockStats`] battery.
pub fn lock_stats() -> &'static LockStats {
    use std::sync::OnceLock;
    static STATS: OnceLock<LockStats> = OnceLock::new();
    STATS.get_or_init(LockStats::default)
}

/// A busy-wait lock whose held-state is the acquisition timestamp.
#[derive(Debug, Default)]
pub struct TsLock {
    /// 0 = free; otherwise the µs timestamp at acquisition.
    state: AtomicU64,
}

/// Outcome of an acquisition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Acquired {
    /// Normal acquisition of a free lock.
    Fresh,
    /// The previous holder exceeded the hold limit and was presumed
    /// crashed; the protected structure may need recovery.
    Stolen,
}

/// RAII guard; releases on drop.
pub struct TsGuard<'a> {
    lock: &'a TsLock,
    stamp: u64,
}

impl TsLock {
    pub const fn new() -> Self {
        TsLock { state: AtomicU64::new(0) }
    }

    /// Single non-blocking attempt.
    pub fn try_acquire(&self) -> Option<TsGuard<'_>> {
        let stamp = monotonic_us();
        self.state
            .compare_exchange(0, stamp, Ordering::AcqRel, Ordering::Acquire)
            .ok()
            .map(|_| TsGuard { lock: self, stamp })
    }

    /// Busy-waits until acquired. If the same holder is observed for longer
    /// than `max_hold`, the lock is stolen and [`Acquired::Stolen`] returned.
    pub fn acquire(&self, max_hold: Duration) -> (TsGuard<'_>, Acquired) {
        let max_us = max_hold.as_micros() as u64;
        let mut backoff = Backoff::default();
        loop {
            if let Some(g) = self.try_acquire() {
                lock_stats().acquires.fetch_add(1, Ordering::Relaxed);
                return (g, Acquired::Fresh);
            }
            let seen = self.state.load(Ordering::Acquire);
            if seen != 0 {
                let now = monotonic_us();
                if now.saturating_sub(seen) > max_us {
                    // Presumed-crashed holder: steal by replacing its stamp.
                    // The holder may in fact be alive but slow (oversubscribed
                    // host), which is why critical sections must re-validate
                    // ownership via `TsGuard::still_owned` before publishing.
                    let stamp = monotonic_us();
                    if self
                        .state
                        .compare_exchange(seen, stamp, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        crate::obs::trace(crate::obs::EventKind::LockSteal, seen, stamp);
                        let stats = lock_stats();
                        stats.acquires.fetch_add(1, Ordering::Relaxed);
                        stats.steals.fetch_add(1, Ordering::Relaxed);
                        return (TsGuard { lock: self, stamp }, Acquired::Stolen);
                    }
                }
            }
            backoff.wait();
        }
    }

    /// Whether the lock is currently held (racy; diagnostics only).
    pub fn is_held(&self) -> bool {
        self.state.load(Ordering::Acquire) != 0
    }

    /// Simulates a crash while holding: leaks the guard so the lock stays
    /// held forever (until stolen). Test helper.
    pub fn crash_while_held(guard: TsGuard<'_>) {
        std::mem::forget(guard);
    }
}

impl TsGuard<'_> {
    /// Whether this guard still owns the lock — i.e. the lock word still
    /// carries our acquisition stamp. A live-but-slow holder that exceeded
    /// `max_hold` may have been stolen from ([`Acquired::Stolen`]) without
    /// noticing; critical sections must call this *immediately before
    /// publishing* their updates and discard the work on loss (the window
    /// between validation and the publishing store is the irreducible
    /// residue; the thief's repair pass covers it).
    pub fn still_owned(&self) -> bool {
        self.lock.state.load(Ordering::Acquire) == self.stamp
    }

    /// The acquisition stamp (µs). Diagnostics: matches the victim/thief
    /// payloads of `LockSteal` trace events.
    pub fn stamp(&self) -> u64 {
        self.stamp
    }
}

impl Drop for TsGuard<'_> {
    fn drop(&mut self) {
        // Release only if we still own it (a stealer may have replaced us).
        let _ = self.lock.state.compare_exchange(
            self.stamp,
            0,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release() {
        let l = TsLock::new();
        assert!(!l.is_held());
        {
            let g = l.try_acquire().unwrap();
            assert!(l.is_held());
            assert!(l.try_acquire().is_none());
            drop(g);
        }
        assert!(!l.is_held());
    }

    #[test]
    fn blocking_acquire_is_fresh_when_free() {
        let l = TsLock::new();
        let (g, how) = l.acquire(Duration::from_millis(50));
        assert_eq!(how, Acquired::Fresh);
        drop(g);
    }

    #[test]
    fn steal_after_crash() {
        let l = TsLock::new();
        let g = l.try_acquire().unwrap();
        TsLock::crash_while_held(g);
        assert!(l.is_held());
        let start = Instant::now();
        let (g2, how) = l.acquire(Duration::from_millis(10));
        assert_eq!(how, Acquired::Stolen);
        assert!(start.elapsed() >= Duration::from_millis(10));
        drop(g2);
        assert!(!l.is_held());
    }

    #[test]
    fn stale_guard_release_does_not_free_stolen_lock() {
        let l = TsLock::new();
        let g1 = l.try_acquire().unwrap();
        // Simulate: holder stalls past the limit, lock gets stolen...
        let stale = TsGuard { lock: &l, stamp: g1.stamp };
        std::mem::forget(g1);
        std::thread::sleep(Duration::from_millis(12));
        let (g2, how) = l.acquire(Duration::from_millis(10));
        assert_eq!(how, Acquired::Stolen);
        // ...then the stale holder "wakes up" and releases: must be a no-op.
        drop(stale);
        assert!(l.is_held(), "stolen lock still held by new owner");
        drop(g2);
        assert!(!l.is_held());
    }

    #[test]
    fn still_owned_flips_on_steal() {
        let l = TsLock::new();
        let g1 = l.try_acquire().unwrap();
        assert!(g1.still_owned());
        let stale = TsGuard { lock: &l, stamp: g1.stamp };
        std::mem::forget(g1);
        std::thread::sleep(Duration::from_millis(12));
        let (g2, how) = l.acquire(Duration::from_millis(10));
        assert_eq!(how, Acquired::Stolen);
        assert!(!stale.still_owned(), "victim must observe the loss");
        assert!(g2.still_owned());
        drop(stale); // stale release is a no-op
        assert!(g2.still_owned());
    }

    #[test]
    fn every_steal_is_traced_exactly_once() {
        // Satellite: steal under contention — each steal must appear in the
        // trace ring exactly once, with the right victim/thief stamp pair.
        // Other tests in this process also trace; we filter by our own
        // stamps, which the global µs clock makes unique.
        use std::sync::Mutex;

        const THREADS: usize = 4;
        const STEALS: usize = 25;
        let expected = Mutex::new(Vec::<(u64, u64)>::new());
        crossbeam::thread::scope(|s| {
            for _ in 0..THREADS {
                let expected = &expected;
                s.spawn(move |_| {
                    let l = TsLock::new();
                    let mut mine = Vec::with_capacity(STEALS);
                    for _ in 0..STEALS {
                        let g = l.try_acquire().unwrap();
                        let victim = g.stamp();
                        TsLock::crash_while_held(g);
                        std::thread::sleep(Duration::from_millis(2));
                        let (g2, how) = l.acquire(Duration::from_millis(1));
                        assert_eq!(how, Acquired::Stolen);
                        mine.push((victim, g2.stamp()));
                        drop(g2);
                    }
                    expected.lock().unwrap().extend(mine);
                });
            }
        })
        .unwrap();

        let expected = expected.into_inner().unwrap();
        assert_eq!(expected.len(), THREADS * STEALS);
        let events = crate::obs::recent(crate::obs::RING_EVENTS);
        for &(victim, thief) in &expected {
            let hits = events
                .iter()
                .filter(|e| {
                    e.kind == crate::obs::EventKind::LockSteal
                        && e.a == victim
                        && e.b == thief
                })
                .count();
            // µs stamps can collide across lockstep threads, so compare
            // against the pair's multiplicity, not a bare 1.
            let want = expected.iter().filter(|&&p| p == (victim, thief)).count();
            assert_eq!(hits, want, "steal ({victim} -> {thief}) traced {hits}/{want} times");
        }
    }

    #[test]
    fn backoff_schedule_is_exponential_and_capped() {
        let mut b = Backoff::new(BackoffPolicy { spin_cap: 16, yield_after: u64::MAX });
        let before = lock_stats().spin_rounds.load(Ordering::Relaxed);
        for _ in 0..8 {
            b.wait(); // 1,2,4,8,16,16,16,16 — capped at the plateau
        }
        assert_eq!(b.rounds(), 8);
        assert_eq!(b.spun, 1 + 2 + 4 + 8 + 16 * 4);
        assert!(
            lock_stats().spin_rounds.load(Ordering::Relaxed) >= before + 8,
            "rounds feed the process-wide battery"
        );
    }

    #[test]
    fn acquisitions_and_steals_feed_lock_stats() {
        let stats = lock_stats();
        let (a0, s0) =
            (stats.acquires.load(Ordering::Relaxed), stats.steals.load(Ordering::Relaxed));
        let l = TsLock::new();
        let (g, how) = l.acquire(Duration::from_millis(50));
        assert_eq!(how, Acquired::Fresh);
        drop(g);
        let g = l.try_acquire().unwrap();
        TsLock::crash_while_held(g);
        let (g2, how) = l.acquire(Duration::from_millis(5));
        assert_eq!(how, Acquired::Stolen);
        drop(g2);
        // Other tests run concurrently, so the battery is monotone, not exact.
        assert!(stats.acquires.load(Ordering::Relaxed) >= a0 + 2);
        assert!(stats.steals.load(Ordering::Relaxed) > s0);
        let j = stats.to_json();
        assert!(j.contains("\"acquires\":") && j.contains("\"steals\":"));
    }

    #[test]
    fn contention_is_mutual_exclusion() {
        let l = std::sync::Arc::new(TsLock::new());
        let counter = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        crossbeam::thread::scope(|s| {
            for _ in 0..4 {
                let l = &l;
                let counter = &counter;
                s.spawn(move |_| {
                    for _ in 0..200 {
                        let (g, _) = l.acquire(Duration::from_secs(5));
                        // Non-atomic-looking critical section.
                        let v = counter.load(Ordering::Relaxed);
                        counter.store(v + 1, Ordering::Relaxed);
                        drop(g);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 800);
    }
}
