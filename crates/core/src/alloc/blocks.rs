//! The segmented data-block allocator (§4.2 "Block allocation").
//!
//! The data area is divided into segments — the paper uses twice the number
//! of CPU cores, after Hoard — each owning a contiguous block range with its
//! own first-fit free list guarded by a [`TsLock`]. Threads pick a segment
//! by hashing the owning inode's persistent pointer (placing blocks of the
//! same file near each other and spreading files across segments) and
//! simply move to the next segment when theirs is busy.
//!
//! The free lists are **volatile** shared state: they are rebuilt at mount
//! by the mark-and-sweep scan, so block allocation itself never needs
//! journaling.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::ThreadId;
use std::time::Duration;

use simurgh_pmem::layout::Extent;
use simurgh_pmem::{PPtr, PmemRegion};

use super::tslock::{Acquired, TsGuard, TsLock};
use crate::BLOCK_SIZE;

/// Default maximum lock-hold duration before a waiter presumes a crash.
pub const DEFAULT_MAX_HOLD: Duration = Duration::from_millis(500);

/// Default tail over-claim (in blocks) once reservations are enabled via
/// [`BlockAlloc::set_tail_reserve`]: each tail extension claims up to this
/// many extra blocks so the next appends land without a segment lock trip.
pub const DEFAULT_TAIL_RESERVE: u64 = 8;


struct Segment {
    lock: TsLock,
    /// Sorted, coalesced `(first_block, count)` runs. Only accessed while
    /// holding `lock` — the shared-DRAM discipline of the paper.
    free: UnsafeCell<Vec<(u64, u64)>>,
    free_blocks: AtomicU64,
}

// SAFETY: `free` is only touched under `lock`; see module docs.
unsafe impl Sync for Segment {}

/// Returned by a critical section that discovered — at its publish point —
/// that its lock was stolen by a waiter that presumed us crashed (we were
/// merely slow). The work must be discarded and retried under a fresh
/// acquisition; publishing would race the thief's view of the free list.
struct LockLost;

/// The cross-process claim arbiter: one bit per block, living **in the
/// shared region** (see `crate::shared` for the geometry words). The local
/// free lists remain the fast path; under a shared mount every allocation
/// additionally sets its bits here with `fetch_or`, and a set bit someone
/// else owns means a peer process claimed the block first — our local view
/// was stale, so we carve the block out and move on. The bitmap has
/// volatile semantics: the recovering mount republishes it from its
/// mark-and-sweep free lists, and nothing trusts it across a crash.
struct SharedBits {
    region: Arc<PmemRegion>,
    base: PPtr,
    words: u64,
}

impl SharedBits {
    #[inline]
    fn word(&self, w: u64) -> &AtomicU64 {
        debug_assert!(w < self.words);
        self.region.atomic_u64(self.base.add(w * 8))
    }

    /// Whether block `b` is claimed (attach-time snapshot).
    fn used(&self, b: u64) -> bool {
        self.word(b / 64).load(Ordering::Acquire) & (1 << (b % 64)) != 0
    }

    /// Claims `[start, start + count)`. On hitting a bit a peer already
    /// owns, rolls back the bits set so far and returns the conflicting
    /// block index.
    fn claim(&self, start: u64, count: u64) -> Result<(), u64> {
        for b in start..start + count {
            let bit = 1u64 << (b % 64);
            if self.word(b / 64).fetch_or(bit, Ordering::AcqRel) & bit != 0 {
                for ours in start..b {
                    self.word(ours / 64).fetch_and(!(1 << (ours % 64)), Ordering::AcqRel);
                }
                return Err(b);
            }
        }
        Ok(())
    }

    /// Releases `[start, start + count)`.
    fn clear(&self, start: u64, count: u64) {
        for b in start..start + count {
            self.word(b / 64).fetch_and(!(1 << (b % 64)), Ordering::AcqRel);
        }
    }
}

/// The segmented block allocator over a data extent.
pub struct BlockAlloc {
    data_start: u64,
    nblocks: u64,
    blocks_per_seg: u64,
    segments: Box<[Segment]>,
    max_hold: Duration,
    /// Tail over-claim in blocks (see [`set_tail_reserve`](Self::set_tail_reserve)); 0 disables
    /// reservations, keeping [`extend_at`](Self::extend_at) exact — the
    /// default, and what the unit tests rely on.
    tail_reserve: AtomicU64,
    /// Test-only stall injector: when nonzero, the next critical section
    /// parks for that many µs between deciding and publishing (one-shot),
    /// so tests can force a steal mid-section deterministically.
    stall_us: AtomicU64,
    /// Segment-lock round trips: critical sections entered on any segment
    /// (alloc, tail-extension, free). Exported through the `ObsRegistry`
    /// alloc section; the reservation batching asserts this drops per op.
    seg_trips: AtomicU64,
    /// Fragmentation-pressure events: the opportunistic allocation pass
    /// came up empty even though `free_blocks()` could have covered the
    /// request — capacity exists but not as a visible contiguous run. The
    /// compactor's water-mark trigger watches this counter.
    frag_pressure: AtomicU64,
    /// Cross-process claim bitmap; unset for exclusive (single-process)
    /// mounts, where the local free lists are already authoritative.
    shared: OnceLock<SharedBits>,
    /// Parked tail reservations, one per thread: `(thread, first block,
    /// blocks)` runs already carved out of the free lists (and, under a
    /// shared mount, claimed in the bitmap). Instance-owned so that
    /// [`free`](Self::free) can coalesce a freed run across a reservation
    /// boundary and allocation pressure can reclaim *any* thread's park —
    /// not just the calling thread's. Volatile by design: a crash loses the
    /// cache and the mark-and-sweep rebuild returns unreferenced blocks to
    /// the free lists.
    reserved: Mutex<Vec<(ThreadId, u64, u64)>>,
}

impl BlockAlloc {
    /// An allocator over `data` with `nsegs` segments; all blocks free.
    pub fn new(data: Extent, nsegs: usize) -> Self {
        Self::rebuild(data, nsegs, |_| false)
    }

    /// Rebuilds free lists, skipping blocks for which `used` returns true —
    /// the mount-time path fed by the mark phase of recovery.
    pub fn rebuild(data: Extent, nsegs: usize, used: impl Fn(u64) -> bool) -> Self {
        let nsegs = nsegs.max(1);
        let data_start = data.start.align_up(BLOCK_SIZE as u64).off();
        let nblocks = (data.start.off() + data.len - data_start) / BLOCK_SIZE as u64;
        let blocks_per_seg = nblocks.div_ceil(nsegs as u64).max(1);
        let mut segments = Vec::with_capacity(nsegs);
        for s in 0..nsegs as u64 {
            let first = s * blocks_per_seg;
            let last = ((s + 1) * blocks_per_seg).min(nblocks);
            let mut free = Vec::new();
            let mut total = 0u64;
            let mut run_start = None;
            for b in first..last {
                if used(b) {
                    if let Some(rs) = run_start.take() {
                        free.push((rs, b - rs));
                        total += b - rs;
                    }
                } else if run_start.is_none() {
                    run_start = Some(b);
                }
            }
            if let Some(rs) = run_start {
                free.push((rs, last - rs));
                total += last - rs;
            }
            segments.push(Segment {
                lock: TsLock::new(),
                free: UnsafeCell::new(free),
                free_blocks: AtomicU64::new(total),
            });
        }
        BlockAlloc {
            data_start,
            nblocks,
            blocks_per_seg,
            segments: segments.into_boxed_slice(),
            max_hold: DEFAULT_MAX_HOLD,
            tail_reserve: AtomicU64::new(0),
            stall_us: AtomicU64::new(0),
            seg_trips: AtomicU64::new(0),
            frag_pressure: AtomicU64::new(0),
            shared: OnceLock::new(),
            reserved: Mutex::new(Vec::new()),
        }
    }

    /// Enables (nonzero) or disables (zero) tail reservations: every
    /// [`extend_at`](Self::extend_at) over-claims up to `blocks` extra
    /// blocks into a per-thread cache that later extensions of the same
    /// tail spend without touching a segment lock. The mount path turns
    /// this on; allocator-level users that assert exact accounting leave
    /// it off.
    pub fn set_tail_reserve(&self, blocks: u64) {
        self.tail_reserve.store(blocks, Ordering::Relaxed);
    }

    /// Segment-lock round trips so far (diagnostics / perf assertions).
    pub fn seg_trips(&self) -> u64 {
        self.seg_trips.load(Ordering::Relaxed)
    }

    /// Recoverer path of a shared mount: writes this allocator's post-sweep
    /// view into the region-resident claim bitmap (free lists become clear
    /// bits, everything else — including slack past `nblocks` — stays set),
    /// then arms per-allocation claims. Must run before `shared::publish_up`
    /// so no attacher reads a half-written bitmap.
    pub fn publish_shared(&self, region: Arc<PmemRegion>, base: PPtr, words: u64) {
        assert!(words * 64 >= self.nblocks, "bitmap too small for data area");
        let bits = SharedBits { region, base, words };
        let mut image = vec![u64::MAX; words as usize];
        for seg in self.segments.iter() {
            let (guard, how) = seg.lock.acquire(self.max_hold);
            if how == Acquired::Stolen {
                self.repair(seg);
            }
            // SAFETY: lock held.
            let free = unsafe { &*seg.free.get() };
            for &(s, l) in free.iter() {
                for b in s..s + l {
                    image[(b / 64) as usize] &= !(1 << (b % 64));
                }
            }
            drop(guard);
        }
        for (w, val) in image.into_iter().enumerate() {
            bits.word(w as u64).store(val, Ordering::Release);
        }
        let _ = self.shared.set(bits);
    }

    /// Attacher path of a shared mount: rebuilds the local free lists from
    /// the published claim bitmap — media only, never a peer's DRAM. The
    /// snapshot races live peers, but every subsequent allocation is
    /// re-arbitrated by the bitmap CAS, so a stale run merely conflicts and
    /// gets carved out.
    pub fn attach(data: Extent, nsegs: usize, region: Arc<PmemRegion>, base: PPtr, words: u64) -> Self {
        let bits = SharedBits { region, base, words };
        let a = Self::rebuild(data, nsegs, |b| bits.used(b));
        assert!(words * 64 >= a.nblocks, "bitmap too small for data area");
        let _ = a.shared.set(bits);
        a
    }

    /// One-shot test stall between a critical section's decision and its
    /// publish point. Disarmed: one relaxed load.
    fn test_stall(&self) {
        if self.stall_us.load(Ordering::Relaxed) != 0 {
            let us = self.stall_us.swap(0, Ordering::Relaxed);
            if us > 0 {
                std::thread::sleep(Duration::from_micros(us));
            }
        }
    }

    /// Total blocks managed.
    pub fn capacity_blocks(&self) -> u64 {
        self.nblocks
    }

    /// Currently free blocks (racy snapshot).
    pub fn free_blocks(&self) -> u64 {
        self.segments.iter().map(|s| s.free_blocks.load(Ordering::Relaxed)).sum()
    }

    /// Number of segments (diagnostics / ablation harness).
    pub fn segments(&self) -> usize {
        self.segments.len()
    }

    /// Byte offset of block index `b`.
    #[inline]
    pub fn block_ptr(&self, b: u64) -> PPtr {
        PPtr::new(self.data_start + b * BLOCK_SIZE as u64)
    }

    /// Block index of a byte offset inside the data area.
    #[inline]
    pub fn ptr_block(&self, p: PPtr) -> u64 {
        debug_assert!(p.off() >= self.data_start);
        (p.off() - self.data_start) / BLOCK_SIZE as u64
    }

    /// Whether `p` lies inside the managed data area (recovery validation).
    pub fn contains(&self, p: PPtr) -> bool {
        p.off() >= self.data_start && p.off() < self.data_start + self.nblocks * BLOCK_SIZE as u64
    }

    fn seg_of_block(&self, b: u64) -> usize {
        ((b / self.blocks_per_seg) as usize).min(self.segments.len() - 1)
    }

    /// Allocates `count` contiguous blocks. `hint` selects the starting
    /// segment (the file-system passes the inode pointer); busy segments
    /// are skipped, as in the paper.
    pub fn alloc(&self, hint: u64, count: u64) -> Option<PPtr> {
        debug_assert!(count > 0);
        let n = self.segments.len();
        let start = (hint as usize) % n;
        // Pass 1: opportunistic, skip busy segments. A lost lock (stolen
        // mid-section by a waiter that presumed us crashed) is treated like
        // a busy segment: discard and move on.
        for i in 0..n {
            let seg = &self.segments[(start + i) % n];
            if let Some(guard) = seg.lock.try_acquire() {
                self.seg_trips.fetch_add(1, Ordering::Relaxed);
                let got = self.take_first_fit(seg, &guard, count);
                drop(guard);
                if let Ok(Some(b)) = got {
                    return Some(self.block_ptr(b));
                }
            }
        }
        // Pass 1 found nothing: allocation pressure. Parked tail
        // reservations (any thread's) are capacity the free lists cannot
        // see; reclaim them before the blocking pass so allocation only
        // fails when space is truly out.
        if self.free_blocks() + self.reserved_idle_blocks() >= count {
            self.frag_pressure.fetch_add(1, Ordering::Relaxed);
        }
        self.reclaim_reservations();
        // Pass 2: blocking, so allocation only fails when space is truly out.
        // A lost lock here retries the same segment under a fresh acquire.
        for i in 0..n {
            let seg = &self.segments[(start + i) % n];
            let got = loop {
                let (guard, how) = seg.lock.acquire(self.max_hold);
                self.seg_trips.fetch_add(1, Ordering::Relaxed);
                if how == Acquired::Stolen {
                    self.repair(seg);
                }
                let got = self.take_first_fit(seg, &guard, count);
                drop(guard);
                match got {
                    Ok(got) => break got,
                    Err(LockLost) => continue,
                }
            };
            if let Some(b) = got {
                return Some(self.block_ptr(b));
            }
        }
        None
    }

    /// Segment owning the block at `p` (placement diagnostics and the
    /// file layer's per-thread affinity hint).
    pub fn seg_of_ptr(&self, p: PPtr) -> usize {
        self.seg_of_block(self.ptr_block(p))
    }

    /// Claims up to `want` blocks starting **exactly** at block index `b`:
    /// the tail-extension entry point of the append fast path (§4.3). The
    /// file layer asks for the blocks physically following a file's tail
    /// extent so the extent map grows in place instead of gaining an entry.
    /// Returns the number of blocks claimed (0 when `b` is taken), clamped
    /// to the free run containing `b` and to the owning segment.
    ///
    /// With [`set_tail_reserve`](Self::set_tail_reserve) armed, a successful
    /// extension over-claims and parks the surplus in a per-thread
    /// reservation; the next `extend_at` whose `b` continues that run is
    /// served from the reservation with **zero** segment-lock trips.
    pub fn extend_at(&self, b: u64, want: u64) -> u64 {
        debug_assert!(want > 0);
        let got = self.take_reserved(b, want);
        if got > 0 {
            return got;
        }
        let reserve = self.tail_reserve.load(Ordering::Relaxed);
        if reserve == 0 {
            return self.extend_at_locked(b, want);
        }
        let claimed = self.extend_at_locked(b, want + reserve);
        if claimed > want {
            self.stash_reserved(b + want, claimed - want);
            want
        } else {
            claimed
        }
    }

    /// Spends up to `want` blocks at `b` from this thread's reservation.
    /// A reservation whose run does not continue at `b` (the thread moved
    /// to a different file tail) is returned to the free lists first.
    fn take_reserved(&self, b: u64, want: u64) -> u64 {
        let tid = std::thread::current().id();
        let stale = {
            let mut r = self.reserved.lock().unwrap();
            let Some(i) = r.iter().position(|&(t, _, _)| t == tid) else {
                return 0;
            };
            let (_, start, len) = r[i];
            if start != b {
                r.remove(i);
                Some((start, len)) // freed below, outside the lock
            } else {
                let take = want.min(len);
                if take == len {
                    r.remove(i);
                } else {
                    r[i] = (tid, start + take, len - take);
                }
                return take;
            }
        };
        if let Some((s, l)) = stale {
            self.free(self.block_ptr(s), l);
        }
        0
    }

    /// Parks `[start, start + len)` as this thread's reservation, returning
    /// any previous run of the same thread to the free lists.
    fn stash_reserved(&self, start: u64, len: u64) {
        let tid = std::thread::current().id();
        let evicted = {
            let mut r = self.reserved.lock().unwrap();
            let old = r
                .iter()
                .position(|&(t, _, _)| t == tid)
                .map(|i| r.remove(i))
                .map(|(_, s, l)| (s, l));
            r.push((tid, start, len));
            old
        };
        if let Some((s, l)) = evicted {
            self.free(self.block_ptr(s), l);
        }
    }

    /// Returns this thread's parked reservation (if any) to the free lists —
    /// diagnostics and tests that want exact accounting back.
    pub fn release_thread_reservation(&self) {
        let tid = std::thread::current().id();
        let parked = {
            let mut r = self.reserved.lock().unwrap();
            r.iter()
                .position(|&(t, _, _)| t == tid)
                .map(|i| r.remove(i))
                .map(|(_, s, l)| (s, l))
        };
        if let Some((s, l)) = parked {
            self.free(self.block_ptr(s), l);
        }
    }

    /// Returns **every** parked tail reservation — any thread's — to the
    /// free lists, and reports how many blocks came back. The allocation
    /// slow path calls this under pressure (opportunistic pass found
    /// nothing), so a reservation parked by a thread that stopped appending
    /// can never hold the last free run hostage. Also the quiesce point for
    /// fragmentation accounting: after it, reserved-but-idle is zero.
    pub fn reclaim_reservations(&self) -> u64 {
        let drained: Vec<(u64, u64)> = {
            let mut r = self.reserved.lock().unwrap();
            r.drain(..).map(|(_, s, l)| (s, l)).collect()
        };
        let mut total = 0;
        for (s, l) in drained {
            total += l;
            self.free(self.block_ptr(s), l);
        }
        total
    }

    /// Blocks currently parked in tail reservations: claimed (bitmap set,
    /// carved out of the free lists) but not yet referenced by any extent.
    /// The `FragStats` "reserved-but-idle" gauge.
    pub fn reserved_idle_blocks(&self) -> u64 {
        self.reserved.lock().unwrap().iter().map(|&(_, _, l)| l).sum()
    }

    /// Fragmentation-pressure events so far (see the field doc).
    pub fn frag_pressure(&self) -> u64 {
        self.frag_pressure.load(Ordering::Relaxed)
    }

    /// The locked tail-extension: one segment-lock round trip, exact-position
    /// first-fit against the free run containing `b`.
    fn extend_at_locked(&self, b: u64, want: u64) -> u64 {
        debug_assert!(want > 0);
        if b >= self.nblocks {
            return 0;
        }
        let seg = &self.segments[self.seg_of_block(b)];
        let Some(guard) = seg.lock.try_acquire() else {
            // Busy segment: the caller falls back to the general allocator
            // rather than stalling the append on a neighbour's work.
            return 0;
        };
        self.seg_trips.fetch_add(1, Ordering::Relaxed);
        let free_ptr = seg.free.get();
        // Decide: read-only scan, no exclusive borrow across validation.
        let (idx, start, len) = {
            // SAFETY: lock held.
            let free = unsafe { &*free_ptr };
            let idx = match free.partition_point(|&(s, _)| s <= b).checked_sub(1) {
                Some(i) => i,
                None => {
                    drop(guard);
                    return 0;
                }
            };
            let (start, len) = free[idx];
            if b >= start + len {
                drop(guard);
                return 0;
            }
            (idx, start, len)
        };
        let got = want.min(start + len - b);
        self.test_stall();
        if !guard.still_owned() {
            // Stolen mid-section: the run we decided on is the thief's now.
            // The append fast path simply falls back to the general
            // allocator, like any other failed extension.
            drop(guard);
            return 0;
        }
        // Under a shared mount the bitmap arbitrates; a conflict means a
        // peer claimed part of the run our stale list shows free. Carve the
        // conflicting block out locally (so retries converge) and fall back
        // to the general allocator.
        if let Some(bits) = self.shared.get() {
            if let Err(conflict) = bits.claim(b, got) {
                // SAFETY: lock held (ownership re-validated above).
                let free = unsafe { &mut *free_ptr };
                Self::carve_run(free, idx, start, len, conflict, 1);
                seg.free_blocks.fetch_sub(1, Ordering::Relaxed);
                drop(guard);
                return 0;
            }
        }
        // Carve `[b, b+got)` out of the run.
        // SAFETY: lock held (ownership re-validated above).
        let free = unsafe { &mut *free_ptr };
        Self::carve_run(free, idx, start, len, b, got);
        seg.free_blocks.fetch_sub(got, Ordering::Relaxed);
        drop(guard);
        got
    }

    /// Frees `count` blocks starting at `p` back to their owning segment,
    /// coalescing with neighbours — including any parked tail reservation
    /// physically adjacent to the freed run, which is absorbed into it.
    /// Without that absorption a reservation boundary splits the free run
    /// forever (the reservation is invisible to the free list), which under
    /// churn was the dominant fragmentation source.
    pub fn free(&self, p: PPtr, count: u64) {
        debug_assert!(count > 0);
        let mut b = self.ptr_block(p);
        let mut count = count;
        {
            let mut r = self.reserved.lock().unwrap();
            while let Some(i) = r.iter().position(|&(_, s, l)| {
                (s + l == b || b + count == s) && self.seg_of_block(s) == self.seg_of_block(b)
            }) {
                let (_, s, l) = r.remove(i);
                b = b.min(s);
                count += l;
            }
        }
        let seg = &self.segments[self.seg_of_block(b)];
        loop {
            let (guard, how) = seg.lock.acquire(self.max_hold);
            self.seg_trips.fetch_add(1, Ordering::Relaxed);
            if how == Acquired::Stolen {
                self.repair(seg);
            }
            let free_ptr = seg.free.get();
            // Decide the coalesce plan under a shared view only.
            let (idx, merged_prev, merged_next) = {
                // SAFETY: lock held.
                let free = unsafe { &*free_ptr };
                let idx = free.partition_point(|&(s, _)| s < b);
                // Coalesce with predecessor and/or successor.
                let merged_prev = idx > 0 && free[idx - 1].0 + free[idx - 1].1 == b;
                let merged_next = idx < free.len() && b + count == free[idx].0;
                (idx, merged_prev, merged_next)
            };
            self.test_stall();
            if !guard.still_owned() {
                // Stolen mid-section: `idx` and the merge plan describe a
                // list the thief may have rewritten. Retry from scratch.
                drop(guard);
                continue;
            }
            // SAFETY: lock held (ownership re-validated above).
            let free = unsafe { &mut *free_ptr };
            match (merged_prev, merged_next) {
                (true, true) => {
                    free[idx - 1].1 += count + free[idx].1;
                    free.remove(idx);
                }
                (true, false) => free[idx - 1].1 += count,
                (false, true) => {
                    free[idx].0 = b;
                    free[idx].1 += count;
                }
                (false, false) => free.insert(idx, (b, count)),
            }
            seg.free_blocks.fetch_add(count, Ordering::Relaxed);
            // Release the cross-process claims only *after* the local insert
            // landed. Clearing first opened a window where a peer claimed
            // the blocks and our insert then listed them free anyway — the
            // counter double-counted (`free_blocks()` above
            // `capacity − used-bitmap popcount`) until some later conflict
            // carved the run back out. Clear-last keeps the drift direction
            // safe: a block is never bitmap-free before the freeing
            // instance's list owns it.
            if let Some(bits) = self.shared.get() {
                bits.clear(b, count);
            }
            drop(guard);
            return;
        }
    }

    /// First-fit take under `guard`. `Err(LockLost)` means the guard lost
    /// ownership to a steal before the publish point: nothing was taken and
    /// the caller must retry under a fresh acquisition. The re-validation
    /// narrows the live-holder race to the publishing stores themselves;
    /// the thief's [`repair`](Self::repair) pass covers that residue.
    fn take_first_fit(
        &self,
        seg: &Segment,
        guard: &TsGuard<'_>,
        count: u64,
    ) -> Result<Option<u64>, LockLost> {
        let free_ptr = seg.free.get();
        loop {
            // Decide: read-only scan, no exclusive borrow held across the
            // validation window.
            let (idx, start, len) = {
                // SAFETY: caller holds seg.lock.
                let free = unsafe { &*free_ptr };
                let Some(idx) = free.iter().position(|&(_, len)| len >= count) else {
                    return Ok(None);
                };
                let (start, len) = free[idx];
                (idx, start, len)
            };
            self.test_stall();
            if !guard.still_owned() {
                return Err(LockLost);
            }
            // Under a shared mount, the bitmap is the cross-process arbiter:
            // claim there before touching the local list. A conflict means a
            // peer owns a block our list still shows free — carve just that
            // block out (lock held, so the mutation is safe) and rescan.
            if let Some(bits) = self.shared.get() {
                if let Err(conflict) = bits.claim(start, count) {
                    // SAFETY: caller holds seg.lock (re-validated above).
                    let free = unsafe { &mut *free_ptr };
                    Self::carve_run(free, idx, start, len, conflict, 1);
                    seg.free_blocks.fetch_sub(1, Ordering::Relaxed);
                    continue;
                }
            }
            // Publish: ownership just re-validated, so no thief is editing.
            // SAFETY: caller holds seg.lock (re-validated above).
            let free = unsafe { &mut *free_ptr };
            if len == count {
                free.remove(idx);
            } else {
                free[idx] = (start + count, len - count);
            }
            seg.free_blocks.fetch_sub(count, Ordering::Relaxed);
            return Ok(Some(start));
        }
    }

    /// Removes `[at, at + take)` from the run `(start, len)` stored at
    /// `free[idx]`, splitting when the cut is interior. Caller holds the
    /// segment lock and guarantees the cut lies inside the run.
    fn carve_run(free: &mut Vec<(u64, u64)>, idx: usize, start: u64, len: u64, at: u64, take: u64) {
        let head = at - start;
        let tail = (start + len) - (at + take);
        match (head > 0, tail > 0) {
            (false, false) => {
                free.remove(idx);
            }
            (false, true) => free[idx] = (at + take, tail),
            (true, false) => free[idx] = (start, head),
            (true, true) => {
                free[idx] = (start, head);
                free.insert(idx + 1, (at + take, tail));
            }
        }
    }

    /// Repairs a segment free list after a stolen lock: re-sorts and merges
    /// overlapping runs so a half-completed update cannot double-allocate.
    fn repair(&self, seg: &Segment) {
        // SAFETY: caller holds seg.lock.
        let free = unsafe { &mut *seg.free.get() };
        free.sort_unstable();
        let mut repaired: Vec<(u64, u64)> = Vec::with_capacity(free.len());
        for &(s, l) in free.iter() {
            if let Some(last) = repaired.last_mut() {
                if s <= last.0 + last.1 {
                    let end = (s + l).max(last.0 + last.1);
                    last.1 = end - last.0;
                    continue;
                }
            }
            repaired.push((s, l));
        }
        let total: u64 = repaired.iter().map(|&(_, l)| l).sum();
        *free = repaired;
        seg.free_blocks.store(total, Ordering::Relaxed);
    }

    /// Popcount of the claim bitmap over the managed block range (slack
    /// bits past `nblocks` stay permanently set and are masked out), or
    /// `None` for an exclusive mount with no bitmap armed.
    pub fn shared_used_blocks(&self) -> Option<u64> {
        let bits = self.shared.get()?;
        let mut used = 0u64;
        let full_words = self.nblocks / 64;
        for w in 0..full_words {
            used += bits.word(w).load(Ordering::Acquire).count_ones() as u64;
        }
        let rem = self.nblocks % 64;
        if rem > 0 {
            let mask = (1u64 << rem) - 1;
            used += (bits.word(full_words).load(Ordering::Acquire) & mask).count_ones() as u64;
        }
        Some(used)
    }

    /// Resynchronizes the local free lists with the shared claim bitmap at
    /// a quiescent point (fsck, post-recovery): each segment's list is
    /// rebuilt from the bitmap, dropping runs a peer has claimed out from
    /// under our stale view and adopting blocks peers freed since our
    /// attach snapshot. Returns `(dropped, adopted)` block counts. After
    /// it, `free_blocks() == capacity − used-bitmap popcount` holds — the
    /// fsck invariant. No-op (0, 0) for exclusive mounts.
    pub fn reconcile_shared(&self) -> (u64, u64) {
        let Some(bits) = self.shared.get() else {
            return (0, 0);
        };
        let (mut dropped, mut adopted) = (0u64, 0u64);
        for (s, seg) in self.segments.iter().enumerate() {
            let first = s as u64 * self.blocks_per_seg;
            let last = ((s as u64 + 1) * self.blocks_per_seg).min(self.nblocks);
            let (guard, how) = seg.lock.acquire(self.max_hold);
            if how == Acquired::Stolen {
                self.repair(seg);
            }
            let before = seg.free_blocks.load(Ordering::Relaxed);
            let mut rebuilt = Vec::new();
            let mut total = 0u64;
            let mut run_start = None;
            for b in first..last {
                if bits.used(b) {
                    if let Some(rs) = run_start.take() {
                        rebuilt.push((rs, b - rs));
                        total += b - rs;
                    }
                } else if run_start.is_none() {
                    run_start = Some(b);
                }
            }
            if let Some(rs) = run_start {
                rebuilt.push((rs, last - rs));
                total += last - rs;
            }
            // SAFETY: lock held.
            let free = unsafe { &mut *seg.free.get() };
            *free = rebuilt;
            seg.free_blocks.store(total, Ordering::Relaxed);
            if total < before {
                dropped += before - total;
            } else {
                adopted += total - before;
            }
            drop(guard);
        }
        (dropped, adopted)
    }

    /// Per-segment fragmentation snapshot: `(free runs, largest free run)`
    /// for each segment — the `FragStats` raw material. Takes each segment
    /// lock briefly; a diagnostics path, not a hot one.
    pub fn frag_snapshot(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(self.segments.len());
        for seg in self.segments.iter() {
            let (guard, how) = seg.lock.acquire(self.max_hold);
            if how == Acquired::Stolen {
                self.repair(seg);
            }
            // SAFETY: lock held.
            let free = unsafe { &*seg.free.get() };
            let runs = free.len() as u64;
            let largest = free.iter().map(|&(_, l)| l).max().unwrap_or(0);
            out.push((runs, largest));
            drop(guard);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn extent(bytes: u64) -> Extent {
        Extent { start: PPtr::new(1 << 16), len: bytes }
    }

    fn alloc_with(bytes: u64, nsegs: usize) -> BlockAlloc {
        BlockAlloc::new(extent(bytes), nsegs)
    }

    #[test]
    fn capacity_accounts_alignment() {
        let a = alloc_with(40 * 4096, 4);
        assert_eq!(a.capacity_blocks(), 40);
        assert_eq!(a.free_blocks(), 40);
        assert_eq!(a.segments(), 4);
    }

    #[test]
    fn alloc_free_roundtrip() {
        let a = alloc_with(64 * 4096, 2);
        let p = a.alloc(0, 4).unwrap();
        assert!(p.is_aligned(4096));
        assert!(a.contains(p));
        assert_eq!(a.free_blocks(), 60);
        a.free(p, 4);
        assert_eq!(a.free_blocks(), 64);
    }

    #[test]
    fn exhaustion_returns_none() {
        let a = alloc_with(8 * 4096, 2);
        let mut got = Vec::new();
        while let Some(p) = a.alloc(0, 1) {
            got.push(p);
        }
        assert_eq!(got.len(), 8);
        assert_eq!(a.free_blocks(), 0);
        assert!(a.alloc(0, 1).is_none());
        for p in got {
            a.free(p, 1);
        }
        assert_eq!(a.free_blocks(), 8);
    }

    #[test]
    fn contiguous_requests_respect_fragmentation() {
        // One segment so we control the layout precisely.
        let a = alloc_with(8 * 4096, 1);
        let p0 = a.alloc(0, 3).unwrap();
        let _p1 = a.alloc(0, 3).unwrap();
        a.free(p0, 3);
        // 3 free at the front, 2 free at the back: a 4-block request must fail.
        assert_eq!(a.free_blocks(), 5);
        assert!(a.alloc(0, 4).is_none());
        assert!(a.alloc(0, 3).is_some());
    }

    #[test]
    fn coalescing_merges_all_neighbours() {
        let a = alloc_with(6 * 4096, 1);
        let p = a.alloc(0, 6).unwrap();
        let b = a.ptr_block(p);
        // Free middle, then left, then right: ends fully merged.
        a.free(a.block_ptr(b + 2), 2);
        a.free(a.block_ptr(b), 2);
        a.free(a.block_ptr(b + 4), 2);
        assert_eq!(a.free_blocks(), 6);
        assert!(a.alloc(0, 6).is_some(), "coalesced back to one run");
    }

    #[test]
    fn rebuild_skips_used_blocks() {
        let a = BlockAlloc::rebuild(extent(16 * 4096), 2, |b| b % 2 == 0);
        assert_eq!(a.free_blocks(), 8);
        // Only single blocks available (every other block used).
        assert!(a.alloc(0, 2).is_none());
        assert!(a.alloc(0, 1).is_some());
    }

    #[test]
    fn extend_at_claims_the_physically_next_blocks() {
        let a = alloc_with(32 * 4096, 1);
        let p = a.alloc(0, 4).unwrap();
        let next = a.ptr_block(p) + 4;
        // The run after the allocation is free: a tail extension succeeds
        // and hands out exactly the requested position.
        assert_eq!(a.extend_at(next, 2), 2);
        assert_eq!(a.ptr_block(a.alloc(0, 1).unwrap()), next + 2, "carved in place");
        a.free(a.block_ptr(next), 2);
        assert_eq!(a.free_blocks(), 32 - 4 - 1);
    }

    #[test]
    fn extend_at_is_clamped_and_fails_when_taken() {
        let a = alloc_with(16 * 4096, 1);
        let p0 = a.alloc(0, 2).unwrap();
        let b0 = a.ptr_block(p0);
        // Occupy the block right after a 3-block gap: [p0 p0 gap gap gap X ...]
        let gap_end = b0 + 5;
        assert_eq!(a.extend_at(gap_end, 1), 1);
        // Extending past the 3-block gap is clamped to the gap.
        assert_eq!(a.extend_at(b0 + 2, 8), 3);
        // The gap is now taken: extending into it fails outright.
        assert_eq!(a.extend_at(b0 + 2, 1), 0);
        assert_eq!(a.extend_at(b0, 1), 0, "allocated blocks are never handed out");
        // Out-of-range positions fail cleanly.
        assert_eq!(a.extend_at(1 << 40, 1), 0);
    }

    #[test]
    fn tail_reserve_serves_followup_extensions_lock_free() {
        let a = alloc_with(64 * 4096, 1);
        a.set_tail_reserve(8);
        let p = a.alloc(0, 2).unwrap();
        let tail = a.ptr_block(p) + 2;
        let trips = a.seg_trips();
        // First extension: one locked trip, over-claims 8 extra.
        assert_eq!(a.extend_at(tail, 2), 2);
        assert_eq!(a.seg_trips(), trips + 1);
        assert_eq!(a.free_blocks(), 64 - 2 - 2 - 8, "surplus parked in the reservation");
        // The next 4 extensions continue the run: zero further trips.
        for i in 0..4u64 {
            assert_eq!(a.extend_at(tail + 2 + i * 2, 2), 2);
        }
        assert_eq!(a.seg_trips(), trips + 1, "reservation hits take no segment trip");
        a.release_thread_reservation();
        assert_eq!(a.free_blocks(), 64 - 2 - 2 - 8, "reservation was fully spent");
    }

    #[test]
    fn stale_reservation_is_returned_not_leaked() {
        let a = alloc_with(64 * 4096, 1);
        a.set_tail_reserve(8);
        let p = a.alloc(0, 1).unwrap();
        let tail = a.ptr_block(p) + 1;
        assert_eq!(a.extend_at(tail, 1), 1);
        let parked = 8;
        assert_eq!(a.free_blocks(), 64 - 1 - 1 - parked);
        // Extending a *different* position first releases the stale run,
        // so nothing is lost to the cache.
        let far = tail + 30;
        assert_eq!(a.extend_at(far, 1), 1);
        a.release_thread_reservation();
        assert_eq!(a.free_blocks(), 64 - 1 - 1 - 1);
    }

    #[test]
    fn free_coalesces_across_a_reservation_boundary() {
        // Regression: a parked tail reservation is invisible to the free
        // list, so freeing blocks physically adjacent to it used to leave
        // the run split forever — the dominant fragmentation source under
        // churn. `free` must absorb the adjacent reservation so the whole
        // range coalesces back into one run.
        let a = alloc_with(16 * 4096, 1);
        a.set_tail_reserve(8);
        let p = a.alloc(0, 2).unwrap(); // blocks [0, 2)
        let tail = a.ptr_block(p) + 2;
        assert_eq!(a.extend_at(tail, 2), 2); // takes [2, 4), parks [4, 12)
        assert_eq!(a.free_blocks(), 4, "only the tail run [12, 16) is listed free");
        // Free the file [0, 4): adjacent to the parked [4, 12) — the
        // reservation must be absorbed, yielding one fully coalesced run.
        a.free(p, 4);
        assert_eq!(a.free_blocks(), 16, "freed run absorbed the reservation");
        assert_eq!(a.reserved_idle_blocks(), 0);
        assert!(a.alloc(0, 16).is_some(), "entire extent is one contiguous run");
    }

    #[test]
    fn pressure_reclaims_any_threads_parked_reservation() {
        // Regression: a reservation parked by a thread that stopped
        // appending was never returned until that same thread called
        // `release_thread_reservation` — allocation could fail with most of
        // the capacity parked. Pressure (pass 1 finding nothing) must
        // reclaim every thread's park.
        let a = std::sync::Arc::new(alloc_with(16 * 4096, 1));
        a.set_tail_reserve(8);
        {
            let a = a.clone();
            // Park from another thread, which then goes idle forever.
            std::thread::spawn(move || {
                let p = a.alloc(0, 1).unwrap(); // [0, 1)
                let tail = a.ptr_block(p) + 1;
                assert_eq!(a.extend_at(tail, 1), 1); // takes [1], parks [2, 10)
            })
            .join()
            .unwrap();
        }
        assert_eq!(a.free_blocks(), 6, "free list only sees [10, 16)");
        assert_eq!(a.reserved_idle_blocks(), 8);
        // 14 contiguous blocks only exist if the park [2, 10) comes back.
        let p = a.alloc(0, 14).expect("pressure reclaims the idle park");
        assert_eq!(a.ptr_block(p), 2);
        assert_eq!(a.reserved_idle_blocks(), 0);
    }

    #[test]
    fn reservations_are_instance_scoped() {
        // A reservation parked against one allocator must never be spent
        // against another covering the same extent.
        let a = alloc_with(64 * 4096, 1);
        a.set_tail_reserve(8);
        let p = a.alloc(0, 1).unwrap();
        let tail = a.ptr_block(p) + 1;
        assert_eq!(a.extend_at(tail, 1), 1);
        let b = alloc_with(64 * 4096, 1);
        b.set_tail_reserve(8);
        let trips = b.seg_trips();
        // Same block index on the fresh allocator: must take a locked trip,
        // not a's parked run.
        assert_eq!(b.extend_at(tail + 1, 1), 1);
        assert!(b.seg_trips() > trips);
        a.release_thread_reservation();
        b.release_thread_reservation();
    }

    #[test]
    fn hint_spreads_across_segments() {
        let a = alloc_with(400 * 4096, 4);
        let p0 = a.alloc(0, 1).unwrap();
        let p1 = a.alloc(1, 1).unwrap();
        let p2 = a.alloc(2, 1).unwrap();
        let s0 = a.seg_of_block(a.ptr_block(p0));
        let s1 = a.seg_of_block(a.ptr_block(p1));
        let s2 = a.seg_of_block(a.ptr_block(p2));
        assert!(s0 != s1 || s1 != s2, "different hints land in different segments");
    }

    #[test]
    fn concurrent_alloc_free_is_consistent() {
        let a = std::sync::Arc::new(alloc_with(512 * 4096, 4));
        crossbeam::thread::scope(|s| {
            for t in 0..4u64 {
                let a = &a;
                s.spawn(move |_| {
                    let mut held = Vec::new();
                    for i in 0..200 {
                        if let Some(p) = a.alloc(t * 7 + i, 1) {
                            held.push(p);
                        }
                        if i % 3 == 0 {
                            if let Some(p) = held.pop() {
                                a.free(p, 1);
                            }
                        }
                    }
                    for p in held {
                        a.free(p, 1);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(a.free_blocks(), 512);
        // All blocks coalesce back: one full-range allocation succeeds.
        assert!(a.alloc(0, 128).is_some());
    }

    #[test]
    fn live_but_slow_holder_does_not_double_allocate() {
        // Regression (lock steal vs. live holder): a holder that stalls
        // mid-critical-section past `max_hold` loses its lock to a waiter.
        // Before the `still_owned` re-validation, the slow holder would
        // wake and publish its stale decision — handing out the same block
        // the thief just took and corrupting the segment count.
        let mut a = alloc_with(16 * 4096, 1);
        a.max_hold = Duration::from_millis(5);
        let a = std::sync::Arc::new(a);
        a.stall_us.store(200_000, Ordering::Relaxed); // next section parks 200 ms
        crossbeam::thread::scope(|s| {
            let slow = s.spawn(|_| a.alloc(0, 1));
            // Let the slow holder enter its critical section and park, then
            // come in as the thief: acquire() sees a holder older than
            // max_hold, steals, repairs, and allocates.
            std::thread::sleep(Duration::from_millis(40));
            let thief = a.alloc(0, 1).expect("thief allocates");
            let victim = slow.join().unwrap().expect("slow holder retries and allocates");
            assert_ne!(victim.off(), thief.off(), "double allocation after steal");
        })
        .unwrap();
        assert_eq!(a.free_blocks(), 14, "segment count corrupted");
        // And the count is real: exactly 14 more single blocks fit.
        let mut got = 0;
        while a.alloc(0, 1).is_some() {
            got += 1;
        }
        assert_eq!(got, 14);
    }

    fn shared_pair(
        bytes: u64,
        nsegs: usize,
    ) -> (Arc<PmemRegion>, BlockAlloc, BlockAlloc) {
        let r = Arc::new(PmemRegion::new(64 * 1024));
        let base = PPtr::new(4096);
        let words = 64; // covers up to 4096 blocks, plenty for these tests
        let a = BlockAlloc::new(extent(bytes), nsegs);
        a.publish_shared(r.clone(), base, words);
        let b = BlockAlloc::attach(extent(bytes), nsegs, r.clone(), base, words);
        (r, a, b)
    }

    #[test]
    fn shared_bitmap_arbitrates_two_instances() {
        // Two allocator instances (two "processes") with identical, fully
        // free local lists over the same claim bitmap: every block is
        // granted exactly once across both.
        let (_r, a, b) = shared_pair(64 * 4096, 2);
        assert_eq!(b.free_blocks(), 64, "attach sees the published view");
        let mut seen = std::collections::HashSet::new();
        let (mut hint, mut from_a, mut from_b) = (0, 0, 0);
        loop {
            let pa = a.alloc(hint, 1);
            let pb = b.alloc(hint, 1);
            hint += 1;
            if pa.is_none() && pb.is_none() {
                break;
            }
            if let Some(p) = pa {
                assert!(seen.insert(p.off()), "double grant at {p}");
                from_a += 1;
            }
            if let Some(p) = pb {
                assert!(seen.insert(p.off()), "double grant at {p}");
                from_b += 1;
            }
        }
        assert_eq!(seen.len(), 64, "exactly capacity granted in total");
        assert!(from_a > 0 && from_b > 0, "both instances got blocks");
    }

    #[test]
    fn peer_claims_defeat_stale_extend_at() {
        let (_r, a, b) = shared_pair(16 * 4096, 1);
        // B claims the first 4 blocks; A's local list still shows them free.
        let pb = b.alloc(0, 4).unwrap();
        let first = b.ptr_block(pb);
        // A's tail-extension into the claimed range must fail cleanly...
        assert_eq!(a.extend_at(first, 2), 0);
        // ...and A's general allocations never overlap B's claim.
        let mut got = Vec::new();
        while let Some(p) = a.alloc(0, 1) {
            let blk = a.ptr_block(p);
            assert!(!(first..first + 4).contains(&blk), "A granted B's block {blk}");
            got.push(p);
        }
        assert_eq!(got.len(), 12, "A gets exactly the unclaimed remainder");
    }

    #[test]
    fn fsck_invariant_free_blocks_matches_bitmap_popcount() {
        // Regression: an attacher's snapshot view drifts as peers allocate
        // and free — `free_blocks()` double-counts blocks a peer claimed
        // out from under the stale list. The fsck invariant is
        // `free_blocks() == capacity − used-bitmap popcount`, restored at
        // any quiescent point by `reconcile_shared`.
        let (_r, a, b) = shared_pair(64 * 4096, 2);
        let pa = a.alloc(0, 4).unwrap();
        assert_eq!(a.shared_used_blocks(), Some(4));
        // A is consistent; B's stale list still counts A's blocks as free.
        assert_eq!(a.free_blocks(), a.capacity_blocks() - 4);
        assert_eq!(b.free_blocks(), 64, "B double-counts A's claim");
        let (dropped, adopted) = b.reconcile_shared();
        assert_eq!((dropped, adopted), (4, 0));
        assert_eq!(b.free_blocks(), b.capacity_blocks() - b.shared_used_blocks().unwrap());
        // The drift also runs the other way: A frees two blocks, which B's
        // (now exact) view is missing until the next reconcile.
        a.free(pa, 2);
        assert_eq!(a.free_blocks(), a.capacity_blocks() - a.shared_used_blocks().unwrap());
        let (dropped, adopted) = b.reconcile_shared();
        assert_eq!((dropped, adopted), (0, 2));
        assert_eq!(b.free_blocks(), b.capacity_blocks() - b.shared_used_blocks().unwrap());
    }

    #[test]
    fn freed_blocks_return_to_the_shared_pool() {
        let (r, a, _b) = shared_pair(32 * 4096, 1);
        let p = a.alloc(0, 32).unwrap();
        a.free(p, 32);
        // A fresh attach (cold cache, media only) sees everything free again.
        let c = BlockAlloc::attach(extent(32 * 4096), 1, r, PPtr::new(4096), 64);
        assert_eq!(c.free_blocks(), 32);
        assert!(c.alloc(0, 32).is_some());
    }

    #[test]
    fn shared_instances_stay_disjoint_under_contention() {
        let (_r, a, b) = shared_pair(256 * 4096, 4);
        let pair = [a, b];
        let seen = std::sync::Arc::new(parking_lot::Mutex::new(std::collections::HashSet::new()));
        crossbeam::thread::scope(|s| {
            for t in 0..4u64 {
                let alloc = &pair[(t % 2) as usize];
                let seen = &seen;
                s.spawn(move |_| {
                    for i in 0..50 {
                        if let Some(p) = alloc.alloc(t + i, 1) {
                            assert!(seen.lock().insert(p.off()), "cross-process double grant");
                        }
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(seen.lock().len(), 200);
    }

    #[test]
    fn no_double_allocation_under_contention() {
        let a = std::sync::Arc::new(alloc_with(256 * 4096, 4));
        let seen = std::sync::Arc::new(parking_lot::Mutex::new(std::collections::HashSet::new()));
        crossbeam::thread::scope(|s| {
            for t in 0..4u64 {
                let a = &a;
                let seen = &seen;
                s.spawn(move |_| {
                    for i in 0..60 {
                        if let Some(p) = a.alloc(t + i, 1) {
                            assert!(seen.lock().insert(p.off()), "double allocation at {p}");
                        }
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(seen.lock().len(), 240);
    }
}
