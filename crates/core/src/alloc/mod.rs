//! Simurgh's two allocators (§4.2): the segmented data-**block** allocator
//! and the slab-style **metadata-object** allocator, plus the
//! timestamp-stamped busy-wait lock they share for crash-detectable mutual
//! exclusion.

pub mod blocks;
pub mod meta;
pub mod tslock;

pub use blocks::BlockAlloc;
pub use meta::MetaAllocator;
pub use tslock::{Acquired, TsGuard, TsLock};
