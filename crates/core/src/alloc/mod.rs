//! Simurgh's two allocators (§4.2): the segmented data-**block** allocator
//! and the slab-style **metadata-object** allocator, plus the
//! timestamp-stamped busy-wait lock they share for crash-detectable mutual
//! exclusion — and the [`AllocFaults`] injector the crash-matrix harness
//! uses to make the *k*-th allocation fail with an injected ENOSPC.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use simurgh_fsapi::{FsError, FsResult};

pub mod blocks;
pub mod meta;
pub mod tslock;

pub use blocks::BlockAlloc;
pub use meta::MetaAllocator;
pub use tslock::{lock_stats, Acquired, Backoff, BackoffPolicy, LockStats, TsGuard, TsLock};

/// Programmable resource-fault injector shared by both allocators of a
/// mount (reachable through [`crate::SimurghFs::alloc_faults`]).
///
/// Disarmed (the default) it costs one relaxed load per allocation. Armed
/// with [`arm_at`](Self::arm_at), it counts every allocation attempt on the
/// metadata and file data paths and fails the *k*-th one with
/// [`FsError::Injected`] — distinguishable from organic exhaustion so the
/// crash-matrix report can assert the op failed *because we told it to*,
/// and failed atomically.
#[derive(Default)]
pub struct AllocFaults {
    armed: AtomicBool,
    /// Allocation attempts observed since the last arm.
    calls: AtomicU64,
    /// 1-based index of the attempt to fail; `u64::MAX` = record only.
    fail_at: AtomicU64,
    /// Number of faults injected since the last arm.
    injected: AtomicU64,
}

impl AllocFaults {
    /// Arms the injector: the `k`-th allocation attempt (1-based) from now
    /// on fails with [`FsError::Injected`]. Resets the counters.
    pub fn arm_at(&self, k: u64) {
        self.calls.store(0, Ordering::Relaxed);
        self.injected.store(0, Ordering::Relaxed);
        self.fail_at.store(k, Ordering::Relaxed);
        self.armed.store(true, Ordering::Release);
    }

    /// Recording mode: count allocation attempts, fail nothing.
    pub fn arm_recording(&self) {
        self.arm_at(u64::MAX);
    }

    /// Disarms the injector; counters keep their last values for reading.
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::Release);
    }

    /// Allocation attempts observed since the last arm.
    pub fn observed(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Faults injected since the last arm.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Renders the injector counters as a single-line JSON object, for
    /// embedding in the unified observability registry ([`crate::obs`]).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"armed\":{},\"observed\":{},\"injected\":{}}}",
            self.armed.load(Ordering::Relaxed),
            self.observed(),
            self.injected()
        )
    }

    /// Called by the allocators before each allocation attempt: counts it
    /// and delivers the planned fault when its turn has come. `site` names
    /// the allocation path for the report.
    pub(crate) fn check(&self, site: &'static str) -> FsResult<()> {
        if !self.armed.load(Ordering::Acquire) {
            return Ok(());
        }
        let n = self.calls.fetch_add(1, Ordering::Relaxed) + 1;
        if n == self.fail_at.load(Ordering::Relaxed) {
            self.injected.fetch_add(1, Ordering::Relaxed);
            let site_code = u64::from(!site.contains("meta"));
            crate::obs::trace(crate::obs::EventKind::AllocFault, n, site_code);
            return Err(FsError::Injected(site));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_injector_never_fires() {
        let f = AllocFaults::default();
        for _ in 0..100 {
            assert!(f.check("x").is_ok());
        }
        assert_eq!(f.observed(), 0, "disarmed attempts are not counted");
    }

    #[test]
    fn armed_injector_fails_exactly_the_kth_attempt() {
        let f = AllocFaults::default();
        f.arm_at(3);
        assert!(f.check("site").is_ok());
        assert!(f.check("site").is_ok());
        assert_eq!(f.check("site"), Err(FsError::Injected("site")));
        assert!(f.check("site").is_ok(), "only the k-th attempt fails");
        assert_eq!(f.observed(), 4);
        assert_eq!(f.injected(), 1);
        f.disarm();
        assert!(f.check("site").is_ok());
    }

    #[test]
    fn recording_mode_counts_without_failing() {
        let f = AllocFaults::default();
        f.arm_recording();
        for _ in 0..10 {
            assert!(f.check("s").is_ok());
        }
        assert_eq!(f.observed(), 10);
        assert_eq!(f.injected(), 0);
    }
}
