//! The metadata-object slab allocator (§4.2 "Data structure allocator").
//!
//! Fixed-size pools of inodes, file entries and directory blocks, modelled
//! on the Linux slab allocator. The volatile side is a lock-free free stack
//! per pool; the persistent side is the object header's atomic
//! valid/dirty bits:
//!
//! * **alloc**: pop a candidate, claim it by CAS-ing the zero header to
//!   `valid|dirty|tag`, persist. Losing the CAS just means another process
//!   raced us — pop the next candidate.
//! * **free**: clear `valid` (keeping `dirty`), persist; zero the body,
//!   persist; clear the header entirely, persist; push. A crash anywhere in
//!   this sequence leaves a state the recovery scan maps to a unique action.
//!
//! Pools grow on demand by carving new segments from the block allocator
//! and recording them in the superblock, so recovery always knows where
//! objects live.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::queue::SegQueue;
use parking_lot::Mutex;
use simurgh_fsapi::{FsError, FsResult};
use simurgh_pmem::{PPtr, PmemRegion};

use super::blocks::BlockAlloc;
use super::AllocFaults;
use crate::obj::{H_DIRTY, H_VALID};
use crate::super_block::{PoolKind, PoolSeg, Superblock};
use crate::BLOCK_SIZE;

/// Blocks carved from the data area by the first pool-growth step; each
/// further segment doubles (capped), keeping growth O(log n) superblock
/// records for arbitrarily large file populations.
const GROW_BLOCKS: u64 = 64; // 256 KB
const GROW_CAP_BLOCKS: u64 = 1 << 18; // 1 GB

/// Slots pre-claimed from the shared pool per thread-cache refill. One
/// refill amortizes one pool round trip (and, with flush-then-fence
/// batching, one sfence) over `REFILL_SLOTS` allocations.
const REFILL_SLOTS: usize = 8;

/// Distinguishes allocator instances across remounts: thread-local caches
/// are keyed by instance id so a cache filled against a previous mount of
/// the same region can never leak stale claims into a new one.
static NEXT_ALLOC_ID: AtomicU64 = AtomicU64::new(1);

/// One thread's refill batches: pre-claimed object offsets keyed by
/// `(allocator id, pool kind)`.
type RefillCache = Vec<((u64, u8), Vec<u64>)>;

thread_local! {
    /// Per-thread refill caches: pre-claimed (header already `valid|dirty`,
    /// persisted) object offsets, keyed by (allocator id, pool kind). The
    /// cache is volatile: slots a thread never hands out are exactly the
    /// "allocated but unreachable" state the mark-and-sweep recovery frees,
    /// so a kill-9 (or just a dropped mount) leaks nothing durable.
    static REFILL: RefCell<RefillCache> = const { RefCell::new(Vec::new()) };
}

/// The slab allocator. One instance is shared by all processes of a mount.
pub struct MetaAllocator {
    /// Instance id keying the per-thread refill caches (see [`REFILL`]).
    id: u64,
    region: Arc<PmemRegion>,
    blocks: Arc<BlockAlloc>,
    free: [SegQueue<u64>; 3],
    grow_lock: Mutex<()>,
    /// Resource-fault injector shared with the data path (see
    /// [`AllocFaults`]); disarmed by default.
    faults: Arc<AllocFaults>,
    /// Round trips to the shared free stacks / grow path (the contended
    /// structures): one per [`refill`](Self::refill), not per alloc, so the
    /// group-commit tests can assert the k-fold amortization directly.
    pool_trips: AtomicU64,
}

impl MetaAllocator {
    /// An allocator with empty free stacks; populate with
    /// [`adopt_free`](Self::adopt_free) (mount) or let it grow on demand.
    pub fn new(region: Arc<PmemRegion>, blocks: Arc<BlockAlloc>) -> Self {
        MetaAllocator {
            id: NEXT_ALLOC_ID.fetch_add(1, Ordering::Relaxed),
            region,
            blocks,
            free: [SegQueue::new(), SegQueue::new(), SegQueue::new()],
            grow_lock: Mutex::new(()),
            faults: Arc::new(AllocFaults::default()),
            pool_trips: AtomicU64::new(0),
        }
    }

    /// Shared-pool round trips so far (diagnostics / perf assertions).
    pub fn pool_trips(&self) -> u64 {
        self.pool_trips.load(Ordering::Relaxed)
    }

    /// The mount's shared resource-fault injector.
    pub fn faults(&self) -> &Arc<AllocFaults> {
        &self.faults
    }

    /// Registers an already-zeroed free object (mount-time rebuild).
    pub fn adopt_free(&self, kind: PoolKind, obj: PPtr) {
        self.free[kind as usize].push(obj.off());
    }

    /// Number of free objects of `kind` currently stacked (diagnostics).
    pub fn free_count(&self, kind: PoolKind) -> usize {
        self.free[kind as usize].len()
    }

    /// Allocates one object: returns it with `valid|dirty` set and the body
    /// zeroed. The caller initializes fields, links the object, and finally
    /// clears the dirty bit.
    ///
    /// The fast path pops a pre-claimed slot from this thread's refill
    /// cache — no shared-stack traffic, no header CAS, no persist. A miss
    /// claims a batch of [`REFILL_SLOTS`] in one pool round trip
    /// ([`refill`](Self::refill)) and caches the surplus.
    pub fn alloc(&self, kind: PoolKind) -> FsResult<PPtr> {
        self.faults.check("meta-alloc")?;
        let key = (self.id, kind as u8);
        let cached = REFILL.with(|c| {
            let mut c = c.borrow_mut();
            c.iter_mut().find(|(k, _)| *k == key).and_then(|(_, batch)| batch.pop())
        });
        if let Some(off) = cached {
            return Ok(PPtr::new(off));
        }
        let mut batch = self.refill(kind)?;
        let obj = PPtr::new(batch.pop().expect("refill returns at least one slot"));
        if !batch.is_empty() {
            REFILL.with(|c| {
                let mut c = c.borrow_mut();
                match c.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, slots)) => slots.extend_from_slice(&batch),
                    None => c.push((key, batch)),
                }
            });
        }
        Ok(obj)
    }

    /// Claims up to [`REFILL_SLOTS`] objects from the shared pool in one
    /// round trip: each winning header CAS is noted and flushed, then one
    /// ordering point arms the whole batch (a single sfence eagerly; elided
    /// inside a [`FenceScope`](simurgh_pmem::FenceScope), whose close or
    /// commit covers it). A crash before that fence leaves the claims
    /// volatile — the objects are still free after the remount scan; a crash
    /// after it leaves claimed-but-unreachable objects, exactly the
    /// `valid|dirty` state the mark-and-sweep recovery frees. Either way the
    /// cache itself is never trusted across a crash.
    fn refill(&self, kind: PoolKind) -> FsResult<Vec<u64>> {
        let claim = H_VALID | H_DIRTY | kind.tag().bits();
        loop {
            self.pool_trips.fetch_add(1, Ordering::Relaxed);
            let mut got = Vec::with_capacity(REFILL_SLOTS);
            while got.len() < REFILL_SLOTS {
                let Some(off) = self.free[kind as usize].pop() else { break };
                let obj = PPtr::new(off);
                let header = self.region.atomic_u64(obj);
                if header.compare_exchange(0, claim, Ordering::AcqRel, Ordering::Acquire).is_ok() {
                    self.region.note_atomic(obj, 8);
                    self.region.flush(obj, 8);
                    got.push(off);
                }
                // A lost CAS means another process claimed this object
                // through a stale stack entry; try the next candidate.
            }
            if !got.is_empty() {
                self.region.fence();
                return Ok(got);
            }
            // Never grow while holding claims: a short stack just yields a
            // short batch, so the pool only grows when it is truly empty.
            self.grow(kind)?;
        }
    }

    /// Returns every pre-claimed slot in the calling thread's refill cache
    /// to the shared pools, un-claiming the headers (the bodies were never
    /// touched, so a zeroed header makes them free again). The quiesce path
    /// for orderly handoffs; a crashed thread's cache is reclaimed by the
    /// mark-and-sweep recovery instead.
    pub fn drain_thread_cache(&self) {
        let mut any = false;
        for kind in [PoolKind::Inode, PoolKind::FileEntry, PoolKind::DirBlock] {
            let key = (self.id, kind as u8);
            let batch = REFILL.with(|c| {
                let mut c = c.borrow_mut();
                c.iter().position(|(k, _)| *k == key).map(|i| c.remove(i).1)
            });
            let Some(batch) = batch else { continue };
            for off in batch {
                let obj = PPtr::new(off);
                self.region.atomic_u64(obj).store(0, Ordering::Release);
                self.region.note_atomic(obj, 8);
                self.region.flush(obj, 8);
                self.free[kind as usize].push(off);
                any = true;
            }
        }
        if any {
            self.region.fence();
        }
    }

    /// Pre-claimed slots of `kind` sitting in the calling thread's refill
    /// cache (diagnostics / tests).
    pub fn thread_cached(&self, kind: PoolKind) -> usize {
        let key = (self.id, kind as u8);
        REFILL.with(|c| {
            c.borrow().iter().find(|(k, _)| *k == key).map_or(0, |(_, batch)| batch.len())
        })
    }

    /// Frees an object following the paper's unset-valid → zero → unset-dirty
    /// order. Accepts objects in any live or half-freed state (recovery
    /// reuses this to finish interrupted frees).
    pub fn free(&self, kind: PoolKind, obj: PPtr) {
        self.free_no_recycle(kind, obj);
        self.recycle(kind, obj);
    }

    /// The persistent half of [`free`](Self::free): clears valid, zeroes,
    /// clears dirty — but does **not** make the object allocatable again.
    ///
    /// The delete protocol (Fig. 5b) zeroes the file entry *before* zeroing
    /// the hash-line pointer to it; splitting the free keeps that order
    /// while guaranteeing no other process can re-allocate the object while
    /// a published pointer still references it. Call
    /// [`recycle`](Self::recycle) once the object is unreachable.
    pub fn free_no_recycle(&self, kind: PoolKind, obj: PPtr) {
        let r = &*self.region;
        let header = r.atomic_u64(obj);
        // Step 1: valid off, dirty on.
        header.store(H_DIRTY | kind.tag().bits(), Ordering::Release);
        r.note_atomic(obj, 8);
        r.persist(obj, 8);
        // Step 2: zero the body.
        let size = kind.obj_size();
        r.zero(obj.add(8), (size - 8) as usize);
        r.persist(obj.add(8), (size - 8) as usize);
        // Step 3: header fully clear — the object is now allocatable.
        header.store(0, Ordering::Release);
        r.note_atomic(obj, 8);
        r.persist(obj, 8);
    }

    /// Makes a fully-freed object allocatable again (volatile push).
    pub fn recycle(&self, kind: PoolKind, obj: PPtr) {
        self.free[kind as usize].push(obj.off());
    }

    /// Grows a pool by one segment carved from the block allocator and
    /// records it in the superblock.
    fn grow(&self, kind: PoolKind) -> FsResult<()> {
        let _g = self.grow_lock.lock();
        if !self.free[kind as usize].is_empty() {
            return Ok(()); // another process grew the pool while we waited
        }
        let existing = Superblock::pool_segs(&self.region, kind).len() as u32;
        let mut grow_blocks = (GROW_BLOCKS << existing.min(14)).min(GROW_CAP_BLOCKS);
        let seg_ptr = loop {
            match self.blocks.alloc(kind as u64, grow_blocks) {
                Some(p) => break p,
                None if grow_blocks > 1 => grow_blocks /= 2,
                None => return Err(FsError::NoSpace),
            }
        };
        let bytes = grow_blocks * BLOCK_SIZE as u64;
        let count = bytes / kind.obj_size();
        self.region.zero(seg_ptr, bytes as usize);
        self.region.persist(seg_ptr, bytes as usize);
        if !Superblock::add_pool_seg(&self.region, kind, PoolSeg { start: seg_ptr.off(), count }) {
            // Pool table full: hand the blocks back and report no space.
            self.blocks.free(seg_ptr, grow_blocks);
            return Err(FsError::NoSpace);
        }
        for i in 0..count {
            self.free[kind as usize].push(seg_ptr.off() + i * kind.obj_size());
        }
        Ok(())
    }

    /// Attach path of a shared mount: refills the volatile free stacks from
    /// a header scan of every recorded pool segment — media only, never a
    /// peer's DRAM. The snapshot can race a live peer's alloc/free, but the
    /// persistent header CAS in [`alloc`](Self::alloc) arbitrates: a stale
    /// stack entry whose header is no longer zero simply loses and the next
    /// candidate is tried.
    pub fn adopt_from_scan(&self) {
        for kind in [PoolKind::Inode, PoolKind::FileEntry, PoolKind::DirBlock] {
            Self::for_each_slot(&self.region, kind, |obj| {
                if self.region.atomic_u64(obj).load(Ordering::Acquire) == 0 {
                    self.adopt_free(kind, obj);
                }
            });
        }
    }

    /// Iterates every object slot of every recorded segment of `kind`,
    /// calling `f(obj)`. Used by the recovery scan.
    pub fn for_each_slot(region: &PmemRegion, kind: PoolKind, mut f: impl FnMut(PPtr)) {
        for seg in Superblock::pool_segs(region, kind) {
            for i in 0..seg.count {
                f(PPtr::new(seg.start + i * kind.obj_size()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obj::{self, Tag};
    use simurgh_pmem::layout::Extent;

    fn setup(bytes: usize) -> (Arc<PmemRegion>, Arc<BlockAlloc>, MetaAllocator) {
        let region = Arc::new(PmemRegion::new(bytes));
        let data = Extent { start: PPtr::new(4096), len: bytes as u64 - 4096 };
        Superblock::format(&region, PPtr::NULL, data);
        let blocks = Arc::new(BlockAlloc::new(data, 2));
        let meta = MetaAllocator::new(region.clone(), blocks.clone());
        (region, blocks, meta)
    }

    #[test]
    fn alloc_sets_valid_dirty_and_tag() {
        let (region, _, meta) = setup(1 << 20);
        let p = meta.alloc(PoolKind::Inode).unwrap();
        let h = obj::header(&region, p);
        assert!(obj::is_valid(h) && obj::is_dirty(h));
        assert_eq!(Tag::from_header(h), Some(Tag::Inode));
        assert!(p.is_aligned(PoolKind::Inode.obj_size()));
    }

    #[test]
    fn free_returns_object_to_pool_zeroed() {
        let (region, _, meta) = setup(1 << 20);
        let p = meta.alloc(PoolKind::FileEntry).unwrap();
        region.write(p.add(8), 0xdeadbeef_u32);
        meta.free(PoolKind::FileEntry, p);
        assert_eq!(obj::header(&region, p), 0);
        assert_eq!(region.read::<u32>(p.add(8)), 0);
        // The freed object comes back.
        let mut seen = false;
        for _ in 0..10_000 {
            let q = meta.alloc(PoolKind::FileEntry).unwrap();
            if q == p {
                seen = true;
                break;
            }
        }
        assert!(seen, "freed object is reused");
    }

    #[test]
    fn growth_records_segments_in_superblock() {
        let (region, _, meta) = setup(1 << 20);
        assert!(Superblock::pool_segs(&region, PoolKind::DirBlock).is_empty());
        let _ = meta.alloc(PoolKind::DirBlock).unwrap();
        let segs = Superblock::pool_segs(&region, PoolKind::DirBlock);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].count, GROW_BLOCKS * 4096 / 4096);
    }

    #[test]
    fn exhaustion_is_nospace() {
        // Region with a tiny data area: pool growth fails quickly.
        let (_, blocks, meta) = setup(64 * 4096);
        // Drain the block allocator so growth cannot find GROW_BLOCKS.
        let mut held = Vec::new();
        while let Some(p) = blocks.alloc(0, 1) {
            held.push(p);
        }
        assert_eq!(meta.alloc(PoolKind::Inode), Err(FsError::NoSpace));
    }

    #[test]
    fn distinct_objects_under_concurrency() {
        let (_, _, meta) = setup(4 << 20);
        let meta = Arc::new(meta);
        let all = Arc::new(Mutex::new(std::collections::HashSet::new()));
        crossbeam::thread::scope(|s| {
            for _ in 0..4 {
                let meta = &meta;
                let all = &all;
                s.spawn(move |_| {
                    for _ in 0..300 {
                        let p = meta.alloc(PoolKind::FileEntry).unwrap();
                        assert!(all.lock().insert(p.off()), "double allocation");
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(all.lock().len(), 1200);
    }

    #[test]
    fn for_each_slot_covers_all_segments() {
        let (region, _, meta) = setup(2 << 20);
        // Force at least two segments of inodes.
        let per_seg = GROW_BLOCKS * 4096 / PoolKind::Inode.obj_size();
        for _ in 0..per_seg + 1 {
            meta.alloc(PoolKind::Inode).unwrap();
        }
        let mut n = 0;
        MetaAllocator::for_each_slot(&region, PoolKind::Inode, |_| n += 1);
        // The second segment doubles the first (geometric growth).
        assert_eq!(n as u64, per_seg * 3);
    }

    #[test]
    fn refill_amortizes_pool_trips() {
        let (region, _, meta) = setup(1 << 20);
        // First alloc: one failed pop round + grow + one claiming round.
        let first = meta.alloc(PoolKind::Inode).unwrap();
        let trips_after_first = meta.pool_trips();
        assert_eq!(meta.thread_cached(PoolKind::Inode), REFILL_SLOTS - 1);
        // The rest of the batch comes from the thread cache: zero new trips,
        // and every slot is already claimed (valid|dirty|tag) on media.
        let mut got = vec![first];
        for _ in 0..REFILL_SLOTS - 1 {
            let p = meta.alloc(PoolKind::Inode).unwrap();
            let h = obj::header(&region, p);
            assert!(obj::is_valid(h) && obj::is_dirty(h));
            assert_eq!(Tag::from_header(h), Some(Tag::Inode));
            got.push(p);
        }
        assert_eq!(meta.pool_trips(), trips_after_first, "cache hits take no pool trip");
        assert_eq!(meta.thread_cached(PoolKind::Inode), 0);
        got.sort();
        got.dedup();
        assert_eq!(got.len(), REFILL_SLOTS, "batch slots are distinct");
        // The next alloc refills again: exactly one more trip.
        let _ = meta.alloc(PoolKind::Inode).unwrap();
        assert_eq!(meta.pool_trips(), trips_after_first + 1);
    }

    #[test]
    fn caches_are_instance_scoped() {
        // A second allocator over the same region must never see the first
        // one's cached claims (remount hygiene: ids differ, keys miss).
        let (_, blocks, meta) = setup(1 << 20);
        let _ = meta.alloc(PoolKind::FileEntry).unwrap();
        assert!(meta.thread_cached(PoolKind::FileEntry) > 0);
        let fresh = MetaAllocator::new(meta.region.clone(), blocks);
        assert_eq!(fresh.thread_cached(PoolKind::FileEntry), 0);
    }

    #[test]
    fn adopt_free_feeds_allocations() {
        let (region, blocks, meta) = setup(1 << 20);
        // Simulate mount: hand-carve one "recovered" free object.
        let seg = blocks.alloc(0, 1).unwrap();
        region.zero(seg, 4096);
        Superblock::add_pool_seg(&region, PoolKind::Inode, PoolSeg { start: seg.off(), count: 1 });
        meta.adopt_free(PoolKind::Inode, seg);
        assert_eq!(meta.free_count(PoolKind::Inode), 1);
        let got = meta.alloc(PoolKind::Inode).unwrap();
        assert_eq!(got, seg);
    }
}
