//! Simurgh: a fully decentralized NVMM user-space file system.
//!
//! This crate is the primary contribution of the SC '21 paper, rebuilt in
//! Rust on the emulated substrates of `simurgh-pmem` (persistent memory)
//! and `simurgh-protfn` (protected functions). The design goals of §4:
//!
//! 1. **User space only** — the file system is a library; after
//!    format/mount there is no central server and no kernel involvement.
//!    Concurrent "processes" (threads holding [`SimurghFs`] through an
//!    `Arc`) coordinate exclusively through the shared NVMM region and
//!    shared volatile maps, exactly like independent processes sharing a
//!    DAX mapping and shared DRAM.
//! 2. **Decentralized scalability** — no global locks: a segmented block
//!    allocator ([`alloc::blocks`]), a lock-free slab allocator for
//!    metadata objects with atomic valid/dirty bits ([`alloc::meta`]), and
//!    per-line busy flags on chained directory hash blocks ([`dir`])
//!    following the step-by-step create/unlink/rename protocols of Fig. 5.
//! 3. **Kernel-equivalent protection** — uid/gid/mode permission checks on
//!    every path walk, and optional enforcement that the NVMM region is
//!    only touchable from within protected functions ([`security`]).
//!
//! Persistence follows the paper: metadata updates are ordered with
//! `clwb`/`sfence`; data writes use non-temporal stores and are fenced
//! before the metadata that publishes them ([`file`]). Crash recovery is
//! decentralized: a process that times out on a busy flag repairs the line
//! itself, and a whole-system crash is healed by the mark-and-sweep scan of
//! [`recovery`] at mount time.
//!
//! ```
//! use std::sync::Arc;
//! use simurgh_core::{SimurghFs, SimurghConfig};
//! use simurgh_fsapi::{FileSystem, ProcCtx, FileMode};
//!
//! let region = Arc::new(simurgh_pmem::PmemRegion::new(16 << 20));
//! let fs = SimurghFs::format(region, SimurghConfig::default()).unwrap();
//! let ctx = ProcCtx::root(1);
//! fs.mkdir(&ctx, "/home", FileMode::dir(0o755)).unwrap();
//! fs.write_file(&ctx, "/home/hello", b"simurgh").unwrap();
//! assert_eq!(fs.read_to_vec(&ctx, "/home/hello").unwrap(), b"simurgh");
//! ```

pub mod alloc;
pub mod check;
pub mod compact;
pub mod dindex;
pub mod dir;
pub mod file;
pub mod fs;
pub mod hash;
pub mod obj;
pub mod obs;
pub mod recovery;
pub mod security;
pub mod shared;
pub mod super_block;
pub mod testing;

pub use fs::{SimurghConfig, SimurghFs};
pub use recovery::RecoveryReport;

/// Size of one file data block.
pub const BLOCK_SIZE: usize = 4096;
