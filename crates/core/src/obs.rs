//! Unified observability layer (DESIGN.md "Observability").
//!
//! The paper's premise is that the kernel is out of the loop (§3) — which
//! also puts kernel-side tracing (blktrace, perf syscall accounting) out of
//! the loop. A user-space NVMM FS has to carry its own observability. This
//! module is that substrate, three layers deep:
//!
//! 1. **[`ObsRegistry`]** — one registry absorbing every counter surface the
//!    workspace grew separately (`DirStats`, `DataStats`, pmem's
//!    `StatsSnapshot`, the fsapi `OpTimers` breakdown and the `AllocFaults`
//!    injector) plus per-op latency histograms, rendered by one
//!    [`ObsRegistry::to_json`] (exported as `paper obs [--json]`).
//! 2. **Latency histograms** — log2-bucket [`Histogram`]s around every
//!    `FileSystem` op and each mount/recovery phase, driven by the RAII
//!    [`OpTimer`] and reported per op as count/p50/p99/max. Recording is two
//!    relaxed atomic RMWs per op; quantiles are computed at snapshot time.
//! 3. **Trace ring** — a lock-free fixed-size per-thread ring of
//!    [`TraceEvent`]s ([`trace`]) recording op begin/end, `TsLock` steals,
//!    busy-flag timeouts, alloc-fault injections and sfence boundaries.
//!    Writers never block or allocate after ring setup; [`recent`] drains a
//!    best-effort snapshot on demand. The **flight recorder**
//!    ([`flight_dump`]) renders the last N events per thread as text lines
//!    for embedding in failure reports (crash-matrix cells attach it to
//!    their `failures` output; `crashlab matrix --trace` prints it).
//!
//! The ring is global to the process (threads outlive file systems, and a
//! steal event has no natural owner fs), so drains from concurrent tests
//! interleave; consumers filter by payload (e.g. their own lock stamps).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Op vocabulary
// ---------------------------------------------------------------------------

/// Everything the registry keeps a latency histogram for: the 23 public
/// `FileSystem` ops plus the mount/recovery phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum FsOp {
    Open,
    Close,
    Read,
    Write,
    Pread,
    Pwrite,
    Lseek,
    Fstat,
    Stat,
    Fsync,
    Ftruncate,
    Fallocate,
    Unlink,
    Mkdir,
    Rmdir,
    Readdir,
    Rename,
    Symlink,
    Readlink,
    Link,
    Chmod,
    Statfs,
    SetTimes,
    Mount,
    RecoverMark,
    RecoverRepair,
    RecoverSweep,
    RecoverRebuild,
}

impl FsOp {
    /// Number of histogram slots.
    pub const COUNT: usize = 28;

    /// Every op, in histogram-index order.
    pub const ALL: [FsOp; FsOp::COUNT] = [
        FsOp::Open,
        FsOp::Close,
        FsOp::Read,
        FsOp::Write,
        FsOp::Pread,
        FsOp::Pwrite,
        FsOp::Lseek,
        FsOp::Fstat,
        FsOp::Stat,
        FsOp::Fsync,
        FsOp::Ftruncate,
        FsOp::Fallocate,
        FsOp::Unlink,
        FsOp::Mkdir,
        FsOp::Rmdir,
        FsOp::Readdir,
        FsOp::Rename,
        FsOp::Symlink,
        FsOp::Readlink,
        FsOp::Link,
        FsOp::Chmod,
        FsOp::Statfs,
        FsOp::SetTimes,
        FsOp::Mount,
        FsOp::RecoverMark,
        FsOp::RecoverRepair,
        FsOp::RecoverSweep,
        FsOp::RecoverRebuild,
    ];

    /// Stable lowercase name used as the JSON key and in trace rendering.
    pub fn name(self) -> &'static str {
        match self {
            FsOp::Open => "open",
            FsOp::Close => "close",
            FsOp::Read => "read",
            FsOp::Write => "write",
            FsOp::Pread => "pread",
            FsOp::Pwrite => "pwrite",
            FsOp::Lseek => "lseek",
            FsOp::Fstat => "fstat",
            FsOp::Stat => "stat",
            FsOp::Fsync => "fsync",
            FsOp::Ftruncate => "ftruncate",
            FsOp::Fallocate => "fallocate",
            FsOp::Unlink => "unlink",
            FsOp::Mkdir => "mkdir",
            FsOp::Rmdir => "rmdir",
            FsOp::Readdir => "readdir",
            FsOp::Rename => "rename",
            FsOp::Symlink => "symlink",
            FsOp::Readlink => "readlink",
            FsOp::Link => "link",
            FsOp::Chmod => "chmod",
            FsOp::Statfs => "statfs",
            FsOp::SetTimes => "set_times",
            FsOp::Mount => "mount",
            FsOp::RecoverMark => "recover_mark",
            FsOp::RecoverRepair => "recover_repair",
            FsOp::RecoverSweep => "recover_sweep",
            FsOp::RecoverRebuild => "recover_rebuild",
        }
    }
}

// ---------------------------------------------------------------------------
// Log2-bucket latency histogram
// ---------------------------------------------------------------------------

/// Number of log2 buckets: bucket `i` holds samples in `[2^(i-1), 2^i)` ns
/// (bucket 0 holds 0-ns samples), so 64 buckets cover every `u64`.
const BUCKETS: usize = 64;

/// A lock-free log2-bucket latency histogram. Recording is one relaxed
/// `fetch_add` plus one relaxed `fetch_max`; the exact maximum is kept so
/// the tail is never rounded to a bucket boundary.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    max_ns: AtomicU64,
}

/// Point-in-time quantile summary of one [`Histogram`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Upper bound of the bucket holding the median, in ns.
    pub p50_ns: u64,
    /// Upper bound of the bucket holding the 99th percentile, in ns.
    pub p99_ns: u64,
    /// Exact largest sample, in ns.
    pub max_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram. Public so out-of-crate recorders (the gateway
    /// load generator measures client-side latency) can reuse the same
    /// bucketing as the in-FS probes.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            max_ns: AtomicU64::new(0),
        }
    }

    fn bucket_of(ns: u64) -> usize {
        ((u64::BITS - ns.leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// Records one sample of `ns` nanoseconds.
    pub fn record(&self, ns: u64) {
        self.buckets[Self::bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Inclusive upper bound of bucket `i` in ns.
    fn upper(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            (1u64 << i) - 1
        }
    }

    /// Captures count/p50/p99/max. Quantiles are bucket upper bounds (≤ one
    /// power of two above the true value), capped at the exact max.
    pub fn snapshot(&self) -> HistSnapshot {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let count: u64 = counts.iter().sum();
        let max_ns = self.max_ns.load(Ordering::Relaxed);
        if count == 0 {
            return HistSnapshot::default();
        }
        let quantile = |q_num: u64, q_den: u64| -> u64 {
            let target = (count * q_num).div_ceil(q_den).max(1);
            let mut cum = 0u64;
            for (i, c) in counts.iter().enumerate() {
                cum += c;
                if cum >= target {
                    return Histogram::upper(i).min(max_ns);
                }
            }
            max_ns
        };
        HistSnapshot { count, p50_ns: quantile(1, 2), p99_ns: quantile(99, 100), max_ns }
    }
}

// ---------------------------------------------------------------------------
// RAII op timer
// ---------------------------------------------------------------------------

/// Times one op from construction to drop, recording into the registry's
/// histogram and emitting `OpBegin`/`OpEnd` trace events.
pub struct OpTimer<'a> {
    hist: &'a Histogram,
    op: FsOp,
    start: Instant,
}

impl Drop for OpTimer<'_> {
    fn drop(&mut self) {
        let ns = self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.hist.record(ns);
        trace(EventKind::OpEnd, self.op as u64, ns);
    }
}

// ---------------------------------------------------------------------------
// Gateway counters
// ---------------------------------------------------------------------------

/// Counter battery of the `simurgh-served` gateway: connection lifecycle,
/// admission control and batch-flush accounting. Owned by the
/// [`ObsRegistry`] so `paper obs` reports a `gateway` section without any
/// extra plumbing; the serving crate bumps these through
/// `SimurghFs::obs()`. All fields are relaxed monotonic counters except
/// [`in_flight`](Self::in_flight), which is a gauge.
#[derive(Debug, Default)]
pub struct GatewayStats {
    /// Connections accepted over the daemon's lifetime.
    pub connections: AtomicU64,
    /// Connections closed, for any reason (client EOF, kill, timeout,
    /// protocol error, shutdown).
    pub disconnects: AtomicU64,
    /// Gauge: ops decoded but not yet answered, across all connections.
    pub in_flight: AtomicU64,
    /// Ops dispatched into the file system (admission rejections excluded).
    pub ops: AtomicU64,
    /// Ops that shared a fence-scope flush with at least one pipelined
    /// sibling — the gateway's group-commit win.
    pub batched_ops: AtomicU64,
    /// Batch flushes: one per drained pipeline burst (fence-scope commit).
    pub flushes: AtomicU64,
    /// Requests refused with `Busy` because the in-flight budget was spent.
    pub admission_rejections: AtomicU64,
    /// Descriptors force-closed when their connection died with fds open.
    pub fds_reaped: AtomicU64,
    /// Connections closed by the idle/half-open deadline.
    pub idle_timeouts: AtomicU64,
    /// Connections dropped for unparseable or oversized frames.
    pub protocol_errors: AtomicU64,
}

impl GatewayStats {
    /// An all-zero battery.
    pub const fn new() -> Self {
        GatewayStats {
            connections: AtomicU64::new(0),
            disconnects: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            ops: AtomicU64::new(0),
            batched_ops: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
            admission_rejections: AtomicU64::new(0),
            fds_reaped: AtomicU64::new(0),
            idle_timeouts: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
        }
    }

    /// Relaxed `+1` on one counter (the gateway's hot-path increment).
    pub fn bump(c: &AtomicU64) {
        c.fetch_add(1, Ordering::Relaxed);
    }

    /// Relaxed read of one counter.
    pub fn get(c: &AtomicU64) -> u64 {
        c.load(Ordering::Relaxed)
    }

    /// The `"gateway"` JSON object of [`ObsRegistry::to_json`].
    pub fn to_json(&self) -> String {
        let g = |c: &AtomicU64| c.load(Ordering::Relaxed);
        format!(
            "{{\"connections\":{},\"disconnects\":{},\"in_flight\":{},\"ops\":{},\
             \"batched_ops\":{},\"flushes\":{},\"admission_rejections\":{},\
             \"fds_reaped\":{},\"idle_timeouts\":{},\"protocol_errors\":{}}}",
            g(&self.connections),
            g(&self.disconnects),
            g(&self.in_flight),
            g(&self.ops),
            g(&self.batched_ops),
            g(&self.flushes),
            g(&self.admission_rejections),
            g(&self.fds_reaped),
            g(&self.idle_timeouts),
            g(&self.protocol_errors),
        )
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// One latency histogram per [`FsOp`], plus the single `to_json` front door
/// for every counter surface in the workspace.
pub struct ObsRegistry {
    hists: [Histogram; FsOp::COUNT],
    /// Serving-gateway counters (`simurgh-served`); zero when this mount
    /// is not behind a daemon.
    pub gateway: GatewayStats,
}

impl Default for ObsRegistry {
    fn default() -> Self {
        ObsRegistry::new()
    }
}

impl ObsRegistry {
    /// An empty registry (all histograms zero).
    pub fn new() -> Self {
        ObsRegistry {
            hists: std::array::from_fn(|_| Histogram::new()),
            gateway: GatewayStats::new(),
        }
    }

    /// Starts timing `op`; the returned guard records on drop.
    pub fn timer(&self, op: FsOp) -> OpTimer<'_> {
        trace(EventKind::OpBegin, op as u64, 0);
        OpTimer { hist: &self.hists[op as usize], op, start: Instant::now() }
    }

    /// Records an externally measured duration (mount/recovery phases).
    pub fn record(&self, op: FsOp, d: Duration) {
        self.hists[op as usize].record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Quantile summary for one op.
    pub fn snapshot(&self, op: FsOp) -> HistSnapshot {
        self.hists[op as usize].snapshot()
    }

    /// The `"latency"` JSON object: one entry per op with at least one
    /// sample, as `{"count":…,"p50_ns":…,"p99_ns":…,"max_ns":…}`.
    pub fn latency_json(&self) -> String {
        let mut entries = Vec::new();
        for op in FsOp::ALL {
            let s = self.snapshot(op);
            if s.count == 0 {
                continue;
            }
            entries.push(format!(
                "\"{}\":{{\"count\":{},\"p50_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}",
                op.name(),
                s.count,
                s.p50_ns,
                s.p99_ns,
                s.max_ns
            ));
        }
        format!("{{{}}}", entries.join(","))
    }

    /// Renders the whole unified registry as one JSON object, absorbing the
    /// previously separate surfaces: `DirStats` (as its snapshot), `DataStats`
    /// (likewise), pmem traffic, the fsapi `OpTimers` wall-clock breakdown
    /// and the `AllocFaults` injector counters, plus the latency histograms,
    /// the allocator round-trip counters ([`MetaAllocator`] pool trips,
    /// [`BlockAlloc`] segment trips), the process-wide [`LockStats`]
    /// busy-wait battery and the [`FragStats`] fragmentation/compaction
    /// battery (with its live allocator gauges and the `(files, extents)`
    /// census the mount supplies).
    ///
    /// [`MetaAllocator`]: crate::alloc::MetaAllocator
    /// [`BlockAlloc`]: crate::alloc::BlockAlloc
    /// [`LockStats`]: crate::alloc::LockStats
    /// [`FragStats`]: crate::compact::FragStats
    // One parameter per absorbed surface: the registry is the single place
    // these meet, and the obs-coverage rule keys on the typed signature.
    #[allow(clippy::too_many_arguments)]
    pub fn to_json(
        &self,
        dir: &crate::dir::DirStatsSnapshot,
        data: &crate::file::DataStatsSnapshot,
        pmem: &simurgh_pmem::stats::StatsSnapshot,
        timers: &simurgh_fsapi::OpTimers,
        faults: &crate::alloc::AllocFaults,
        meta: &crate::alloc::MetaAllocator,
        blocks: &crate::alloc::BlockAlloc,
        lock: &crate::alloc::LockStats,
        frag: &crate::compact::FragStats,
        census: (u64, u64),
    ) -> String {
        let alloc = format!(
            "{{\"pool_trips\":{},\"seg_trips\":{}}}",
            meta.pool_trips(),
            blocks.seg_trips()
        );
        format!(
            "{{\"latency\":{},\"dir\":{},\"data\":{},\"pmem\":{},\"timers\":{},\
             \"alloc_faults\":{},\"alloc\":{},\"lock\":{},\"gateway\":{},\"frag\":{}}}",
            self.latency_json(),
            dir.to_json(),
            data.to_json(),
            pmem.to_json(),
            timers.to_json(),
            faults.to_json(),
            alloc,
            lock.to_json(),
            self.gateway.to_json(),
            frag.to_json(blocks, census.0, census.1)
        )
    }
}

// ---------------------------------------------------------------------------
// Per-thread trace ring
// ---------------------------------------------------------------------------

/// Events in the ring each thread keeps the last [`RING_EVENTS`] of.
pub const RING_EVENTS: usize = 1024;

/// Trace event vocabulary. Payload meaning per kind:
///
/// | kind | `a` | `b` |
/// |---|---|---|
/// | `OpBegin` / `OpEnd` | [`FsOp`] index | 0 / duration ns |
/// | `LockSteal` (TsLock) | victim stamp (µs) | thief stamp (µs) |
/// | `LockSteal` (busy line) | first hash block offset | line index |
/// | `BusyTimeout` | lock/flag address or line | observed word |
/// | `AllocFault` | k-th attempt injected | 0 meta / 1 data |
/// | `Fence` | running fence count | 0 |
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    OpBegin,
    OpEnd,
    LockSteal,
    BusyTimeout,
    AllocFault,
    Fence,
}

impl EventKind {
    fn encode(self) -> u64 {
        match self {
            EventKind::OpBegin => 1,
            EventKind::OpEnd => 2,
            EventKind::LockSteal => 3,
            EventKind::BusyTimeout => 4,
            EventKind::AllocFault => 5,
            EventKind::Fence => 6,
        }
    }

    fn decode(v: u64) -> Option<EventKind> {
        Some(match v {
            1 => EventKind::OpBegin,
            2 => EventKind::OpEnd,
            3 => EventKind::LockSteal,
            4 => EventKind::BusyTimeout,
            5 => EventKind::AllocFault,
            6 => EventKind::Fence,
            _ => return None,
        })
    }
}

/// One drained trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Globally ordered sequence number (allocation order, not retirement).
    pub seq: u64,
    /// Small per-thread id (assigned at the thread's first trace).
    pub tid: u64,
    /// What happened.
    pub kind: EventKind,
    /// First payload word (see [`EventKind`]).
    pub a: u64,
    /// Second payload word (see [`EventKind`]).
    pub b: u64,
}

impl TraceEvent {
    /// One-line human/grep-friendly rendering. Contains no characters that
    /// need JSON escaping, so flight-recorder dumps embed it verbatim.
    pub fn render(&self) -> String {
        let head = format!("t{} #{}", self.tid, self.seq);
        let op_name = |idx: u64| {
            FsOp::ALL.get(idx as usize).map(|o| o.name()).unwrap_or("?")
        };
        match self.kind {
            EventKind::OpBegin => format!("{head} op_begin {}", op_name(self.a)),
            EventKind::OpEnd => format!("{head} op_end {} dur_ns={}", op_name(self.a), self.b),
            EventKind::LockSteal => {
                format!("{head} lock_steal victim={} thief={}", self.a, self.b)
            }
            EventKind::BusyTimeout => {
                format!("{head} busy_timeout at={} word={:#x}", self.a, self.b)
            }
            EventKind::AllocFault => format!(
                "{head} alloc_fault k={} site={}",
                self.a,
                if self.b == 0 { "meta" } else { "data" }
            ),
            EventKind::Fence => format!("{head} fence n={}", self.a),
        }
    }
}

/// One ring slot. The owning thread writes `seq = 0`, then the payload,
/// then the real `seq` (release); readers accept a slot only if `seq` is
/// nonzero and unchanged across reading the payload.
struct Slot {
    seq: AtomicU64,
    kind: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

/// A single-writer trace ring. Only the owning thread stores; any thread
/// may read a best-effort snapshot.
struct Ring {
    tid: u64,
    /// Next write position; written only by the owner, read by drainers.
    widx: AtomicU64,
    slots: Box<[Slot]>,
}

impl Ring {
    fn new(tid: u64) -> Self {
        let slots = (0..RING_EVENTS)
            .map(|_| Slot {
                seq: AtomicU64::new(0),
                kind: AtomicU64::new(0),
                a: AtomicU64::new(0),
                b: AtomicU64::new(0),
            })
            .collect();
        Ring { tid, widx: AtomicU64::new(0), slots }
    }

    /// Owner-only append.
    fn push(&self, seq: u64, kind: EventKind, a: u64, b: u64) {
        let i = self.widx.load(Ordering::Relaxed);
        let slot = &self.slots[(i as usize) % RING_EVENTS];
        slot.seq.store(0, Ordering::Release); // invalidate for racing readers
        slot.kind.store(kind.encode(), Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        slot.seq.store(seq, Ordering::Release);
        self.widx.store(i + 1, Ordering::Release);
    }

    /// Best-effort snapshot of currently valid slots.
    fn drain(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(RING_EVENTS);
        for slot in self.slots.iter() {
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 == 0 {
                continue;
            }
            let kind = slot.kind.load(Ordering::Relaxed);
            let a = slot.a.load(Ordering::Relaxed);
            let b = slot.b.load(Ordering::Relaxed);
            if slot.seq.load(Ordering::Acquire) != s1 {
                continue; // torn by a concurrent overwrite — drop it
            }
            let Some(kind) = EventKind::decode(kind) else { continue };
            out.push(TraceEvent { seq: s1, tid: self.tid, kind, a, b });
        }
        out
    }
}

/// Global event ordering. Starts at 1 so `seq == 0` can mean "empty slot".
static SEQ: AtomicU64 = AtomicU64::new(1);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

fn rings() -> &'static Mutex<Vec<Arc<Ring>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    /// This thread's ring; created (and registered globally) on first use.
    static MY_RING: Arc<Ring> = {
        let ring = Arc::new(Ring::new(NEXT_TID.fetch_add(1, Ordering::Relaxed)));
        rings().lock().expect("ring registry").push(Arc::clone(&ring));
        ring
    };
}

/// Appends one event to the calling thread's ring. Lock-free and
/// allocation-free after the thread's first call.
pub fn trace(kind: EventKind, a: u64, b: u64) {
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    MY_RING.with(|r| r.push(seq, kind, a, b));
}

/// Drains up to the `per_thread` most recent events from every thread's
/// ring, merged and sorted by sequence number. Best-effort under concurrent
/// writers (in-flight slots are skipped, never misread).
pub fn recent(per_thread: usize) -> Vec<TraceEvent> {
    let rings: Vec<Arc<Ring>> =
        rings().lock().expect("ring registry").iter().map(Arc::clone).collect();
    let mut all = Vec::new();
    for ring in rings {
        let mut evs = ring.drain();
        evs.sort_by_key(|e| std::cmp::Reverse(e.seq));
        evs.truncate(per_thread);
        all.extend(evs);
    }
    all.sort_by_key(|e| e.seq);
    all
}

/// Flight recorder: the last `per_thread` events per thread, rendered as
/// text lines safe to embed in JSON string arrays without escaping.
pub fn flight_dump(per_thread: usize) -> Vec<String> {
    recent(per_thread).iter().map(TraceEvent::render).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_cover_spread() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(100); // bucket 7, upper 127
        }
        h.record(1_000_000); // lone tail sample
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.max_ns, 1_000_000);
        assert!(s.p50_ns >= 100 && s.p50_ns < 256, "p50 {}", s.p50_ns);
        // p99 target is the 99th sample, still in the 100-ns bucket.
        assert!(s.p99_ns < 256, "p99 {}", s.p99_ns);
        assert!(s.p99_ns <= s.max_ns);
    }

    #[test]
    fn histogram_zero_and_empty() {
        let h = Histogram::new();
        assert_eq!(h.snapshot(), HistSnapshot::default());
        h.record(0);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.p50_ns, 0);
        assert_eq!(s.max_ns, 0);
    }

    #[test]
    fn timer_records_into_registry_and_ring() {
        let reg = ObsRegistry::new();
        {
            let _t = reg.timer(FsOp::Mkdir);
        }
        let s = reg.snapshot(FsOp::Mkdir);
        assert_eq!(s.count, 1);
        let evs = recent(RING_EVENTS);
        let begin = evs
            .iter()
            .any(|e| e.kind == EventKind::OpBegin && e.a == FsOp::Mkdir as u64);
        let end = evs
            .iter()
            .any(|e| e.kind == EventKind::OpEnd && e.a == FsOp::Mkdir as u64);
        assert!(begin && end, "{evs:?}");
    }

    #[test]
    fn ring_keeps_most_recent_on_wrap() {
        // Use a distinctive payload so concurrent tests don't interfere.
        let tag = 0xD15C_0B5E_u64;
        for i in 0..(RING_EVENTS as u64 + 10) {
            trace(EventKind::BusyTimeout, tag, i);
        }
        let evs = recent(RING_EVENTS);
        let mine: Vec<u64> = evs
            .iter()
            .filter(|e| e.kind == EventKind::BusyTimeout && e.a == tag)
            .map(|e| e.b)
            .collect();
        // The oldest 10 were overwritten; the newest survive in order.
        assert!(mine.len() <= RING_EVENTS);
        assert_eq!(*mine.last().expect("events"), RING_EVENTS as u64 + 9);
        assert!(mine.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn render_is_json_embeddable() {
        let e = TraceEvent {
            seq: 7,
            tid: 1,
            kind: EventKind::LockSteal,
            a: 100,
            b: 200,
        };
        let r = e.render();
        assert!(r.contains("lock_steal"));
        assert!(r.contains("victim=100"));
        assert!(r.contains("thief=200"));
        assert!(!r.contains('"') && !r.contains('\\'), "{r}");
    }

    #[test]
    fn op_names_are_unique_and_indexed() {
        let mut names: Vec<&str> = FsOp::ALL.iter().map(|o| o.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), FsOp::COUNT);
        for (i, op) in FsOp::ALL.iter().enumerate() {
            assert_eq!(*op as usize, i);
        }
    }
}
