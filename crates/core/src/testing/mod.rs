//! Crash-injection helpers for tests, examples and the harness.
//!
//! These utilities simulate the *process-crash* scenarios of §4.3 — a
//! process dying between protocol steps while holding a busy flag — which
//! cannot be produced through the public API (the API always completes its
//! protocols). They reach into the on-NVMM structures exactly the way a
//! dying process would leave them.

use simurgh_fsapi::{FileSystem, ProcCtx};

use crate::dir;

pub mod matrix;
pub mod procs;
use crate::fs::SimurghFs;
use crate::hash::dir_line;
use crate::obj::{self, dirblock::NLINES};

/// Simulates a process that crashed mid-unlink of `dir_path/name`: the
/// line's busy flag is taken and the file entry invalidated (Fig. 5b steps
/// 1–2), then the "process" vanishes. The next process that needs this
/// line will time out, repair it, and roll the delete forward.
///
/// Panics if the entry does not exist.
pub fn crash_mid_unlink(fs: &SimurghFs, dir_path: &str, name: &str) {
    let ctx = ProcCtx::root(u32::MAX);
    let st = fs.stat(&ctx, dir_path).expect("directory exists");
    assert!(st.is_dir(), "{dir_path} is a directory");
    let (region, first) = fs.testing_dir_block(dir_path).expect("resolve dir block");
    let line = dir_line(name, NLINES);
    // analyze:allow(lock-discipline): deliberately leaks the busy flag to
    // simulate the crashed holder (waiters must repair the line).
    assert!(first.try_busy(&region, line), "line not busy before the crash");
    let env = fs.testing_dir_env();
    let fe = dir::lookup(&env, first, name).expect("entry exists");
    obj::invalidate(&region, fe.ptr());
    // The crashed process never releases the busy flag.
}

/// Simulates a process that crashed holding a busy line *before* doing any
/// persistent damage (e.g. right after acquiring the flag). Waiters must
/// still detect the crash and force-release.
pub fn crash_holding_line(fs: &SimurghFs, dir_path: &str, name: &str) {
    let (region, first) = fs.testing_dir_block(dir_path).expect("resolve dir block");
    let line = dir_line(name, NLINES);
    // analyze:allow(lock-discipline): deliberately leaks the busy flag to
    // simulate the crashed holder (waiters must repair the line).
    assert!(first.try_busy(&region, line), "line not busy before the crash");
}

/// Finds a name that hashes to the same directory line as `name` (useful
/// to force a waiter onto a crashed line).
pub fn colliding_name(name: &str, prefix: &str) -> String {
    let target = dir_line(name, NLINES);
    for i in 0.. {
        let cand = format!("{prefix}{i}");
        if dir_line(&cand, NLINES) == target {
            return cand;
        }
    }
    unreachable!()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::SimurghConfig;
    use simurgh_fsapi::FileMode;
    use simurgh_pmem::PmemRegion;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn colliding_names_share_a_line() {
        let c = colliding_name("victim", "x");
        assert_eq!(dir_line(&c, NLINES), dir_line("victim", NLINES));
        assert_ne!(c, "victim");
    }

    #[test]
    fn waiter_completes_crashed_unlink() {
        let region = Arc::new(PmemRegion::new(32 << 20));
        let cfg = SimurghConfig {
            line_max_hold: Duration::from_millis(15),
            ..SimurghConfig::default()
        };
        let fs = SimurghFs::format(region, cfg).unwrap();
        let ctx = ProcCtx::root(1);
        fs.mkdir(&ctx, "/d", FileMode::dir(0o777)).unwrap();
        fs.write_file(&ctx, "/d/victim", b"x").unwrap();
        crash_mid_unlink(&fs, "/d", "victim");
        // Touch the same line from a "different process".
        let other = colliding_name("victim", "new");
        fs.write_file(&ctx, &format!("/d/{other}"), b"y").unwrap();
        assert!(fs.stat(&ctx, "/d/victim").is_err(), "delete rolled forward");
        assert!(fs.stat(&ctx, &format!("/d/{other}")).is_ok());
    }

    #[test]
    fn waiter_releases_innocent_crashed_line() {
        let region = Arc::new(PmemRegion::new(32 << 20));
        let cfg = SimurghConfig {
            line_max_hold: Duration::from_millis(15),
            ..SimurghConfig::default()
        };
        let fs = SimurghFs::format(region, cfg).unwrap();
        let ctx = ProcCtx::root(1);
        fs.mkdir(&ctx, "/d", FileMode::dir(0o777)).unwrap();
        fs.write_file(&ctx, "/d/keep", b"x").unwrap();
        crash_holding_line(&fs, "/d", "keep");
        let other = colliding_name("keep", "sib");
        fs.write_file(&ctx, &format!("/d/{other}"), b"y").unwrap();
        assert_eq!(fs.read_to_vec(&ctx, "/d/keep").unwrap(), b"x", "no damage to repair");
    }
}
