//! The crash matrix: exhaustive fault injection at every persistence
//! boundary (§4.3, Fig. 5 — systematically, not by hand-picked prefixes).
//!
//! For each scripted operation the driver first *records* a run on a fresh
//! file system, counting the `sfence` boundaries the operation crosses
//! (`simurgh_pmem::FaultPlan` in recording mode). It then *replays* the
//! operation once per boundary `i`, cutting the power there
//! ([`simurgh_pmem::FaultPlan::cut_after`]), remounts the frozen media
//! image through whole-system recovery ([`crate::recovery`]), runs the
//! [`crate::check`] fsck, and asserts the paper's prescribed outcome:
//!
//! * the recovered tree equals the pre-op snapshot (**roll-back**) or the
//!   post-op snapshot (**roll-forward**) — never a third state;
//! * the flip from pre to post happens exactly once (the protocol's commit
//!   point): recovery rolls forward from every boundary after it and rolls
//!   back from every boundary before it;
//! * recovery converges: a second crash with no intervening operations
//!   reclaims nothing and reproduces the same tree — i.e. no leaked block
//!   and no allocated-but-unreachable object survived the first repair.
//!
//! A second sub-matrix injects ENOSPC at every allocation the operation
//! performs ([`crate::alloc::AllocFaults`]) and asserts failed operations
//! are atomic: the error is the planned [`FsError::Injected`], the tree
//! still matches a snapshot, and a subsequent crash-remount reclaims
//! nothing.
//!
//! Because the plan counts boundaries instead of naming them, **adding a
//! fence to any protocol automatically adds a tested crash point**.

use std::sync::Arc;

use simurgh_fsapi::{FileMode, FileSystem, FileType, FsResult, OpenFlags, ProcCtx};
use simurgh_pmem::{FaultPlan, PmemRegion};

use crate::check;
use crate::fs::{SimurghConfig, SimurghFs};

/// Region size for matrix runs: small enough to remount hundreds of times,
/// large enough that no scripted op organically exhausts it.
const REGION_BYTES: usize = 8 << 20;

/// One scripted operation: a deterministic setup phase (not fault-injected)
/// and the operation under test.
pub struct OpSpec {
    /// Report label ("create", "rename-crossdir", ...).
    pub name: &'static str,
    pub(crate) setup: fn(&SimurghFs, &ProcCtx),
    pub(crate) op: fn(&SimurghFs, &ProcCtx) -> FsResult<()>,
}

/// Which snapshot a recovered tree matched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveredState {
    /// Rolled back: the operation left no trace.
    PreOp,
    /// Rolled forward: the operation fully took effect.
    PostOp,
}

/// Outcome of one power-cut replay.
#[derive(Debug, Clone)]
pub struct BoundaryCase {
    /// The boundary the power was cut at (0 = nothing from the op durable).
    pub boundary: u64,
    /// Snapshot the recovered tree matched.
    pub state: RecoveredState,
    /// Objects the post-crash recovery reclaimed (allocated but
    /// unreachable on the crash image; reclaiming them is correct).
    pub reclaimed: u64,
}

/// Outcome of one injected-ENOSPC replay.
#[derive(Debug, Clone)]
pub struct EnospcCase {
    /// 1-based index of the allocation that failed.
    pub k: u64,
    /// Rendered error the operation returned.
    pub error: String,
    /// Snapshot the tree matched after the failed operation.
    pub state: RecoveredState,
}

/// The full matrix result for one scripted operation.
#[derive(Debug, Clone, Default)]
pub struct OpMatrix {
    /// Operation label.
    pub op: String,
    /// Total persistence boundaries the recorded run crossed.
    pub boundaries: u64,
    /// Boundary replays actually run (== `boundaries + 1` when uncapped:
    /// every cut point plus the complete-run anchor).
    pub cases: Vec<BoundaryCase>,
    /// First boundary whose recovery rolled *forward* (the commit point).
    pub commit_point: Option<u64>,
    /// Allocation attempts the recorded run performed.
    pub allocs: u64,
    /// Injected-ENOSPC replays.
    pub enospc: Vec<EnospcCase>,
    /// True when a cap skipped some middle boundaries.
    pub capped: bool,
    /// Invariant violations; empty means every replay recovered correctly.
    pub failures: Vec<String>,
    /// Flight recorder: the most recent trace events per thread (rendered
    /// via [`crate::obs`]), captured when a replay failed. Empty for clean
    /// matrices.
    pub trace: Vec<String>,
}

/// Trace events per thread the flight recorder keeps when a cell fails.
pub const FLIGHT_EVENTS: usize = 64;

impl OpMatrix {
    /// True when every replay satisfied every invariant.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The seven scripted operations of the paper's protocol table: `create`,
/// `unlink`, same- and cross-directory `rename`, `append`, shrinking
/// `truncate` and `symlink`.
pub fn scripted_ops() -> Vec<OpSpec> {
    fn base_setup(fs: &SimurghFs, ctx: &ProcCtx) {
        fs.mkdir(ctx, "/d", FileMode::dir(0o755)).expect("setup mkdir /d");
        for i in 0..3 {
            fs.write_file(ctx, &format!("/d/f{i}"), format!("hello-{i}").as_bytes())
                .expect("setup file");
        }
    }
    fn cross_setup(fs: &SimurghFs, ctx: &ProcCtx) {
        base_setup(fs, ctx);
        fs.mkdir(ctx, "/e", FileMode::dir(0o755)).expect("setup mkdir /e");
    }
    fn big_setup(fs: &SimurghFs, ctx: &ProcCtx) {
        base_setup(fs, ctx);
        fs.write_file(ctx, "/d/big", &[0xb5; 10_000]).expect("setup big file");
    }

    vec![
        OpSpec {
            name: "create",
            setup: base_setup,
            op: |fs, ctx| {
                let fd = fs.create(ctx, "/d/new", FileMode::default())?;
                fs.close(ctx, fd)
            },
        },
        OpSpec {
            name: "unlink",
            setup: base_setup,
            op: |fs, ctx| fs.unlink(ctx, "/d/f1"),
        },
        OpSpec {
            name: "rename-samedir",
            setup: base_setup,
            op: |fs, ctx| fs.rename(ctx, "/d/f1", "/d/r1"),
        },
        OpSpec {
            name: "rename-crossdir",
            setup: cross_setup,
            op: |fs, ctx| fs.rename(ctx, "/d/f1", "/e/r1"),
        },
        OpSpec {
            name: "append",
            setup: base_setup,
            op: |fs, ctx| {
                let fd = fs.open(ctx, "/d/f1", OpenFlags::WRONLY, FileMode::default())?;
                let st = fs.fstat(ctx, fd)?;
                let mut done = 0usize;
                let data = [0xa7u8; 6000];
                while done < data.len() {
                    done += fs.pwrite(ctx, fd, &data[done..], st.size + done as u64)?;
                }
                fs.fsync(ctx, fd)?;
                fs.close(ctx, fd)
            },
        },
        OpSpec {
            name: "truncate-shrink",
            setup: big_setup,
            op: |fs, ctx| {
                let fd = fs.open(ctx, "/d/big", OpenFlags::WRONLY, FileMode::default())?;
                fs.ftruncate(ctx, fd, 100)?;
                fs.close(ctx, fd)
            },
        },
        OpSpec {
            name: "symlink",
            setup: base_setup,
            op: |fs, ctx| fs.symlink(ctx, "/d/f0", "/d/link"),
        },
    ]
}

/// The compaction op as a spec: setup builds one deliberately fragmented
/// file (interleaved appends against a decoy so the tail can never extend
/// in place), the op is one bounded online-compaction pass. Not part of
/// [`scripted_ops`] — relocation is *invisible* to the tree (same paths,
/// sizes and bytes before and after), so the generic pre≠post machinery
/// cannot discriminate it; [`run_compact_matrix`] and the kill-9 harness
/// drive it with an extent-map witness instead.
pub fn compact_spec() -> OpSpec {
    OpSpec {
        name: "compact",
        setup: |fs, ctx| {
            fs.mkdir(ctx, "/d", FileMode::dir(0o755)).expect("setup mkdir /d");
            let a = fs
                .open(ctx, "/d/frag", OpenFlags::CREATE, FileMode::default())
                .expect("setup open frag");
            let b = fs
                .open(ctx, "/d/decoy", OpenFlags::CREATE, FileMode::default())
                .expect("setup open decoy");
            let chunk = vec![0xc4u8; 4096];
            for i in 0..4u64 {
                fs.pwrite(ctx, a, &chunk, i * 4096).expect("setup pwrite frag");
                fs.pwrite(ctx, b, &chunk, i * 4096).expect("setup pwrite decoy");
            }
            fs.close(ctx, a).expect("setup close");
            fs.close(ctx, b).expect("setup close");
        },
        op: |fs, _ctx| {
            let (files, _blocks) = fs.compact(usize::MAX);
            if files == 0 {
                return Err(simurgh_fsapi::FsError::Corrupt("compaction moved nothing"));
            }
            Ok(())
        },
    }
}

/// Extent map of one file: `(start, len)` rows in logical order — the
/// witness [`run_compact_matrix`] discriminates old-vs-new layouts with.
pub(crate) fn extent_map_of(
    fs: &SimurghFs,
    ctx: &ProcCtx,
    path: &str,
) -> Result<Vec<(u64, u64)>, String> {
    let st = fs.stat(ctx, path).map_err(|e| format!("stat {path}: {e}"))?;
    let ino = crate::obj::inode::Inode(simurgh_pmem::PPtr::new(st.ino));
    let mut v = Vec::new();
    crate::file::for_each_extent(fs.region(), ino, |_, e| v.push((e.start, e.len)));
    Ok(v)
}

/// The compaction crash sweep: power-cut at every persistence boundary of
/// one relocation pass, then assert after recovery that
///
/// * fsck is clean and the tree (paths, sizes, **bytes**) is untouched,
/// * the relocated file's extent map is exactly the old layout or exactly
///   the new one — never a mixture (the relocation-journal guarantee),
/// * the flip old→new happens once, at the map-swap commit point,
/// * nothing leaks: a second idle crash-recovery reclaims zero objects.
pub fn run_compact_matrix(cap: Option<u64>) -> OpMatrix {
    let mut m = run_compact_matrix_inner(cap);
    if !m.failures.is_empty() {
        m.trace = crate::obs::flight_dump(FLIGHT_EVENTS);
    }
    m
}

fn run_compact_matrix_inner(cap: Option<u64>) -> OpMatrix {
    let ctx = ProcCtx::root(1);
    let spec = compact_spec();
    let mut m = OpMatrix { op: spec.name.to_owned(), ..OpMatrix::default() };

    // Reference tree (compaction never changes it) and the two reference
    // extent layouts. Setup and op are single-threaded and deterministic,
    // so every replay reproduces the same old and new block placement.
    let (tree, old_map) = {
        let fs = fresh(&spec, &ctx);
        let r = crash_remount(&fs).and_then(|(fs2, _)| {
            Ok((state_of(&fs2)?, extent_map_of(&fs2, &ctx, "/d/frag")?))
        });
        match r {
            Ok(x) => x,
            Err(e) => {
                m.failures.push(format!("pre-op snapshot: {e}"));
                return m;
            }
        }
    };
    let new_map = {
        let fs = fresh(&spec, &ctx);
        if let Err(e) = (spec.op)(&fs, &ctx) {
            m.failures.push(format!("post-op reference run failed: {e}"));
            return m;
        }
        match crash_remount(&fs).and_then(|(fs2, _)| extent_map_of(&fs2, &ctx, "/d/frag")) {
            Ok(x) => x,
            Err(e) => {
                m.failures.push(format!("post-op snapshot: {e}"));
                return m;
            }
        }
    };
    if old_map.len() < 2 {
        m.failures.push(format!("setup failed to fragment: old map {old_map:?}"));
        return m;
    }
    if new_map.len() != 1 {
        m.failures.push(format!("compaction failed to merge: new map {new_map:?}"));
        return m;
    }

    // Recorded run: count the pass's persistence boundaries.
    {
        let fs = fresh(&spec, &ctx);
        fs.region().arm_faults(FaultPlan::record());
        if let Err(e) = (spec.op)(&fs, &ctx) {
            m.failures.push(format!("recording run failed: {e}"));
            return m;
        }
        m.boundaries = fs.region().fence_count();
    }

    let (samples, capped) = sample_boundaries(m.boundaries, cap);
    m.capped = capped;
    for i in samples {
        let label = format!("compact @boundary {i}");
        let fs = fresh(&spec, &ctx);
        fs.region().arm_faults(FaultPlan::cut_after(i));
        if let Err(e) = (spec.op)(&fs, &ctx) {
            m.failures.push(format!("{label}: volatile replay failed: {e}"));
            continue;
        }
        if (i < m.boundaries) != fs.region().powercut_tripped() {
            m.failures.push(format!("{label}: power cut did not fire as planned"));
            continue;
        }
        let (fs2, reclaimed) = match crash_remount(&fs) {
            Ok(x) => x,
            Err(e) => {
                m.failures.push(format!("{label}: {e}"));
                continue;
            }
        };
        // Tree: identical before and after — pass the same snapshot for
        // both sides; verify_recovered also runs fsck and the idle-crash
        // convergence (zero-leak) witness.
        if verify_recovered(&fs2, &tree, &tree, &label, &mut m.failures).is_none() {
            continue;
        }
        let got_map = match extent_map_of(&fs2, &ctx, "/d/frag") {
            Ok(x) => x,
            Err(e) => {
                m.failures.push(format!("{label}: {e}"));
                continue;
            }
        };
        let state = if got_map == old_map {
            RecoveredState::PreOp
        } else if got_map == new_map {
            RecoveredState::PostOp
        } else {
            m.failures.push(format!(
                "{label}: recovered extent map is a mixture:\n  got {got_map:?}\n  \
                 old {old_map:?}\n  new {new_map:?}"
            ));
            continue;
        };
        m.cases.push(BoundaryCase { boundary: i, state, reclaimed });
    }

    m.commit_point = m
        .cases
        .iter()
        .find(|c| c.state == RecoveredState::PostOp)
        .map(|c| c.boundary);
    match m.commit_point {
        None => m.failures.push("compact: no boundary rolled forward".into()),
        Some(cp) => {
            for c in &m.cases {
                let want =
                    if c.boundary < cp { RecoveredState::PreOp } else { RecoveredState::PostOp };
                if c.state != want {
                    m.failures.push(format!(
                        "compact: non-monotone recovery at boundary {} (commit point {cp}, got {:?})",
                        c.boundary, c.state
                    ));
                }
            }
        }
    }

    m
}

// ---------------------------------------------------------------------------
// Tree states
// ---------------------------------------------------------------------------

/// A recovered tree with content: `(path, kind, size, content hash)` rows.
/// Content comes from `read_file` for files and `readlink` for symlinks, so
/// a crash that tears file bytes (not just structure) is caught.
type TreeState = Vec<(String, FileType, u64, u64)>;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn state_of(fs: &SimurghFs) -> Result<TreeState, String> {
    let ctx = ProcCtx::root(7);
    let tree = fs.snapshot_tree(&ctx, "/").map_err(|e| format!("snapshot walk: {e}"))?;
    tree.into_iter()
        .map(|(path, ftype, size)| {
            let hash = match ftype {
                FileType::Regular => {
                    fnv1a(&fs.read_file(&ctx, &path).map_err(|e| format!("read {path}: {e}"))?)
                }
                FileType::Symlink => fnv1a(
                    fs.readlink(&ctx, &path).map_err(|e| format!("readlink {path}: {e}"))?.as_bytes(),
                ),
                _ => 0,
            };
            Ok((path, ftype, size, hash))
        })
        .collect()
}

// ---------------------------------------------------------------------------
// The driver
// ---------------------------------------------------------------------------

fn matrix_config() -> SimurghConfig {
    // A fixed segment count keeps the recorded boundary sequence identical
    // across record and replay regardless of the host's core count.
    SimurghConfig { segments: Some(4), ..SimurghConfig::default() }
}

fn fresh(spec: &OpSpec, ctx: &ProcCtx) -> SimurghFs {
    let region = Arc::new(PmemRegion::new_tracked(REGION_BYTES));
    let fs = SimurghFs::format(region, matrix_config()).expect("format tracked region");
    (spec.setup)(&fs, ctx);
    fs
}

/// Crash `fs` now and remount through recovery; returns the recovered fs
/// and its reclaimed-object count.
fn crash_remount(fs: &SimurghFs) -> Result<(SimurghFs, u64), String> {
    // Quiesce first: the per-thread refill cache and tail reservation are
    // claimed-but-unreachable *by design* (bounded, reclaimed by any
    // recovery — the group-commit tests assert that separately). Draining
    // them keeps the reclaimed-object witness focused on protocol garbage.
    fs.quiesce_thread_caches();
    let image = Arc::new(fs.region().simulate_crash());
    let fs2 = SimurghFs::mount(image, matrix_config()).map_err(|e| format!("recovery mount: {e}"))?;
    let reclaimed = fs2.recovery_report().reclaimed_objects;
    Ok((fs2, reclaimed))
}

/// Post-recovery invariants shared by every replay: fsck comes back clean,
/// the tree matches pre or post, and a second crash with no operations in
/// between reclaims nothing and reproduces the same tree (convergence — the
/// "no leaked block / no unreachable-but-allocated object" witness).
fn verify_recovered(
    fs: &SimurghFs,
    pre: &TreeState,
    post: &TreeState,
    label: &str,
    failures: &mut Vec<String>,
) -> Option<RecoveredState> {
    let fsck = check::check(fs, true);
    if !fsck.is_clean() {
        for v in &fsck.violations {
            failures.push(format!("{label}: fsck at {:?}: {}", v.at, v.what));
        }
        return None;
    }
    let got = match state_of(fs) {
        Ok(s) => s,
        Err(e) => {
            failures.push(format!("{label}: unreadable recovered tree: {e}"));
            return None;
        }
    };
    let state = if &got == pre {
        RecoveredState::PreOp
    } else if &got == post {
        RecoveredState::PostOp
    } else {
        failures.push(format!(
            "{label}: recovered tree matches neither snapshot:\n  got  {got:?}\n  pre  {pre:?}\n  post {post:?}"
        ));
        return None;
    };
    match crash_remount(fs) {
        Ok((fs3, reclaimed)) => {
            if reclaimed != 0 {
                failures.push(format!(
                    "{label}: second recovery reclaimed {reclaimed} objects — the first left garbage"
                ));
            }
            match state_of(&fs3) {
                Ok(s2) if s2 == got => {}
                Ok(_) => failures.push(format!("{label}: tree changed across an idle crash")),
                Err(e) => failures.push(format!("{label}: second recovery unreadable: {e}")),
            }
            if !check::check(&fs3, true).is_clean() {
                failures.push(format!("{label}: fsck dirty after second recovery"));
            }
        }
        Err(e) => failures.push(format!("{label}: second recovery failed: {e}")),
    }
    Some(state)
}

/// Boundaries to replay: all of `0..=n`, or a head+tail window of `cap`
/// when the protocol is longer (tier-1 smoke mode). The window always
/// includes boundary 0 and the complete-run anchor `n`.
fn sample_boundaries(n: u64, cap: Option<u64>) -> (Vec<u64>, bool) {
    let total = n + 1;
    match cap {
        Some(c) if total > c => {
            let head = c.div_ceil(2);
            let tail = c - head;
            let mut v: Vec<u64> = (0..head).collect();
            v.extend((total - tail)..total);
            (v, true)
        }
        _ => ((0..total).collect(), false),
    }
}

/// Runs the full matrix for one scripted operation.
///
/// `cap` bounds the number of power-cut replays (head+tail sampling);
/// `None` enumerates every boundary.
pub fn run_op_matrix(spec: &OpSpec, cap: Option<u64>) -> OpMatrix {
    let mut m = run_op_matrix_inner(spec, cap);
    if !m.failures.is_empty() {
        // Flight recorder: attach the tail of every thread's trace ring so
        // the failure report shows what the code was doing at the end.
        m.trace = crate::obs::flight_dump(FLIGHT_EVENTS);
    }
    m
}

fn run_op_matrix_inner(spec: &OpSpec, cap: Option<u64>) -> OpMatrix {
    let ctx = ProcCtx::root(1);
    let mut m = OpMatrix { op: spec.name.to_owned(), ..OpMatrix::default() };

    // Reference snapshots, both taken through the same crash+recover
    // pipeline the replays use.
    let pre = {
        let fs = fresh(spec, &ctx);
        match crash_remount(&fs).and_then(|(fs2, _)| state_of(&fs2)) {
            Ok(s) => s,
            Err(e) => {
                m.failures.push(format!("pre-op snapshot: {e}"));
                return m;
            }
        }
    };
    let post = {
        let fs = fresh(spec, &ctx);
        if let Err(e) = (spec.op)(&fs, &ctx) {
            m.failures.push(format!("post-op reference run failed: {e}"));
            return m;
        }
        match crash_remount(&fs).and_then(|(fs2, _)| state_of(&fs2)) {
            Ok(s) => s,
            Err(e) => {
                m.failures.push(format!("post-op snapshot: {e}"));
                return m;
            }
        }
    };
    if pre == post {
        m.failures.push("op is invisible: pre and post snapshots are identical".into());
        return m;
    }

    // Recorded run: count boundaries and allocation attempts.
    {
        let fs = fresh(spec, &ctx);
        fs.alloc_faults().arm_recording();
        fs.region().arm_faults(FaultPlan::record());
        if let Err(e) = (spec.op)(&fs, &ctx) {
            m.failures.push(format!("recording run failed: {e}"));
            return m;
        }
        m.boundaries = fs.region().fence_count();
        m.allocs = fs.alloc_faults().observed();
        fs.alloc_faults().disarm();
    }

    // Power-cut replays.
    let (samples, capped) = sample_boundaries(m.boundaries, cap);
    m.capped = capped;
    for i in samples {
        let label = format!("{} @boundary {i}", spec.name);
        let fs = fresh(spec, &ctx);
        fs.region().arm_faults(FaultPlan::cut_after(i));
        // The volatile run completes; only its first `i` fences are durable.
        if let Err(e) = (spec.op)(&fs, &ctx) {
            m.failures.push(format!("{label}: volatile replay failed: {e}"));
            continue;
        }
        if (i < m.boundaries) != fs.region().powercut_tripped() {
            m.failures.push(format!("{label}: power cut did not fire as planned"));
            continue;
        }
        let (fs2, reclaimed) = match crash_remount(&fs) {
            Ok(x) => x,
            Err(e) => {
                m.failures.push(format!("{label}: {e}"));
                continue;
            }
        };
        if let Some(state) = verify_recovered(&fs2, &pre, &post, &label, &mut m.failures) {
            m.cases.push(BoundaryCase { boundary: i, state, reclaimed });
        }
    }

    // Roll-back before the commit point, roll-forward after it — exactly
    // one flip, anchored by PreOp at boundary 0 and PostOp at the end.
    m.commit_point = m
        .cases
        .iter()
        .find(|c| c.state == RecoveredState::PostOp)
        .map(|c| c.boundary);
    match m.commit_point {
        None => m.failures.push(format!("{}: no boundary rolled forward", spec.name)),
        Some(cp) => {
            for c in &m.cases {
                let want =
                    if c.boundary < cp { RecoveredState::PreOp } else { RecoveredState::PostOp };
                if c.state != want {
                    m.failures.push(format!(
                        "{}: non-monotone recovery at boundary {} (commit point {cp}, got {:?})",
                        spec.name, c.boundary, c.state
                    ));
                }
            }
        }
    }

    // ENOSPC replays: fail each allocation attempt in turn.
    for k in 1..=m.allocs {
        let label = format!("{} enospc@{k}", spec.name);
        let fs = fresh(spec, &ctx);
        fs.alloc_faults().arm_at(k);
        let res = (spec.op)(&fs, &ctx);
        fs.alloc_faults().disarm();
        let err = match res {
            Err(e) if e.is_injected() => e,
            Err(e) => {
                m.failures.push(format!("{label}: surfaced as organic error {e}"));
                continue;
            }
            Ok(()) => {
                m.failures.push(format!("{label}: op succeeded despite injected fault"));
                continue;
            }
        };
        if let Some(state) = verify_recovered(&fs, &pre, &post, &label, &mut m.failures) {
            if state != RecoveredState::PreOp {
                m.failures.push(format!("{label}: failed op left a partial result"));
                continue;
            }
            m.enospc.push(EnospcCase { k, error: err.to_string(), state });
        }
    }

    m
}

/// Runs [`run_op_matrix`] for every scripted operation.
pub fn run_matrix(cap: Option<u64>) -> Vec<OpMatrix> {
    scripted_ops().iter().map(|s| run_op_matrix(s, cap)).collect()
}

/// Persistence-cost profile of one scripted operation: counter deltas
/// across the op alone (setup excluded) on a fresh deterministic region.
/// This is the group-commit ledger — fences issued, fences absorbed by an
/// active [`simurgh_pmem::FenceScope`], and allocator round trips.
#[derive(Debug, Clone, Default)]
pub struct OpCosts {
    /// Operation label (same vocabulary as [`OpMatrix::op`]).
    pub op: String,
    /// `sfence` boundaries the op crossed.
    pub fences: u64,
    /// Fence requests absorbed by group-commit scopes during the op.
    pub fences_elided: u64,
    /// Metadata-allocator round trips to the shared pools.
    pub pool_trips: u64,
    /// Block-allocator segment-lock round trips.
    pub seg_trips: u64,
}

/// Measures [`OpCosts`] for every scripted op, in [`scripted_ops`] order.
/// Deterministic: same fixed-segment config the crash matrix records with.
pub fn probe_costs() -> Vec<OpCosts> {
    let ctx = ProcCtx::root(1);
    scripted_ops()
        .iter()
        .map(|spec| {
            let fs = fresh(spec, &ctx);
            let s0 = fs.region().stats().snapshot();
            let p0 = fs.meta_alloc().pool_trips();
            let g0 = fs.block_alloc().seg_trips();
            (spec.op)(&fs, &ctx).expect("cost probe op");
            let d = fs.region().stats().snapshot().since(&s0);
            OpCosts {
                op: spec.name.to_owned(),
                fences: d.fences,
                fences_elided: d.fences_elided,
                pool_trips: fs.meta_alloc().pool_trips() - p0,
                seg_trips: fs.block_alloc().seg_trips() - g0,
            }
        })
        .collect()
}

/// Test support: a spec whose op makes no durable change, so the matrix
/// deterministically fails its pre≠post sanity check — used to assert the
/// failure path (flight-recorder attachment) without planting a real bug.
#[doc(hidden)]
pub fn failing_spec_for_tests() -> OpSpec {
    OpSpec {
        name: "noop-injected-failure",
        setup: |fs, ctx| {
            fs.mkdir(ctx, "/d", FileMode::dir(0o755)).expect("setup mkdir /d");
        },
        op: |fs, ctx| fs.stat(ctx, "/d").map(|_| ()),
    }
}

// ---------------------------------------------------------------------------
// JSON report
// ---------------------------------------------------------------------------

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders matrix results as the `crashlab matrix --json` report (one JSON
/// object; see EXPERIMENTS.md for the schema).
pub fn to_json(results: &[OpMatrix]) -> String {
    let ops: Vec<String> = results
        .iter()
        .map(|m| {
            let cases: Vec<String> = m
                .cases
                .iter()
                .map(|c| {
                    format!(
                        "{{\"boundary\":{},\"state\":{},\"reclaimed\":{}}}",
                        c.boundary,
                        json_str(match c.state {
                            RecoveredState::PreOp => "pre",
                            RecoveredState::PostOp => "post",
                        }),
                        c.reclaimed
                    )
                })
                .collect();
            let enospc: Vec<String> = m
                .enospc
                .iter()
                .map(|c| format!("{{\"k\":{},\"error\":{}}}", c.k, json_str(&c.error)))
                .collect();
            let failures: Vec<String> = m.failures.iter().map(|f| json_str(f)).collect();
            let trace: Vec<String> = m.trace.iter().map(|t| json_str(t)).collect();
            format!(
                "{{\"op\":{},\"boundaries\":{},\"commit_point\":{},\"capped\":{},\
                 \"allocs\":{},\"cases\":[{}],\"enospc\":[{}],\"failures\":[{}],\
                 \"trace\":[{}]}}",
                json_str(&m.op),
                m.boundaries,
                m.commit_point.map_or("null".to_owned(), |c| c.to_string()),
                m.capped,
                m.allocs,
                cases.join(","),
                enospc.join(","),
                failures.join(","),
                trace.join(",")
            )
        })
        .collect();
    let unrecoverable: usize = results.iter().map(|m| m.failures.len()).sum();
    format!(
        "{{\"region_bytes\":{},\"unrecoverable\":{},\"ops\":[{}]}}",
        REGION_BYTES,
        unrecoverable,
        ops.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_survives_every_boundary() {
        let ops = scripted_ops();
        let spec = ops.iter().find(|s| s.name == "create").unwrap();
        let m = run_op_matrix(spec, None);
        assert!(m.is_clean(), "{:#?}", m.failures);
        assert!(m.boundaries > 1, "create crosses multiple fences");
        assert_eq!(m.cases.len() as u64, m.boundaries + 1);
        assert!(m.commit_point.is_some());
        assert!(m.allocs > 0 && m.enospc.len() as u64 == m.allocs);
    }

    #[test]
    fn compaction_survives_every_boundary() {
        let m = run_compact_matrix(None);
        assert!(m.is_clean(), "{:#?}", m.failures);
        assert!(m.boundaries > 1, "a relocation crosses multiple fences");
        assert_eq!(m.cases.len() as u64, m.boundaries + 1);
        let cp = m.commit_point.expect("relocation has a commit point");
        assert!(cp > 0, "boundary 0 must roll back to the old layout");
    }

    #[test]
    fn capped_sampling_keeps_both_anchors() {
        let (v, capped) = sample_boundaries(10, Some(4));
        assert!(capped);
        assert_eq!(v, vec![0, 1, 9, 10]);
        let (v, capped) = sample_boundaries(3, Some(8));
        assert!(!capped);
        assert_eq!(v, vec![0, 1, 2, 3]);
    }

    #[test]
    fn failing_cell_attaches_flight_recorder() {
        let m = run_op_matrix(&failing_spec_for_tests(), Some(2));
        assert!(!m.is_clean(), "the no-op spec must fail the pre≠post check");
        assert!(!m.trace.is_empty(), "flight-recorder dump missing on failure");
        let j = to_json(std::slice::from_ref(&m));
        assert!(j.contains("\"trace\":[\""), "dump missing from the JSON report");
    }

    #[test]
    fn clean_matrix_has_no_flight_dump() {
        let ops = scripted_ops();
        let spec = ops.iter().find(|s| s.name == "create").unwrap();
        let m = run_op_matrix(spec, Some(2));
        assert!(m.is_clean(), "{:#?}", m.failures);
        assert!(m.trace.is_empty(), "clean runs must not carry a dump");
    }

    #[test]
    fn probe_costs_prints_current_persistence_profile() {
        for c in probe_costs() {
            println!(
                "BASELINE {}: fences={} elided={} pool_trips={} seg_trips={}",
                c.op, c.fences, c.fences_elided, c.pool_trips, c.seg_trips
            );
            assert!(c.fences > 0, "{} crossed no fence", c.op);
        }
    }

    #[test]
    fn json_report_is_well_formed_enough() {
        let ops = scripted_ops();
        let spec = ops.iter().find(|s| s.name == "symlink").unwrap();
        let m = run_op_matrix(spec, Some(4));
        assert!(m.is_clean(), "{:#?}", m.failures);
        let j = to_json(std::slice::from_ref(&m));
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"unrecoverable\":0"));
        assert!(j.contains("\"op\":\"symlink\""));
    }
}
