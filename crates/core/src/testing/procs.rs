//! Multi-process `kill -9` recovery harness (`crashlab procs`).
//!
//! The crash matrix ([`super::matrix`]) proves crash consistency against
//! *power failure*: the media image is frozen at a fence and everything
//! after it is discarded. A `kill -9` is a different fault: the process
//! loses its DRAM (volatile caches, lock ownership, attach count) but every
//! store it already issued to the `MAP_SHARED` region file **stays visible**
//! to the surviving processes. This harness exercises exactly that fault:
//!
//! 1. The driver formats a region *file*, populates it, and spawns `N` real
//!    OS processes (via a caller-supplied spawner, so the libtest binary and
//!    `crashlab` reuse one driver). Every worker maps the same file and
//!    joins the mount group through [`crate::fs::SimurghFs::mount_shared`].
//! 2. Phase gates live in the region itself (the [`crate::shared::O_SCRATCH`]
//!    words) — the harness needs no IPC beyond the file. Once everyone is
//!    attached, the victim (slot 0) plants a sentinel **busy line** (a held
//!    line lock in `/sent`, the thing only a peer's timeout-steal can free),
//!    then runs one scripted op from [`super::matrix::scripted_ops`] with a
//!    fence hook armed to `SIGKILL` itself at a scripted persistence
//!    boundary. Boundary counts are measured beforehand on a scratch heap
//!    region; if the live run crosses fewer fences than scripted, the victim
//!    falls back to killing itself right after the op — either way it dies
//!    by signal 9, never a clean exit (the driver asserts the wait status).
//! 3. The survivors then write colliding names into the sentinel line. Each
//!    must observe the victim's stale busy flag, time out, repair and steal
//!    it ([`crate::obs::EventKind::LockSteal`] in *their* trace ring — the
//!    decentralized-recovery witness), and complete its own workload.
//! 4. Finally the driver takes an exclusive [`crate::fs::SimurghFs::mount`]
//!    of the file (full recovery: the killed process leaked its attach
//!    count, so the region is unclean) and asserts convergence: fsck clean,
//!    a second recovery reclaims nothing, and the tree and used-block count
//!    are identical across the two recoveries — no leaked block survives.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use simurgh_fsapi::{FileMode, FileSystem, FsResult, ProcCtx};
use simurgh_pmem::{FaultPlan, PPtr, PmemRegion, RegionBuilder};

use crate::check;
use crate::fs::{SimurghConfig, SimurghFs};
use crate::obs::{self, EventKind};
use crate::shared;
use crate::testing::{colliding_name, crash_holding_line};

use super::matrix::{compact_spec, extent_map_of, scripted_ops, OpSpec};

/// Region-file size: matches the matrix so boundary counts are comparable.
const REGION_BYTES: usize = 8 << 20;

/// Directory the victim's sentinel busy line lives in.
const SENT_DIR: &str = "/sent";
/// Name hashed to pick the sentinel line.
const SENT_NAME: &str = "victim";

/// Ops the tier-1 smoke matrix runs (a structural sample of the seven).
pub const DEFAULT_OPS: &[&str] = &["create", "unlink", "append"];

/// Every op the harness can kill a victim inside: the scripted matrix ops
/// plus the online-compaction pass. `compact` is deliberately absent from
/// [`scripted_ops`] (relocation is tree-invisible, so the generic pre≠post
/// machinery cannot witness it); here the cell adds an extent-map witness
/// on the relocated file instead.
fn known_specs() -> Vec<OpSpec> {
    let mut specs = scripted_ops();
    specs.push(compact_spec());
    specs
}

// Environment protocol between driver and worker processes.
pub const ENV_ROLE: &str = "SIMURGH_PROCS_ROLE";
pub const ENV_FILE: &str = "SIMURGH_PROCS_FILE";
pub const ENV_OP: &str = "SIMURGH_PROCS_OP";
pub const ENV_KILL_FENCE: &str = "SIMURGH_PROCS_KILL_FENCE";
pub const ENV_SLOT: &str = "SIMURGH_PROCS_SLOT";

/// Harness phase gate (parent-advanced) at [`shared::O_SCRATCH`].
const O_PHASE: u64 = shared::O_SCRATCH;
/// Worker ready counter at `O_SCRATCH + 8`.
const O_READY: u64 = shared::O_SCRATCH + 8;

/// Phase values: 0 = booting, 1 = all attached (victim may run and die),
/// 2 = victim confirmed dead (survivors steal and report).
const PHASE_RUN: u64 = 1;
const PHASE_STEAL: u64 = 2;

/// How long the driver waits for all workers to attach.
const ATTACH_WAIT: Duration = Duration::from_secs(60);
/// How long a worker waits on a phase gate before giving up (exit 3).
const PHASE_WAIT: Duration = Duration::from_secs(120);

fn procs_config() -> SimurghConfig {
    // Fixed segments keep scratch-measured boundary counts host-independent;
    // a short line hold keeps the survivors' timeout-steal quick.
    SimurghConfig {
        segments: Some(4),
        line_max_hold: Duration::from_millis(15),
        ..SimurghConfig::default()
    }
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

static KILL_ARMED: AtomicBool = AtomicBool::new(false);
static KILL_BASE: AtomicU64 = AtomicU64::new(0);
static KILL_AFTER: AtomicU64 = AtomicU64::new(0);

mod sys {
    extern "C" {
        pub fn getpid() -> i32;
        pub fn kill(pid: i32, sig: i32) -> i32;
    }
}

/// `SIGKILL` ourselves: the OS reaps us mid-store like a real crash — no
/// destructors, no unwinding, no flush of anything still in DRAM.
fn die_by_sigkill() -> ! {
    // SAFETY: kill(getpid(), SIGKILL) only targets this process.
    unsafe {
        sys::kill(sys::getpid(), 9);
    }
    // SIGKILL cannot be handled; this is unreachable in practice.
    loop {
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The fence observer the victim installs *before* `mount_shared` (the hook
/// slot is first-set-wins, so installing early beats the mount's own
/// observer). Counts persistence boundaries crossed since arming.
fn kill_hook(fence_no: u64) {
    if !KILL_ARMED.load(Ordering::Acquire) {
        return;
    }
    let since = fence_no.saturating_sub(KILL_BASE.load(Ordering::Acquire));
    if since >= KILL_AFTER.load(Ordering::Acquire) {
        die_by_sigkill();
    }
}

fn wait_phase(region: &PmemRegion, at_least: u64) {
    let phase = region.atomic_u64(PPtr::new(O_PHASE));
    let deadline = Instant::now() + PHASE_WAIT;
    while phase.load(Ordering::Acquire) < at_least {
        if Instant::now() > deadline {
            eprintln!("procs worker: phase {at_least} never arrived");
            std::process::exit(3);
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

fn env_req(key: &str) -> String {
    std::env::var(key).unwrap_or_else(|_| panic!("procs worker: missing {key}"))
}

/// True when this process was spawned as a harness worker (the hidden
/// re-exec entry points gate on this before calling [`worker_main`]).
pub fn is_worker() -> bool {
    std::env::var(ENV_ROLE).is_ok()
}

/// Body of a spawned worker process. Victims die by `SIGKILL`; survivors
/// print one `PROCS_REPORT {...}` line on stdout and exit 0 (4 when their
/// own workload failed, 3 on a phase-gate timeout).
pub fn worker_main() -> ! {
    let role = env_req(ENV_ROLE);
    let file = env_req(ENV_FILE);
    let op_name = env_req(ENV_OP);
    let kill_fence: u64 = env_req(ENV_KILL_FENCE).parse().expect("numeric kill fence");
    let slot: u32 = env_req(ENV_SLOT).parse().expect("numeric slot");

    let specs = known_specs();
    let spec = specs
        .iter()
        .find(|s| s.name == op_name)
        .unwrap_or_else(|| panic!("procs worker: unknown op {op_name}"));

    let region =
        Arc::new(RegionBuilder::open_file(&file).build().expect("map shared region file"));
    if role == "victim" {
        region.set_fence_hook(Box::new(kill_hook));
    }
    let fs = SimurghFs::mount_shared(Arc::clone(&region), procs_config())
        .expect("mount_shared region file");
    region.atomic_u64(PPtr::new(O_READY)).fetch_add(1, Ordering::AcqRel);
    wait_phase(&region, PHASE_RUN);

    if role == "victim" {
        let ctx = ProcCtx::root(1);
        // The sentinel: a line lock only a *peer's* timeout-steal can free.
        crash_holding_line(&fs, SENT_DIR, SENT_NAME);
        if kill_fence == 0 {
            die_by_sigkill();
        }
        KILL_BASE.store(region.stats().snapshot().fences, Ordering::Release);
        KILL_AFTER.store(kill_fence, Ordering::Release);
        KILL_ARMED.store(true, Ordering::Release);
        let _ = (spec.op)(&fs, &ctx);
        // The live run crossed fewer boundaries than scripted (mount state
        // shifted an allocation): die right after the op instead.
        die_by_sigkill();
    }

    // Survivor: wait for the driver to confirm the victim is dead, then
    // steal the sentinel line and prove liveness.
    wait_phase(&region, PHASE_STEAL);
    let ctx = ProcCtx::root(100 + slot);
    let coll = colliding_name(SENT_NAME, &format!("s{slot}-"));
    let sentinel_ok = fs.write_file(&ctx, &format!("{SENT_DIR}/{coll}"), b"stolen").is_ok();
    let own = format!("/p{slot}");
    let ops_ok = (|| -> FsResult<()> {
        fs.mkdir(&ctx, &own, FileMode::dir(0o755))?;
        for i in 0..3 {
            fs.write_file(&ctx, &format!("{own}/f{i}"), b"alive")?;
        }
        assert_eq!(fs.read_file(&ctx, &format!("{own}/f0"))?, b"alive");
        Ok(())
    })()
    .is_ok();
    let events = obs::recent(4096);
    let lock_steals = events.iter().filter(|e| e.kind == EventKind::LockSteal).count();
    let busy_timeouts = events.iter().filter(|e| e.kind == EventKind::BusyTimeout).count();
    println!(
        "PROCS_REPORT {{\"slot\":{slot},\"lock_steals\":{lock_steals},\
         \"busy_timeouts\":{busy_timeouts},\"sentinel_ok\":{sentinel_ok},\
         \"ops_ok\":{ops_ok}}}"
    );
    fs.unmount(); // not last out: the victim leaked its attach count
    std::process::exit(if sentinel_ok && ops_ok { 0 } else { 4 });
}

// ---------------------------------------------------------------------------
// Driver side
// ---------------------------------------------------------------------------

/// How the driver spawns one worker: gets the environment protocol pairs,
/// must return a child running [`worker_main`] with **stdout piped** (the
/// report line is scraped from it). `crashlab` re-execs itself with a hidden
/// subcommand; the test suite re-execs the test binary with `--exact`.
pub type SpawnFn<'a> = &'a dyn Fn(&[(String, String)]) -> std::io::Result<std::process::Child>;

/// Driver options.
pub struct ProcsOpts {
    /// Scripted ops to run (matrix names); empty selects [`DEFAULT_OPS`].
    pub ops: Vec<String>,
    /// Total processes per cell, including the victim (≥ 2).
    pub nprocs: u32,
    /// Max kill points per op (≥ 1; boundary 0 always included).
    pub cap: u64,
    /// Directory for region files; `None` uses the system temp dir.
    pub dir: Option<PathBuf>,
}

impl Default for ProcsOpts {
    fn default() -> Self {
        ProcsOpts { ops: Vec::new(), nprocs: 2, cap: 2, dir: None }
    }
}

/// One survivor's scraped report line.
#[derive(Debug, Clone)]
pub struct SurvivorReport {
    pub slot: u32,
    pub lock_steals: u64,
    pub busy_timeouts: u64,
    pub sentinel_ok: bool,
    pub ops_ok: bool,
}

/// Outcome of one (op × kill-boundary) cell.
#[derive(Debug, Clone, Default)]
pub struct CellResult {
    pub op: String,
    /// Scripted boundary the victim died at (post-op fallback if the live
    /// run crossed fewer fences).
    pub kill_fence: u64,
    /// Boundaries the op crossed on the scratch measurement run.
    pub boundaries: u64,
    pub nprocs: u32,
    /// The wait status said signal 9 — a real `kill -9`, not an exit.
    pub victim_killed: bool,
    pub survivors: Vec<SurvivorReport>,
    /// Objects the first exclusive recovery reclaimed (victim garbage; any
    /// value is legitimate).
    pub reclaimed_first: u64,
    /// Objects the second recovery reclaimed — must be 0 (convergence).
    pub reclaimed_second: u64,
    /// Invariant violations; empty means the cell passed.
    pub failures: Vec<String>,
}

impl CellResult {
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The whole kill-9 matrix run.
#[derive(Debug, Clone, Default)]
pub struct ProcsReport {
    pub nprocs: u32,
    pub cells: Vec<CellResult>,
}

impl ProcsReport {
    pub fn is_clean(&self) -> bool {
        self.cells.iter().all(|c| c.is_clean())
    }

    pub fn unrecoverable(&self) -> usize {
        self.cells.iter().map(|c| c.failures.len()).sum()
    }
}

/// Kill boundaries for an op that crosses `b` fences: start, middle, end,
/// truncated to `cap` points. A `cap` above 3 adds the quartiles — the
/// compaction cell uses that to land kills *inside* a relocation (between
/// the data copy and the map-swap), not just at its edges.
fn kill_points(b: u64, cap: u64) -> Vec<u64> {
    let mut v = vec![0, b / 2, b];
    if cap > 3 {
        v.push(b / 4);
        v.push(3 * b / 4);
    }
    v.sort_unstable();
    v.dedup();
    v.truncate(cap.max(1) as usize);
    v
}

/// Populates a fresh file system for one cell: the op's scripted setup plus
/// the sentinel directory. Shared by the real region file and the scratch
/// boundary-measurement region so both see the same media layout.
fn populate(fs: &SimurghFs, spec: &OpSpec, ctx: &ProcCtx) {
    (spec.setup)(fs, ctx);
    fs.mkdir(ctx, SENT_DIR, FileMode::dir(0o755)).expect("mkdir sentinel dir");
}

/// Counts the persistence boundaries `spec`'s op crosses, on a scratch heap
/// region with the same config and populate sequence. The victim's live run
/// starts from a remounted (not freshly formatted) image, so the count is a
/// close bound rather than exact — the victim's post-op fallback kill covers
/// the difference.
fn measure_boundaries(spec: &OpSpec) -> u64 {
    let ctx = ProcCtx::root(1);
    let region = Arc::new(PmemRegion::new_tracked(REGION_BYTES));
    let fs = SimurghFs::format(region, procs_config()).expect("format scratch region");
    populate(&fs, spec, &ctx);
    fs.region().arm_faults(FaultPlan::record());
    (spec.op)(&fs, &ctx).expect("measurement run");
    fs.region().fence_count()
}

fn worker_env(path: &Path, role: &str, op: &str, kill_fence: u64, slot: u32) -> Vec<(String, String)> {
    vec![
        (ENV_ROLE.into(), role.into()),
        (ENV_FILE.into(), path.display().to_string()),
        (ENV_OP.into(), op.into()),
        (ENV_KILL_FENCE.into(), kill_fence.to_string()),
        (ENV_SLOT.into(), slot.to_string()),
    ]
}

fn field_u64(json: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let i = json.find(&pat)? + pat.len();
    let rest = &json[i..];
    let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn field_bool(json: &str, key: &str) -> Option<bool> {
    let pat = format!("\"{key}\":");
    let i = json.find(&pat)? + pat.len();
    let rest = &json[i..];
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

fn parse_report(stdout: &str) -> Option<SurvivorReport> {
    // The marker may be mid-line: a libtest worker prints it on the same
    // line as the harness's own "test ... " progress prefix.
    let line = stdout
        .lines()
        .find_map(|l| l.find("PROCS_REPORT ").map(|i| &l[i..]))?;
    Some(SurvivorReport {
        slot: field_u64(line, "slot")? as u32,
        lock_steals: field_u64(line, "lock_steals")?,
        busy_timeouts: field_u64(line, "busy_timeouts")?,
        sentinel_ok: field_bool(line, "sentinel_ok")?,
        ops_ok: field_bool(line, "ops_ok")?,
    })
}

/// The fragmented file's pre-kill `(start, len)` extent map and bytes —
/// the compaction cell's relocation witness.
type FragWitness = (Vec<(u64, u64)>, Vec<u8>);

/// Runs one cell: populate the region file, spawn the process group, kill
/// the victim at `kill_fence`, collect survivor reports, then verify
/// convergence with two exclusive recovery mounts.
fn run_cell(
    spec: &OpSpec,
    boundaries: u64,
    kill_fence: u64,
    nprocs: u32,
    dir: &Path,
    spawn: SpawnFn,
) -> CellResult {
    let mut cell = CellResult {
        op: spec.name.to_owned(),
        kill_fence,
        boundaries,
        nprocs,
        ..CellResult::default()
    };
    let fail = |cell: &mut CellResult, msg: String| cell.failures.push(format!(
        "{} @kill {kill_fence} x{nprocs}: {msg}",
        spec.name
    ));

    let path = dir.join(format!(
        "simurgh-procs-{}-{}-k{kill_fence}-n{nprocs}.img",
        std::process::id(),
        spec.name
    ));
    let _ = std::fs::remove_file(&path);

    // Populate through a private mapping, then unmap before anyone mounts.
    // For the compaction op, also capture the relocation witness: the
    // fragmented file's pre-kill extent map and bytes. After recovery the
    // map must be exactly this old layout or exactly one merged extent —
    // never a mixture — and the bytes must be untouched.
    let mut frag_witness: Option<FragWitness> = None;
    {
        let region = match RegionBuilder::new(REGION_BYTES).file(&path).build() {
            Ok(r) => Arc::new(r),
            Err(e) => {
                fail(&mut cell, format!("create region file: {e}"));
                return cell;
            }
        };
        let ctx = ProcCtx::root(1);
        let fs = match SimurghFs::format(region, procs_config()) {
            Ok(fs) => fs,
            Err(e) => {
                fail(&mut cell, format!("format region file: {e}"));
                return cell;
            }
        };
        populate(&fs, spec, &ctx);
        if spec.name == "compact" {
            let w = extent_map_of(&fs, &ctx, "/d/frag").and_then(|map| {
                let bytes = fs
                    .read_to_vec(&ctx, "/d/frag")
                    .map_err(|e| format!("read witness bytes: {e}"))?;
                Ok((map, bytes))
            });
            match w {
                Ok((map, bytes)) if map.len() >= 2 => frag_witness = Some((map, bytes)),
                Ok((map, _)) => {
                    fail(&mut cell, format!("setup failed to fragment /d/frag: {map:?}"));
                    return cell;
                }
                Err(e) => {
                    fail(&mut cell, format!("capture relocation witness: {e}"));
                    return cell;
                }
            }
        }
        fs.unmount();
    }

    // The monitor mapping: the driver's window onto the phase gate words.
    let monitor = match RegionBuilder::open_file(&path).build() {
        Ok(r) => r,
        Err(e) => {
            fail(&mut cell, format!("map monitor region: {e}"));
            return cell;
        }
    };
    monitor.atomic_u64(PPtr::new(O_PHASE)).store(0, Ordering::Release);
    monitor.atomic_u64(PPtr::new(O_READY)).store(0, Ordering::Release);

    let mut victim = match spawn(&worker_env(&path, "victim", spec.name, kill_fence, 0)) {
        Ok(c) => c,
        Err(e) => {
            fail(&mut cell, format!("spawn victim: {e}"));
            return cell;
        }
    };
    let mut survivors = Vec::new();
    for slot in 1..nprocs {
        match spawn(&worker_env(&path, "survivor", spec.name, kill_fence, slot)) {
            Ok(c) => survivors.push((slot, c)),
            Err(e) => fail(&mut cell, format!("spawn survivor {slot}: {e}")),
        }
    }

    // Barrier: every worker attached (mount_shared done) before the victim
    // is allowed to run — the kill lands mid-op, never mid-mount.
    let ready = monitor.atomic_u64(PPtr::new(O_READY));
    let deadline = Instant::now() + ATTACH_WAIT;
    while ready.load(Ordering::Acquire) < nprocs as u64 {
        if Instant::now() > deadline {
            fail(&mut cell, "workers never attached".into());
            let _ = victim.kill();
            for (_, c) in &mut survivors {
                let _ = c.kill();
            }
            return cell;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    monitor.atomic_u64(PPtr::new(O_PHASE)).store(PHASE_RUN, Ordering::Release);

    // The victim must die by signal 9 — a clean exit means the harness
    // failed to kill a real process mid-op.
    match victim.wait() {
        Ok(status) => {
            #[cfg(unix)]
            {
                use std::os::unix::process::ExitStatusExt;
                cell.victim_killed = status.signal() == Some(9);
            }
            if !cell.victim_killed {
                fail(&mut cell, format!("victim did not die by SIGKILL: {status}"));
            }
        }
        Err(e) => fail(&mut cell, format!("wait victim: {e}")),
    }
    monitor.atomic_u64(PPtr::new(O_PHASE)).store(PHASE_STEAL, Ordering::Release);

    for (slot, child) in survivors {
        match child.wait_with_output() {
            Ok(out) => {
                if !out.status.success() {
                    fail(&mut cell, format!("survivor {slot} exited {}", out.status));
                }
                let stdout = String::from_utf8_lossy(&out.stdout);
                match parse_report(&stdout) {
                    Some(r) => cell.survivors.push(r),
                    None => fail(
                        &mut cell,
                        format!(
                            "survivor {slot} printed no report; stdout: {:?}",
                            &stdout[..stdout.len().min(400)]
                        ),
                    ),
                }
            }
            Err(e) => fail(&mut cell, format!("wait survivor {slot}: {e}")),
        }
    }
    drop(monitor);

    let mut survivor_failures = Vec::new();
    for r in &cell.survivors {
        if !r.sentinel_ok {
            survivor_failures
                .push(format!("survivor {} could not steal the sentinel line", r.slot));
        }
        if !r.ops_ok {
            survivor_failures.push(format!("survivor {} workload failed after the kill", r.slot));
        }
    }
    for msg in survivor_failures {
        fail(&mut cell, msg);
    }
    let steals: u64 = cell.survivors.iter().map(|r| r.lock_steals).sum();
    if cell.victim_killed && steals == 0 {
        fail(&mut cell, "no surviving process traced a lock_steal".into());
    }

    // Convergence: exclusive recovery, then a second one that must find
    // nothing left to do.
    let ctx = ProcCtx::root(1);
    let verdict = (|| -> Result<(), String> {
        let region = Arc::new(
            RegionBuilder::open_file(&path).build().map_err(|e| format!("reopen: {e}"))?,
        );
        let fs = SimurghFs::mount(region, procs_config())
            .map_err(|e| format!("recovery mount: {e}"))?;
        cell.reclaimed_first = fs.recovery_report().reclaimed_objects;
        let used1 = fs.recovery_report().used_blocks;
        let fsck = check::check(&fs, true);
        if !fsck.is_clean() {
            return Err(format!("fsck dirty after recovery: {:?}", fsck.violations));
        }
        let tree1 = fs
            .snapshot_tree(&ctx, "/")
            .map_err(|e| format!("recovered tree unreadable: {e}"))?;
        if let Some((old_map, old_bytes)) = &frag_witness {
            // A committed relocation is by construction one inline extent
            // covering the whole file; anything else must be the untouched
            // old layout (the relocation journal rolled back). A mixture
            // means the map-swap tore across the kill.
            let got = extent_map_of(&fs, &ctx, "/d/frag")?;
            let committed = got.len() == 1 && got[0].1 == old_bytes.len() as u64;
            if &got != old_map && !committed {
                return Err(format!(
                    "relocated extent map is a mixture after kill -9: {got:?} \
                     (old layout {old_map:?})"
                ));
            }
            let now = fs
                .read_to_vec(&ctx, "/d/frag")
                .map_err(|e| format!("read relocated file after recovery: {e}"))?;
            if &now != old_bytes {
                return Err("relocated file bytes changed across kill -9 + recovery".into());
            }
        }
        drop(fs); // no unmount: the file stays unclean for the second pass

        let region2 = Arc::new(
            RegionBuilder::open_file(&path).build().map_err(|e| format!("reopen 2: {e}"))?,
        );
        let fs2 = SimurghFs::mount(region2, procs_config())
            .map_err(|e| format!("second recovery mount: {e}"))?;
        cell.reclaimed_second = fs2.recovery_report().reclaimed_objects;
        if cell.reclaimed_second != 0 {
            return Err(format!(
                "second recovery reclaimed {} objects — the first left garbage",
                cell.reclaimed_second
            ));
        }
        if fs2.recovery_report().used_blocks != used1 {
            return Err(format!(
                "used blocks drifted across idle recoveries: {used1} -> {}",
                fs2.recovery_report().used_blocks
            ));
        }
        let tree2 = fs2
            .snapshot_tree(&ctx, "/")
            .map_err(|e| format!("second recovered tree unreadable: {e}"))?;
        if tree1 != tree2 {
            return Err("tree changed across an idle recovery".into());
        }
        if !check::check(&fs2, true).is_clean() {
            return Err("fsck dirty after second recovery".into());
        }
        fs2.unmount();
        Ok(())
    })();
    if let Err(e) = verdict {
        fail(&mut cell, e);
    }

    let _ = std::fs::remove_file(&path);
    cell
}

/// Runs the kill-9 matrix: for each selected op, measure its boundary
/// count, then run one cell per kill point with `opts.nprocs` processes.
pub fn run_procs(opts: &ProcsOpts, spawn: SpawnFn) -> ProcsReport {
    assert!(opts.nprocs >= 2, "need a victim and at least one survivor");
    let dir = opts.dir.clone().unwrap_or_else(std::env::temp_dir);
    let names: Vec<String> = if opts.ops.is_empty() {
        DEFAULT_OPS.iter().map(|s| s.to_string()).collect()
    } else {
        opts.ops.clone()
    };
    let specs = known_specs();
    let mut report = ProcsReport { nprocs: opts.nprocs, cells: Vec::new() };
    for name in &names {
        let Some(spec) = specs.iter().find(|s| s.name == name.as_str()) else {
            report.cells.push(CellResult {
                op: name.clone(),
                nprocs: opts.nprocs,
                failures: vec![format!("unknown op {name}")],
                ..CellResult::default()
            });
            continue;
        };
        let boundaries = measure_boundaries(spec);
        for k in kill_points(boundaries, opts.cap) {
            report.cells.push(run_cell(spec, boundaries, k, opts.nprocs, &dir, spawn));
        }
    }
    report
}

// ---------------------------------------------------------------------------
// JSON report
// ---------------------------------------------------------------------------

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders the report as the `crashlab procs --json` object (see
/// EXPERIMENTS.md for the schema).
pub fn to_json(report: &ProcsReport) -> String {
    let cells: Vec<String> = report
        .cells
        .iter()
        .map(|c| {
            let survivors: Vec<String> = c
                .survivors
                .iter()
                .map(|s| {
                    format!(
                        "{{\"slot\":{},\"lock_steals\":{},\"busy_timeouts\":{},\
                         \"sentinel_ok\":{},\"ops_ok\":{}}}",
                        s.slot, s.lock_steals, s.busy_timeouts, s.sentinel_ok, s.ops_ok
                    )
                })
                .collect();
            let failures: Vec<String> = c.failures.iter().map(|f| json_str(f)).collect();
            format!(
                "{{\"op\":{},\"kill_fence\":{},\"boundaries\":{},\"nprocs\":{},\
                 \"victim_killed\":{},\"reclaimed_first\":{},\"reclaimed_second\":{},\
                 \"survivors\":[{}],\"failures\":[{}]}}",
                json_str(&c.op),
                c.kill_fence,
                c.boundaries,
                c.nprocs,
                c.victim_killed,
                c.reclaimed_first,
                c.reclaimed_second,
                survivors.join(","),
                failures.join(",")
            )
        })
        .collect();
    format!(
        "{{\"region_bytes\":{},\"nprocs\":{},\"unrecoverable\":{},\"cells\":[{}]}}",
        REGION_BYTES,
        report.nprocs,
        report.unrecoverable(),
        cells.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_points_keep_anchors_and_cap() {
        assert_eq!(kill_points(10, 3), vec![0, 5, 10]);
        assert_eq!(kill_points(10, 2), vec![0, 5]);
        assert_eq!(kill_points(1, 3), vec![0, 1]);
        assert_eq!(kill_points(0, 3), vec![0]);
        // Above three points the quartiles join in — interior kills.
        assert_eq!(kill_points(12, 5), vec![0, 3, 6, 9, 12]);
        assert_eq!(kill_points(12, 4), vec![0, 3, 6, 9]);
    }

    #[test]
    fn compact_is_a_known_op_with_boundaries() {
        let specs = known_specs();
        let spec = specs.iter().find(|s| s.name == "compact").expect("compact spec wired in");
        assert!(
            measure_boundaries(spec) > 1,
            "a relocation pass crosses several persistence boundaries"
        );
    }

    #[test]
    fn report_line_roundtrips() {
        let line = "PROCS_REPORT {\"slot\":3,\"lock_steals\":2,\"busy_timeouts\":1,\
                    \"sentinel_ok\":true,\"ops_ok\":false}";
        let r = parse_report(&format!("noise\n{line}\nmore noise")).expect("parse");
        assert_eq!(r.slot, 3);
        assert_eq!(r.lock_steals, 2);
        assert_eq!(r.busy_timeouts, 1);
        assert!(r.sentinel_ok);
        assert!(!r.ops_ok);
        assert!(parse_report("no report here").is_none());
    }

    #[test]
    fn scripted_boundaries_are_measurable() {
        let specs = scripted_ops();
        for name in DEFAULT_OPS {
            let spec = specs.iter().find(|s| s.name == *name).expect("known op");
            assert!(measure_boundaries(spec) > 0, "{name} crosses at least one fence");
        }
    }

    #[test]
    fn json_report_shape() {
        let report = ProcsReport {
            nprocs: 2,
            cells: vec![CellResult {
                op: "create".into(),
                kill_fence: 3,
                boundaries: 7,
                nprocs: 2,
                victim_killed: true,
                survivors: vec![SurvivorReport {
                    slot: 1,
                    lock_steals: 1,
                    busy_timeouts: 1,
                    sentinel_ok: true,
                    ops_ok: true,
                }],
                reclaimed_first: 2,
                reclaimed_second: 0,
                failures: Vec::new(),
            }],
        };
        assert!(report.is_clean());
        let j = to_json(&report);
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"unrecoverable\":0"));
        assert!(j.contains("\"victim_killed\":true"));
        assert!(j.contains("\"lock_steals\":1"));
    }
}
