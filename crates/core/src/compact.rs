//! Online compaction: relocating fragmented files into contiguous runs.
//!
//! Aging is where NVMM filesystems lose their flatness claims: after enough
//! create/delete/append/truncate churn the free lists splinter, files
//! accumulate extents, and both the walk-steps-per-op and probes-per-op
//! counters drift up. The compactor walks cold files and rewrites each
//! fragmented map onto one freshly allocated contiguous run, using the
//! paper's recovery philosophy instead of a data journal: data is copied
//! and persisted *before* any pointer can reach it, the map swap itself is
//! guarded by a single-slot **relocation journal** in the superblock's
//! reserved bytes, and unreferenced blocks on either side of a crash are
//! reclaimed by the ordinary mark-and-sweep.
//!
//! # Relocation ordering invariant
//!
//! For every relocation, in persist order:
//!
//! 1. **alloc** the new contiguous run (volatile only — a crash here leaves
//!    it unreferenced, the sweep reclaims it);
//! 2. **copy** the file bytes into the run and persist them;
//! 3. **arm** the journal with the *old* map (inline slots + overflow head)
//!    — payload persisted before the ARMED state word;
//! 4. **swap** the map to the single new extent under one [`FenceScope`],
//!    sealed by an eager `commit()`;
//! 5. **clear** the journal (the new map is now the persistent truth);
//! 6. **free** the old data blocks and overflow-chain blocks.
//!
//! A crash before 4's commit lands on the *old* extents (recovery rolls a
//! torn swap back from the journal); a crash after lands on the *new*
//! extent (the old blocks are unreachable and swept). fsck therefore sees
//! exactly old-or-new, never a mixture, and no block leaks either way.
//!
//! [`FenceScope`]: simurgh_pmem::region::FenceScope

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use simurgh_fsapi::FsResult;
use simurgh_pmem::{PPtr, PmemRegion};

use crate::alloc::BlockAlloc;
use crate::file::{self, FileEnv};
use crate::obj::inode::{extblock, Extent, Inode, INLINE_EXTENTS};
use crate::obj::{self, Tag};
use crate::BLOCK_SIZE;

/// The single-slot relocation journal living in the superblock's reserved
/// bytes ([`crate::super_block::O_RELOC`], 1600..2048). One slot suffices:
/// a compactor relocates one file map at a time, and peers contend for the
/// slot with a CAS.
pub mod journal {
    use super::*;
    use crate::super_block::O_RELOC;

    /// State word values. `CLAIMED` is a volatile claim — the payload is
    /// not yet trusted; only `ARMED` (persisted after the payload) makes
    /// recovery roll the map back.
    const IDLE: u64 = 0;
    const CLAIMED: u64 = 1;
    /// "RELOC!!" in LE bytes — never a plausible torn value.
    const ARMED: u64 = 0x2121_434f_4c45_5221;

    const O_STATE: u64 = O_RELOC;
    const O_INO: u64 = O_RELOC + 8;
    const O_EXTENTS: u64 = O_RELOC + 16; // 3 × 16 bytes
    const O_NEXT: u64 = O_RELOC + 64;

    /// Claims the journal and arms it with `ino`'s *current* (old) map.
    /// Returns false when a peer holds the slot — the caller skips the
    /// file rather than waiting. Persist order: payload, then state.
    pub fn arm(r: &PmemRegion, ino: Inode) -> bool {
        let state = r.atomic_u64(PPtr::new(O_STATE));
        if state
            .compare_exchange(IDLE, CLAIMED, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return false;
        }
        r.write(PPtr::new(O_INO), ino.ptr().off());
        for i in 0..INLINE_EXTENTS {
            r.write(PPtr::new(O_EXTENTS + (i as u64) * 16), ino.extent(r, i));
        }
        r.write(PPtr::new(O_NEXT), ino.ext_next(r).off());
        r.persist(PPtr::new(O_INO), 64);
        state.store(ARMED, Ordering::Release);
        r.note_atomic(PPtr::new(O_STATE), 8);
        r.persist_now(PPtr::new(O_STATE), 8);
        true
    }

    /// Disarms the journal after the map swap committed: the relocated map
    /// is the persistent truth, so a crash from here on resolves forward.
    pub fn clear(r: &PmemRegion) {
        r.atomic_u64(PPtr::new(O_STATE)).store(IDLE, Ordering::Release);
        r.note_atomic(PPtr::new(O_STATE), 8);
        r.persist_now(PPtr::new(O_STATE), 8);
    }

    /// Whether the journal currently holds an armed relocation for `ino`.
    /// fsck uses this to tell a relocation-swapped map apart from a crash
    /// hole.
    pub fn armed_for(r: &PmemRegion, ino: Inode) -> bool {
        r.read::<u64>(PPtr::new(O_STATE)) == ARMED
            && r.read::<u64>(PPtr::new(O_INO)) == ino.ptr().off()
    }

    /// Mount-time recovery hook: rolls a crashed mid-swap relocation back
    /// to the journaled old map, then clears the slot (a bare `CLAIMED`
    /// claim is simply dropped — its payload was never trusted). Runs
    /// before the mark phase so the walk sees the restored extents; the
    /// abandoned new run is unreferenced and swept. Returns the number of
    /// rollbacks performed (0 or 1).
    pub fn recover(r: &PmemRegion) -> u64 {
        let state = r.read::<u64>(PPtr::new(O_STATE));
        if state == IDLE {
            return 0;
        }
        let mut rolled = 0;
        if state == ARMED {
            let ip = PPtr::new(r.read(PPtr::new(O_INO)));
            let valid = r.in_bounds(ip, 8) && ip.is_aligned(8) && {
                let h = obj::header(r, ip);
                obj::is_valid(h) && Tag::from_header(h) == Some(Tag::Inode)
            };
            if valid {
                let ino = Inode(ip);
                for i in 0..INLINE_EXTENTS {
                    let e: Extent = r.read(PPtr::new(O_EXTENTS + (i as u64) * 16));
                    ino.set_extent(r, i, e);
                }
                ino.set_ext_next(r, PPtr::new(r.read(PPtr::new(O_NEXT))));
                rolled = 1;
            }
        }
        clear(r);
        rolled
    }
}

/// Counter battery for fragmentation and compaction, exported through
/// [`ObsRegistry::to_json`] as the `frag` section of `paper obs`.
///
/// [`ObsRegistry::to_json`]: crate::obs::ObsRegistry::to_json
#[derive(Debug, Default)]
pub struct FragStats {
    /// Completed compaction passes.
    pub passes: AtomicU64,
    /// Files whose maps were relocated onto a contiguous run.
    pub relocated_files: AtomicU64,
    /// Data blocks moved by those relocations.
    pub relocated_blocks: AtomicU64,
    /// Extent-map entries eliminated (old extents − 1 per relocation).
    pub extents_merged: AtomicU64,
    /// Relocations skipped because the journal slot was held by a peer.
    pub skipped_busy: AtomicU64,
    /// Relocations skipped for lack of a contiguous destination run.
    pub skipped_nospace: AtomicU64,
    /// Mid-swap crashes rolled back by mount-time recovery.
    pub rollbacks: AtomicU64,
}

impl FragStats {
    /// The `"frag"` JSON object: the counters above plus the live
    /// fragmentation gauges read off the allocator (free runs, largest
    /// run, the smallest per-segment largest run, reserved-but-idle tail
    /// blocks, allocation-pressure events) and the caller-supplied extent
    /// census (files walked, total extents).
    pub fn to_json(&self, blocks: &BlockAlloc, files: u64, extents: u64) -> String {
        let snap = blocks.frag_snapshot();
        let free_runs: u64 = snap.iter().map(|&(r, _)| r).sum();
        let max_free_run = snap.iter().map(|&(_, m)| m).max().unwrap_or(0);
        let min_seg_max_run = snap.iter().map(|&(_, m)| m).min().unwrap_or(0);
        format!(
            "{{\"free_runs\":{},\"max_free_run\":{},\"min_seg_max_run\":{},\
             \"reserved_idle\":{},\"frag_pressure\":{},\"files\":{},\"extents\":{},\
             \"passes\":{},\"relocated_files\":{},\"relocated_blocks\":{},\
             \"extents_merged\":{},\"skipped_busy\":{},\"skipped_nospace\":{},\
             \"rollbacks\":{}}}",
            free_runs,
            max_free_run,
            min_seg_max_run,
            blocks.reserved_idle_blocks(),
            blocks.frag_pressure(),
            files,
            extents,
            self.passes.load(Ordering::Relaxed),
            self.relocated_files.load(Ordering::Relaxed),
            self.relocated_blocks.load(Ordering::Relaxed),
            self.extents_merged.load(Ordering::Relaxed),
            self.skipped_busy.load(Ordering::Relaxed),
            self.skipped_nospace.load(Ordering::Relaxed),
            self.rollbacks.load(Ordering::Relaxed),
        )
    }
}

/// Volatile compaction work queue: candidate inodes harvested by the last
/// tree walk, plus the allocator-pressure level that walk observed. Purely
/// DRAM state — it is listed in [`crate::shared::REBUILDABLE_CACHES`] and a
/// fresh mount simply starts empty and re-walks.
#[derive(Debug, Default)]
pub struct CompactQueue {
    /// Fragmented files (inode pointers) awaiting relocation, most
    /// fragmented first.
    pub queue: Mutex<Vec<PPtr>>,
    /// `BlockAlloc::frag_pressure` as of the last pass, so the incremental
    /// trigger only fires when new pressure accumulated.
    pub seen_pressure: AtomicU64,
}

/// Outcome of a single-file relocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reloc {
    /// Map rewritten onto one contiguous run of this many blocks.
    Moved(u64),
    /// Already contiguous (≤ 1 extent) — nothing to do.
    Contiguous,
    /// Journal slot held by a peer; try again later.
    Busy,
    /// No contiguous destination run large enough.
    NoSpace,
}

/// Relocates `ino`'s data onto one contiguous run, following the module's
/// ordering invariant. The caller must hold the file's write lock (the
/// compaction pass takes it per file) and pass an env whose cursor — if
/// any — belongs to `ino`; the cursor generation is bumped on success so
/// every open handle rebuilds its mirror from the relocated map.
pub fn relocate_file(env: &FileEnv<'_>, ino: Inode, stats: &FragStats) -> FsResult<Reloc> {
    let r = env.region;
    // Snapshot the old map and overflow chain before anything moves.
    let mut map: Vec<Extent> = Vec::new();
    file::for_each_extent(r, ino, |_, e| map.push(e));
    let mut chain: Vec<PPtr> = Vec::new();
    let mut blk = ino.ext_next(r);
    while !blk.is_null() {
        chain.push(blk);
        blk = extblock::next(r, blk);
    }
    if map.len() <= 1 && chain.is_empty() {
        return Ok(Reloc::Contiguous);
    }
    let total: u64 = map.iter().map(|e| e.len).sum();
    debug_assert!(total.is_multiple_of(BLOCK_SIZE as u64));
    let nblocks = total / BLOCK_SIZE as u64;
    if nblocks == 0 {
        return Ok(Reloc::Contiguous);
    }
    // 1. New home: one contiguous run, placed by the usual inode hint.
    let Some(dst) = env.blocks.alloc(ino.ptr().off() / 64, nblocks) else {
        stats.skipped_nospace.fetch_add(1, Ordering::Relaxed);
        return Ok(Reloc::NoSpace);
    };
    // 2. Copy and persist the bytes before any pointer can reach them.
    let mut buf = vec![0u8; 64 * 1024];
    let mut off = 0u64;
    for e in &map {
        let mut done = 0u64;
        while done < e.len {
            let n = buf.len().min((e.len - done) as usize);
            r.read_into(PPtr::new(e.start + done), &mut buf[..n]);
            r.nt_write_from(dst.add(off + done), &buf[..n]);
            done += n as u64;
        }
        off += e.len;
    }
    r.persist(dst, total as usize);
    // 3. Arm the journal with the old map.
    if !journal::arm(r, ino) {
        env.blocks.free(dst, nblocks);
        stats.skipped_busy.fetch_add(1, Ordering::Relaxed);
        return Ok(Reloc::Busy);
    }
    // 4. Swap the map under one fence scope, sealed by an eager commit:
    // the new single extent and the cleared slots become durable together,
    // strictly after the copy above and strictly before any free below.
    let scope = r.fence_scope();
    ino.set_extent(r, 0, Extent { start: dst.off(), len: total });
    for i in 1..INLINE_EXTENTS {
        ino.set_extent(r, i, Extent::default());
    }
    ino.set_ext_next(r, PPtr::NULL);
    scope.commit();
    drop(scope);
    // 5. The relocated map is the persistent truth; disarm.
    journal::clear(r);
    // 6. Only now do the old blocks go back — old data extents first, then
    // the overflow-chain blocks.
    for e in &map {
        env.blocks.free(PPtr::new(e.start), e.len / BLOCK_SIZE as u64);
    }
    for b in &chain {
        env.blocks.free(*b, 1);
    }
    // Relocation restructured the map: every cursor mirror is stale.
    if let Some(c) = env.cursor {
        c.invalidate();
    }
    stats.relocated_files.fetch_add(1, Ordering::Relaxed);
    stats.relocated_blocks.fetch_add(nblocks, Ordering::Relaxed);
    stats.extents_merged.fetch_add(map.len() as u64 - 1, Ordering::Relaxed);
    Ok(Reloc::Moved(nblocks))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obj::H_VALID;
    use simurgh_fsapi::types::FileMode;
    use simurgh_pmem::layout::Extent as LExtent;
    use std::sync::Arc;

    struct Fx {
        region: Arc<PmemRegion>,
        blocks: Arc<BlockAlloc>,
    }

    fn fixture(bytes: usize) -> Fx {
        let region = Arc::new(PmemRegion::new(bytes));
        // Data area past the first 64 KiB, like the file-layer tests.
        let blocks = Arc::new(BlockAlloc::new(
            LExtent { start: PPtr::new(64 * 1024), len: bytes as u64 - 64 * 1024 },
            1,
        ));
        Fx { region, blocks }
    }

    impl Fx {
        fn env(&self) -> FileEnv<'_> {
            FileEnv::new(&self.region, &self.blocks)
        }

        /// Places an inode at a fixed metadata offset with a valid tagged
        /// header, the way the pool allocator would hand it out.
        fn inode_at(&self, off: u64) -> Inode {
            let p = PPtr::new(off);
            self.region.write::<u64>(p, H_VALID | Tag::Inode.bits());
            self.region.persist(p, 8);
            let ino = Inode(p);
            ino.init(&self.region, FileMode::file(0o644), 0, 0, 1, 0);
            ino
        }

        /// Writes `n` 4-KB chunks, claiming the block after the tail
        /// between writes so the append fast path can never extend in
        /// place: a file with exactly `n` extents.
        fn fragmented(&self, env: &FileEnv<'_>, ino: Inode, n: u64) {
            for i in 0..n {
                file::write_at(env, ino, i * BLOCK_SIZE as u64, &[i as u8; BLOCK_SIZE])
                    .unwrap();
                let mut tail = 0u64;
                file::for_each_extent(&self.region, ino, |_, e| tail = e.start + e.len);
                let b = self.blocks.ptr_block(PPtr::new(tail));
                let _ = self.blocks.extend_at(b, 1);
            }
            let mut extents = 0u64;
            file::for_each_extent(&self.region, ino, |_, _| extents += 1);
            assert_eq!(extents, n, "guards kept every chunk a separate extent");
        }
    }

    fn extent_count(r: &PmemRegion, ino: Inode) -> usize {
        let mut n = 0;
        file::for_each_extent(r, ino, |_, _| n += 1);
        n
    }

    fn chain_len(r: &PmemRegion, ino: Inode) -> u64 {
        let mut n = 0;
        let mut blk = ino.ext_next(r);
        while !blk.is_null() {
            n += 1;
            blk = extblock::next(r, blk);
        }
        n
    }

    #[test]
    fn relocation_merges_extents_and_preserves_bytes() {
        let fx = fixture(4 << 20);
        let env = fx.env();
        let ino = fx.inode_at(4096);
        fx.fragmented(&env, ino, 5);
        let free_before = fx.blocks.free_blocks();
        let chain = chain_len(&fx.region, ino);
        assert!(chain >= 1, "5 extents overflow the 3 inline slots");
        let stats = FragStats::default();
        let got = relocate_file(&env, ino, &stats).unwrap();
        assert_eq!(got, Reloc::Moved(5));
        assert_eq!(extent_count(&fx.region, ino), 1, "one contiguous extent");
        // Data blocks are swapped one-for-one; the overflow-chain blocks
        // become pure profit.
        assert_eq!(fx.blocks.free_blocks(), free_before + chain, "no leaked blocks");
        for i in 0..5u64 {
            let mut buf = [0u8; BLOCK_SIZE];
            assert_eq!(
                file::read_at(&env, ino, i * BLOCK_SIZE as u64, &mut buf),
                BLOCK_SIZE
            );
            assert!(buf.iter().all(|&b| b == i as u8), "bytes moved intact");
        }
        assert_eq!(stats.relocated_files.load(Ordering::Relaxed), 1);
        assert_eq!(stats.relocated_blocks.load(Ordering::Relaxed), 5);
        assert_eq!(stats.extents_merged.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn contiguous_files_are_left_alone() {
        let fx = fixture(4 << 20);
        let env = fx.env();
        let ino = fx.inode_at(4096);
        file::write_at(&env, ino, 0, &[7u8; 2 * BLOCK_SIZE]).unwrap();
        let stats = FragStats::default();
        assert_eq!(relocate_file(&env, ino, &stats).unwrap(), Reloc::Contiguous);
        assert_eq!(stats.relocated_files.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn armed_journal_rolls_back_to_the_old_map() {
        // Simulate a crash between map-swap stores: arm the journal, trash
        // the inline slots, and let `journal::recover` restore them.
        let fx = fixture(4 << 20);
        let env = fx.env();
        let ino = fx.inode_at(4096);
        fx.fragmented(&env, ino, 3);
        let before: Vec<Extent> = {
            let mut v = Vec::new();
            file::for_each_extent(&fx.region, ino, |_, e| v.push(e));
            v
        };
        assert!(journal::arm(&fx.region, ino));
        assert!(journal::armed_for(&fx.region, ino));
        // Torn swap: slot 0 points at garbage, slot 1 emptied.
        ino.set_extent(&fx.region, 0, Extent { start: 1 << 17, len: BLOCK_SIZE as u64 });
        ino.set_extent(&fx.region, 1, Extent::default());
        assert_eq!(journal::recover(&fx.region), 1);
        let after: Vec<Extent> = {
            let mut v = Vec::new();
            file::for_each_extent(&fx.region, ino, |_, e| v.push(e));
            v
        };
        assert_eq!(before, after, "rolled back to exactly the old map");
        assert!(!journal::armed_for(&fx.region, ino));
        assert_eq!(journal::recover(&fx.region), 0, "idle journal is a no-op");
    }

    #[test]
    fn busy_journal_skips_and_frees_the_staged_run() {
        let fx = fixture(4 << 20);
        let env = fx.env();
        let ino = fx.inode_at(4096);
        let other = fx.inode_at(8192);
        fx.fragmented(&env, ino, 3);
        assert!(journal::arm(&fx.region, other), "peer holds the slot");
        let free_before = fx.blocks.free_blocks();
        let stats = FragStats::default();
        assert_eq!(relocate_file(&env, ino, &stats).unwrap(), Reloc::Busy);
        assert_eq!(fx.blocks.free_blocks(), free_before, "staged run returned");
        assert_eq!(stats.skipped_busy.load(Ordering::Relaxed), 1);
        journal::clear(&fx.region);
    }
}
