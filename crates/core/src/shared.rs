//! Shared-region mount coordination (multi-process attach, §1 "fully
//! decentralized").
//!
//! When the region is a `MAP_SHARED` file mapping, several OS processes
//! mount the same bytes. Everything they coordinate through lives **in the
//! region** — this module owns the superblock words that arbitrate who runs
//! recovery and the geometry of the shared block-claim bitmap; nothing here
//! ever trusts another process's DRAM.
//!
//! ## Ownership protocol
//!
//! The words at [`O_STATE`]/[`O_ATTACH`] have *volatile* semantics: they are
//! meaningful only while at least one process is alive, and an exclusive
//! [`crate::fs::SimurghFs::mount`] (the crash-recovery entry point) resets
//! them unconditionally. The lifecycle:
//!
//! 1. `mount_shared` CASes the state word `DOWN → INITIALIZING`. The winner
//!    is the **recoverer**: it runs the full mount (mark / repair / sweep),
//!    publishes the block bitmap, then stores `UP`.
//! 2. Losers spin until `UP` and **attach**: they rebuild every volatile
//!    cache from media (block free lists from the bitmap, metadata free
//!    stacks from a header scan, an empty directory index that verifies on
//!    use) — never from a peer's DRAM.
//! 3. `unmount` decrements the attach count; the last process out stores
//!    `DOWN` and sets the clean flag. A `kill -9`'d process never
//!    decrements, so the region stays unclean and the *next* exclusive
//!    mount runs full recovery — exactly the paper's model.
//!
//! ## What is volatile-per-process vs. media
//!
//! [`REBUILDABLE_CACHES`] is the audited registry of every volatile cache
//! struct in this crate, each with its rebuild story. The `simurgh-analyze`
//! `shared-region` rule fails the build if a cache-shaped struct appears in
//! `core` without being listed here.

use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use simurgh_fsapi::{FsError, FsResult};
use simurgh_pmem::{PPtr, PmemRegion, PAGE_SIZE};

use crate::BLOCK_SIZE;

/// Every volatile (DRAM) cache struct in `simurgh-core`, with its
/// per-process rebuild story. A second mount of the same region file must
/// converge from media alone; adding a cache without a rebuild story is a
/// build error (analyze rule `shared-region`).
///
/// * `DirIndex` / `DirState` — shared-DRAM directory index: name hints,
///   free-slot hints, chain tails, completeness bits. Rebuilt by
///   `reindex_dir` on full mounts; attachers start **empty** and converge
///   by verify-on-use (an unknown line falls back to the chain walk).
/// * `FileCursor` / `CursorInner` — extent-map mirror of one open file.
///   Built lazily from the persistent extent map on first use; generation
///   bumps invalidate it, and a fresh process starts with no cursors.
/// * `OpenState` / `OpenFile` — sharded open-file table (`open_states`).
///   Strictly process-local bookkeeping (fds, positions, refcounts);
///   nothing on media references it, so a new process starts empty.
/// * `Segment` / `BlockAlloc` — per-segment block free lists. Rebuilt by
///   recovery's mark-and-sweep on full mounts; attachers rebuild from the
///   shared claim bitmap, and every allocation is arbitrated by bitmap CAS
///   so stale local lists can never double-allocate.
/// * `MetaAllocator` — slab free stacks (`SegQueue`). Refilled by the
///   recovery sweep or, on attach, by a header scan; the persistent header
///   CAS in `alloc` arbitrates races, so a stale stack entry just loses.
/// * `SimurghFs` — the mount object itself: aggregates the above plus
///   counters; reconstructed wholesale by mount/attach.
/// * `CompactQueue` — the compactor's candidate list and pressure
///   water-mark. Pure work-queue state: a fresh mount starts empty and the
///   next compaction pass re-harvests candidates from the tree walk. The
///   *in-flight* relocation itself is protected by the persistent
///   relocation journal (`compact::journal`), not by this cache.
/// * `FragStats` — fragmentation/compaction counters, same contract as the
///   other `ObsRegistry` batteries: diagnostics reset to zero per process.
pub const REBUILDABLE_CACHES: &[&str] = &[
    "DirIndex",
    "DirState",
    "FileCursor",
    "CursorInner",
    "OpenState",
    "OpenFile",
    "Segment",
    "BlockAlloc",
    "MetaAllocator",
    "SimurghFs",
    "CompactQueue",
    "FragStats",
];

// ---------------------------------------------------------------------------
// Superblock coordination words (page 0; see super_block.rs for 0..1600)
// ---------------------------------------------------------------------------

/// Shared mount state: [`ST_DOWN`] / [`ST_INIT`] / [`ST_UP`].
const O_STATE: u64 = 2048;
/// Live attached-process count (approximate: killed processes leak it).
const O_ATTACH: u64 = 2056;
/// Block-claim bitmap geometry, recorded at format time.
const O_BITMAP_START: u64 = 2064;
const O_BITMAP_WORDS: u64 = 2072;
/// Scratch words for multi-process test harnesses (phase gates). The file
/// system never reads them; `crashlab procs` uses them as its cross-process
/// barrier so the harness needs no IPC beyond the region file itself.
pub const O_SCRATCH: u64 = 2080;

const ST_DOWN: u64 = 0;
const ST_INIT: u64 = 1;
const ST_UP: u64 = 2;

/// How long an attacher waits for a recoverer stuck in `INITIALIZING`.
const INIT_WAIT: Duration = Duration::from_secs(30);

/// Which side of the attach race this process landed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttachRole {
    /// Won the `DOWN → INITIALIZING` CAS: runs full recovery and publishes.
    Recoverer,
    /// Found the system `UP`: rebuilds volatile state from media only.
    Attacher,
}

/// Resets the coordination words. Called by format and by every exclusive
/// `mount` — an exclusive mount *is* the fence against stale `UP` state left
/// by a crashed process group (the words are volatile semantics, so no
/// persist ordering applies).
pub fn reset(r: &PmemRegion) {
    r.atomic_u64(PPtr::new(O_STATE)).store(ST_DOWN, Ordering::Release);
    r.atomic_u64(PPtr::new(O_ATTACH)).store(0, Ordering::Release);
}

/// Joins the shared mount group, arbitrating who runs recovery. Errors if a
/// recoverer holds `INITIALIZING` for longer than the wait budget (it
/// presumably crashed mid-recovery; an exclusive mount is then required).
pub fn begin_attach(r: &PmemRegion) -> FsResult<AttachRole> {
    let state = r.atomic_u64(PPtr::new(O_STATE));
    let deadline = Instant::now() + INIT_WAIT;
    loop {
        match state.load(Ordering::Acquire) {
            ST_DOWN => {
                if state
                    .compare_exchange(ST_DOWN, ST_INIT, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    r.atomic_u64(PPtr::new(O_ATTACH)).fetch_add(1, Ordering::AcqRel);
                    return Ok(AttachRole::Recoverer);
                }
            }
            ST_UP => {
                r.atomic_u64(PPtr::new(O_ATTACH)).fetch_add(1, Ordering::AcqRel);
                return Ok(AttachRole::Attacher);
            }
            _ => {
                if Instant::now() > deadline {
                    return Err(FsError::Corrupt("shared-mount recoverer stuck in init"));
                }
            }
        }
        std::thread::yield_now();
    }
}

/// Recoverer: publishes the system as up (volatile caches may now be built
/// from the bitmap by attachers).
pub fn publish_up(r: &PmemRegion) {
    r.atomic_u64(PPtr::new(O_STATE)).store(ST_UP, Ordering::Release);
}

/// Recoverer: backs out of a failed init so peers don't wait forever.
pub fn abort_init(r: &PmemRegion) {
    r.atomic_u64(PPtr::new(O_ATTACH)).fetch_sub(1, Ordering::AcqRel);
    r.atomic_u64(PPtr::new(O_STATE)).store(ST_DOWN, Ordering::Release);
}

/// Leaves the mount group. Returns true for the last process out (which
/// then owns the clean-unmount write).
pub fn detach(r: &PmemRegion) -> bool {
    let prev = r.atomic_u64(PPtr::new(O_ATTACH)).fetch_sub(1, Ordering::AcqRel);
    if prev == 1 {
        r.atomic_u64(PPtr::new(O_STATE)).store(ST_DOWN, Ordering::Release);
        true
    } else {
        false
    }
}

/// Live attached-process count (diagnostics / harness barriers).
pub fn attach_count(r: &PmemRegion) -> u64 {
    r.atomic_u64(PPtr::new(O_ATTACH)).load(Ordering::Acquire)
}

// ---------------------------------------------------------------------------
// Block-claim bitmap geometry
// ---------------------------------------------------------------------------

/// Bytes to carve for the claim bitmap of a region of `region_len` bytes:
/// one bit per data block, rounded up to whole pages. Slightly oversized
/// (it counts the superblock and the bitmap itself as blocks), which only
/// wastes a few trailing bits.
pub fn bitmap_bytes(region_len: usize) -> u64 {
    let blocks = (region_len / BLOCK_SIZE) as u64;
    let words = blocks.div_ceil(64);
    (words * 8).div_ceil(PAGE_SIZE as u64) * PAGE_SIZE as u64
}

/// Records the bitmap area chosen at format time.
pub fn record_bitmap_geometry(r: &PmemRegion, start: PPtr, words: u64) {
    r.write(PPtr::new(O_BITMAP_START), start.off());
    r.write(PPtr::new(O_BITMAP_WORDS), words);
    r.persist(PPtr::new(O_BITMAP_START), 16);
}

/// The bitmap area, if this region was formatted with one.
pub fn bitmap_geometry(r: &PmemRegion) -> Option<(PPtr, u64)> {
    let words = r.read::<u64>(PPtr::new(O_BITMAP_WORDS));
    if words == 0 {
        return None;
    }
    let start = PPtr::new(r.read::<u64>(PPtr::new(O_BITMAP_START)));
    if !r.in_bounds(start, (words * 8) as usize) {
        return None;
    }
    Some((start, words))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::super_block::Superblock;
    use simurgh_pmem::layout::Extent;

    fn region() -> PmemRegion {
        let r = PmemRegion::new(1 << 20);
        Superblock::format(
            &r,
            PPtr::NULL,
            Extent { start: PPtr::new(65536), len: (1 << 20) - 65536 },
        );
        reset(&r);
        r
    }

    #[test]
    fn first_in_recovers_rest_attach() {
        let r = region();
        assert_eq!(begin_attach(&r).unwrap(), AttachRole::Recoverer);
        publish_up(&r);
        assert_eq!(begin_attach(&r).unwrap(), AttachRole::Attacher);
        assert_eq!(begin_attach(&r).unwrap(), AttachRole::Attacher);
        assert_eq!(attach_count(&r), 3);
        assert!(!detach(&r));
        assert!(!detach(&r));
        assert!(detach(&r), "last one out");
        // System is down again: the next joiner recovers.
        assert_eq!(begin_attach(&r).unwrap(), AttachRole::Recoverer);
    }

    #[test]
    fn aborted_init_lets_a_peer_recover() {
        let r = region();
        assert_eq!(begin_attach(&r).unwrap(), AttachRole::Recoverer);
        abort_init(&r);
        assert_eq!(attach_count(&r), 0);
        assert_eq!(begin_attach(&r).unwrap(), AttachRole::Recoverer);
    }

    #[test]
    fn bitmap_geometry_roundtrip() {
        let r = region();
        assert!(bitmap_geometry(&r).is_none(), "not recorded yet");
        record_bitmap_geometry(&r, PPtr::new(4096), 32);
        assert_eq!(bitmap_geometry(&r), Some((PPtr::new(4096), 32)));
    }

    #[test]
    fn bitmap_sizing_covers_all_blocks() {
        // 8 MiB region → 2048 blocks → 256 bytes of bits → one page.
        assert_eq!(bitmap_bytes(8 << 20), 4096);
        // Just past one page of bits (128 Mi blocks-worth) → two pages.
        assert_eq!(bitmap_bytes((4096 * 8 + 1) * BLOCK_SIZE), 8192);
    }
}
